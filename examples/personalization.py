"""On-device personalisation (§2): fine-tune a saved model per user.

The paper motivates CPU training with client-side personalisation: a base
model ships to devices, and each device fine-tunes on its own data —
privately, offline, without a GPU.  This example plays that out:

1. train a base model on the global MNIST-like distribution and save it
   (`repro.nn.serialize`);
2. create a "user" whose data is a shifted version of the distribution
   (a fixed subset of dead sensor pixels + personal label skew);
3. load the base model on the "device" and fine-tune it with STANDARD vs
   MC-approx vs ALSH-approx, comparing personalised accuracy and
   fine-tuning cost — exactly the trade-off the §10.4 decision tree is
   for.

Run:
    python examples/personalization.py
"""

import tempfile
from pathlib import Path

from repro import MLP, load_benchmark, make_trainer
from repro.data.corruptions import with_class_imbalance, with_dead_features
from repro.harness.reporting import format_table
from repro.nn.serialize import load_mlp, save_mlp

BASE_EPOCHS = 6
TUNE_EPOCHS = 3
WIDTH = 96


def make_user_data(seed):
    """A user's shifted distribution: dead pixels + class skew."""
    data = load_benchmark("mnist", scale=0.008, seed=seed)
    data = with_dead_features(data, 0.25, seed=seed)
    data = with_class_imbalance(data, 0.3, minority_classes=2, seed=seed)
    return data


def main():
    global_data = load_benchmark("mnist", scale=0.02, seed=0)
    print(f"global data: {global_data.describe()}")

    # 1. Train and ship the base model.
    base = MLP([global_data.input_dim, WIDTH, WIDTH, global_data.n_classes], seed=1)
    make_trainer("standard", base, lr=1e-2, seed=2).fit(
        global_data.x_train, global_data.y_train,
        epochs=BASE_EPOCHS, batch_size=20,
    )
    with tempfile.TemporaryDirectory() as tmp:
        model_path = save_mlp(base, Path(tmp) / "base_model")
        print(f"base model saved ({model_path.stat().st_size // 1024} KB)")

        user = make_user_data(seed=7)
        print(f"user data: {user.describe()}")
        base_acc = float(
            (load_mlp(model_path).predict(user.x_test) == user.y_test).mean()
        )
        print(f"base model on the user's distribution: {base_acc:.3f}\n")

        rows = [["base model (no fine-tune)", base_acc, 0.0]]
        settings = [
            ("standard", 20, 1e-2, {}),
            ("mc", 20, 1e-2, {"k": 10}),
            ("alsh", 1, 1e-3, {"optimizer": "adam"}),
        ]
        for method, batch, lr, kwargs in settings:
            device_model = load_mlp(model_path)  # fresh copy per device
            trainer = make_trainer(method, device_model, lr=lr, seed=3, **kwargs)
            history = trainer.fit(
                user.x_train, user.y_train,
                epochs=TUNE_EPOCHS, batch_size=batch,
            )
            acc = float((trainer.predict(user.x_test) == user.y_test).mean())
            rows.append([f"fine-tuned with {method}", acc, history.total_time])

        print(
            format_table(
                ["model", "user-test accuracy", "fine-tune time (s)"],
                rows,
                title="Personalisation: base model vs on-device fine-tuning",
            )
        )
    print(
        "\nShape to expect: fine-tuning recovers the accuracy the shifted\n"
        "distribution costs the base model; MC-approx matches exact\n"
        "fine-tuning; ALSH-approx pays heavily in time without parallel\n"
        "hardware (§10.4)."
    )


if __name__ == "__main__":
    main()
