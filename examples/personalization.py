"""On-device personalisation (§2): fine-tune and *serve* per-user models.

The paper motivates CPU training with client-side personalisation: a
base model ships to devices, and each device fine-tunes on its own data
— privately, offline, without a GPU.  This example plays that out in
two acts:

1. **Fine-tune** (the training story): train a base model on the global
   MNIST-like distribution, save it (`repro.nn.serialize`), shift a
   "user's" distribution (dead sensor pixels + label skew), and compare
   STANDARD vs MC-approx vs ALSH-approx fine-tuning — the §10.4
   decision-tree trade-off.
2. **Serve** (the serving story, `repro.serve`): fine-tune a small
   per-user *head* on top of the frozen shared trunk for several users,
   register the base checkpoint in a `ModelRegistry` (digest-pinned),
   persist each head as its own checkpoint, and answer a skewed request
   stream through a `TenantHeadCache` that holds only a few heads in
   memory — the memsim cache model decides who stays resident.

Run:
    python examples/personalization.py            # both acts
    python examples/personalization.py --quick    # small, CI-sized run
"""

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro import MLP, load_benchmark, make_trainer
from repro.data.corruptions import with_class_imbalance, with_dead_features
from repro.harness.reporting import format_table
from repro.nn.serialize import load_mlp, save_mlp
from repro.obs import InMemoryRecorder
from repro.serve import ModelRegistry, ServableModel, TenantHeadCache


def make_user_data(data, seed):
    """A device user's shifted distribution: dead pixels + class skew.

    Derived from the *global* dataset (same underlying task), so the
    shipped base model is meaningfully related to the user's data.
    """
    data = with_dead_features(data, 0.25, seed=seed)
    data = with_class_imbalance(data, 0.3, minority_classes=2, seed=seed)
    return data


def make_tenant(data, idx, hot=0.9, n_train=160, n_test=60):
    """A serving tenant: global task, traffic skewed to favourite classes.

    90% of the tenant's rows come from two favourite classes — the
    shift a cheap head-only fine-tune on a frozen trunk *can* adapt to
    (unlike input corruption, which changes the trunk's features).
    Rows are drawn with replacement so the skew holds even when the
    favourite classes have few rows in the global pool.
    """
    rng = np.random.default_rng(40 + idx)
    favourites = rng.choice(data.n_classes, size=2, replace=False)

    def skewed(x, y, n):
        fav = np.isin(y, favourites)
        weights = np.where(fav, hot / max(fav.sum(), 1),
                           (1 - hot) / max((~fav).sum(), 1))
        pick = rng.choice(len(y), size=n, replace=True,
                          p=weights / weights.sum())
        return x[pick], y[pick]

    x_train, y_train = skewed(data.x_train, data.y_train, n_train)
    x_test, y_test = skewed(data.x_test, data.y_test, n_test)
    return {
        "favourites": sorted(int(c) for c in favourites),
        "x_train": x_train, "y_train": y_train,
        "x_test": x_test, "y_test": y_test,
    }


def compare_fine_tuning(model_path, user, tune_epochs):
    """Act 1: whole-model fine-tuning, STANDARD vs MC vs ALSH."""
    base_acc = float(
        (load_mlp(model_path).predict(user.x_test) == user.y_test).mean()
    )
    print(f"base model on the user's distribution: {base_acc:.3f}\n")

    rows = [["base model (no fine-tune)", base_acc, 0.0]]
    settings = [
        ("standard", 20, 1e-2, {}),
        ("mc", 20, 1e-2, {"k": 10}),
        ("alsh", 1, 1e-3, {"optimizer": "adam"}),
    ]
    for method, batch, lr, kwargs in settings:
        device_model = load_mlp(model_path)  # fresh copy per device
        trainer = make_trainer(method, device_model, lr=lr, seed=3, **kwargs)
        history = trainer.fit(
            user.x_train, user.y_train,
            epochs=tune_epochs, batch_size=batch,
        )
        acc = float((trainer.predict(user.x_test) == user.y_test).mean())
        rows.append([f"fine-tuned with {method}", acc, history.total_time])

    print(
        format_table(
            ["model", "user-test accuracy", "fine-tune time (s)"],
            rows,
            title="Personalisation: base model vs on-device fine-tuning",
        )
    )
    print(
        "\nShape to expect: fine-tuning recovers the accuracy the shifted\n"
        "distribution costs the base model; MC-approx matches exact\n"
        "fine-tuning; ALSH-approx pays heavily in time without parallel\n"
        "hardware (§10.4).\n"
    )


def tune_user_head(trunk, user, tune_epochs, seed):
    """Fine-tune one tenant's head on frozen trunk features.

    The head starts from the shared output layer and trains as a
    single-layer MLP on the trunk's activations — the cheap per-user
    update the multi-tenant serving story assumes.  Head-only epochs are
    nearly free (the features are trunk-width, computed once), so the
    head gets many more passes than a whole-model fine-tune would.
    """
    base_out = trunk.output_layer()
    head = MLP([base_out.W.shape[0], base_out.W.shape[1]], seed=seed)
    head.layers[0].W = base_out.W.copy()
    head.layers[0].b = base_out.b.copy()
    features = trunk.trunk_forward(user["x_train"])
    make_trainer("standard", head, lr=1e-2, seed=seed).fit(
        features, user["y_train"], epochs=10 * tune_epochs, batch_size=20,
    )
    return head


def serve_tenants(base_path, users, head_dir, capacity, requests, tune_epochs,
                  seed=0):
    """Act 2: per-user heads over the shared trunk, LRU head cache."""
    recorder = InMemoryRecorder()
    registry = ModelRegistry()
    trunk = registry.register("base", base_path)
    # A second register with the digest pin: deploys verify the artifact.
    registry.register("base", base_path, version=trunk.digest)
    print(f"registry: base model {trunk.name}@{trunk.version}")

    head_paths = {}
    for idx, (tenant, user) in enumerate(sorted(users.items())):
        head = tune_user_head(trunk, user, tune_epochs, seed=100 + idx)
        head_paths[tenant] = save_mlp(head, Path(head_dir) / f"head_{tenant}")
    print(f"{len(head_paths)} per-user heads checkpointed, "
          f"cache capacity {capacity}")

    def load_head(tenant):
        return ServableModel(load_mlp(head_paths[tenant]), name=f"head-{tenant}")

    cache = TenantHeadCache(capacity, load_head, recorder=recorder)

    # Zipf-skewed traffic: a couple of hot users, a long cold tail.
    rng = np.random.default_rng(seed)
    tenants = sorted(users)
    weights = 1.0 / np.arange(1, len(tenants) + 1)
    weights /= weights.sum()
    correct = base_correct = total = 0
    for _ in range(requests):
        tenant = tenants[rng.choice(len(tenants), p=weights)]
        user = users[tenant]
        i = rng.integers(len(user["y_test"]))
        x = user["x_test"][i:i + 1]
        truth = int(user["y_test"][i])
        features = trunk.trunk_forward(x)
        pred = int(np.argmax(cache.get(tenant).predict_logproba(features)))
        correct += pred == truth
        base_correct += int(trunk.predict(x)[0]) == truth
        total += 1

    stats = cache.stats()
    print(
        format_table(
            ["metric", "value"],
            [
                ["requests served", total],
                ["base-model accuracy", base_correct / total],
                ["personalised accuracy", correct / total],
                ["head cache hit rate", stats["hit_rate"]],
                ["heads loaded (misses)", stats["misses"]],
                ["heads evicted", stats["evictions"]],
                ["heads resident", stats["resident"]],
            ],
            title=f"Multi-tenant serving: {len(tenants)} users, "
                  f"{capacity} heads resident",
        )
    )
    snapshot = recorder.snapshot()
    print(f"serve.tenant.* counters: {sorted(k for k in snapshot['counters'])}")
    assert stats["resident"] <= capacity
    assert stats["hit_rate"] > 0, "skewed traffic must hit the cache"
    return stats


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run: skip the fine-tuning method "
                             "comparison, shrink data and traffic")
    args = parser.parse_args(argv)

    base_epochs = 3 if args.quick else 6
    tune_epochs = 2 if args.quick else 3
    scale = 0.015 if args.quick else 0.02
    n_users = 4 if args.quick else 6
    requests = 60 if args.quick else 300
    width = 64 if args.quick else 96

    global_data = load_benchmark("mnist", scale=scale, seed=0)
    print(f"global data: {global_data.describe()}")

    base = MLP(
        [global_data.input_dim, width, width, global_data.n_classes], seed=1
    )
    make_trainer("standard", base, lr=1e-2, seed=2).fit(
        global_data.x_train, global_data.y_train,
        epochs=base_epochs, batch_size=20,
    )
    with tempfile.TemporaryDirectory() as tmp:
        model_path = save_mlp(base, Path(tmp) / "base_model")
        print(f"base model saved ({model_path.stat().st_size // 1024} KB)\n")

        if not args.quick:
            compare_fine_tuning(
                model_path, make_user_data(global_data, seed=7), tune_epochs
            )
        users = {
            f"user{u}": make_tenant(global_data, u) for u in range(n_users)
        }
        serve_tenants(
            model_path, users, head_dir=tmp,
            capacity=2 if args.quick else 3,
            requests=requests, tune_epochs=tune_epochs,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
