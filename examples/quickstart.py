"""Quickstart: train an MLP with each of the paper's five methods.

Generates a laptop-sized MNIST-like benchmark, trains a 3-hidden-layer
network (the paper's Table 2 architecture, scaled down) with every method,
and prints a Table 2-style accuracy/time comparison.

Run:
    python examples/quickstart.py
"""

from repro import MLP, load_benchmark, make_trainer
from repro.harness.reporting import format_table

DATA_SCALE = 0.02  # 1 100 training samples; raise towards 1.0 for paper scale
HIDDEN_LAYERS = 3
WIDTH = 128
EPOCHS = 3


def main():
    data = load_benchmark("mnist", scale=DATA_SCALE, seed=0)
    print(f"dataset: {data.describe()}\n")

    # (method, batch size, lr, extra trainer kwargs) — §8.4 defaults.
    # The dropout family and ALSH-approx run in the paper's stochastic
    # regime (batch size 1): at a 5 % keep rate they need per-sample
    # updates to train at all.
    settings = [
        ("standard", 20, 1e-2, {}),
        ("dropout", 1, 1e-2, {"keep_prob": 0.05}),
        ("adaptive_dropout", 1, 1e-2, {"target_keep": 0.05, "alpha": 2.0}),
        ("alsh", 1, 1e-3, {"optimizer": "adam"}),
        ("mc", 20, 1e-2, {"k": 10}),
    ]
    stochastic_subset = 500  # cap per-sample runs so the example stays quick

    rows = []
    for method, batch, lr, kwargs in settings:
        net = MLP(
            [data.input_dim] + [WIDTH] * HIDDEN_LAYERS + [data.n_classes],
            seed=1,
        )
        trainer = make_trainer(method, net, lr=lr, seed=2, **kwargs)
        n = stochastic_subset if batch == 1 else data.n_train
        history = trainer.fit(
            data.x_train[:n], data.y_train[:n], epochs=EPOCHS, batch_size=batch
        )
        acc = trainer.evaluate(data.x_test, data.y_test)
        rows.append(
            [
                f"{method}^{'S' if batch == 1 else 'M'}",
                acc,
                history.total_time / EPOCHS,
                history.losses()[-1],
            ]
        )

    print(
        format_table(
            ["method", "test accuracy", "time/epoch (s)", "final loss"],
            rows,
            title=f"Five methods, {HIDDEN_LAYERS} hidden layers x {WIDTH} units",
        )
    )
    print(
        "\nExpected shape (cf. paper Table 2): dropout at p=0.05 is crippled,"
        "\nadaptive-dropout recovers, MC-approx is competitive with standard,"
        "\nALSH-approx sits in between and is the slowest without parallelism."
    )


if __name__ == "__main__":
    main()
