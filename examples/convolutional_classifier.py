"""The paper's convolutional setting (§8.4): exact conv, approximate head.

The paper's CIFAR-10 experiment uses a convolutional front-end with a
fully connected classifier, keeping the convolutions exact and applying
the sampling-based approximation only to the classifier.  This example:

1. jointly trains a small conv stack + MLP head with exact gradients
   (:class:`repro.nn.conv.ConvClassifier`);
2. freezes the conv extractor;
3. trains *fresh* classifier heads on the frozen features with STANDARD,
   MC-approx and ALSH-approx and compares.

The demo runs on the Fashion-MNIST-like benchmark rather than the
CIFAR-10-like one: the synthetic CIFAR set is calibrated to be the hardest
benchmark (§8.2 ordering) and a laptop-scale conv stack stays near chance
on it — swap ``DATASET`` to ``"cifar10"`` to see that regime.

Run:
    python examples/convolutional_classifier.py
"""

from repro import MLP, load_benchmark, make_trainer
from repro.harness.reporting import format_table
from repro.nn.conv import ConvClassifier, ConvFeatureExtractor

DATASET = "fashion"
PRETRAIN_EPOCHS = 5
HEAD_EPOCHS = 4
WIDTH = 64


def main():
    data = load_benchmark(DATASET, scale=0.01, seed=0)
    print(f"dataset: {data.describe()}")
    imgs_train = data.images("train")
    imgs_test = data.images("test")
    channels, height, width = data.image_shape

    extractor = ConvFeatureExtractor(
        in_channels=channels, channels=(8, 16), seed=1
    )
    n_features = extractor.feature_dim(height, width)
    pretrain_head = MLP([n_features, WIDTH, data.n_classes], seed=2)
    model = ConvClassifier(extractor, pretrain_head, lr=2e-2)
    print(f"jointly pre-training conv stack + head ({PRETRAIN_EPOCHS} epochs)...")
    losses = model.fit(
        imgs_train, data.y_train, epochs=PRETRAIN_EPOCHS, batch_size=20, seed=3
    )
    print(f"pretrain losses: {['%.3f' % l for l in losses]}")
    end_to_end = float((model.predict(imgs_test) == data.y_test).mean())
    print(f"end-to-end exact accuracy: {end_to_end:.3f}\n")

    # Freeze the extractor; train fresh heads per method on its features.
    feats_train = extractor.forward(imgs_train)
    feats_test = extractor.forward(imgs_test)

    settings = [
        ("standard", 20, 1e-2, {}),
        ("mc", 20, 1e-2, {"k": 10}),
        ("alsh", 1, 1e-3, {"optimizer": "adam"}),
    ]
    rows = []
    for method, batch, lr, kwargs in settings:
        head = MLP([n_features, WIDTH, WIDTH, data.n_classes], seed=4)
        trainer = make_trainer(method, head, lr=lr, seed=5, **kwargs)
        history = trainer.fit(
            feats_train, data.y_train, epochs=HEAD_EPOCHS, batch_size=batch
        )
        preds = trainer.predict(feats_test)
        rows.append(
            [
                method,
                float((preds == data.y_test).mean()),
                history.total_time / HEAD_EPOCHS,
            ]
        )

    print(
        format_table(
            ["classifier head", "test accuracy", "time/epoch (s)"],
            rows,
            title="Frozen conv features (exact) + approximated classifier head",
        )
    )
    print(
        "\nShape to expect: exact and MC-approx heads track the end-to-end "
        "model;\nthe ALSH-approx head trails and is the slowest (cf. paper "
        "Table 2/3)."
    )


if __name__ == "__main__":
    main()
