"""The paper's unifying view (§4.2): everything is approximate matmul.

Compares all the estimators in :mod:`repro.approx` on the same product —
the Drineas with-replacement CR sampler (Eq. 6), the Adelman Bernoulli
sampler (Eq. 7), their uniform-sampling counterparts and deterministic
top-k — across a budget sweep, and checks the measured errors against the
closed-form expected-error formulas.

Run:
    python examples/matrix_approximation.py
"""

import numpy as np

from repro.approx import (
    METHODS,
    approx_matmul,
    bernoulli_expected_error,
    bernoulli_probabilities,
    drineas_expected_error,
    frobenius_error,
)
from repro.harness.reporting import format_series, format_table

N_INNER = 400
BUDGETS = [10, 25, 50, 100, 200]
TRIALS = 30


def make_problem(seed=0):
    """A product with skewed importance — where smart sampling pays."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(40, N_INNER)) * np.logspace(0, 1.5, N_INNER)
    b = rng.normal(size=(N_INNER, 30))
    return a, b


def budget_sweep(a, b):
    exact = a @ b
    series = {}
    for method in METHODS:
        if method == "exact":
            continue
        errors = []
        for budget in BUDGETS:
            trial_errors = [
                frobenius_error(
                    exact,
                    approx_matmul(a, b, budget, method, np.random.default_rng(t)),
                )
                for t in range(TRIALS)
            ]
            errors.append(float(np.mean(trial_errors)))
        series[method] = errors
    print(
        format_series(
            "budget (of 400)",
            BUDGETS,
            series,
            title="Mean relative Frobenius error vs sampling budget",
        )
    )


def theory_check(a, b):
    exact = a @ b
    rows = []
    for budget in (25, 100):
        # Drineas closed form vs measurement.
        predicted = drineas_expected_error(a, b, budget)
        measured = np.mean(
            [
                np.linalg.norm(
                    exact - approx_matmul(a, b, budget, "drineas",
                                          np.random.default_rng(t)),
                    "fro",
                )
                ** 2
                for t in range(200)
            ]
        )
        rows.append(["drineas", budget, predicted, float(measured)])
        probs = bernoulli_probabilities(a, b, budget)
        predicted = bernoulli_expected_error(a, b, probs)
        measured = np.mean(
            [
                np.linalg.norm(
                    exact - approx_matmul(a, b, budget, "bernoulli",
                                          np.random.default_rng(t)),
                    "fro",
                )
                ** 2
                for t in range(200)
            ]
        )
        rows.append(["bernoulli", budget, predicted, float(measured)])
    print(
        "\n"
        + format_table(
            ["estimator", "budget", "E||err||_F^2 (theory)", "measured"],
            rows,
            title="Closed-form expected error vs Monte-Carlo measurement",
            float_fmt="{:.3e}",
        )
    )


def main():
    a, b = make_problem()
    budget_sweep(a, b)
    theory_check(a, b)
    print(
        "\nExpected shape: norm-proportional sampling (drineas/bernoulli) "
        "beats\nuniform at every budget; deterministic top-k wins on this "
        "skewed\nproblem but is biased; theory matches measurement."
    )


if __name__ == "__main__":
    main()
