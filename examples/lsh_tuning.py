"""Tuning the ALSH index: the (K, L) recall / candidate-size trade-off.

ALSH-approx's hyperparameters K (bits per table) and L (tables) control a
trade-off the paper states qualitatively ("K and L are tunable
hyperparameters that affect the active set's size and quality", §5.2).
This example quantifies it with the diagnostics in
:mod:`repro.lsh.diagnostics`:

* recall@k against exact MIPS (active-set *quality*);
* mean candidate-set size (active-set *size* — the compute cost);
* bucket occupancy statistics (index health);

for a grid of (K, L), over both hash families, on weight-column/activation
data drawn from a real trained layer.

Run:
    python examples/lsh_tuning.py
"""

import numpy as np

from repro import MLP, load_benchmark, make_trainer
from repro.harness.reporting import format_table
from repro.lsh.diagnostics import bucket_stats, candidate_size_profile, recall_at_k
from repro.lsh.mips import MIPSIndex

GRID = [(4, 2), (4, 8), (6, 5), (8, 5), (8, 16)]  # (K, L); (6, 5) = paper
FAMILIES = ["srp", "dwta"]
TOP_K = 10


def realistic_workload():
    """Weight columns + activation queries from a briefly trained net."""
    data = load_benchmark("mnist", scale=0.01, seed=0)
    net = MLP([data.input_dim, 128, data.n_classes], seed=1)
    make_trainer("standard", net, lr=1e-2, seed=2).fit(
        data.x_train, data.y_train, epochs=2, batch_size=20
    )
    columns = net.layers[0].W.T  # 128 weight columns of dim 784
    queries = data.x_test[:40]  # activation vectors (layer-0 inputs)
    return columns, queries


def main():
    columns, queries = realistic_workload()
    n_items = columns.shape[0]
    print(f"indexing {n_items} weight columns of dim {columns.shape[1]}\n")

    rows = []
    for family in FAMILIES:
        for k_bits, l_tables in GRID:
            index = MIPSIndex(
                columns.shape[1], n_bits=k_bits, n_tables=l_tables,
                family=family, seed=3,
            )
            index.build(columns)
            recall = recall_at_k(index, columns, queries, k=TOP_K)
            sizes = candidate_size_profile(index, queries)
            stats = bucket_stats(index.index)
            label = f"{family} K={k_bits} L={l_tables}"
            if (k_bits, l_tables) == (6, 5):
                label += " (paper)"
            rows.append(
                [
                    label,
                    recall,
                    float(sizes.mean()) / n_items,
                    stats.occupancy,
                    stats.gini,
                ]
            )

    print(
        format_table(
            ["config", f"recall@{TOP_K}", "mean active frac",
             "bucket occupancy", "load gini"],
            rows,
            title="ALSH index tuning on trained weight columns",
        )
    )
    print(
        "\nReading guide: more tables (L) buys recall by enlarging the\n"
        "candidate set (active fraction ~ compute cost); more bits (K)\n"
        "sharpens buckets, shrinking candidates but costing recall.  The\n"
        "paper's K=6, L=5 sits mid-curve.  Note the whole curve is\n"
        "selection *quality* — the depth collapse (Theorem 7.2) is\n"
        "indifferent to it, as the selector ablation bench shows."
    )


if __name__ == "__main__":
    main()
