"""Depth scalability: reproduce the paper's headline negative result.

Sweeps the number of hidden layers for ALSH-approx vs MC-approx vs
standard training (the paper's Figures 3/7) and prints:

* accuracy per depth — ALSH-approx collapses beyond ~3 layers while
  MC-approx keeps pace with the exact baseline;
* the §10.3 diagnostics (prediction entropy, distinct predicted labels)
  showing ALSH's deep networks funnel every input to a few classes;
* the Theorem 7.2 closed-form error ratio alongside, so theory and
  measurement can be eyeballed together.

Run:
    python examples/depth_scalability.py
"""

import numpy as np

from repro import MLP, load_benchmark, make_trainer
from repro.harness.reporting import format_series, render_confusion
from repro.nn.metrics import (
    confusion_matrix,
    distinct_predictions,
    prediction_entropy,
)
from repro.theory.error_propagation import error_ratio

DEPTHS = [1, 2, 3, 5, 7]
WIDTH = 96
EPOCHS = 3


def train(method, data, depth, batch, lr, **kwargs):
    net = MLP([data.input_dim] + [WIDTH] * depth + [data.n_classes], seed=1)
    trainer = make_trainer(method, net, lr=lr, seed=2, **kwargs)
    trainer.fit(data.x_train, data.y_train, epochs=EPOCHS, batch_size=batch)
    return trainer


def main():
    data = load_benchmark("mnist", scale=0.015, seed=0)
    print(f"dataset: {data.describe()}\n")

    acc = {"standard": [], "mc": [], "alsh": []}
    entropy, distinct = [], []
    deep_alsh_confusion = None

    for depth in DEPTHS:
        std = train("standard", data, depth, batch=20, lr=1e-2)
        mc = train("mc", data, depth, batch=20, lr=1e-2, k=10)
        alsh = train("alsh", data, depth, batch=1, lr=1e-3, optimizer="adam")
        acc["standard"].append(std.evaluate(data.x_test, data.y_test))
        acc["mc"].append(mc.evaluate(data.x_test, data.y_test))
        preds = alsh.predict(data.x_test)
        acc["alsh"].append(float((preds == data.y_test).mean()))
        entropy.append(prediction_entropy(preds, data.n_classes))
        distinct.append(distinct_predictions(preds))
        if depth == DEPTHS[-1]:
            deep_alsh_confusion = confusion_matrix(
                data.y_test, preds, data.n_classes
            )

    print(
        format_series(
            "hidden layers",
            DEPTHS,
            acc,
            title="Accuracy vs depth (cf. paper Figure 7)",
        )
    )

    print(
        "\n"
        + format_series(
            "hidden layers",
            DEPTHS,
            {
                "ALSH pred entropy": entropy,
                "ALSH distinct labels": [float(d) for d in distinct],
                "Thm 7.2 error ratio (c=5)": [error_ratio(5.0, k) for k in DEPTHS],
            },
            title="\nALSH collapse diagnostics (cf. paper §10.3 / §7)",
        )
    )

    print(
        "\n"
        + render_confusion(
            deep_alsh_confusion,
            title=f"\nALSH-approx confusion at {DEPTHS[-1]} hidden layers "
            "(vertical bars = §10.3 label collapse)",
        )
    )


if __name__ == "__main__":
    main()
