"""Batch-size sensitivity of MC-approx (paper §9.3, Figures 10–11).

MC-approx estimates its sampling probabilities from the minibatch; at
batch size 1 ("MC-approx^S") the estimate is a single point and the
probability machinery becomes pure overhead.  This example sweeps the
batch size and prints accuracy and per-epoch time for MC-approx vs
standard training, plus the §9.3 learning-rate fix at batch size 1.

Run:
    python examples/batch_size_study.py
"""

from repro import MLP, load_benchmark, make_trainer
from repro.harness.reporting import format_series

BATCH_SIZES = [1, 2, 5, 10, 20, 50]
WIDTH = 128
DEPTH = 3
EPOCHS = 3


def run(method, data, batch, lr, **kwargs):
    net = MLP([data.input_dim] + [WIDTH] * DEPTH + [data.n_classes], seed=1)
    trainer = make_trainer(method, net, lr=lr, seed=2, **kwargs)
    history = trainer.fit(
        data.x_train, data.y_train, epochs=EPOCHS, batch_size=batch
    )
    acc = trainer.evaluate(data.x_test, data.y_test)
    return acc, history.total_time / EPOCHS


def main():
    data = load_benchmark("mnist", scale=0.015, seed=0)
    print(f"dataset: {data.describe()}\n")

    acc = {"mc": [], "standard": []}
    time_per_epoch = {"mc": [], "standard": []}
    for batch in BATCH_SIZES:
        lr = 1e-2 if batch > 1 else 1e-3
        for method in ("mc", "standard"):
            kwargs = {"k": 10} if method == "mc" else {}
            a, t = run(method, data, batch, lr, **kwargs)
            acc[method].append(a)
            time_per_epoch[method].append(t)

    print(
        format_series(
            "batch size",
            BATCH_SIZES,
            acc,
            title="Accuracy vs batch size (cf. paper Figure 10)",
        )
    )
    print(
        "\n"
        + format_series(
            "batch size",
            BATCH_SIZES,
            time_per_epoch,
            title="\nTime per epoch (s) vs batch size (cf. paper Figure 11)",
        )
    )

    # The §9.3 learning-rate interaction: the paper lowers the stochastic
    # MC-approx lr from 1e-3 to 1e-4 to fix overfitting on real MNIST.
    acc_high, _ = run("mc", data, batch=1, lr=1e-3, k=10)
    acc_low, _ = run("mc", data, batch=1, lr=1e-4, k=10)
    print(
        f"\nMC-approx^S learning-rate sensitivity (§9.3): "
        f"lr=1e-3 -> {acc_high:.3f}, lr=1e-4 -> {acc_low:.3f}"
    )
    print(
        "\nExpected shape: the per-epoch TIME blow-up at small batches is the"
        "\nrobust reproduction (MC-approx is slower than standard at batch"
        "\nsize 1 — the paper's Table 3/Figure 11).  The paper's small-batch"
        "\nACCURACY drop is an overfitting effect on real MNIST over 50"
        "\nepochs; on this synthetic substrate small batches simply make more"
        "\nupdates per epoch (see EXPERIMENTS.md, Figure 10 divergence note)."
    )


if __name__ == "__main__":
    main()
