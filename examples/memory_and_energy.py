"""The §9.4 memory analysis and the §11 energy model, end to end.

Prints, for each training method:

1. the working-set breakdown at the paper's architecture (who allocates
   what: ALSH's hash tables + Adam state, MC's batch activations, the
   dropout family's masks);
2. a trace-driven cache simulation reproducing the §9.4 relative
   cache-miss ordering (Dropout/Adaptive-Dropout > MC-approx; ALSH worst);
3. per-step FLOPs and the §11 energy estimate combining arithmetic with
   memory traffic — showing how dropout's 18x FLOP saving evaporates
   under the memory terms.

Run:
    python examples/memory_and_energy.py
"""

from repro.harness.energy import EnergyModel, estimate_training_energy
from repro.harness.flops import flops_table
from repro.harness.reporting import format_table
from repro.memsim.profile import estimate_training_memory, profile_methods

PAPER_ARCH = [784, 1000, 1000, 1000, 10]
SIM_ARCH = [256, 300, 300, 300, 10]  # scaled for trace-simulation speed
METHODS = ["standard", "dropout", "adaptive_dropout", "mc", "alsh"]
SAMPLING = dict(keep_prob=0.05, active_frac=0.2, k=10)


def working_sets():
    mb = 1024 * 1024
    rows = []
    for method in METHODS:
        b = estimate_training_memory(
            method, PAPER_ARCH,
            batch=20 if method == "mc" else 1,
            optimizer="adam" if method == "alsh" else "sgd",
        )
        rows.append(
            [method, b["weights"] / mb, b.get("hash_tables", 0) / mb,
             b.get("masks", 0) / mb, b["optimizer_state"] / mb, b["total"] / mb]
        )
    print(
        format_table(
            ["method", "weights (MB)", "tables (MB)", "masks (MB)",
             "opt state (MB)", "total (MB)"],
            rows,
            title="Working sets at the paper architecture (784-1000x3-10)",
            float_fmt="{:.2f}",
        )
    )


def cache_behaviour():
    report = profile_methods(
        SIM_ARCH, batch=1, steps=2, hierarchy_scale=1 / 32, seed=0
    )
    mc = report["mc"]["L1"]["misses"]
    rows = [
        [m, report[m]["L1"]["misses"], report[m]["L1"]["misses"] / mc]
        for m in METHODS
    ]
    print(
        "\n"
        + format_table(
            ["method", "L1 misses / 2 steps", "vs MC-approx"],
            rows,
            title="Cache simulation (§9.4: Dropout +24%, Adaptive +27% in "
            "the paper)",
            float_fmt="{:.2f}",
        )
    )


def energy():
    table = flops_table(PAPER_ARCH, batch=1, **SAMPLING)
    estimates = estimate_training_energy(
        SIM_ARCH, batch=1, model=EnergyModel(), **SAMPLING
    )
    rows = []
    for method in METHODS:
        f = table[method]
        e = estimates[method]
        rows.append(
            [method, f.total / 1e6, e.compute_j * 1e3, e.dram_j * 1e3,
             e.total_j * 1e3]
        )
    print(
        "\n"
        + format_table(
            ["method", "FLOPs/step (M, paper arch)", "compute (mJ)",
             "DRAM (mJ)", "total energy (mJ)"],
            rows,
            title="§11 energy model (per step; ratios are the output, not "
            "the absolute numbers)",
            float_fmt="{:.3f}",
        )
    )


def main():
    working_sets()
    cache_behaviour()
    energy()
    print(
        "\nTakeaways (cf. §9.4/§11): ALSH pays for tables and Adam state;\n"
        "the dropout family's mask passes cost cache misses, not FLOPs;\n"
        "MC-approx's arithmetic saving survives the memory terms."
    )


if __name__ == "__main__":
    main()
