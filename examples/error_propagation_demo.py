"""Theorem 7.2 end to end: closed form vs simulation vs live network.

Three views of the same phenomenon — feedforward approximation error
compounds exponentially with depth:

1. the closed-form table from §7 (c = 5);
2. the Lemma 7.1 recursion simulated exactly on a constructed linear
   network where the active/inactive ratio c is controlled;
3. the measured layerwise activation error of a real ReLU network under
   an oracle top-k selector (perfect MIPS — the best case for
   ALSH-approx) vs a uniform-random selector at the same budget.

Run:
    python examples/error_propagation_demo.py
"""

import numpy as np

from repro.harness.reporting import format_series, format_table
from repro.nn.network import MLP
from repro.theory.analysis import (
    make_random_selector,
    make_topk_selector,
    measure_layerwise_error,
)
from repro.theory.error_propagation import (
    LinearErrorModel,
    depth_at_error_ratio,
    error_ratio_table,
)


def closed_form():
    table = error_ratio_table(c=5.0, max_k=6)
    print(
        format_table(
            ["k"] + [str(k) for k in range(1, 7)],
            [["error/estimate"] + [f"{v:.2f}" for v in table]],
            title="Theorem 7.2 closed form, c = 5 (the paper's §7 table)",
        )
    )
    print(
        f"error dominates estimate from depth "
        f"{depth_at_error_ratio(5.0, 1.0)} onwards\n"
    )


def controlled_simulation():
    """All-ones network, keep half the incoming mass → c = 1, ratio 2^k."""
    n, depth = 16, 5
    weights = [np.ones((n, n)) for _ in range(depth)]
    model = LinearErrorModel(
        weights, selector=lambda layer, node, contrib: np.arange(n // 2)
    )
    exact, estimates, _ = model.run(np.ones(n))
    rows = []
    for k in range(depth):
        ratio = exact[k][0] / estimates[k][0]
        rows.append([k + 1, ratio, 2.0 ** (k + 1)])
    print(
        format_table(
            ["layer", "measured a/a_hat", "closed form (c=1): 2^k"],
            rows,
            title="Lemma 7.1 recursion on a controlled linear network",
        )
    )
    print()


def live_network():
    rng = np.random.default_rng(0)
    net = MLP([64] + [96] * 6 + [10], seed=1)
    x = rng.normal(size=(30, 64))
    budget = 0.3
    oracle = measure_layerwise_error(net, make_topk_selector(net, budget), x)
    random = measure_layerwise_error(
        net, make_random_selector(net, budget, seed=2), x
    )
    print(
        format_series(
            "hidden layer",
            list(range(1, 7)),
            {
                f"oracle top-{int(budget*100)}% selector": oracle,
                "uniform random selector": random,
            },
            title=(
                "Relative activation error per layer on a live ReLU network\n"
                "(even perfect MIPS compounds; random is strictly worse)"
            ),
        )
    )


def main():
    closed_form()
    controlled_simulation()
    live_network()


if __name__ == "__main__":
    main()
