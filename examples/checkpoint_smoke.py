"""Checkpoint/resume smoke test: interrupt a run, resume it, diff weights.

The checkpoint subsystem's guarantee is that a training run interrupted
at an epoch boundary and resumed from its checkpoint is *bitwise
identical* to a run that was never interrupted.  This script exercises
the guarantee end to end, the way CI wants it — train, "crash", resume,
and byte-compare every weight against the uninterrupted reference —
exiting non-zero on the first mismatch.

Run:
    python examples/checkpoint_smoke.py [--method alsh]
"""

import argparse
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import MLP, load_benchmark, make_trainer

DATA_SCALE = 0.01
WIDTH = 32
HIDDEN_LAYERS = 2
EPOCHS = 4
INTERRUPT_AT = 2  # epochs the "crashed" first process completes
SEED = 11


def build_trainer(method, data):
    """A freshly constructed trainer, as a restarted process would make it."""
    net = MLP(
        [data.input_dim] + [WIDTH] * HIDDEN_LAYERS + [data.n_classes],
        seed=7,
    )
    return make_trainer(method, net, seed=SEED)


def fit(trainer, data, epochs, **kwargs):
    return trainer.fit(
        data.x_train, data.y_train, epochs=epochs, batch_size=20,
        x_val=data.x_val, y_val=data.y_val, **kwargs,
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--method", default="standard")
    parser.add_argument("--dataset", default="mnist")
    args = parser.parse_args()

    data = load_benchmark(args.dataset, scale=DATA_SCALE, seed=0)
    print(f"dataset: {data.describe()}")
    print(f"method: {args.method}, {EPOCHS} epochs, "
          f"interrupted after {INTERRUPT_AT}")

    # Reference: one uninterrupted run.
    reference = build_trainer(args.method, data)
    ref_history = fit(reference, data, EPOCHS)

    with tempfile.TemporaryDirectory() as ckpt_dir:
        # "Crash": a first process trains 2 of 4 epochs with checkpointing
        # on, then goes away.
        crashed = build_trainer(args.method, data)
        fit(crashed, data, INTERRUPT_AT,
            checkpoint_every=1, checkpoint_dir=ckpt_dir)
        ckpts = list(Path(ckpt_dir).glob("*.ckpt.npz"))
        print(f"interrupted run left {ckpts[0].name} "
              f"({ckpts[0].stat().st_size} bytes)")

        # Recovery: a fresh process re-runs the same fit to the full
        # horizon; resume picks the checkpoint up automatically.
        resumed = build_trainer(args.method, data)
        res_history = fit(resumed, data, EPOCHS,
                          checkpoint_every=1, checkpoint_dir=ckpt_dir)

    failures = []
    for i, (a, b) in enumerate(zip(reference.net.layers, resumed.net.layers)):
        for name, ra, rb in (("W", a.W, b.W), ("b", a.b, b.b)):
            if not np.array_equal(ra, rb):
                failures.append(
                    f"layer {i} {name}: max |diff| = "
                    f"{np.max(np.abs(ra - rb)):.3e}"
                )
    if not np.array_equal(ref_history.losses(), res_history.losses()):
        failures.append("per-epoch losses differ")
    ref_preds = reference.predict(data.x_test)
    res_preds = resumed.predict(data.x_test)
    if not np.array_equal(ref_preds, res_preds):
        failures.append("test predictions differ")

    if failures:
        print("RESUME MISMATCH — interrupted+resumed != uninterrupted:")
        for f in failures:
            print(f"  {f}")
        return 1
    acc = float((res_preds == data.y_test).mean())
    print(f"resume OK: weights, {len(res_history.epochs)} epoch losses and "
          f"test predictions bitwise identical (accuracy {acc:.4f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
