"""Miniature end-to-end reproduction with persisted, resumable results.

Drives the sweep machinery over a small method × depth grid on the
MNIST-like benchmark (the heart of the paper's Figures 3/7), stores every
result in a JSON-lines file (re-running this script resumes rather than
recomputes), and renders a markdown report with the headline findings:
the ALSH depth collapse, MC-approx's scaling, and the §10.4
recommendation for each regime.

Run:
    python examples/full_reproduction.py [results.jsonl]
"""

import sys

from repro.data import load_benchmark
from repro.harness import (
    ExperimentConfig,
    ResultStore,
    Sweep,
    format_markdown_table,
    recommend_method,
)

DEPTHS = [1, 3, 5]
STORE_PATH = sys.argv[1] if len(sys.argv) > 1 else "full_reproduction.jsonl"


def main():
    data = load_benchmark("mnist", scale=0.01, seed=0)
    print(f"dataset: {data.describe()}")
    store = ResultStore(STORE_PATH)

    base = ExperimentConfig(
        dataset="mnist",
        data_scale=0.01,
        hidden_width=64,
        epochs=4,
        seed=0,
    )
    sweep = Sweep(
        base,
        {
            "method": ["standard", "mc", "alsh"],
            "hidden_layers": DEPTHS,
            "batch_size": [1],
        },
        paper_defaults=True,
    )
    print(f"running {len(sweep)} configurations (resumable via {STORE_PATH})")
    fresh = []
    results = sweep.run(
        store=store,
        dataset=data,
        callback=lambda r: (fresh.append(r), print("  " + r.summary()))[0],
    )
    print(f"{len(fresh)} fresh runs, {len(results) - len(fresh)} resumed\n")

    # Assemble the Figure 7-style depth table from the store.
    by_key = {(r.config.method, r.config.hidden_layers): r for r in results}
    rows = []
    for depth in DEPTHS:
        rows.append(
            [depth]
            + [by_key[(m, depth)].test_accuracy for m in ("standard", "mc", "alsh")]
            + [by_key[("alsh", depth)].pred_entropy]
        )
    report = [
        "# Miniature reproduction report",
        "",
        "## Accuracy vs depth (stochastic regime; cf. paper Figure 7)",
        "",
        format_markdown_table(
            ["hidden layers", "standard", "mc", "alsh", "alsh pred-entropy"],
            rows,
        ),
        "",
        "## §10.4 recommendations",
        "",
    ]
    for batch, depth, parallel in [(20, 3, False), (1, 3, True), (1, 7, True)]:
        rec = recommend_method(batch, depth, parallel)
        report.append(
            f"- batch {batch}, depth {depth}, parallel={parallel} → "
            f"**{rec.method}** ({rec.reason})"
        )
    text = "\n".join(report)
    print(text)
    out = STORE_PATH.replace(".jsonl", "_report.md")
    with open(out, "w", encoding="utf-8") as f:
        f.write(text + "\n")
    print(f"\nreport written to {out}")


if __name__ == "__main__":
    main()
