"""Access-trace models of each training method's memory behaviour (§9.4).

Each training method touches the same logical arrays (inputs, weights,
activations, gradients) but with very different *access patterns*:

* STANDARD streams whole weight matrices row-contiguously (GEMM-friendly);
* DROPOUT, as implemented by the reference code the paper evaluates,
  computes the *full* products and multiplies in a sampled mask — so it
  streams everything STANDARD does plus the mask arrays (§9.2, §9.4);
* ADAPTIVE-DROPOUT additionally streams the data-dependent keep-probability
  arrays it constructs from the full pre-activations;
* MC-APPROX streams the forward exactly, computes its sampling
  probabilities during passes that already stream the operands, and then
  touches only a contiguous band of sampled weight rows where STANDARD
  streams the whole matrix — the §9.4 cache win;
* ALSH-APPROX gathers scattered weight *columns* (one cache line per
  element in a row-major layout) plus randomly scattered hash-table probes;
* DROPOUT_SLICED is the idealised column-sliced dropout of the paper's
  taxonomy (what :mod:`repro.core.dropout` actually implements): fewer
  bytes, but gather-pattern locality.

Replaying these traces through :class:`~repro.memsim.cache.CacheHierarchy`
reproduces the paper's relative cache-miss ordering (Dropout and
Adaptive-Dropout ≈ 24–27 % more misses than MC-approx, §9.4).

The model uses ``itemsize=1`` by default: all byte sizes are 1/8 of the
real float64 workload, which pairs with a cache hierarchy scaled by the
same factor (see :func:`profile_methods`) so the working-set-to-cache
ratios of the paper's machine are preserved at tractable simulation cost.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .cache import CacheHierarchy, default_hierarchy
from .tracker import AllocationTracker, array_nbytes

__all__ = [
    "ArrayRegion",
    "MethodTraceModel",
    "profile_methods",
    "estimate_training_memory",
]

Extent = Tuple[int, int]


class ArrayRegion:
    """A row-major 2-D array living at a base address in the traced space."""

    def __init__(self, base: int, rows: int, cols: int, itemsize: int = 8):
        if rows <= 0 or cols <= 0:
            raise ValueError(f"region dims must be positive: {rows}x{cols}")
        self.base = int(base)
        self.rows = int(rows)
        self.cols = int(cols)
        self.itemsize = int(itemsize)

    @property
    def nbytes(self) -> int:
        return self.rows * self.cols * self.itemsize

    def row_extent(self, i: int) -> Extent:
        """The contiguous extent of row ``i``."""
        return (self.base + i * self.cols * self.itemsize, self.cols * self.itemsize)

    def rows_extents(self, row_ids: Optional[Sequence[int]] = None) -> Iterator[Extent]:
        """Contiguous extents for the given rows (all rows by default)."""
        ids = range(self.rows) if row_ids is None else row_ids
        for i in ids:
            yield self.row_extent(i)

    def column_extents(self, j: int) -> Iterator[Extent]:
        """One tiny extent per row — the strided pattern of a column walk."""
        stride = self.cols * self.itemsize
        addr = self.base + j * self.itemsize
        for _ in range(self.rows):
            yield (addr, self.itemsize)
            addr += stride

    def element(self, i: int, j: int) -> Extent:
        """Extent of a single element."""
        return (self.base + (i * self.cols + j) * self.itemsize, self.itemsize)


class MethodTraceModel:
    """Builds one training step's access trace for each method.

    Parameters mirror the experimental setup: ``layer_sizes`` of the MLP,
    ``batch`` size, the active fraction of the column-sampling methods and
    the row budget of MC-approx.  ``scale`` shrinks the *address space* the
    same way :func:`~repro.memsim.cache.default_hierarchy` shrinks the
    caches, keeping simulation cheap while preserving the working-set to
    cache-size ratios.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        batch: int = 1,
        active_frac: float = 0.05,
        mc_node_frac: float = 0.1,
        mc_batch_k: int = 10,
        itemsize: int = 1,
        seed: int = 0,
    ):
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output sizes")
        self.layer_sizes = list(layer_sizes)
        self.batch = int(batch)
        self.active_frac = float(active_frac)
        self.mc_node_frac = float(mc_node_frac)
        self.mc_batch_k = int(mc_batch_k)
        self.itemsize = int(itemsize)
        self.rng = np.random.default_rng(seed)

        self.tracker = AllocationTracker()
        self.weights: List[ArrayRegion] = []
        self.acts: List[ArrayRegion] = []
        self.masks: List[ArrayRegion] = []
        pairs = list(zip(self.layer_sizes[:-1], self.layer_sizes[1:]))
        for idx, (n_in, n_out) in enumerate(pairs):
            base = self.tracker.allocate(f"W{idx}", array_nbytes((n_in, n_out), itemsize))
            self.weights.append(ArrayRegion(base, n_in, n_out, itemsize))
        for idx, width in enumerate(self.layer_sizes):
            base = self.tracker.allocate(f"a{idx}", array_nbytes((batch, width), itemsize))
            self.acts.append(ArrayRegion(base, batch, width, itemsize))
        for idx, (_, n_out) in enumerate(pairs[:-1]):
            base = self.tracker.allocate(f"mask{idx}", array_nbytes((batch, n_out), itemsize))
            self.masks.append(ArrayRegion(base, batch, n_out, itemsize))
        # One big region standing in for ALSH's hash tables.
        table_bytes = max(
            64 * 1024,
            sum(w.nbytes for w in self.weights) // 2,
        )
        base = self.tracker.allocate("hash_tables", table_bytes)
        self.tables = ArrayRegion(base, table_bytes // itemsize, 1, itemsize)

    # ------------------------------------------------------------------
    # pattern helpers
    # ------------------------------------------------------------------
    def _dense_gemm(self, a: ArrayRegion, w: ArrayRegion) -> Iterator[Extent]:
        """Streaming GEMM: read all A rows, stream W rows once per batch tile."""
        yield from a.rows_extents()
        yield from w.rows_extents()

    def _column_gather(self, w: ArrayRegion, n_cols: int) -> Iterator[Extent]:
        cols = self.rng.choice(w.cols, size=max(1, n_cols), replace=False)
        for j in cols:
            yield from w.column_extents(int(j))

    def _row_band(self, w: ArrayRegion, n_rows: int) -> Iterator[Extent]:
        start = int(self.rng.integers(0, max(1, w.rows - n_rows + 1)))
        yield from w.rows_extents(range(start, start + max(1, n_rows)))

    def _hash_probes(self, n_probes: int) -> Iterator[Extent]:
        addrs = self.rng.integers(0, self.tables.nbytes - 8, size=n_probes)
        for addr in addrs:
            yield (self.tables.base + int(addr), 8)

    # ------------------------------------------------------------------
    # per-method step traces
    # ------------------------------------------------------------------
    def step_trace(self, method: str) -> Iterator[Extent]:
        """Access trace of one training step (forward + backward)."""
        builders = {
            "standard": self._trace_standard,
            "dropout": self._trace_dropout,
            "adaptive_dropout": self._trace_adaptive,
            "mc": self._trace_mc,
            "alsh": self._trace_alsh,
            "dropout_sliced": self._trace_dropout_sliced,
        }
        try:
            return builders[method]()
        except KeyError:
            raise ValueError(
                f"unknown method {method!r}; available: {sorted(builders)}"
            ) from None

    def _trace_standard(self) -> Iterator[Extent]:
        for i, w in enumerate(self.weights):
            yield from self._dense_gemm(self.acts[i], w)
            yield from self.acts[i + 1].rows_extents()
        for i in range(len(self.weights) - 1, -1, -1):
            w = self.weights[i]
            yield from w.rows_extents()  # delta propagation reads W
            yield from w.rows_extents()  # gW write + update streams W again
            yield from self.acts[i].rows_extents()

    def _trace_dropout(self) -> Iterator[Extent]:
        """Mask-based dropout (the reference implementation the paper
        evaluates): full products plus a mask pass per hidden layer."""
        n_hidden = len(self.weights) - 1
        for i, w in enumerate(self.weights):
            yield from self._dense_gemm(self.acts[i], w)
            if i < n_hidden:
                # Mask construction + masked multiply traffic.
                yield from self.masks[i].rows_extents()
                yield from self.acts[i + 1].rows_extents()
            yield from self.acts[i + 1].rows_extents()
        for i in range(len(self.weights) - 1, -1, -1):
            w = self.weights[i]
            yield from w.rows_extents()  # delta propagation
            yield from w.rows_extents()  # weight update
            if i < n_hidden:
                yield from self.masks[i].rows_extents()
            yield from self.acts[i].rows_extents()

    def _trace_dropout_sliced(self) -> Iterator[Extent]:
        """Idealised column-sliced dropout (what repro.core.dropout runs):
        far fewer bytes, but gather-pattern locality on W."""
        n_hidden = len(self.weights) - 1
        for i, w in enumerate(self.weights):
            yield from self.acts[i].rows_extents()
            if i < n_hidden:
                n_active = max(1, int(round(self.active_frac * w.cols)))
                yield from self._column_gather(w, n_active)
            else:
                yield from w.rows_extents()
        for i in range(len(self.weights) - 1, -1, -1):
            w = self.weights[i]
            if i < n_hidden:
                n_active = max(1, int(round(self.active_frac * w.cols)))
                yield from self._column_gather(w, n_active)  # delta prop
                yield from self._column_gather(w, n_active)  # sparse update
            else:
                yield from w.rows_extents()
                yield from w.rows_extents()
            yield from self.acts[i].rows_extents()

    def _trace_adaptive(self) -> Iterator[Extent]:
        n_hidden = len(self.weights) - 1
        for i, w in enumerate(self.weights):
            yield from self._dense_gemm(self.acts[i], w)
            if i < n_hidden:
                # Mask construction, write, and the masked multiply re-read.
                yield from self.masks[i].rows_extents()
                yield from self.acts[i + 1].rows_extents()
                yield from self.masks[i].rows_extents()
            yield from self.acts[i + 1].rows_extents()
        for i in range(len(self.weights) - 1, -1, -1):
            w = self.weights[i]
            yield from w.rows_extents()
            yield from w.rows_extents()
            if i < n_hidden:
                yield from self.masks[i].rows_extents()
            yield from self.acts[i].rows_extents()

    def _trace_mc(self) -> Iterator[Extent]:
        for i, w in enumerate(self.weights):
            yield from self._dense_gemm(self.acts[i], w)  # exact forward
            yield from self.acts[i + 1].rows_extents()
        for i in range(len(self.weights) - 1, -1, -1):
            w = self.weights[i]
            # Probability pass re-reads the (small) activations; the W
            # column norms are accumulated during passes that already
            # stream W, so no extra full pass is charged.
            yield from self.acts[i].rows_extents()
            # Delta propagation touches only the sampled row band where
            # STANDARD streams all of W — the §9.4 cache saving.
            n_rows = max(1, int(round(self.mc_node_frac * w.rows)))
            yield from self._row_band(w, n_rows)
            # Weight update streams W once.
            yield from w.rows_extents()

    def _trace_alsh(self) -> Iterator[Extent]:
        n_hidden = len(self.weights) - 1
        for i, w in enumerate(self.weights):
            yield from self.acts[i].rows_extents()
            if i < n_hidden:
                yield from self._hash_probes(8 * self.batch)
                n_active = max(1, int(round(self.active_frac * w.cols)))
                yield from self._column_gather(w, n_active)
            else:
                yield from w.rows_extents()
        for i in range(len(self.weights) - 1, -1, -1):
            w = self.weights[i]
            if i < n_hidden:
                n_active = max(1, int(round(self.active_frac * w.cols)))
                yield from self._column_gather(w, n_active)
                yield from self._column_gather(w, n_active)
                yield from self._hash_probes(4 * self.batch)
            else:
                yield from w.rows_extents()
                yield from w.rows_extents()
            yield from self.acts[i].rows_extents()


def profile_methods(
    layer_sizes: Sequence[int],
    methods: Sequence[str] = ("standard", "dropout", "adaptive_dropout", "mc", "alsh"),
    batch: int = 1,
    steps: int = 5,
    hierarchy_scale: float = 1.0 / 8.0,
    seed: int = 0,
    **model_kwargs,
) -> Dict[str, dict]:
    """Replay each method's step trace and report cache statistics.

    Returns ``{method: {"L1": {...}, ..., "dram_accesses": n}}``; each
    method gets a fresh hierarchy so methods do not warm each other's
    caches.  The default ``hierarchy_scale`` of 1/8 matches the model's
    default ``itemsize=1`` (bytes scaled 8×), preserving the paper
    machine's working-set-to-cache ratios.
    """
    out = {}
    for method in methods:
        model = MethodTraceModel(layer_sizes, batch=batch, seed=seed, **model_kwargs)
        hierarchy = default_hierarchy(hierarchy_scale)
        for _ in range(steps):
            hierarchy.run_trace(model.step_trace(method))
        out[method] = hierarchy.report()
    return out


def estimate_training_memory(
    method: str,
    layer_sizes: Sequence[int],
    batch: int = 1,
    active_frac: float = 0.05,
    mc_node_frac: float = 0.1,
    optimizer: str = "sgd",
    itemsize: int = 8,
) -> Dict[str, int]:
    """Working-set breakdown (bytes) of one method during training.

    Mirrors the §9.4 accounting: weights + activations for everyone,
    optimiser state (Adam keeps two moments), per-method extras — hash
    tables for ALSH-approx, mask arrays for the dropout family, probability
    and index buffers for MC-approx.
    """
    pairs = list(zip(layer_sizes[:-1], layer_sizes[1:]))
    weight_bytes = sum((n_in * n_out + n_out) * itemsize for n_in, n_out in pairs)
    act_bytes = sum(batch * width * itemsize for width in layer_sizes)
    grad_bytes = weight_bytes
    opt_multiplier = {"sgd": 0, "momentum": 1, "adagrad": 1, "adam": 2}.get(optimizer)
    if opt_multiplier is None:
        raise ValueError(f"unknown optimizer {optimizer!r}")
    breakdown = {
        "weights": weight_bytes,
        "activations": act_bytes,
        "gradients": grad_bytes,
        "optimizer_state": opt_multiplier * weight_bytes,
    }
    hidden_pairs = pairs[:-1]
    if method == "alsh":
        # L tables × (hyperplanes + one bucket entry per column).
        breakdown["hash_tables"] = sum(
            5 * ((n_in + 3) * 6 * itemsize + n_out * 8) for n_in, n_out in hidden_pairs
        )
    elif method in ("dropout", "adaptive_dropout"):
        breakdown["masks"] = sum(batch * n_out * itemsize for _, n_out in hidden_pairs)
        if method == "adaptive_dropout":
            breakdown["keep_probs"] = breakdown["masks"]
    elif method == "mc":
        breakdown["sampling_buffers"] = sum(
            (n_out + max(batch, 1)) * itemsize for _, n_out in pairs
        )
    elif method not in ("standard", "topk"):
        # "topk" is the oracle-selection ablation: no extra state at all.
        raise ValueError(f"unknown method {method!r}")
    breakdown["total"] = sum(breakdown.values())
    return breakdown
