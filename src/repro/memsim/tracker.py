"""Allocation tracking for the §9.4 working-set analysis.

The paper reports how much each method's memory usage *grows* during
training (ALSH-approx: 24 MB of tables plus ~3.7 MB growth; MC-approx:
~45 MB; Dropout/Adaptive-Dropout: ~16 MB).  :class:`AllocationTracker`
records named allocations/frees so the harness can report current and peak
working sets per training method, and doubles as the address-space
allocator for the cache-trace layouts in :mod:`repro.memsim.profile`.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = ["AllocationTracker", "array_nbytes"]


def array_nbytes(shape, itemsize: int = 8) -> int:
    """Bytes needed for an array of the given shape."""
    return int(np.prod(shape)) * itemsize


class AllocationTracker:
    """Named-allocation ledger with peak tracking and address assignment.

    Every allocation receives a base address in a flat byte address space
    (freed ranges are not reused — addresses are identities for cache
    simulation, not a real allocator).
    """

    def __init__(self, alignment: int = 64):
        if alignment <= 0:
            raise ValueError(f"alignment must be positive, got {alignment}")
        self.alignment = int(alignment)
        self._live: Dict[str, tuple] = {}  # name -> (base, nbytes)
        self._next = 0
        self.current_bytes = 0
        self.peak_bytes = 0
        self.total_allocated = 0

    def allocate(self, name: str, nbytes: int) -> int:
        """Record an allocation; returns its base address."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        if name in self._live:
            raise ValueError(f"allocation {name!r} already live")
        base = self._next
        rounded = -(-nbytes // self.alignment) * self.alignment
        self._next += rounded
        self._live[name] = (base, nbytes)
        self.current_bytes += nbytes
        self.total_allocated += nbytes
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)
        return base

    def free(self, name: str) -> None:
        """Release a named allocation."""
        try:
            _, nbytes = self._live.pop(name)
        except KeyError:
            raise KeyError(f"no live allocation named {name!r}") from None
        self.current_bytes -= nbytes

    def base_of(self, name: str) -> int:
        """Base address of a live allocation."""
        return self._live[name][0]

    def size_of(self, name: str) -> int:
        """Size in bytes of a live allocation."""
        return self._live[name][1]

    def live_names(self):
        """Names of currently live allocations."""
        return list(self._live)

    def snapshot(self) -> Dict[str, int]:
        """Current/peak/total byte counters as a dict."""
        return {
            "current_bytes": self.current_bytes,
            "peak_bytes": self.peak_bytes,
            "total_allocated": self.total_allocated,
        }

    @staticmethod
    def mlp_weight_bytes(layer_sizes, itemsize: int = 8) -> int:
        """Bytes of all weight matrices + biases of an MLP architecture."""
        total = 0
        for n_in, n_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            total += (n_in * n_out + n_out) * itemsize
        return total
