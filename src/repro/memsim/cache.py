"""Trace-driven set-associative LRU cache simulator.

The paper's §9.4 memory analysis attributes the runtime differences between
the training methods to their cache behaviour on an Intel i9-9920X
(384 KB L1 / 12 MB L2 / 19.3 MB L3).  With no hardware counters available
offline, this simulator replays the *memory access extents* of each
method's matrix operations (see :mod:`repro.memsim.profile`) through a
configurable cache hierarchy and reports hits/misses per level — enough to
reproduce the paper's relative findings (Dropout ≈ +24 %, Adaptive-Dropout
≈ +27 % misses vs MC-approx).

Addresses are abstract byte offsets; an access extent ``(addr, nbytes)``
touches every cache line it overlaps.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

__all__ = ["CacheLevel", "CacheHierarchy", "default_hierarchy"]


class CacheLevel:
    """One set-associative LRU cache level.

    Parameters
    ----------
    size_bytes:
        Total capacity.
    line_size:
        Cache-line size in bytes (power of two).
    associativity:
        Ways per set; capacity must divide evenly into sets.
    name:
        Label used in reports ("L1", "L2", ...).
    """

    def __init__(
        self,
        size_bytes: int,
        line_size: int = 64,
        associativity: int = 8,
        name: str = "L?",
    ):
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError(f"line_size must be a power of two, got {line_size}")
        if size_bytes < line_size * associativity:
            raise ValueError("cache too small for one set")
        n_lines = size_bytes // line_size
        n_sets, rem = divmod(n_lines, associativity)
        if rem or n_sets == 0:
            raise ValueError(
                f"size {size_bytes} not divisible into sets of {associativity} "
                f"lines of {line_size} bytes"
            )
        self.name = name
        self.line_size = line_size
        self.associativity = associativity
        self.n_sets = n_sets
        # tags[set][way]; -1 = empty.  LRU order tracked with a clock.
        self._tags = np.full((n_sets, associativity), -1, dtype=np.int64)
        self._stamp = np.zeros((n_sets, associativity), dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def access_line(self, line_addr: int) -> bool:
        """Access one line (by line index); returns True on hit."""
        set_idx = line_addr % self.n_sets
        tags = self._tags[set_idx]
        self._clock += 1
        hit = np.nonzero(tags == line_addr)[0]
        if hit.size:
            self._stamp[set_idx, hit[0]] = self._clock
            self.hits += 1
            return True
        self.misses += 1
        victim = int(np.argmin(self._stamp[set_idx]))
        tags[victim] = line_addr
        self._stamp[set_idx, victim] = self._clock
        return False

    def resident_lines(self) -> set:
        """Line addresses currently held across all sets.

        Exposes the post-eviction contents so callers can use the level
        as an *eviction model* for their own objects (the serving layer's
        tenant head cache maps one head to one line and drops whatever
        the LRU policy dropped).
        """
        return {int(tag) for tag in self._tags.ravel() if tag >= 0}

    @property
    def accesses(self) -> int:
        """Total line accesses seen."""
        return self.hits + self.misses

    def miss_rate(self) -> float:
        """Misses / accesses (0.0 when never accessed)."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (contents are kept)."""
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        """Empty the cache and zero statistics."""
        self._tags.fill(-1)
        self._stamp.fill(0)
        self._clock = 0
        self.reset_stats()


class CacheHierarchy:
    """Inclusive multi-level hierarchy; a miss at level i probes level i+1.

    ``levels`` are ordered fastest-first.  A miss at the last level counts
    as main-memory traffic (``dram_accesses``).
    """

    def __init__(self, levels: List[CacheLevel]):
        if not levels:
            raise ValueError("need at least one cache level")
        line_sizes = {lvl.line_size for lvl in levels}
        if len(line_sizes) != 1:
            raise ValueError("all levels must share one line size")
        self.levels = levels
        self.line_size = levels[0].line_size
        self.dram_accesses = 0

    def access(self, addr: int, nbytes: int = 8) -> None:
        """Touch an extent; every overlapped line walks the hierarchy."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        first = addr // self.line_size
        last = (addr + nbytes - 1) // self.line_size
        for line in range(first, last + 1):
            for level in self.levels:
                if level.access_line(line):
                    break
            else:
                self.dram_accesses += 1

    def run_trace(self, trace: Iterable[Tuple[int, int]]) -> None:
        """Replay a sequence of (addr, nbytes) extents."""
        for addr, nbytes in trace:
            self.access(addr, nbytes)

    def report(self) -> dict:
        """Per-level hits/misses plus DRAM traffic, as a plain dict."""
        out = {}
        for level in self.levels:
            out[level.name] = {
                "hits": level.hits,
                "misses": level.misses,
                "miss_rate": level.miss_rate(),
            }
        out["dram_accesses"] = self.dram_accesses
        return out

    def total_misses(self) -> int:
        """Misses at the last level (≈ memory-bus transfers)."""
        return self.levels[-1].misses

    def flush(self) -> None:
        """Empty every level and reset DRAM counter."""
        for level in self.levels:
            level.flush()
        self.dram_accesses = 0


def default_hierarchy(scale: float = 1.0 / 64.0) -> CacheHierarchy:
    """A hierarchy shaped like the paper's i9-9920X, scaled down.

    Full-size simulation of a 19.3 MB L3 is needlessly slow in Python;
    scaling the capacities *and* the working sets by the same factor
    preserves the hit/miss structure.  ``scale=1.0`` gives the real sizes
    (L1 384 KB, L2 12 MB, L3 ≈ 19.3 MB rounded to a valid geometry).
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")

    def sized(nbytes: float, assoc: int) -> int:
        lines = max(int(nbytes * scale) // 64, assoc)
        lines -= lines % assoc
        return max(lines, assoc) * 64

    return CacheHierarchy(
        [
            CacheLevel(sized(384 * 1024, 8), 64, 8, "L1"),
            CacheLevel(sized(12 * 1024 * 1024, 8), 64, 8, "L2"),
            CacheLevel(sized(19 * 1024 * 1024 + 320 * 1024, 16), 64, 16, "L3"),
        ]
    )
