"""Memory and cache simulation for the §9.4 analysis.

A set-associative LRU cache hierarchy, an allocation tracker, and
per-method access-trace models that reproduce the paper's relative
cache-miss findings offline.
"""

from .cache import CacheHierarchy, CacheLevel, default_hierarchy
from .profile import (
    ArrayRegion,
    MethodTraceModel,
    estimate_training_memory,
    profile_methods,
)
from .tracker import AllocationTracker, array_nbytes

__all__ = [
    "CacheLevel",
    "CacheHierarchy",
    "default_hierarchy",
    "AllocationTracker",
    "array_nbytes",
    "ArrayRegion",
    "MethodTraceModel",
    "profile_methods",
    "estimate_training_memory",
]
