"""Online continual trainer for infinite drifting streams.

:class:`StreamTrainer` wraps a batch trainer (usually
:class:`~repro.core.alsh_approx.ALSHApproxTrainer`) and drives it from a
:class:`~repro.data.streams.DriftingStream` one minibatch at a time,
forever.  Three maintenance policies replace the offline ``fit`` loop's
assumptions:

* **Drift-triggered rebuilds** — instead of the paper's count-based
  100/1000 schedule, a :class:`~repro.lsh.drift.ColumnDriftTracker` per
  hidden layer is consulted every ``drift_check_every`` batches and only
  the touched columns that actually drifted past ``drift_threshold`` are
  re-hashed.  Under never-ending drift the fixed schedule either wastes
  re-hashes (early phase) or lets tables go stale (late phase); the
  detector re-hashes exactly when the geometry moved.
* **Gauge-driven compaction** — the flat backend's tombstone garbage is
  read through ``MIPSIndex.garbage_fraction()`` (the ``lsh.garbage_frac``
  gauge) every ``compact_check_every`` batches and all tables are
  force-compacted when it exceeds ``compact_garbage_frac`` — a global
  policy on the observed signal rather than the backend's per-table
  heuristic.
* **Continuous checkpointing** — every ``checkpoint_every`` batches the
  full mutable state (weights, optimizer slots, trainer RNG, hash
  tables, rebuild counters, drift references, the stream's own RNG and
  prototype positions, recorded series, probe state) is written through
  the :mod:`repro.nn.checkpoint` machinery, so a kill at any point
  resumes bitwise-identically mid-stream: the resumed trajectory is the
  uninterrupted one.

Everything is cadence-driven off the batch counter — never wall-clock —
which is what makes the resumed run reproduce the original byte for
byte (``tests/stream/test_stream_resume.py`` enforces this in the style
of the offline resume-equality suite).  Two things are excluded from
the identity on purpose: wall-clock throughput, and the flat backend's
physical tombstone layout — a restore re-packs the tables clean, which
is outside the backend's contract (compaction never affects candidate
sets), so post-resume ``lsh.garbage_frac`` readings start from zero
garbage while the canonical table contents stay bitwise identical.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.alsh_approx import ALSHApproxTrainer
from ..data.streams import DriftingStream
from ..lsh.drift import ColumnDriftTracker
from ..lsh.rebuild import RebuildScheduler
from ..nn.checkpoint import (
    TrainerCheckpoint,
    checkpoint_path,
    load_checkpoint,
    save_checkpoint,
)
from ..nn.network import MLP
from ..obs import NULL_RECORDER, Recorder
from ..obs.counters import (
    HIST_STREAM_BATCH_SECONDS,
    LSH_GARBAGE_FRAC,
    LSH_REHASHED_COLUMNS,
    STREAM_BATCHES,
    STREAM_CHECKPOINTS,
    STREAM_COMPACTIONS,
    STREAM_DRIFT_CHECKS,
    STREAM_EVALS,
    STREAM_REBUILDS,
    STREAM_SAMPLES,
)
from ..obs.probes import ProbeManager
from ..obs.timeseries import (
    SERIES_STREAM_ACCURACY,
    SERIES_STREAM_GARBAGE,
    SERIES_STREAM_LOSS,
)

__all__ = [
    "REBUILD_MODES",
    "StreamTrainer",
    "make_stream_trainer",
    "never_rebuild",
    "run_smoke",
]

REBUILD_MODES = ("drift", "count", "none")

#: a period no stream will ever reach — the scheduler handed to trainers
#: whose rebuilds the StreamTrainer drives itself.
_NEVER = 10**9


def never_rebuild() -> RebuildScheduler:
    """A count scheduler that never fires (drift/none rebuild modes)."""
    return RebuildScheduler(
        early_every=_NEVER, late_every=_NEVER, warmup_samples=0
    )


class StreamTrainer:
    """Continual trainer: an inner batch trainer driven by a stream.

    Parameters
    ----------
    trainer:
        The inner trainer.  Any :class:`~repro.core.base.Trainer` works
        for plain online training; drift-triggered rebuilds and
        gauge-driven compaction require the ALSH trainer (per-layer
        ``indexes``/``_touched`` machinery).
    stream:
        The drifting minibatch source (must expose ``next_batch``,
        ``eval_batch`` and ``state_dict``/``load_state_dict``).
    rebuild:
        "drift" (default): the trainer's own count scheduler is replaced
        by :func:`never_rebuild` and table refreshes are driven by
        per-layer drift trackers; "count": the trainer's own scheduler
        stays in charge (the paper's policy); "none": no rebuilds ever
        (the decay baseline).
    drift_threshold, drift_check_every:
        Relative-drift trigger and its cadence in batches ("drift" mode).
    compact_garbage_frac:
        Force-compact all tables when the worst index's garbage fraction
        exceeds this value; ``None`` disables gauge-driven compaction
        (the backend's own per-table threshold still applies).
    compact_check_every:
        Cadence (batches) of the garbage-gauge reading.
    eval_every, eval_samples:
        Held-out evaluation cadence on the *current* stream distribution
        (``None`` disables).  ``stream.eval_batch`` advances the stream
        RNG, so the eval cadence is part of the deterministic trajectory
        and must match across resumed runs.
    checkpoint_dir, checkpoint_every, checkpoint_tag:
        Continuous checkpointing; ``run(resume=True)`` picks up an
        existing checkpoint and continues bitwise-identically.
    probe_manager:
        Optional read-only :class:`~repro.obs.probes.ProbeManager` fired
        after every batch (its own cadence gates actual probe work).
    """

    def __init__(
        self,
        trainer,
        stream: DriftingStream,
        rebuild: str = "drift",
        drift_threshold: float = 0.1,
        drift_check_every: int = 5,
        compact_garbage_frac: Optional[float] = 0.5,
        compact_check_every: int = 10,
        eval_every: Optional[int] = 50,
        eval_samples: int = 200,
        checkpoint_dir=None,
        checkpoint_every: int = 100,
        checkpoint_tag: Optional[str] = None,
        probe_manager: Optional[ProbeManager] = None,
    ):
        if rebuild not in REBUILD_MODES:
            raise ValueError(
                f"rebuild must be one of {REBUILD_MODES}, got {rebuild!r}"
            )
        if drift_check_every < 1:
            raise ValueError(
                f"drift_check_every must be at least 1, got {drift_check_every}"
            )
        if compact_check_every < 1:
            raise ValueError(
                f"compact_check_every must be at least 1, got {compact_check_every}"
            )
        if compact_garbage_frac is not None and compact_garbage_frac <= 0:
            raise ValueError(
                f"compact_garbage_frac must be positive, got {compact_garbage_frac}"
            )
        if eval_every is not None and eval_every < 1:
            raise ValueError(f"eval_every must be at least 1, got {eval_every}")
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be at least 1, got {checkpoint_every}"
            )
        if rebuild == "drift" and not getattr(trainer, "indexes", None):
            raise ValueError(
                "rebuild='drift' needs an ALSH-style trainer with per-layer "
                f"hash indexes; {type(trainer).__name__} has none"
            )
        self.trainer = trainer
        self.stream = stream
        self.rebuild_mode = rebuild
        self.drift_check_every = int(drift_check_every)
        self.compact_garbage_frac = (
            None if compact_garbage_frac is None else float(compact_garbage_frac)
        )
        self.compact_check_every = int(compact_check_every)
        self.eval_every = None if eval_every is None else int(eval_every)
        self.eval_samples = int(eval_samples)
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = int(checkpoint_every)
        self.checkpoint_tag = checkpoint_tag
        self._probes = probe_manager
        self.obs: Recorder = trainer.obs

        self._trackers: Optional[List[ColumnDriftTracker]] = None
        if rebuild == "drift":
            # The stream drives refreshes; the trainer's own count
            # scheduler must never fire underneath it.
            trainer.rebuild = never_rebuild()
            self._trackers = [
                ColumnDriftTracker(trainer.net.layers[i].W, drift_threshold)
                for i in range(trainer.n_hidden)
            ]
        elif rebuild == "none" and getattr(trainer, "indexes", None):
            trainer.rebuild = never_rebuild()

        self.batches_done = 0
        self.samples_done = 0
        self.rebuilds = 0  # drift-triggered refreshes that re-hashed columns
        self.compactions = 0  # gauge-forced table compactions
        self.checkpoints_written = 0
        self.last_loss: Optional[float] = None
        self.eval_history: List[List[float]] = []  # [batch, accuracy] pairs

    # ------------------------------------------------------------------
    # maintenance policies
    # ------------------------------------------------------------------
    def _drift_refresh(self) -> None:
        """Re-hash exactly the touched columns that drifted past threshold.

        Unlike the count schedule's refresh (which clears the whole
        touched set), columns below the threshold stay pending: they will
        be re-checked on the next cadence and re-hashed once their
        accumulated drift crosses the line.
        """
        tr = self.trainer
        if self.obs.enabled:
            self.obs.add(STREAM_DRIFT_CHECKS)
        rehashed = 0
        for i, tracker in enumerate(self._trackers):
            touched = tr._touched[i]
            if not touched:
                continue
            ids = np.fromiter(sorted(touched), dtype=np.int64, count=len(touched))
            W = tr.net.layers[i].W
            drifted = tracker.drifted(W, ids)
            if drifted.size:
                tr.indexes[i].update(drifted, W[:, drifted].T)
                tracker.mark_rehashed(W, drifted)
                tr.rehashed_columns += int(drifted.size)
                rehashed += int(drifted.size)
                touched.difference_update(int(c) for c in drifted)
        if rehashed:
            self.rebuilds += 1
            if self.obs.enabled:
                self.obs.add(STREAM_REBUILDS)
                self.obs.add(LSH_REHASHED_COLUMNS, rehashed)

    def garbage_fraction(self) -> float:
        """Worst garbage fraction across the trainer's hash indexes."""
        indexes = getattr(self.trainer, "indexes", None)
        if not indexes:
            return 0.0
        return max(ix.garbage_fraction() for ix in indexes)

    def _check_compaction(self) -> None:
        indexes = getattr(self.trainer, "indexes", None)
        if not indexes:
            return
        frac = max(ix.garbage_fraction() for ix in indexes)
        if self.obs.enabled:
            self.obs.gauge(LSH_GARBAGE_FRAC, frac)
            self.obs.series(SERIES_STREAM_GARBAGE, self.batches_done, frac)
        if self.compact_garbage_frac is not None and frac > self.compact_garbage_frac:
            for ix in indexes:
                ix.compact()
            self.compactions += 1
            if self.obs.enabled:
                self.obs.add(STREAM_COMPACTIONS)

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def run(
        self,
        n_batches: int,
        resume: bool = True,
        verbose: bool = False,
        log_every: int = 200,
    ) -> Dict:
        """Consume the stream up to a total of ``n_batches`` batches.

        ``n_batches`` is the absolute stream position, not an increment:
        a run resumed from batch 70 with ``n_batches=100`` trains 30 more
        batches.  Returns a summary dict (throughput measured over the
        batches this call actually trained).
        """
        ckpt_file = None
        if self.checkpoint_dir is not None:
            directory = Path(self.checkpoint_dir)
            directory.mkdir(parents=True, exist_ok=True)
            tag = self.checkpoint_tag or f"stream-{self.trainer.name}"
            ckpt_file = checkpoint_path(directory, tag)
            if resume and ckpt_file.exists():
                self._restore(load_checkpoint(ckpt_file))
        start = self.batches_done
        t0 = time.perf_counter()
        for _ in range(start, int(n_batches)):
            x, y = self.stream.next_batch()
            tb = time.perf_counter()
            loss = self.trainer.train_batch(x, y)
            batch_seconds = time.perf_counter() - tb
            self.batches_done += 1
            self.samples_done += int(x.shape[0])
            self.last_loss = float(loss)
            if self.obs.enabled:
                self.obs.add(STREAM_BATCHES)
                self.obs.add(STREAM_SAMPLES, int(x.shape[0]))
                self.obs.series(SERIES_STREAM_LOSS, self.batches_done, float(loss))
                self.obs.histogram(HIST_STREAM_BATCH_SECONDS, batch_seconds)
            if self._probes is not None:
                self._probes.on_batch(self.trainer, x, y)
            if (
                self._trackers is not None
                and self.batches_done % self.drift_check_every == 0
            ):
                self._drift_refresh()
            if self.batches_done % self.compact_check_every == 0:
                self._check_compaction()
            if (
                self.eval_every is not None
                and self.batches_done % self.eval_every == 0
            ):
                xe, ye = self.stream.eval_batch(self.eval_samples)
                acc = float(self.trainer.evaluate(xe, ye))
                self.eval_history.append([self.batches_done, acc])
                if self.obs.enabled:
                    self.obs.add(STREAM_EVALS)
                    self.obs.series(
                        SERIES_STREAM_ACCURACY, self.batches_done, acc
                    )
            if ckpt_file is not None and self.batches_done % self.checkpoint_every == 0:
                self._save(ckpt_file)
            if verbose and self.batches_done % log_every == 0:
                acc = self.eval_history[-1][1] if self.eval_history else float("nan")
                print(
                    f"  batch {self.batches_done}: loss {loss:.4f}, "
                    f"acc {acc:.3f}, rebuilds {self.rebuilds}, "
                    f"compactions {self.compactions}"
                )
        elapsed = time.perf_counter() - t0
        trained = self.batches_done - start
        if ckpt_file is not None and trained and self.batches_done % self.checkpoint_every:
            self._save(ckpt_file)  # final partial-period checkpoint
        return self.summary(trained=trained, elapsed=elapsed)

    def summary(self, trained: int = 0, elapsed: float = 0.0) -> Dict:
        """Run summary; throughput covers the batches of the last call."""
        samples = trained * self.stream.batch_size
        out = {
            "batches": self.batches_done,
            "samples": self.samples_done,
            "trained_batches": trained,
            "elapsed_s": elapsed,
            "samples_per_s": samples / elapsed if elapsed > 0 else 0.0,
            "last_loss": self.last_loss,
            "rebuild_mode": self.rebuild_mode,
            "rebuilds": self.rebuilds,
            "compactions": self.compactions,
            "checkpoints": self.checkpoints_written,
            "garbage_frac": self.garbage_fraction(),
            "eval_history": [list(p) for p in self.eval_history],
        }
        if self.rebuild_mode == "count" and hasattr(self.trainer, "rebuild"):
            out["rebuilds"] = int(self.trainer.rebuild.rebuild_count)
        if hasattr(self.trainer, "rehashed_columns"):
            out["rehashed_columns"] = int(self.trainer.rehashed_columns)
        return out

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    @property
    def _method(self) -> str:
        return f"stream:{self.trainer.name}"

    def _capture(self) -> TrainerCheckpoint:
        """Everything :meth:`run` needs to continue bitwise-identically."""
        tr = self.trainer
        arrays: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(tr.net.layers):
            arrays[f"net.W{i}"] = layer.W
            arrays[f"net.b{i}"] = layer.b
        opt_meta, opt_arrays = tr.optimizer.state_dict()
        arrays.update(opt_arrays)
        aux_meta, aux_arrays = tr.checkpoint_state()
        for name, arr in aux_arrays.items():
            arrays[f"aux.{name}"] = arr
        stream_meta, stream_arrays = self.stream.state_dict()
        for name, arr in stream_arrays.items():
            arrays[f"stream.{name}"] = arr
        if self._trackers is not None:
            for i, tracker in enumerate(self._trackers):
                arrays[f"streamdrift{i}"] = tracker.reference
        payload = {
            "optimizer": opt_meta,
            "rng_state": tr.rng.bit_generator.state,
            "aux": aux_meta,
            "stream": {
                "state": stream_meta,
                "batches_done": int(self.batches_done),
                "samples_done": int(self.samples_done),
                "rebuilds": int(self.rebuilds),
                "compactions": int(self.compactions),
                "last_loss": self.last_loss,
                "eval_history": [list(p) for p in self.eval_history],
            },
        }
        obs_payload: dict = {}
        if self.obs.enabled and hasattr(self.obs, "series_snapshot"):
            obs_payload["series"] = self.obs.series_snapshot()
        if self.obs.enabled and hasattr(self.obs, "histograms_snapshot"):
            obs_payload["histograms"] = self.obs.histograms_snapshot()
        if self._probes is not None:
            obs_payload["probes"] = self._probes.state_dict()
        if obs_payload:
            payload["obs"] = obs_payload
        return TrainerCheckpoint(
            method=self._method,
            epoch=self.batches_done,
            stopped_early=False,
            payload=payload,
            arrays=arrays,
        )

    def _save(self, path) -> None:
        save_checkpoint(self._capture(), path)
        self.checkpoints_written += 1
        if self.obs.enabled:
            self.obs.add(STREAM_CHECKPOINTS)

    def _restore(self, ckpt: TrainerCheckpoint) -> None:
        """Apply a mid-stream checkpoint to freshly constructed objects.

        The StreamTrainer (and its inner trainer and stream) must have
        been constructed with the same configuration and seeds as the
        one that wrote the checkpoint; everything derived
        deterministically at construction (hash hyperplanes, never-fire
        scheduler) is reproduced, everything mutated by streaming is
        restored here.
        """
        tr = self.trainer
        if ckpt.method != self._method:
            raise ValueError(
                f"checkpoint holds {ckpt.method!r} state, "
                f"this stream trainer is {self._method!r}"
            )
        for i, layer in enumerate(tr.net.layers):
            try:
                w = ckpt.arrays[f"net.W{i}"]
                b = ckpt.arrays[f"net.b{i}"]
            except KeyError:
                raise ValueError(
                    f"checkpoint is missing arrays for layer {i}"
                ) from None
            if w.shape != layer.W.shape or b.shape != layer.b.shape:
                raise ValueError(
                    f"layer {i} shape mismatch: checkpoint {w.shape} vs "
                    f"network {layer.W.shape}"
                )
            layer.W = w.copy()
            layer.b = b.copy()
        payload = ckpt.payload
        tr.optimizer.load_state_dict(payload["optimizer"], ckpt.arrays)
        tr.rng.bit_generator.state = payload["rng_state"]
        prefix = "aux."
        aux_arrays = {
            name[len(prefix):]: arr
            for name, arr in ckpt.arrays.items()
            if name.startswith(prefix)
        }
        tr.restore_checkpoint_state(payload.get("aux", {}), aux_arrays)
        sp = payload["stream"]
        self.stream.load_state_dict(
            sp["state"],
            {
                "protos": ckpt.arrays["stream.protos"],
                "targets": ckpt.arrays["stream.targets"],
            },
        )
        if self._trackers is not None:
            for i, tracker in enumerate(self._trackers):
                tracker.restore_reference(ckpt.arrays[f"streamdrift{i}"])
        self.batches_done = int(sp["batches_done"])
        self.samples_done = int(sp["samples_done"])
        self.rebuilds = int(sp["rebuilds"])
        self.compactions = int(sp["compactions"])
        self.last_loss = sp.get("last_loss")
        self.eval_history = [list(p) for p in sp.get("eval_history", [])]
        obs_payload = payload.get("obs", {})
        if (
            self.obs.enabled
            and hasattr(self.obs, "load_series")
            and "series" in obs_payload
        ):
            self.obs.load_series(obs_payload["series"])
        if (
            self.obs.enabled
            and hasattr(self.obs, "load_histograms")
            and "histograms" in obs_payload
        ):
            self.obs.load_histograms(obs_payload["histograms"])
        if self._probes is not None and "probes" in obs_payload:
            self._probes.load_state_dict(obs_payload["probes"])


def make_stream_trainer(
    dim: int = 32,
    n_classes: int = 8,
    width: int = 64,
    depth: int = 2,
    batch_size: int = 20,
    drift_per_batch: float = 0.01,
    noise: float = 0.5,
    rebuild: str = "drift",
    drift_threshold: float = 0.1,
    drift_check_every: int = 5,
    count_early_every: int = 100,
    count_late_every: int = 1000,
    count_warmup: int = 10_000,
    compact_garbage_frac: Optional[float] = 0.5,
    compact_check_every: int = 10,
    eval_every: Optional[int] = 50,
    eval_samples: int = 200,
    checkpoint_dir=None,
    checkpoint_every: int = 100,
    checkpoint_tag: Optional[str] = None,
    probe_manager: Optional[ProbeManager] = None,
    seed: int = 0,
    lr: float = 1e-3,
    n_bits: int = 6,
    n_tables: int = 5,
    recorder: Optional[Recorder] = None,
) -> StreamTrainer:
    """Build the standard streaming setup: ALSH trainer + drifting stream.

    The inner trainer runs in "union" batch mode (one vectorised step per
    stream minibatch — the throughput configuration); the stream is
    seeded at ``seed + 1`` so stream and trainer draw from independent
    generators.  ``rebuild`` selects the maintenance policy (see
    :class:`StreamTrainer`); in "count" mode the scheduler follows the
    paper's two-phase cadence with the given periods.
    """
    net = MLP([dim] + [width] * depth + [n_classes], seed=seed)
    scheduler = (
        RebuildScheduler(
            early_every=count_early_every,
            late_every=count_late_every,
            warmup_samples=count_warmup,
        )
        if rebuild == "count"
        else never_rebuild()
    )
    trainer = ALSHApproxTrainer(
        net,
        lr=lr,
        optimizer="adam",
        n_bits=n_bits,
        n_tables=n_tables,
        batch_mode="union",
        rebuild=scheduler,
        seed=seed,
        recorder=recorder if recorder is not None else NULL_RECORDER,
    )
    stream = DriftingStream(
        dim,
        n_classes,
        batch_size=batch_size,
        drift_per_batch=drift_per_batch,
        noise=noise,
        seed=seed + 1,
    )
    return StreamTrainer(
        trainer,
        stream,
        rebuild=rebuild,
        drift_threshold=drift_threshold,
        drift_check_every=drift_check_every,
        compact_garbage_frac=compact_garbage_frac,
        compact_check_every=compact_check_every,
        eval_every=eval_every,
        eval_samples=eval_samples,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        checkpoint_tag=checkpoint_tag,
        probe_manager=probe_manager,
    )


def _weights_digest(trainer) -> Tuple[bytes, ...]:
    return tuple(
        layer.W.tobytes() + layer.b.tobytes() for layer in trainer.net.layers
    )


def run_smoke(seed: int = 0, verbose: bool = True) -> int:
    """Short drifting-stream session with a kill-resume equality check.

    The CI gate: trains one uninterrupted session and one killed at the
    midpoint and resumed from its checkpoint, then asserts byte-identical
    weights, identical stream RNG state, and a bounded garbage fraction.
    Returns 0 on success (prints PASS/FAIL lines when verbose).
    """
    import tempfile

    total, kill_at = 80, 37
    kwargs = dict(
        dim=16,
        n_classes=4,
        width=32,
        depth=2,
        drift_per_batch=0.02,
        drift_threshold=0.02,
        drift_check_every=5,
        compact_garbage_frac=0.3,
        compact_check_every=5,
        eval_every=20,
        eval_samples=50,
        seed=seed,
    )
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        full = make_stream_trainer(**kwargs)
        full.run(total, resume=False)
        killed = make_stream_trainer(
            checkpoint_dir=tmp, checkpoint_every=10, **kwargs
        )
        killed.run(kill_at, resume=False)
        resumed = make_stream_trainer(
            checkpoint_dir=tmp, checkpoint_every=10, **kwargs
        )
        resumed.run(total, resume=True)
    if _weights_digest(full.trainer) != _weights_digest(resumed.trainer):
        failures.append("kill-resume weights differ from uninterrupted run")
    if (
        full.stream.rng.bit_generator.state
        != resumed.stream.rng.bit_generator.state
    ):
        failures.append("kill-resume stream RNG diverged")
    if full.eval_history != resumed.eval_history:
        failures.append("kill-resume eval history diverged")
    if full.garbage_fraction() > 0.9:
        failures.append(
            f"garbage fraction unbounded: {full.garbage_fraction():.3f}"
        )
    if not full.rebuilds:
        failures.append("no drift-triggered rebuilds fired")
    if verbose:
        for failure in failures:
            print(f"FAIL: {failure}")
        if not failures:
            acc = full.eval_history[-1][1] if full.eval_history else float("nan")
            print(
                f"stream smoke PASS: {total} batches, "
                f"{full.rebuilds} drift rebuilds, "
                f"{full.compactions} compactions, final acc {acc:.3f}, "
                "kill-resume bitwise identical"
            )
    return 1 if failures else 0
