"""Streaming benchmark: steady-state throughput and recall under drift.

Three maintenance policies on one seeded stream/model pair: the paper's
fixed count-based rebuild schedule, drift-triggered rebuilds from the
:mod:`repro.lsh.drift` detector, and no rebuilds at all (the decay
baseline).  Every configuration trains the same ALSH network on the same
drifting prototype stream with a read-only LSH recall probe riding along
and gauge-driven flat-backend compaction on, and records steady-state
samples/sec (a warm-up segment is excluded from timing), recall-under-
drift (mean probed LSH recall@k over the steady-state half), held-out
accuracy on the current distribution, rebuild events, re-hashed columns
and the worst observed garbage fraction.

``BENCH_stream.json`` is the perf-trajectory file; under ``--check`` the
run fails when drift-triggered rebuilds lose to the count schedule on
recall (beyond ``--recall-eps``), need *more* rebuild events, fall below
``--min-throughput-ratio`` of its throughput, when recall-under-drift
drops below ``--min-recall``, when the garbage fraction exceeds
``--max-garbage`` (the update path must stay bounded under sustained
churn), or when fewer than ``--min-updates`` items were streamed through
the update path (the bench must actually exercise it).

Runnable three ways: ``python benchmarks/bench_stream.py``,
``python -m repro stream-bench``, or :func:`run_configs`.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..obs import InMemoryRecorder, merge_snapshots
from ..obs.probes import LSHRecallProbe, ProbeManager
from ..obs.timeseries import (
    SERIES_LSH_RECALL,
    SERIES_STREAM_GARBAGE,
    layer_series,
)
from .trainer import make_stream_trainer

__all__ = [
    "default_configs",
    "config_key",
    "bench_config",
    "run_configs",
    "check_records",
    "write_bench_json",
    "add_arguments",
    "run_cli",
    "main",
]

#: one stream/model pair shared by every policy: a 2-hidden-layer ALSH
#: net on a drifting prototype stream.  Width 128 keeps per-layer tables
#: big enough that re-hash pressure is real while a full three-policy
#: run stays in CI budget.
MODEL_SHAPE = {
    "dim": 32,
    "n_classes": 8,
    "width": 128,
    "depth": 2,
    "batch_size": 20,
    "drift_per_batch": 0.02,
    # lr high enough that the weight columns genuinely move under drift
    # — the whole point of the bench is stale tables hurting recall —
    # and L=10 tables for a recall operating point where policy
    # differences are visible above the probe's noise floor.
    "lr": 0.01,
    "n_tables": 10,
}

#: the fixed schedule is held at the paper's early-phase cadence (one
#: refresh per 100 samples) for the whole run: under never-ending drift
#: the late-phase 1000-sample back-off just lets tables go stale, which
#: would make the fixed-schedule baseline trivially easy to beat.
COUNT_EVERY = 100

PROBE_EVERY = 20  # batches between recall probes


def default_configs(quick: bool = False) -> List[Dict]:
    """The three policy configurations; ``quick`` shrinks the stream."""
    batches = 600 if quick else 8000
    warmup = 50 if quick else 400
    configs = []
    for policy in ("count", "drift", "none"):
        configs.append({
            "policy": policy,
            "batches": batches,
            "warmup": warmup,
            # count vs drift is the gated comparison; "none" is the
            # decay baseline kept for the trajectory file.
            "gate": policy in ("count", "drift"),
        })
    return configs


def config_key(config: Dict) -> str:
    return f"stream-bench:{config['policy']}"


def _series_mean_tail(snapshot: Dict, name: str, tail_frac: float = 0.5) -> Optional[float]:
    points = snapshot.get("series", {}).get(name)
    if not points:
        return None
    values = [v for _, v in points]
    tail = values[max(1, int(len(values) * (1 - tail_frac))) - 1:]
    return float(np.mean(tail))


def _series_max(snapshot: Dict, name: str) -> Optional[float]:
    points = snapshot.get("series", {}).get(name)
    if not points:
        return None
    return float(max(v for _, v in points))


def bench_config(config: Dict, seed: int = 0, k: int = 10) -> Dict:
    """Stream one policy configuration; returns a record."""
    recorder = InMemoryRecorder()
    probes = ProbeManager(
        [LSHRecallProbe(k=k, max_queries=4)],
        probe_every=PROBE_EVERY,
        budget=None,  # deterministic: never self-disable mid-bench
        seed=seed + 7,
    )
    st = make_stream_trainer(
        rebuild=config["policy"],
        drift_threshold=0.04,
        drift_check_every=5,  # 100-sample cadence — matches COUNT_EVERY
        count_early_every=COUNT_EVERY,
        count_late_every=COUNT_EVERY,
        count_warmup=0,
        compact_garbage_frac=0.5,
        compact_check_every=10,
        eval_every=PROBE_EVERY * 5,
        eval_samples=200,
        probe_manager=probes,
        seed=seed,
        recorder=recorder,
        **MODEL_SHAPE,
    )
    st.run(config["warmup"], resume=False)  # excluded from timing
    summary = st.run(config["batches"], resume=False)
    snapshot = recorder.snapshot()
    depth = MODEL_SHAPE["depth"]
    recalls = [
        _series_mean_tail(snapshot, layer_series(SERIES_LSH_RECALL, i + 1))
        for i in range(depth)
    ]
    recalls = [r for r in recalls if r is not None]
    accs = [acc for _, acc in summary["eval_history"]]
    tail_accs = accs[len(accs) // 2:]
    record = dict(config)
    record.update({
        "k": k,
        "samples": summary["samples"],
        "samples_per_s": summary["samples_per_s"],
        "elapsed_s": summary["elapsed_s"],
        "recall_at_k": float(np.mean(recalls)) if recalls else None,
        "accuracy": float(np.mean(tail_accs)) if tail_accs else None,
        "rebuilds": summary["rebuilds"],
        "rehashed_columns": summary.get("rehashed_columns", 0),
        "rehashed_items": snapshot["counters"].get("lsh.rehashed_items", 0),
        "compactions": summary["compactions"],
        "backend_compactions": sum(
            ix.index.flat.compactions
            for ix in st.trainer.indexes
            if ix.index.flat is not None
        ),
        "garbage_frac_max": _series_max(snapshot, SERIES_STREAM_GARBAGE) or 0.0,
        "garbage_frac_final": summary["garbage_frac"],
    })
    record["_snapshot"] = snapshot
    return record


def run_configs(
    configs: Sequence[Dict],
    seed: int = 0,
    k: int = 10,
    verbose: bool = True,
) -> List[Dict]:
    """Benchmark every policy on the identically seeded stream/model."""
    records = []
    for i, config in enumerate(configs):
        record = bench_config(config, seed=seed, k=k)
        records.append(record)
        if verbose:
            recall = record["recall_at_k"]
            acc = record["accuracy"]
            recall_s = f"{recall:.3f}" if recall is not None else "n/a"
            acc_s = f"{acc:.3f}" if acc is not None else "n/a"
            print(
                f"  [{i + 1}/{len(configs)}] {config_key(config)}: "
                f"{record['samples_per_s']:.0f} samples/s, "
                f"recall@{k} {recall_s}, acc {acc_s}, "
                f"{record['rebuilds']} rebuilds, "
                f"{record['rehashed_items']} items re-hashed, "
                f"garbage max {record['garbage_frac_max']:.3f}"
                f"{' [gate]' if config.get('gate') else ''}"
            )
    return records


def check_records(
    records: Sequence[Dict],
    min_recall: float = 0.4,
    recall_eps: float = 0.02,
    min_throughput_ratio: float = 0.8,
    max_garbage: float = 0.8,
    min_updates: int = 100_000,
) -> List[str]:
    """Regression gates for the drift-vs-count policy comparison."""
    failures = []
    by_policy = {r["policy"]: r for r in records}
    count, drift = by_policy.get("count"), by_policy.get("drift")
    if count and drift:
        c_recall, d_recall = count["recall_at_k"], drift["recall_at_k"]
        if c_recall is not None and d_recall is not None:
            if d_recall < c_recall - recall_eps:
                failures.append(
                    f"stream-bench:drift: recall {d_recall:.3f} below the "
                    f"count schedule's {c_recall:.3f} (eps {recall_eps})"
                )
        if drift["rebuilds"] > count["rebuilds"]:
            failures.append(
                f"stream-bench:drift: {drift['rebuilds']} rebuild events "
                f"exceed the count schedule's {count['rebuilds']}"
            )
        ratio = drift["samples_per_s"] / max(count["samples_per_s"], 1e-12)
        if ratio < min_throughput_ratio:
            failures.append(
                f"stream-bench:drift: throughput {ratio:.2f}x the count "
                f"schedule (need >= {min_throughput_ratio:.2f}x)"
            )
    for record in records:
        if not record.get("gate"):
            continue
        recall = record["recall_at_k"]
        if recall is not None and recall < min_recall:
            failures.append(
                f"{config_key(record)}: recall@{record['k']} {recall:.3f} "
                f"below the {min_recall:.2f} floor"
            )
        if record["garbage_frac_max"] > max_garbage:
            failures.append(
                f"{config_key(record)}: garbage fraction peaked at "
                f"{record['garbage_frac_max']:.3f} (> {max_garbage:.2f}) — "
                "update path not bounded"
            )
    streamed = sum(r["rehashed_items"] for r in records if r.get("gate"))
    if streamed < min_updates:
        failures.append(
            f"stream-bench: only {streamed} items streamed through the "
            f"update path across gated configs (need >= {min_updates})"
        )
    return failures


def write_bench_json(records: Sequence[Dict], path, quick: bool = False) -> Path:
    """Write the perf-trajectory file (snapshots stripped)."""
    path = Path(path)
    payload = {
        "bench": "stream",
        "quick": bool(quick),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "numpy": np.__version__,
        "model": dict(MODEL_SHAPE),
        "count_every": COUNT_EVERY,
        "records": [
            {k: v for k, v in record.items() if not k.startswith("_")}
            for record in records
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """CLI flags shared by the script and the ``stream-bench`` subcommand."""
    parser.add_argument("--quick", action="store_true",
                        help="short streams, for CI (seconds)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--k", type=int, default=10,
                        help="recall@k size for the LSH probe")
    parser.add_argument("--out", default="BENCH_stream.json",
                        help="perf-trajectory JSON output path")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on a gate failure")
    parser.add_argument("--min-recall", type=float, default=0.4,
                        help="recall-under-drift floor for gated policies")
    parser.add_argument("--recall-eps", type=float, default=0.02,
                        help="slack when comparing drift vs count recall")
    parser.add_argument("--min-throughput-ratio", type=float, default=0.8,
                        help="required drift/count samples-per-sec ratio "
                             "(0.8 = a >20%% regression fails)")
    parser.add_argument("--max-garbage", type=float, default=0.8,
                        help="worst tolerated flat-backend garbage fraction")
    parser.add_argument("--min-updates", type=int, default=None,
                        help="required items through the update path across "
                             "gated configs (default 100000, 2000 quick)")
    parser.add_argument("--store", default=None,
                        help="append the merged obs snapshot as a trace "
                             "record to this JSONL (for `repro report`)")


def run_cli(args: argparse.Namespace) -> int:
    """Run the configurations per parsed args; returns the exit code."""
    configs = default_configs(quick=args.quick)
    print(
        f"stream-bench: {len(configs)} rebuild policies over a drifting "
        f"stream ({'quick' if args.quick else 'full'}: "
        f"{configs[0]['batches']} batches of "
        f"{MODEL_SHAPE['batch_size']} after {configs[0]['warmup']} warm-up)"
    )
    records = run_configs(configs, seed=args.seed, k=args.k)
    if args.store:
        from ..obs import trace_record, write_trace

        merged = merge_snapshots([r["_snapshot"] for r in records])
        write_trace(
            args.store,
            trace_record(merged, label="stream-bench", key="stream-bench"),
        )
        print(f"trace appended to {args.store}")
    out = write_bench_json(records, args.out, quick=args.quick)
    print(f"wrote {out}")
    min_updates = args.min_updates
    if min_updates is None:
        min_updates = 2000 if args.quick else 100_000
    failures = check_records(
        records,
        min_recall=args.min_recall,
        recall_eps=args.recall_eps,
        min_throughput_ratio=args.min_throughput_ratio,
        max_garbage=args.max_garbage,
        min_updates=min_updates,
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if args.check and failures:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``benchmarks/bench_stream.py``)."""
    parser = argparse.ArgumentParser(
        description="drifting-stream continual-training benchmark"
    )
    add_arguments(parser)
    return run_cli(parser.parse_args(argv))
