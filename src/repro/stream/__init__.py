"""Online continual training over infinite drifting streams.

The paper evaluates sampling-based training batch-offline; this package
runs it 24/7: :class:`~repro.stream.trainer.StreamTrainer` consumes an
infinite :class:`~repro.data.streams.DriftingStream`, triggers ALSH
table refreshes from the :mod:`repro.lsh.drift` detector instead of the
paper's fixed count schedule, compacts the flat backend's tombstones on
the ``lsh.garbage_frac`` gauge, and checkpoints continuously so a kill
at any point resumes bitwise-identically mid-stream.
"""

from .trainer import StreamTrainer, make_stream_trainer, run_smoke

__all__ = ["StreamTrainer", "make_stream_trainer", "run_smoke"]
