"""Empirical layerwise error measurement on live networks.

§7's theory assumes a linear activation and exact active-node detection;
this module measures the same quantity — the relative activation-estimation
error per hidden layer — on real (ReLU) networks under real selectors:
the ALSH index of a live :class:`~repro.core.alsh_approx.ALSHApproxTrainer`,
an oracle top-k selector, or a uniform-random one.  The error-propagation
bench uses it to show the theory's exponential growth shows up in practice.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from ..nn.network import MLP

__all__ = [
    "make_topk_selector",
    "make_random_selector",
    "make_alsh_selector",
    "measure_layerwise_error",
]

Selector = Callable[[int, np.ndarray], np.ndarray]
"""``selector(layer_idx, a_prev) -> active column ids`` for one sample."""


def make_topk_selector(net: MLP, frac: float) -> Selector:
    """Oracle selector: the columns with largest |⟨a_prev, W·j⟩|.

    This is the best case for "sampling from the current layer" — perfect
    MIPS — so any error it shows is inherent to the approach, not to LSH
    recall.
    """
    if not 0.0 < frac <= 1.0:
        raise ValueError(f"frac must be in (0, 1], got {frac}")

    def selector(layer_idx: int, a_prev: np.ndarray) -> np.ndarray:
        layer = net.layers[layer_idx]
        scores = np.abs(a_prev @ layer.W)
        keep = max(1, int(round(frac * layer.n_out)))
        return np.argpartition(-scores, keep - 1)[:keep]

    return selector


def make_random_selector(net: MLP, frac: float, seed: int = 0) -> Selector:
    """Uniform-random selector with the same budget (dropout-like)."""
    if not 0.0 < frac <= 1.0:
        raise ValueError(f"frac must be in (0, 1], got {frac}")
    rng = np.random.default_rng(seed)

    def selector(layer_idx: int, a_prev: np.ndarray) -> np.ndarray:
        layer = net.layers[layer_idx]
        keep = max(1, int(round(frac * layer.n_out)))
        return rng.choice(layer.n_out, size=keep, replace=False)

    return selector


def make_alsh_selector(trainer) -> Selector:
    """Selector backed by a live ALSH trainer's hash tables."""

    def selector(layer_idx: int, a_prev: np.ndarray) -> np.ndarray:
        return trainer._select_active(layer_idx, a_prev)

    return selector


def measure_layerwise_error(
    net: MLP, selector: Selector, x: np.ndarray
) -> np.ndarray:
    """Mean relative error ‖â^k − a^k‖/‖a^k‖ per hidden layer.

    The *estimated* chain feeds each layer the previous layer's estimate
    (errors compound, as in Lemma 7.1); the exact chain is computed in
    parallel for reference.  Averaged over the rows of ``x``.
    """
    x = np.atleast_2d(np.asarray(x, dtype=float))
    n_hidden = len(net.layers) - 1
    if n_hidden < 1:
        raise ValueError("network has no hidden layers to measure")
    act = net.hidden_activation
    totals = np.zeros(n_hidden)
    for sample in x:
        a_true = sample
        a_hat = sample
        for i in range(n_hidden):
            layer = net.layers[i]
            a_true = act.forward(a_true @ layer.W + layer.b)
            cols = selector(i, a_hat)
            z_hat = a_hat @ layer.W[:, cols] + layer.b[cols]
            a_next = np.zeros(layer.n_out)
            a_next[cols] = act.forward(z_hat)
            a_hat = a_next
            denom = np.linalg.norm(a_true)
            if denom == 0.0:
                totals[i] += 0.0 if np.linalg.norm(a_hat) == 0.0 else 1.0
            else:
                totals[i] += np.linalg.norm(a_hat - a_true) / denom
    return totals / x.shape[0]
