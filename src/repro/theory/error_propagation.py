"""The paper's §7 negative result, in executable form.

For a linear network whose active nodes are detected exactly and where, at
every node, the weighted sum over active nodes is ``c`` times that over the
inactive nodes, Theorem 7.2 proves

    a^k = â^k · ((c+1)/c)^k     ⟺     ε^k / â^k = ((c+1)/c)^k − 1,

i.e. the relative estimation error grows *exponentially* with depth.  This
module provides the closed form, the §7 numeric table (c = 5, k = 1..6 →
0.2, 0.44, 0.72, 1.07, 1.48, 1.98), and an exact simulator of Lemma 7.1's
recursion on arbitrary linear networks so the closed form can be validated
against first principles.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

__all__ = [
    "error_ratio",
    "error_ratio_table",
    "depth_at_error_ratio",
    "LinearErrorModel",
]


def error_ratio(c: float, k: int) -> float:
    """Theorem 7.2 closed form: ε^k/â^k = ((c+1)/c)^k − 1.

    ``c`` is the active-to-inactive weighted-sum ratio; ``k`` the number of
    layers the error has propagated through.
    """
    if c <= 0:
        raise ValueError(f"c must be positive, got {c}")
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    return ((c + 1.0) / c) ** k - 1.0


def error_ratio_table(c: float = 5.0, max_k: int = 6) -> np.ndarray:
    """The §7 table of error-to-estimate ratios for k = 1..max_k."""
    return np.array([error_ratio(c, k) for k in range(1, max_k + 1)])


def depth_at_error_ratio(c: float, threshold: float = 1.0) -> int:
    """Smallest depth k at which the error ratio exceeds ``threshold``.

    With the paper's c = 5 and threshold 1.0 (error dominates estimate)
    this returns 4 — "as soon as the depth gets larger than 3, the
    estimation error dominates the estimation value".
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    ratio = np.log1p(threshold) / np.log((c + 1.0) / c)
    return int(np.ceil(ratio + 1e-12))


class LinearErrorModel:
    """Exact simulator of the Lemma 7.1 error recursion.

    Models a linear-activation network (a = z) in which every node's active
    set is chosen by a selector and the estimate â sums only over the active
    nodes, exactly as ALSH-approx does when "the active nodes are detected
    exactly".  Tracks the true activations ``a^k``, the estimates ``â^k``
    and the errors ``ε^k = a^k − â^k`` layer by layer, so both branches of
    Lemma 7.1 and the Theorem 7.2 closed form can be checked numerically.

    Parameters
    ----------
    weights:
        List of weight matrices ``W^k`` (``n_{k-1} × n_k``).
    selector:
        ``selector(layer_idx, node_idx, contributions) -> active row ids``
        where ``contributions[i] = â_i^{k-1} W^k_{i,j}``.  Defaults to
        keeping the top ``active_frac`` fraction by |contribution| (the
        "detected exactly" assumption).
    active_frac:
        Fraction of incoming nodes kept by the default selector.
    """

    def __init__(
        self,
        weights: Sequence[np.ndarray],
        selector: Optional[Callable[[int, int, np.ndarray], np.ndarray]] = None,
        active_frac: float = 0.5,
    ):
        weights = [np.atleast_2d(np.asarray(w, dtype=float)) for w in weights]
        for a, b in zip(weights[:-1], weights[1:]):
            if a.shape[1] != b.shape[0]:
                raise ValueError(
                    f"chained weight shapes mismatch: {a.shape} vs {b.shape}"
                )
        if not 0.0 < active_frac <= 1.0:
            raise ValueError(f"active_frac must be in (0, 1], got {active_frac}")
        self.weights = weights
        self.active_frac = float(active_frac)
        self.selector = selector if selector is not None else self._topk_selector

    def _topk_selector(
        self, layer_idx: int, node_idx: int, contributions: np.ndarray
    ) -> np.ndarray:
        n = contributions.size
        keep = max(1, int(round(self.active_frac * n)))
        return np.argpartition(-np.abs(contributions), keep - 1)[:keep]

    def run(self, x: np.ndarray):
        """Propagate an input; returns (exact, estimates, errors) per layer.

        ``exact[k]``, ``estimates[k]`` and ``errors[k]`` are the vectors
        ``a^{k+1}``, ``â^{k+1}`` and ``ε^{k+1}`` of the paper's notation
        (0-indexed lists over layers).
        """
        x = np.asarray(x, dtype=float).reshape(-1)
        if x.size != self.weights[0].shape[0]:
            raise ValueError(
                f"input dim {x.size} != first layer fan-in "
                f"{self.weights[0].shape[0]}"
            )
        a_true = x
        a_hat = x
        exact: List[np.ndarray] = []
        estimates: List[np.ndarray] = []
        errors: List[np.ndarray] = []
        for k, w in enumerate(self.weights):
            n_out = w.shape[1]
            z_true = a_true @ w
            z_hat = np.empty(n_out)
            for j in range(n_out):
                contrib = a_hat * w[:, j]
                active = self.selector(k, j, contrib)
                z_hat[j] = contrib[active].sum()
            a_true, a_hat = z_true, z_hat
            exact.append(a_true.copy())
            estimates.append(a_hat.copy())
            errors.append(a_true - a_hat)
        return exact, estimates, errors

    def error_ratios(self, x: np.ndarray) -> np.ndarray:
        """Per-layer mean |ε|/|â| — the quantity tabulated in §7.

        Nodes whose estimate is (numerically) zero are excluded from the
        mean; a layer where *all* estimates vanish reports infinity.
        """
        _, estimates, errors = self.run(x)
        out = []
        for est, err in zip(estimates, errors):
            mask = np.abs(est) > 1e-12
            if not mask.any():
                out.append(float("inf"))
            else:
                out.append(float(np.mean(np.abs(err[mask]) / np.abs(est[mask]))))
        return np.array(out)
