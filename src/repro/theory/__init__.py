"""The paper's §7 theoretical analysis, executable.

Closed-form error-propagation results (Theorem 7.2), the Lemma 7.1
recursion simulator, and empirical layerwise error measurement on live
networks.
"""

from .analysis import (
    make_alsh_selector,
    make_random_selector,
    make_topk_selector,
    measure_layerwise_error,
)
from .mc_propagation import (
    depth_at_relative_variance,
    measure_mc_forward_error,
    relative_variance_growth,
)
from .error_propagation import (
    LinearErrorModel,
    depth_at_error_ratio,
    error_ratio,
    error_ratio_table,
)

__all__ = [
    "error_ratio",
    "error_ratio_table",
    "depth_at_error_ratio",
    "LinearErrorModel",
    "make_topk_selector",
    "make_random_selector",
    "make_alsh_selector",
    "measure_layerwise_error",
    "relative_variance_growth",
    "depth_at_relative_variance",
    "measure_mc_forward_error",
]
