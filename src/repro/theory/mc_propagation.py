"""Variance propagation for *unbiased* feedforward approximation.

Theorem 7.2 covers ALSH-approx, whose truncation estimator is biased.
MC-approx's Bernoulli estimator is unbiased — so why does feedforward
approximation fail for it too (§10.1)?  Because variance compounds the
same way bias does: for a linear chain where each layer's product is
estimated independently with relative variance ρ (Var[ẑ]/z² per unit of
signal), the end-to-end relative variance after k layers is

    (1 + ρ)^k − 1,

the exact multiplicative analogue of Theorem 7.2's ((c+1)/c)^k − 1.  An
unbiased estimator whose *input* is already noisy is no longer unbiased
about the true activations — it is unbiased about the noisy chain — and a
single forward pass samples one realisation of exponentially growing
noise.  This module provides the closed form and a Monte-Carlo measurement
of the real (ReLU, Eq. 7-sampled) chain so the two can be compared.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..approx.bernoulli import bernoulli_probabilities, bernoulli_sample
from ..nn.network import MLP

__all__ = [
    "relative_variance_growth",
    "depth_at_relative_variance",
    "measure_mc_forward_error",
]


def relative_variance_growth(rho: float, k: int) -> float:
    """Compounded relative variance after k independently estimated layers.

    ``rho`` is the per-layer relative variance added by the estimator;
    the chain's relative variance is (1 + ρ)^k − 1 (for linear layers,
    independent sampling per layer).
    """
    if rho < 0:
        raise ValueError(f"rho must be non-negative, got {rho}")
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    return (1.0 + rho) ** k - 1.0


def depth_at_relative_variance(rho: float, threshold: float = 1.0) -> int:
    """Smallest depth where compounded relative variance exceeds threshold."""
    if rho <= 0:
        raise ValueError(f"rho must be positive, got {rho}")
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    return int(np.ceil(np.log1p(threshold) / np.log1p(rho) - 1e-12))


def measure_mc_forward_error(
    net: MLP,
    x: np.ndarray,
    budget_frac: float = 0.1,
    n_trials: int = 20,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Mean relative error ‖ẑ^k − a^k‖/‖a^k‖ per hidden layer.

    Every hidden layer's pre-activation is estimated with the Eq. 7
    Bernoulli sampler at ``budget_frac`` of the previous layer's nodes,
    feeding the *estimated* activations forward (errors compound, as in a
    real forward-approximated training step); averaged over ``n_trials``
    independent samplings and the rows of ``x``.
    """
    if not 0.0 < budget_frac <= 1.0:
        raise ValueError(f"budget_frac must be in (0, 1], got {budget_frac}")
    if n_trials <= 0:
        raise ValueError(f"n_trials must be positive, got {n_trials}")
    x = np.atleast_2d(np.asarray(x, dtype=float))
    n_hidden = len(net.layers) - 1
    if n_hidden < 1:
        raise ValueError("network has no hidden layers to measure")
    rng = np.random.default_rng(seed)
    act = net.hidden_activation
    totals = np.zeros(n_hidden)

    # Exact reference chain (batched).
    a_true = [x]
    for i in range(n_hidden):
        a_true.append(act.forward(net.layers[i].forward(a_true[-1])))

    for _ in range(n_trials):
        a_hat = x
        for i in range(n_hidden):
            layer = net.layers[i]
            budget = max(1, int(round(budget_frac * layer.n_in)))
            probs = bernoulli_probabilities(a_hat, layer.W, budget)
            idx, scales = bernoulli_sample(probs, rng)
            if idx.size == 0:
                z_hat = np.zeros((a_hat.shape[0], layer.n_out)) + layer.b
            else:
                z_hat = (a_hat[:, idx] * scales) @ layer.W[idx, :] + layer.b
            a_hat = act.forward(z_hat)
            ref = a_true[i + 1]
            denom = np.linalg.norm(ref, axis=1)
            err = np.linalg.norm(a_hat - ref, axis=1)
            safe = np.where(denom > 0, denom, 1.0)
            totals[i] += float(np.mean(err / safe))
    return totals / n_trials
