"""Pure-NumPy neural network substrate.

Everything the paper's training methods need, implemented from scratch:
activations, losses, dense layers with exact/column/row-restricted products,
the :class:`~repro.nn.network.MLP` container, optimisers with sparse-column
support, classification metrics, and the convolutional front-end for the
paper's CIFAR-10 setting.
"""

from .activations import (
    Activation,
    Identity,
    LeakyReLU,
    LogSoftmax,
    ReLU,
    Sigmoid,
    Softplus,
    Tanh,
    get_activation,
)
from .checkpoint import (
    TrainerCheckpoint,
    checkpoint_path,
    load_checkpoint,
    save_checkpoint,
)
from .layers import DenseLayer
from .losses import CrossEntropyLoss, Loss, MSELoss, NLLLoss, get_loss
from .metrics import (
    accuracy,
    collapse_report,
    topk_accuracy,
    confusion_matrix,
    distinct_predictions,
    per_class_report,
    prediction_distribution,
    prediction_entropy,
)
from .network import MLP, ForwardCache
from .optim import SGD, Adagrad, Adam, Momentum, Optimizer, get_optimizer
from .schedules import (
    ConstantSchedule,
    CosineSchedule,
    ExponentialDecaySchedule,
    StepDecaySchedule,
    WarmupSchedule,
    get_schedule,
)

__all__ = [
    "Activation",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "Softplus",
    "LogSoftmax",
    "get_activation",
    "Loss",
    "NLLLoss",
    "CrossEntropyLoss",
    "MSELoss",
    "get_loss",
    "DenseLayer",
    "MLP",
    "ForwardCache",
    "Optimizer",
    "SGD",
    "Momentum",
    "Adagrad",
    "Adam",
    "get_optimizer",
    "ConstantSchedule",
    "StepDecaySchedule",
    "ExponentialDecaySchedule",
    "CosineSchedule",
    "WarmupSchedule",
    "get_schedule",
    "accuracy",
    "confusion_matrix",
    "per_class_report",
    "prediction_distribution",
    "prediction_entropy",
    "distinct_predictions",
    "topk_accuracy",
    "collapse_report",
    "TrainerCheckpoint",
    "checkpoint_path",
    "save_checkpoint",
    "load_checkpoint",
]
