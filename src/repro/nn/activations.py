"""Element-wise activation functions with explicit derivatives.

The training methods in :mod:`repro.core` implement backpropagation by hand
(the paper's algorithms sample *inside* the matrix products, which rules out
an off-the-shelf autograd), so every activation exposes both ``forward`` and
``derivative``.  Activations are stateless; the same instance can be shared
across layers and threads.

The output activation of the paper's networks is log-softmax, which is not
element-wise.  It is modelled by :class:`LogSoftmax`, whose backward pass is
only ever needed fused with the negative log-likelihood loss (see
:class:`repro.nn.losses.NLLLoss`), matching how the paper trains.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Activation",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "Softplus",
    "LogSoftmax",
    "get_activation",
]


class Activation:
    """Base class for element-wise activations.

    Subclasses implement :meth:`forward` and :meth:`derivative`; both are
    vectorized over arrays of any shape.
    """

    name = "base"

    def forward(self, z: np.ndarray) -> np.ndarray:
        """Apply the activation to pre-activations ``z``."""
        raise NotImplementedError

    def derivative(self, z: np.ndarray) -> np.ndarray:
        """Return f'(z) evaluated element-wise at the pre-activations."""
        raise NotImplementedError

    def __call__(self, z: np.ndarray) -> np.ndarray:
        return self.forward(z)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ReLU(Activation):
    """Rectified linear unit, the paper's default hidden activation (§8.4)."""

    name = "relu"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.maximum(z, 0.0)

    def derivative(self, z: np.ndarray) -> np.ndarray:
        return (z > 0.0).astype(z.dtype)


class LeakyReLU(Activation):
    """ReLU with a small negative-side slope to avoid dead units."""

    name = "leaky_relu"

    def __init__(self, alpha: float = 0.01):
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = float(alpha)

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.where(z > 0.0, z, self.alpha * z)

    def derivative(self, z: np.ndarray) -> np.ndarray:
        return np.where(z > 0.0, 1.0, self.alpha).astype(z.dtype)


class Sigmoid(Activation):
    """Logistic sigmoid, numerically stabilised for large ``|z|``."""

    name = "sigmoid"

    def forward(self, z: np.ndarray) -> np.ndarray:
        out = np.empty_like(z, dtype=float)
        pos = z >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        out[~pos] = ez / (1.0 + ez)
        return out

    def derivative(self, z: np.ndarray) -> np.ndarray:
        s = self.forward(z)
        return s * (1.0 - s)


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.tanh(z)

    def derivative(self, z: np.ndarray) -> np.ndarray:
        t = np.tanh(z)
        return 1.0 - t * t


class Identity(Activation):
    """Linear activation f(z) = z, used by the §7 theoretical analysis."""

    name = "identity"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return z

    def derivative(self, z: np.ndarray) -> np.ndarray:
        return np.ones_like(z, dtype=float)


class Softplus(Activation):
    """Smooth approximation of ReLU: log(1 + exp(z))."""

    name = "softplus"

    def forward(self, z: np.ndarray) -> np.ndarray:
        # log(1 + e^z) = max(z, 0) + log(1 + e^{-|z|}) avoids overflow.
        return np.maximum(z, 0.0) + np.log1p(np.exp(-np.abs(z)))

    def derivative(self, z: np.ndarray) -> np.ndarray:
        return Sigmoid().forward(z)


class LogSoftmax(Activation):
    """Row-wise log-softmax, the paper's output activation (§8.4).

    ``derivative`` deliberately raises: the Jacobian is not diagonal, and in
    this codebase log-softmax only ever appears fused with the NLL loss,
    where the combined gradient is ``softmax(z) - onehot(y)``.
    """

    name = "log_softmax"

    def forward(self, z: np.ndarray) -> np.ndarray:
        z = np.atleast_2d(z)
        m = z.max(axis=1, keepdims=True)
        shifted = z - m
        logsum = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        return shifted - logsum

    def derivative(self, z: np.ndarray) -> np.ndarray:
        raise NotImplementedError(
            "LogSoftmax has a non-diagonal Jacobian; use the fused "
            "log-softmax + NLL gradient from repro.nn.losses.NLLLoss"
        )

    @staticmethod
    def softmax(z: np.ndarray) -> np.ndarray:
        """Row-wise softmax, shared by the fused loss gradient."""
        z = np.atleast_2d(z)
        shifted = z - z.max(axis=1, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=1, keepdims=True)


_REGISTRY = {
    cls.name: cls
    for cls in (ReLU, LeakyReLU, Sigmoid, Tanh, Identity, Softplus, LogSoftmax)
}


def get_activation(name) -> Activation:
    """Resolve an activation by name (or pass an instance through).

    >>> get_activation("relu")
    ReLU()
    """
    if isinstance(name, Activation):
        return name
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
