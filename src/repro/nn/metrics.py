"""Classification metrics used throughout the evaluation (§8.5, §10.3).

Besides accuracy and confusion matrices (the paper's Figure 3), this module
implements the diagnostics behind the §10.3 observation about ALSH-approx:
as depth grows, its *predicted-label distribution* collapses onto a few
classes.  :func:`prediction_entropy` and :func:`distinct_predictions`
quantify that collapse.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = [
    "accuracy",
    "confusion_matrix",
    "per_class_report",
    "prediction_entropy",
    "distinct_predictions",
    "prediction_distribution",
    "topk_accuracy",
    "collapse_report",
]


def _validate(y_true: np.ndarray, y_pred: np.ndarray):
    y_true = np.asarray(y_true).reshape(-1)
    y_pred = np.asarray(y_pred).reshape(-1)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return y_true.astype(int), y_pred.astype(int)


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions, in [0, 1]."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float((y_true == y_pred).mean())


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int
) -> np.ndarray:
    """Counts matrix ``M[i, j]`` = samples with true class i predicted j.

    Rows are true labels and columns predictions, matching the axes of the
    paper's Figure 3.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    if n_classes <= 0:
        raise ValueError(f"n_classes must be positive, got {n_classes}")
    if y_true.max() >= n_classes or y_pred.max() >= n_classes:
        raise ValueError("labels exceed n_classes")
    if y_true.min() < 0 or y_pred.min() < 0:
        raise ValueError("labels must be non-negative")
    m = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(m, (y_true, y_pred), 1)
    return m


def per_class_report(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int
) -> Dict[str, np.ndarray]:
    """Per-class precision, recall and F1 (zero where undefined)."""
    cm = confusion_matrix(y_true, y_pred, n_classes)
    tp = np.diag(cm).astype(float)
    pred_totals = cm.sum(axis=0).astype(float)
    true_totals = cm.sum(axis=1).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(pred_totals > 0, tp / pred_totals, 0.0)
        recall = np.where(true_totals > 0, tp / true_totals, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2 * precision * recall / denom, 0.0)
    return {"precision": precision, "recall": recall, "f1": f1, "support": true_totals}


def prediction_distribution(y_pred: np.ndarray, n_classes: int) -> np.ndarray:
    """Empirical distribution of the predicted labels."""
    y_pred = np.asarray(y_pred).reshape(-1).astype(int)
    if y_pred.size == 0:
        raise ValueError("empty prediction array")
    counts = np.bincount(y_pred, minlength=n_classes).astype(float)
    return counts / counts.sum()


def prediction_entropy(y_pred: np.ndarray, n_classes: int) -> float:
    """Shannon entropy (nats) of the predicted-label distribution.

    A healthy classifier on a balanced test set is near ``log(n_classes)``;
    the §10.3 ALSH collapse drives this towards 0.
    """
    p = prediction_distribution(y_pred, n_classes)
    nz = p[p > 0]
    return float(-(nz * np.log(nz)).sum())


def distinct_predictions(y_pred: np.ndarray) -> int:
    """Number of distinct classes the model actually predicts."""
    y_pred = np.asarray(y_pred).reshape(-1)
    if y_pred.size == 0:
        raise ValueError("empty prediction array")
    return int(np.unique(y_pred).size)


def topk_accuracy(y_true: np.ndarray, logproba: np.ndarray, k: int = 3) -> float:
    """Fraction of samples whose true class is among the top-k outputs.

    ``logproba`` is the network's (log-)probability matrix; only the
    per-row ordering matters.
    """
    y_true = np.asarray(y_true).reshape(-1)
    logproba = np.atleast_2d(logproba)
    if y_true.shape[0] != logproba.shape[0]:
        raise ValueError(
            f"{y_true.shape[0]} labels vs {logproba.shape[0]} output rows"
        )
    if not 1 <= k <= logproba.shape[1]:
        raise ValueError(f"k must be in [1, {logproba.shape[1]}], got {k}")
    top = np.argpartition(-logproba, k - 1, axis=1)[:, :k]
    return float((top == y_true[:, None]).any(axis=1).mean())


def collapse_report(y_pred: np.ndarray, n_classes: int) -> Dict[str, float]:
    """The §10.3 prediction-collapse diagnostics in one dict.

    Keys: ``entropy`` (nats; log(n_classes) is healthy), ``distinct``
    (classes actually predicted), ``top_share`` (mass on the most
    predicted label; 1/n_classes is healthy, →1 under collapse).
    """
    dist = prediction_distribution(y_pred, n_classes)
    return {
        "entropy": prediction_entropy(y_pred, n_classes),
        "distinct": float(distinct_predictions(y_pred)),
        "top_share": float(dist.max()),
    }
