"""Crash-safe training checkpoints: capture, persist, resume.

The paper's evaluation grid (6 datasets × 6 methods × 50 epochs, plus the
depth/batch sweeps of Figures 7–12) is hours of CPU compute; a fault that
loses a run invalidates its timing comparison.  This module is the
persistence layer that makes mid-run trainer state survive a crash:

* :class:`TrainerCheckpoint` is the *complete* state of a
  :class:`~repro.core.base.Trainer` at an epoch boundary — network
  weights, optimiser slot variables, the trainer's and the batch
  loader's ``np.random.Generator`` bit-generator states, early-stopping
  bookkeeping, the :class:`~repro.core.base.History` so far, and any
  method-specific auxiliary state (ALSH hash tables and rebuild
  counters, drift references, …) contributed by the trainer's
  ``checkpoint_state`` hook.
* :func:`save_checkpoint` writes it as a single kind-tagged ``.npz``
  archive, **atomically** (same-directory temp file + ``os.replace``),
  so a crash mid-write can never destroy the previous good checkpoint.
* :func:`load_checkpoint` reads it back, raising a clear ``ValueError``
  on truncated/corrupt archives, foreign kinds or unknown versions.

The hard guarantee (enforced by ``tests/core/test_resume_equality.py``):
a run checkpointed at epoch *k* and resumed is **bitwise identical** to
an uninterrupted run with the same seed — weights, losses, validation
accuracies and test predictions.  Everything that can influence a
floating-point operation after epoch *k* is captured exactly; wall-clock
timings are the only fields allowed to differ.

The same carry covers observability: when the trainer records through
an enabled recorder, the ``payload["obs"]`` section holds the recorded
time series (:mod:`repro.obs.timeseries`) and, when quality probes are
attached, the probe manager's step counter, disabled set and private
RNG stream — so a killed-and-resumed run reproduces the *identical*
metric series, index-for-index (wall-clock series like
``train.epoch_time`` excepted).  Checkpoints from before this section
restore fine; the field is simply absent.

The scalar/structured portion travels as one JSON blob (Python's JSON
round-trips floats and arbitrary-precision ints exactly, which covers
PCG64 bit-generator states); arrays travel as native ``.npz`` members,
also exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

import json

import numpy as np

from .serialize import atomic_savez, read_archive

__all__ = [
    "TrainerCheckpoint",
    "checkpoint_path",
    "save_checkpoint",
    "load_checkpoint",
]

_FORMAT_VERSION = 1
_CKPT_KIND = "trainer_checkpoint"
_META_ENTRY = "meta"


@dataclass
class TrainerCheckpoint:
    """Complete trainer state at an epoch boundary.

    ``payload`` holds everything JSON-safe (rng states, optimiser layout,
    history, early-stopping bookkeeping, method aux metadata); ``arrays``
    holds every ndarray (weights, optimiser slots, hash-table state),
    keyed by dotted names.  The split exists purely so the whole thing
    fits one ``.npz`` archive without pickling.
    """

    method: str
    epoch: int  #: completed epochs at capture time
    stopped_early: bool = False
    payload: Dict[str, Any] = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)


def checkpoint_path(
    directory: Union[str, Path], tag: Optional[str] = None
) -> Path:
    """Canonical checkpoint file path for a run tag inside a directory."""
    name = f"{tag}.ckpt.npz" if tag else "trainer.ckpt.npz"
    return Path(directory) / name


def save_checkpoint(
    ckpt: TrainerCheckpoint, path: Union[str, Path]
) -> Path:
    """Atomically persist a checkpoint as a kind-tagged ``.npz`` archive.

    A crash at any point leaves either the previous checkpoint or the new
    one on disk, never a truncated archive.  Returns the path written.
    """
    if _META_ENTRY in ckpt.arrays:
        raise ValueError(f"array name {_META_ENTRY!r} is reserved")
    meta = {
        "format_version": _FORMAT_VERSION,
        "kind": _CKPT_KIND,
        "method": ckpt.method,
        "epoch": int(ckpt.epoch),
        "stopped_early": bool(ckpt.stopped_early),
        "payload": ckpt.payload,
    }
    arrays = {
        _META_ENTRY: np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    }
    arrays.update(ckpt.arrays)
    return atomic_savez(path, arrays)


def load_checkpoint(path: Union[str, Path]) -> TrainerCheckpoint:
    """Load a checkpoint written by :func:`save_checkpoint`.

    Raises ``FileNotFoundError`` for a missing file and ``ValueError``
    for corrupt/truncated archives, non-checkpoint archives or unknown
    format versions.
    """
    path = Path(path)
    arrays = read_archive(path)
    if _META_ENTRY not in arrays:
        raise ValueError(f"{path} is not a trainer checkpoint (no meta entry)")
    try:
        meta = json.loads(arrays.pop(_META_ENTRY).tobytes().decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"{path} has a corrupt meta entry: {exc}") from exc
    if meta.get("kind") != _CKPT_KIND:
        raise ValueError(
            f"{path} holds a {meta.get('kind')!r} archive, "
            f"expected {_CKPT_KIND!r}"
        )
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint format version "
            f"{meta.get('format_version')!r}"
        )
    return TrainerCheckpoint(
        method=meta["method"],
        epoch=int(meta["epoch"]),
        stopped_early=bool(meta["stopped_early"]),
        payload=meta.get("payload", {}),
        arrays=arrays,
    )
