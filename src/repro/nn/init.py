"""Weight initialisation schemes.

ALSH-approx (§5.2) requires the column norms of every weight matrix to stay
below a constant ``C < 1`` so the Shrivastava–Li transform applies;
:func:`scaled_columns` provides an initialiser that enforces this at t=0
(the trainer re-normalises during training).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "he_normal",
    "he_uniform",
    "xavier_normal",
    "xavier_uniform",
    "uniform",
    "zeros",
    "scaled_columns",
    "get_initializer",
]


def he_normal(n_in: int, n_out: int, rng: np.random.Generator) -> np.ndarray:
    """He initialisation, the sensible default for ReLU networks."""
    return rng.normal(0.0, np.sqrt(2.0 / n_in), size=(n_in, n_out))


def he_uniform(n_in: int, n_out: int, rng: np.random.Generator) -> np.ndarray:
    """He initialisation with a uniform distribution."""
    limit = np.sqrt(6.0 / n_in)
    return rng.uniform(-limit, limit, size=(n_in, n_out))


def xavier_normal(n_in: int, n_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialisation (sigmoid/tanh networks)."""
    return rng.normal(0.0, np.sqrt(2.0 / (n_in + n_out)), size=(n_in, n_out))


def xavier_uniform(n_in: int, n_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / (n_in + n_out))
    return rng.uniform(-limit, limit, size=(n_in, n_out))


def uniform(n_in: int, n_out: int, rng: np.random.Generator) -> np.ndarray:
    """Plain U(-0.05, 0.05) initialisation."""
    return rng.uniform(-0.05, 0.05, size=(n_in, n_out))


def zeros(n_in: int, n_out: int, rng: np.random.Generator) -> np.ndarray:
    """All-zero weights (useful in tests only; breaks symmetry nowhere)."""
    return np.zeros((n_in, n_out))


def scaled_columns(
    n_in: int,
    n_out: int,
    rng: np.random.Generator,
    max_norm: float = 0.9,
) -> np.ndarray:
    """He init with every column rescaled to l2-norm ≤ ``max_norm`` < 1.

    This satisfies the ‖w‖ ≤ C < 1 precondition of the ALSH transform
    (Definition 5.1 of the paper) at initialisation.
    """
    if not 0.0 < max_norm < 1.0:
        raise ValueError(f"max_norm must be in (0, 1), got {max_norm}")
    w = he_normal(n_in, n_out, rng)
    norms = np.linalg.norm(w, axis=0)
    over = norms > max_norm
    if over.any():
        w[:, over] *= max_norm / norms[over]
    return w


_REGISTRY = {
    "he_normal": he_normal,
    "he_uniform": he_uniform,
    "xavier_normal": xavier_normal,
    "xavier_uniform": xavier_uniform,
    "uniform": uniform,
    "zeros": zeros,
    "scaled_columns": scaled_columns,
}


def get_initializer(name):
    """Resolve an initialiser by name (or pass a callable through)."""
    if callable(name):
        return name
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown initializer {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
