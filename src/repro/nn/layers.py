"""Fully connected layers as explicit parameter containers.

Layers here deliberately stay *thin*: a :class:`DenseLayer` owns its weight
matrix ``W`` (shape ``n_in × n_out`` — column *j* is the fan-in of node *j*,
exactly the orientation used in the paper's Figure 2) and bias ``b``, plus
the handful of primitive products the sampling-based trainers need:

* exact forward (``a_prev @ W + b``),
* column-restricted forward — "sampling from the current layer" (§5),
* row-restricted forward — "sampling from the previous layer" (§6),
* exact gradient products for backpropagation.

All sampling *policy* (which columns/rows, with what probability, how the
result is scaled) lives in :mod:`repro.core`; keeping the mechanics here lets
every method share one well-tested implementation.  The products
themselves execute on the active compute backend
(:func:`repro.backend.active_backend`) — the layer stays the single
place that knows *which* product to take, the backend decides *how*.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..backend import active_backend
from .init import get_initializer

__all__ = ["DenseLayer"]


class DenseLayer:
    """A dense layer ``z = a_prev @ W + b``.

    Parameters
    ----------
    n_in, n_out:
        Fan-in and fan-out of the layer.
    rng:
        NumPy random generator used for initialisation.
    initializer:
        Name from :mod:`repro.nn.init` or a callable
        ``(n_in, n_out, rng) -> ndarray``.
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        rng: np.random.Generator,
        initializer="he_normal",
    ):
        if n_in <= 0 or n_out <= 0:
            raise ValueError(f"layer dims must be positive, got {n_in}x{n_out}")
        self.n_in = int(n_in)
        self.n_out = int(n_out)
        self.W = np.ascontiguousarray(get_initializer(initializer)(n_in, n_out, rng))
        self.b = np.zeros(n_out)

    # ------------------------------------------------------------------
    # forward products
    # ------------------------------------------------------------------
    def forward(self, a_prev: np.ndarray) -> np.ndarray:
        """Exact pre-activations for a batch: ``a_prev @ W + b``."""
        return active_backend().matmul_add_bias(a_prev, self.W, self.b)

    def forward_columns(self, a_prev: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Exact pre-activations for the selected output nodes only.

        Implements "sampling from the current layer" (§5 / Figure 2): only
        the columns of ``W`` for the active nodes are touched, so the work
        is ``O(batch · n_in · |cols|)`` instead of ``O(batch · n_in · n_out)``.
        """
        cols = np.asarray(cols)
        return active_backend().matmul_cols(a_prev, self.W, self.b, cols)

    def forward_rows(
        self,
        a_prev: np.ndarray,
        rows: np.ndarray,
        scale: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Approximate pre-activations using a subset of input nodes.

        Implements "sampling from the previous layer" (§6): every inner
        product is estimated from the selected ``rows`` of ``W`` (and the
        matching entries of ``a_prev``), optionally rescaled per-row by
        ``scale`` (``1/p_i`` for the Monte-Carlo estimators).
        """
        rows = np.asarray(rows)
        return active_backend().matmul_rows(a_prev, self.W, self.b, rows, scale)

    # ------------------------------------------------------------------
    # backward products
    # ------------------------------------------------------------------
    def weight_gradients(self, a_prev: np.ndarray, delta: np.ndarray):
        """Exact (gW, gb) given dL/dz of this layer."""
        return active_backend().grad_cols(a_prev, delta), delta.sum(axis=0)

    def backprop_delta(self, delta: np.ndarray) -> np.ndarray:
        """Propagate dL/dz back to dL/da of the previous layer."""
        return active_backend().matmul(delta, self.W.T)

    def backprop_delta_columns(
        self, delta_cols: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        """Back-propagate through the active columns only."""
        cols = np.asarray(cols)
        return active_backend().backprop_cols(delta_cols, self.W, cols)

    def weight_gradients_columns(
        self, a_prev: np.ndarray, delta_cols: np.ndarray, cols: np.ndarray
    ):
        """Sparse (gW_cols, gb_cols) for the active columns only."""
        return (
            active_backend().grad_cols(a_prev, delta_cols),
            delta_cols.sum(axis=0),
        )

    # ------------------------------------------------------------------
    # utilities
    # ------------------------------------------------------------------
    def column_norms(self) -> np.ndarray:
        """l2 norm of every column of ``W`` (ALSH preprocessing input)."""
        return np.linalg.norm(self.W, axis=0)

    def num_params(self) -> int:
        """Total learnable scalars in the layer."""
        return self.W.size + self.b.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DenseLayer({self.n_in}->{self.n_out})"
