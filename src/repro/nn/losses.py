"""Loss functions with gradients w.r.t. the network output.

The paper trains with negative log-likelihood on log-softmax outputs (§8.4).
:class:`NLLLoss` therefore also provides the *fused* gradient w.r.t. the
pre-softmax logits, which is what the hand-written backpropagation in
:mod:`repro.core` consumes.
"""

from __future__ import annotations

import numpy as np

from .activations import LogSoftmax

__all__ = ["Loss", "NLLLoss", "CrossEntropyLoss", "MSELoss", "get_loss"]


def _as_labels(y: np.ndarray) -> np.ndarray:
    """Normalise integer class labels to a 1-D int array."""
    y = np.asarray(y)
    if y.ndim == 2 and y.shape[1] > 1:  # one-hot
        return y.argmax(axis=1)
    return y.reshape(-1).astype(int)


class Loss:
    """Base class for losses over a batch of network outputs."""

    name = "base"

    def value(self, output: np.ndarray, target: np.ndarray) -> float:
        """Mean loss over the batch."""
        raise NotImplementedError

    def gradient(self, output: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the network *output*."""
        raise NotImplementedError


class NLLLoss(Loss):
    """Negative log-likelihood over log-probabilities (paper default).

    ``output`` is expected to already be log-probabilities (the result of a
    log-softmax layer).  :meth:`fused_logit_gradient` gives the gradient
    w.r.t. the *logits* that produced them, i.e. ``softmax(z) - onehot(y)``,
    averaged over the batch.
    """

    name = "nll"

    def value(self, output: np.ndarray, target: np.ndarray) -> float:
        output = np.atleast_2d(output)
        labels = _as_labels(target)
        if output.shape[0] == 0:
            raise ValueError("empty batch")
        if labels.shape[0] != output.shape[0]:
            raise ValueError(
                f"batch mismatch: {output.shape[0]} outputs, "
                f"{labels.shape[0]} targets"
            )
        picked = output[np.arange(output.shape[0]), labels]
        return float(-picked.mean())

    def gradient(self, output: np.ndarray, target: np.ndarray) -> np.ndarray:
        output = np.atleast_2d(output)
        labels = _as_labels(target)
        grad = np.zeros_like(output, dtype=float)
        grad[np.arange(output.shape[0]), labels] = -1.0
        return grad / output.shape[0]

    @staticmethod
    def fused_logit_gradient(logits: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Gradient of mean NLL(log_softmax(logits), y) w.r.t. ``logits``."""
        logits = np.atleast_2d(logits)
        labels = _as_labels(target)
        probs = LogSoftmax.softmax(logits)
        grad = probs.copy()
        grad[np.arange(logits.shape[0]), labels] -= 1.0
        return grad / logits.shape[0]


class CrossEntropyLoss(Loss):
    """Cross-entropy taking raw logits (log-softmax applied internally)."""

    name = "cross_entropy"

    def value(self, output: np.ndarray, target: np.ndarray) -> float:
        logp = LogSoftmax().forward(output)
        return NLLLoss().value(logp, target)

    def gradient(self, output: np.ndarray, target: np.ndarray) -> np.ndarray:
        return NLLLoss.fused_logit_gradient(output, target)


class MSELoss(Loss):
    """Mean squared error, for regression-style sanity checks and theory."""

    name = "mse"

    def value(self, output: np.ndarray, target: np.ndarray) -> float:
        output = np.atleast_2d(output)
        target = np.atleast_2d(np.asarray(target, dtype=float))
        return float(((output - target) ** 2).mean())

    def gradient(self, output: np.ndarray, target: np.ndarray) -> np.ndarray:
        output = np.atleast_2d(output)
        target = np.atleast_2d(np.asarray(target, dtype=float))
        return 2.0 * (output - target) / output.size


_REGISTRY = {cls.name: cls for cls in (NLLLoss, CrossEntropyLoss, MSELoss)}


def get_loss(name) -> Loss:
    """Resolve a loss by name (or pass an instance through)."""
    if isinstance(name, Loss):
        return name
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown loss {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
