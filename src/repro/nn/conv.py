"""Convolutional substrate for the paper's §8.4 convolutional setting.

The paper runs its CIFAR-10 experiment with a convolutional front-end and a
fully connected classifier, *keeping the convolutions exact* and applying the
sampling-based approximation only to the classifier head.  This module
provides that front-end from scratch: im2col-based 2-D convolution, max
pooling and flattening, each with exact forward and backward passes, plus a
:class:`ConvFeatureExtractor` that the experiment harness uses to turn image
tensors into the flat feature vectors the (approximated) MLP head consumes.

Tensors use NCHW layout: ``(batch, channels, height, width)``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..backend import active_backend

__all__ = [
    "im2col",
    "col2im",
    "Conv2D",
    "MaxPool2D",
    "Flatten",
    "ConvFeatureExtractor",
    "ConvClassifier",
]


def _out_size(size: int, field: int, stride: int, pad: int) -> int:
    out = (size + 2 * pad - field) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size for input {size}, field {field}, "
            f"stride {stride}, pad {pad}"
        )
    return out


def im2col(
    x: np.ndarray, field: int, stride: int = 1, pad: int = 0
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold sliding windows into matrix rows.

    Returns ``(cols, (out_h, out_w))`` where ``cols`` has shape
    ``(batch * out_h * out_w, channels * field * field)``; a convolution then
    becomes a single dense matmul against the reshaped kernel bank.
    """
    n, c, h, w = x.shape
    out_h = _out_size(h, field, stride, pad)
    out_w = _out_size(w, field, stride, pad)
    cols = active_backend().im2col(x, field, stride, pad, out_h, out_w)
    return cols, (out_h, out_w)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    field: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Adjoint of :func:`im2col` — scatter-add columns back to an image."""
    h, w = x_shape[2], x_shape[3]
    out_h = _out_size(h, field, stride, pad)
    out_w = _out_size(w, field, stride, pad)
    return active_backend().col2im(
        cols, x_shape, field, stride, pad, out_h, out_w
    )


class Conv2D:
    """2-D convolution with exact forward/backward via im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        field: int,
        stride: int = 1,
        pad: int = 0,
        rng: Optional[np.random.Generator] = None,
    ):
        if min(in_channels, out_channels, field, stride) <= 0:
            raise ValueError("conv dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        fan_in = in_channels * field * field
        self.kernels = rng.normal(
            0.0, np.sqrt(2.0 / fan_in), size=(out_channels, in_channels, field, field)
        )
        self.bias = np.zeros(out_channels)
        self.field = field
        self.stride = stride
        self.pad = pad
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Convolve a NCHW batch; caches intermediates for backward."""
        cols, (out_h, out_w) = im2col(x, self.field, self.stride, self.pad)
        k = self.kernels.reshape(self.kernels.shape[0], -1)  # (out_c, fan_in)
        out = active_backend().matmul_add_bias(cols, k.T, self.bias)
        n = x.shape[0]
        out = out.reshape(n, out_h * out_w, -1).transpose(0, 2, 1)
        out = out.reshape(n, -1, out_h, out_w)
        self._cache = (x.shape, cols)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Gradient w.r.t. input; stores ``grad_kernels``/``grad_bias``."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, cols = self._cache
        n, out_c, out_h, out_w = grad_out.shape
        g = grad_out.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, out_c)
        k = self.kernels.reshape(out_c, -1)
        backend = active_backend()
        self.grad_kernels = backend.grad_cols(g, cols).reshape(
            self.kernels.shape
        )
        self.grad_bias = g.sum(axis=0)
        grad_cols = backend.matmul(g, k)
        return col2im(grad_cols, x_shape, self.field, self.stride, self.pad)

    def params_and_grads(self):
        """Pairs of (parameter, gradient) for the optimiser loop."""
        return [(self.kernels, self.grad_kernels), (self.bias, self.grad_bias)]


class MaxPool2D:
    """Non-overlapping max pooling with exact backward routing."""

    def __init__(self, size: int = 2):
        if size <= 0:
            raise ValueError(f"pool size must be positive, got {size}")
        self.size = size
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            raise ValueError(f"input {h}x{w} not divisible by pool size {s}")
        blocks = x.reshape(n, c, h // s, s, w // s, s)
        out = blocks.max(axis=(3, 5))
        self._cache = (x, out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x, out = self._cache
        s = self.size
        up = np.repeat(np.repeat(out, s, axis=2), s, axis=3)
        mask = (x == up).astype(float)
        # Ties are split evenly so the gradient mass is conserved.
        blocks = mask.reshape(*mask.shape[:2], mask.shape[2] // s, s, mask.shape[3] // s, s)
        counts = blocks.sum(axis=(3, 5), keepdims=True)
        blocks /= counts
        mask = blocks.reshape(x.shape)
        g_up = np.repeat(np.repeat(grad_out, s, axis=2), s, axis=3)
        return g_up * mask


class Flatten:
    """Reshape NCHW feature maps to flat rows (and back in backward)."""

    def __init__(self):
        self._shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._shape)


class ConvFeatureExtractor:
    """A small exact conv stack producing flat features for an MLP head.

    Mirrors the paper's convolutional setting: convolutions stay exact and
    only the fully connected classifier on top is approximated.  Channel
    widths and pooling are configurable; defaults target 32×32×3 inputs
    (the CIFAR-like benchmark).
    """

    def __init__(
        self,
        in_channels: int = 3,
        channels: Sequence[int] = (8, 16),
        field: int = 3,
        pool: int = 2,
        seed: Optional[int] = None,
    ):
        rng = np.random.default_rng(seed)
        self.stages: List[Tuple[Conv2D, MaxPool2D]] = []
        prev = in_channels
        for ch in channels:
            self.stages.append(
                (Conv2D(prev, ch, field, stride=1, pad=field // 2, rng=rng),
                 MaxPool2D(pool))
            )
            prev = ch
        self.flatten = Flatten()

    def forward(self, x: np.ndarray) -> np.ndarray:
        """NCHW images → (batch, n_features) with ReLU between stages."""
        a = x
        self._relu_masks = []
        for conv, pool in self.stages:
            z = conv.forward(a)
            mask = z > 0
            self._relu_masks.append(mask)
            a = pool.forward(z * mask)
        return self.flatten.forward(a)

    def backward(self, grad_features: np.ndarray) -> np.ndarray:
        """Propagate classifier gradient back through the conv stack."""
        g = self.flatten.backward(grad_features)
        for (conv, pool), mask in zip(reversed(self.stages), reversed(self._relu_masks)):
            g = pool.backward(g)
            g = conv.backward(g * mask)
        return g

    def feature_dim(self, height: int, width: int) -> int:
        """Flat feature dimensionality for a given input image size."""
        h, w = height, width
        ch = None
        for conv, pool in self.stages:
            h //= pool.size
            w //= pool.size
            ch = conv.kernels.shape[0]
        return ch * h * w


class ConvClassifier:
    """Conv feature extractor + MLP head trained jointly, exactly.

    This is the substrate for the paper's convolutional setting: the conv
    stack is always trained with exact gradients; after :meth:`fit`, the
    extractor can be frozen and the (re-initialised) classifier head
    handed to any sampling-based trainer from :mod:`repro.core` — exactly
    the "limit the approximation to the classifier" protocol of §8.4.

    Parameters
    ----------
    extractor:
        A :class:`ConvFeatureExtractor` (trained in place).
    head:
        The MLP classifier on top of the flat conv features (its input
        width must equal the extractor's feature dim for the image size).
    lr:
        Learning rate for plain SGD on both parts.
    """

    def __init__(self, extractor: "ConvFeatureExtractor", head, lr: float = 1e-2):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.extractor = extractor
        self.head = head
        self.lr = float(lr)

    def train_batch(self, images: np.ndarray, labels: np.ndarray) -> float:
        """One exact end-to-end SGD step; returns the batch loss."""
        from .losses import NLLLoss

        feats = self.extractor.forward(images)
        cache = self.head.forward(feats)
        loss = NLLLoss().value(cache.output, labels)
        grads = self.head.backward(cache, labels)
        # Recompute the delta chain down to the features.
        delta = NLLLoss.fused_logit_gradient(cache.zs[-1], labels)
        for i in range(len(self.head.layers) - 1, 0, -1):
            da = self.head.layers[i].backprop_delta(delta)
            delta = da * self.head.hidden_activation.derivative(cache.zs[i - 1])
        d_feat = self.head.layers[0].backprop_delta(delta)
        self.extractor.backward(d_feat)
        for conv, _ in self.extractor.stages:
            conv.kernels -= self.lr * conv.grad_kernels
            conv.bias -= self.lr * conv.grad_bias
        for (g_w, g_b), layer in zip(grads, self.head.layers):
            layer.W -= self.lr * g_w
            layer.b -= self.lr * g_b
        return loss

    def fit(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        epochs: int = 3,
        batch_size: int = 20,
        seed: Optional[int] = None,
    ) -> List[float]:
        """Joint exact training; returns the mean loss per epoch."""
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        rng = np.random.default_rng(seed)
        n = labels.shape[0]
        epoch_losses = []
        for _ in range(epochs):
            order = rng.permutation(n)
            losses = []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                losses.append(self.train_batch(images[idx], labels[idx]))
            epoch_losses.append(float(np.mean(losses)))
        return epoch_losses

    def features(self, images: np.ndarray) -> np.ndarray:
        """Flat conv features for a batch of NCHW images."""
        return self.extractor.forward(images)

    def predict(self, images: np.ndarray) -> np.ndarray:
        """End-to-end class predictions."""
        return self.head.predict(self.features(images))
