"""First-order optimisers with dense *and* sparse-column updates.

ALSH-approx (§5.2) only back-propagates through the active nodes of each
layer, so its weight-gradient updates touch a small subset of the columns of
``W``.  To keep that sparsity profitable, every optimiser here supports an
``index`` argument that restricts the update — including its internal state
(moments, accumulators, step counts) — to the selected columns.

The paper uses SGD for most methods and Adam for ALSH-approx (§8.4, noting
the reference implementation works better with Adam than the original
Adagrad); all four are provided.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = ["Optimizer", "SGD", "Momentum", "Adagrad", "Adam", "get_optimizer"]


def _slice(arr: np.ndarray, index: Optional[np.ndarray]):
    """View of ``arr`` restricted to output-node columns.

    For 2-D parameters (weight matrices, ``n_in × n_out``) the index selects
    columns; for 1-D parameters (biases) it selects entries.
    """
    if index is None:
        return arr
    if arr.ndim == 2:
        return arr[:, index]
    return arr[index]


def _assign(arr: np.ndarray, index: Optional[np.ndarray], value: np.ndarray):
    """Write ``value`` into the column slice of ``arr`` selected by index."""
    if index is None:
        arr[...] = value
    elif arr.ndim == 2:
        arr[:, index] = value
    else:
        arr[index] = value


class Optimizer:
    """Base class holding per-parameter state keyed by caller-chosen ids.

    Parameters are updated in place.  ``key`` must be stable across steps
    (e.g. ``("W", layer_idx)``); state arrays are allocated lazily at full
    parameter size so sparse and dense updates can interleave freely.

    ``weight_decay`` applies decoupled L2 shrinkage (AdamW-style):
    ``p ← p · (1 − lr·wd)`` before the gradient step, restricted to the
    updated columns for sparse updates so untouched weights are not decayed
    (matching the lazy-state convention).

    ``max_grad_norm`` clips each incoming gradient tensor to the given
    Frobenius norm before it is applied — the standard guard against the
    variance blow-ups that 1/p-scaled sampled gradients can produce in
    deep networks (see repro.core.mc_approx).
    """

    def __init__(
        self,
        lr: float,
        weight_decay: float = 0.0,
        max_grad_norm: Optional[float] = None,
    ):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        if max_grad_norm is not None and max_grad_norm <= 0:
            raise ValueError(f"max_grad_norm must be positive, got {max_grad_norm}")
        self.lr = float(lr)
        self.weight_decay = float(weight_decay)
        self.max_grad_norm = None if max_grad_norm is None else float(max_grad_norm)
        self._state: Dict[object, Dict[str, np.ndarray]] = {}

    def _clip(self, grad: np.ndarray) -> np.ndarray:
        if self.max_grad_norm is None:
            return grad
        norm = float(np.linalg.norm(grad))
        if norm <= self.max_grad_norm or norm == 0.0:
            return grad
        return grad * (self.max_grad_norm / norm)

    def _apply_weight_decay(
        self, param: np.ndarray, index: Optional[np.ndarray]
    ) -> None:
        if self.weight_decay == 0.0:
            return
        shrink = 1.0 - self.lr * self.weight_decay
        if index is None:
            param *= shrink
        elif param.ndim == 2:
            param[:, index] *= shrink
        else:
            param[index] *= shrink

    def _get_state(self, key, param: np.ndarray) -> Dict[str, np.ndarray]:
        state = self._state.get(key)
        if state is None:
            state = self._init_state(param)
            self._state[key] = state
        return state

    def _init_state(self, param: np.ndarray) -> Dict[str, np.ndarray]:
        return {}

    def update(
        self,
        key,
        param: np.ndarray,
        grad: np.ndarray,
        index: Optional[np.ndarray] = None,
    ) -> None:
        """Apply one optimisation step in place.

        ``grad`` must already be restricted to the ``index`` columns when an
        index is given (that is exactly what the sparse trainers produce).
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Drop all accumulated state (fresh optimiser)."""
        self._state.clear()

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self):
        """Complete optimiser state as ``(meta, arrays)``.

        ``meta`` is JSON-safe (optimiser name, learning rate, slot layout)
        and ``arrays`` maps flat names to the slot arrays, ready for an
        ``.npz`` checkpoint.  Parameter keys must be strings or flat tuples
        of JSON scalars (the trainers use ``("W", i)`` / ``("b", i)``).
        """
        meta = {
            "name": getattr(self, "name", type(self).__name__.lower()),
            "lr": self.lr,
            "keys": [],
        }
        arrays = {}
        for j, (key, state) in enumerate(self._state.items()):
            meta["keys"].append(
                {
                    "key": list(key) if isinstance(key, tuple) else key,
                    "tuple": isinstance(key, tuple),
                    "slots": sorted(state),
                }
            )
            for slot in state:
                arrays[f"opt.{j}.{slot}"] = state[slot]
        return meta, arrays

    def load_state_dict(self, meta, arrays) -> None:
        """Restore state captured by :meth:`state_dict` (exact copy)."""
        name = getattr(self, "name", type(self).__name__.lower())
        if meta.get("name") != name:
            raise ValueError(
                f"checkpoint holds {meta.get('name')!r} optimiser state, "
                f"this trainer uses {name!r}"
            )
        self.lr = float(meta["lr"])
        self._state.clear()
        for j, entry in enumerate(meta["keys"]):
            key = tuple(entry["key"]) if entry["tuple"] else entry["key"]
            self._state[key] = {
                slot: np.array(arrays[f"opt.{j}.{slot}"])
                for slot in entry["slots"]
            }


class SGD(Optimizer):
    """Plain stochastic gradient descent: ``p ← p − lr · g``."""

    name = "sgd"

    def update(self, key, param, grad, index=None):
        self._apply_weight_decay(param, index)
        grad = self._clip(grad)
        if index is None:
            param -= self.lr * grad
        elif param.ndim == 2:
            param[:, index] -= self.lr * grad
        else:
            param[index] -= self.lr * grad


class Momentum(Optimizer):
    """SGD with classical momentum."""

    name = "momentum"

    def __init__(self, lr: float, beta: float = 0.9, weight_decay: float = 0.0,
                 max_grad_norm=None):
        super().__init__(lr, weight_decay, max_grad_norm)
        if not 0.0 <= beta < 1.0:
            raise ValueError(f"beta must be in [0, 1), got {beta}")
        self.beta = float(beta)

    def _init_state(self, param):
        return {"v": np.zeros_like(param, dtype=float)}

    def update(self, key, param, grad, index=None):
        self._apply_weight_decay(param, index)
        grad = self._clip(grad)
        state = self._get_state(key, param)
        v = _slice(state["v"], index)
        v_new = self.beta * v + grad
        _assign(state["v"], index, v_new)
        if index is None:
            param -= self.lr * v_new
        elif param.ndim == 2:
            param[:, index] -= self.lr * v_new
        else:
            param[index] -= self.lr * v_new


class Adagrad(Optimizer):
    """Adagrad — the optimiser in the original ALSH-approx paper [50]."""

    name = "adagrad"

    def __init__(self, lr: float, eps: float = 1e-10, weight_decay: float = 0.0,
                 max_grad_norm=None):
        super().__init__(lr, weight_decay, max_grad_norm)
        self.eps = float(eps)

    def _init_state(self, param):
        return {"g2": np.zeros_like(param, dtype=float)}

    def update(self, key, param, grad, index=None):
        self._apply_weight_decay(param, index)
        grad = self._clip(grad)
        state = self._get_state(key, param)
        g2 = _slice(state["g2"], index) + grad * grad
        _assign(state["g2"], index, g2)
        step = self.lr * grad / (np.sqrt(g2) + self.eps)
        if index is None:
            param -= step
        elif param.ndim == 2:
            param[:, index] -= step
        else:
            param[index] -= step


class Adam(Optimizer):
    """Adam — used for ALSH-approx in the paper's experiments (§8.4).

    For sparse-column updates the bias-correction step count is tracked per
    column, following the "lazy Adam" convention: a column's moments only
    advance when it receives a gradient.
    """

    name = "adam"

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        max_grad_norm: Optional[float] = None,
    ):
        super().__init__(lr, weight_decay, max_grad_norm)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1): {beta1}, {beta2}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)

    def _init_state(self, param):
        n_cols = param.shape[-1] if param.ndim == 2 else param.shape[0]
        return {
            "m": np.zeros_like(param, dtype=float),
            "v": np.zeros_like(param, dtype=float),
            "t": np.zeros(n_cols, dtype=np.int64),
        }

    def update(self, key, param, grad, index=None):
        self._apply_weight_decay(param, index)
        grad = self._clip(grad)
        state = self._get_state(key, param)
        col_idx = slice(None) if index is None else index
        state["t"][col_idx] += 1
        t = state["t"][col_idx]

        m = self.beta1 * _slice(state["m"], index) + (1 - self.beta1) * grad
        v = self.beta2 * _slice(state["v"], index) + (1 - self.beta2) * grad * grad
        _assign(state["m"], index, m)
        _assign(state["v"], index, v)

        bc1 = 1.0 - self.beta1**t
        bc2 = 1.0 - self.beta2**t
        m_hat = m / bc1
        v_hat = v / bc2
        step = self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        if index is None:
            param -= step
        elif param.ndim == 2:
            param[:, index] -= step
        else:
            param[index] -= step


_REGISTRY = {cls.name: cls for cls in (SGD, Momentum, Adagrad, Adam)}


def get_optimizer(name, lr: float, **kwargs) -> Optimizer:
    """Build an optimiser by name with the given learning rate."""
    if isinstance(name, Optimizer):
        return name
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(lr, **kwargs)
