"""Model persistence: save/load MLP weights and architecture.

Models are stored as NumPy ``.npz`` archives holding the architecture
metadata plus every layer's weight matrix and bias, so a trained network
survives a process restart — needed for the longer paper-scale runs and
for comparing checkpoints across training methods.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .network import MLP

__all__ = ["save_mlp", "load_mlp"]

_FORMAT_VERSION = 1


def save_mlp(net: MLP, path: Union[str, Path]) -> Path:
    """Serialise a network to ``path`` (``.npz`` appended if missing).

    Returns the path actually written.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = {
        "format_version": _FORMAT_VERSION,
        "layer_sizes": list(net.layer_sizes),
        "hidden_activation": net.hidden_activation.name,
        "output_activation": net.output_activation.name,
    }
    arrays = {"meta": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)}
    for i, layer in enumerate(net.layers):
        arrays[f"W{i}"] = layer.W
        arrays[f"b{i}"] = layer.b
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path


def load_mlp(path: Union[str, Path]) -> MLP:
    """Load a network saved by :func:`save_mlp`.

    Raises ``ValueError`` for missing/corrupt archives or unknown format
    versions.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    with np.load(path) as archive:
        if "meta" not in archive:
            raise ValueError(f"{path} is not a saved MLP (no meta entry)")
        meta = json.loads(archive["meta"].tobytes().decode())
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported format version {meta.get('format_version')!r}"
            )
        net = MLP(
            meta["layer_sizes"],
            hidden_activation=meta["hidden_activation"],
            output_activation=meta["output_activation"],
            seed=0,
        )
        for i, layer in enumerate(net.layers):
            w = archive[f"W{i}"]
            b = archive[f"b{i}"]
            if w.shape != layer.W.shape or b.shape != layer.b.shape:
                raise ValueError(f"layer {i} shape mismatch in {path}")
            layer.W = w.copy()
            layer.b = b.copy()
    return net
