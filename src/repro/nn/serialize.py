"""Model persistence: save/load MLP and ConvClassifier checkpoints.

Models are stored as NumPy ``.npz`` archives holding the architecture
metadata plus every layer's weight matrix and bias, so a trained network
survives a process restart — needed for the longer paper-scale runs and
for comparing checkpoints across training methods.  The convolutional
variant additionally records each conv stage's kernels, stride/padding
and pool size, so the §8.4 "exact conv front-end + approximated head"
protocol can resume from a trained extractor.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import zipfile
import zlib
from pathlib import Path
from typing import Dict, Union

import numpy as np

from .conv import ConvClassifier, ConvFeatureExtractor
from .network import MLP

__all__ = [
    "save_mlp",
    "load_mlp",
    "save_conv",
    "load_conv",
    "atomic_savez",
    "read_archive",
]

_FORMAT_VERSION = 1
_MLP_KIND = "mlp"
_CONV_KIND = "conv_classifier"

#: Everything ``np.load`` can raise on a truncated or garbled ``.npz`` —
#: a half-written zip directory (BadZipFile), a cut-off member (zlib
#: error / EOFError / struct.error) or a mangled ``.npy`` header
#: (ValueError / OSError).
_CORRUPT_ARCHIVE_ERRORS = (
    zipfile.BadZipFile,
    zlib.error,
    EOFError,
    struct.error,
    ValueError,
    OSError,
    KeyError,
)


def _normalise_path(path: Union[str, Path]) -> Path:
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def atomic_savez(path: Union[str, Path], arrays: Dict[str, np.ndarray]) -> Path:
    """Write an ``.npz`` archive atomically (same-dir temp + ``os.replace``).

    A crash at any point leaves either the previous archive or the new one
    intact, never a truncated file — the property the checkpoint/resume
    subsystem and the model savers rely on.  Returns ``path``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as f:
            np.savez(f, **arrays)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    return path


def read_archive(path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """Load every array of an ``.npz`` archive, validating integrity.

    Raises ``FileNotFoundError`` for a missing file and a clear
    ``ValueError`` for truncated/corrupt archives (every member is read
    eagerly, so mid-file truncation cannot surface later as a confusing
    decompression error).
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    try:
        with np.load(path) as archive:
            return {name: archive[name] for name in archive.files}
    except _CORRUPT_ARCHIVE_ERRORS as exc:
        raise ValueError(
            f"{path} is not a readable .npz archive (truncated or corrupt): "
            f"{exc}"
        ) from exc


def _read_meta(archive, path: Path, expected_kind: str) -> dict:
    if "meta" not in archive:
        raise ValueError(f"{path} is not a saved model (no meta entry)")
    meta = json.loads(archive["meta"].tobytes().decode())
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {meta.get('format_version')!r}"
        )
    # Archives written before the conv checkpoint existed carry no kind
    # marker; they are all MLPs.
    kind = meta.get("kind", _MLP_KIND)
    if kind != expected_kind:
        raise ValueError(
            f"{path} holds a {kind!r} checkpoint, expected {expected_kind!r}"
        )
    return meta


def save_mlp(net: MLP, path: Union[str, Path]) -> Path:
    """Serialise a network to ``path`` (``.npz`` appended if missing).

    Returns the path actually written.
    """
    path = _normalise_path(path)
    meta = {
        "format_version": _FORMAT_VERSION,
        "kind": _MLP_KIND,
        "layer_sizes": list(net.layer_sizes),
        "hidden_activation": net.hidden_activation.name,
        "output_activation": net.output_activation.name,
    }
    arrays = {"meta": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)}
    for i, layer in enumerate(net.layers):
        arrays[f"W{i}"] = layer.W
        arrays[f"b{i}"] = layer.b
    return atomic_savez(path, arrays)


def _restore_mlp(archive, path: Path, meta: dict, prefix: str = "") -> MLP:
    net = MLP(
        meta["layer_sizes"],
        hidden_activation=meta["hidden_activation"],
        output_activation=meta["output_activation"],
        seed=0,
    )
    for i, layer in enumerate(net.layers):
        try:
            w = archive[f"{prefix}W{i}"]
            b = archive[f"{prefix}b{i}"]
        except KeyError:
            raise ValueError(f"layer {i} arrays missing from {path}") from None
        if w.shape != layer.W.shape or b.shape != layer.b.shape:
            raise ValueError(f"layer {i} shape mismatch in {path}")
        layer.W = w.copy()
        layer.b = b.copy()
    return net


def load_mlp(path: Union[str, Path]) -> MLP:
    """Load a network saved by :func:`save_mlp`.

    Raises ``ValueError`` for missing/corrupt archives, unknown format
    versions, or archives holding a different model kind.
    """
    path = Path(path)
    archive = read_archive(path)
    meta = _read_meta(archive, path, _MLP_KIND)
    return _restore_mlp(archive, path, meta)


def save_conv(model: ConvClassifier, path: Union[str, Path]) -> Path:
    """Serialise a :class:`ConvClassifier` to ``path`` (``.npz``).

    Stores every conv stage's kernel bank, bias, stride/padding and pool
    size alongside the MLP head (prefixed ``head_``), so the loaded model
    is bit-identical to the saved one.  Returns the path actually written.
    """
    path = _normalise_path(path)
    meta = {
        "format_version": _FORMAT_VERSION,
        "kind": _CONV_KIND,
        "lr": model.lr,
        "stages": [
            {"stride": conv.stride, "pad": conv.pad, "pool": pool.size}
            for conv, pool in model.extractor.stages
        ],
        "head": {
            "layer_sizes": list(model.head.layer_sizes),
            "hidden_activation": model.head.hidden_activation.name,
            "output_activation": model.head.output_activation.name,
        },
    }
    arrays = {"meta": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)}
    for i, (conv, _) in enumerate(model.extractor.stages):
        arrays[f"K{i}"] = conv.kernels
        arrays[f"cb{i}"] = conv.bias
    for i, layer in enumerate(model.head.layers):
        arrays[f"head_W{i}"] = layer.W
        arrays[f"head_b{i}"] = layer.b
    return atomic_savez(path, arrays)


def load_conv(path: Union[str, Path]) -> ConvClassifier:
    """Load a classifier saved by :func:`save_conv`.

    Raises ``ValueError`` for missing/corrupt archives, unknown format
    versions, or archives holding a different model kind.
    """
    path = Path(path)
    archive = read_archive(path)
    meta = _read_meta(archive, path, _CONV_KIND)
    stage_meta = meta["stages"]
    kernels = [archive[f"K{i}"] for i in range(len(stage_meta))]
    if not kernels:
        raise ValueError(f"{path} holds no conv stages")
    extractor = ConvFeatureExtractor(
        in_channels=kernels[0].shape[1],
        channels=[k.shape[0] for k in kernels],
        field=kernels[0].shape[2],
        pool=stage_meta[0]["pool"],
        seed=0,
    )
    for i, (conv, pool) in enumerate(extractor.stages):
        # Per-stage geometry may differ from the constructor defaults
        # (heterogeneous fields/pools are legal when stages are built
        # by hand), so restore it explicitly.
        conv.kernels = kernels[i].copy()
        conv.bias = archive[f"cb{i}"].copy()
        conv.field = kernels[i].shape[2]
        conv.stride = stage_meta[i]["stride"]
        conv.pad = stage_meta[i]["pad"]
        pool.size = stage_meta[i]["pool"]
    head = _restore_mlp(archive, path, meta["head"], prefix="head_")
    return ConvClassifier(extractor, head, lr=meta["lr"])
