"""Learning-rate schedules.

The paper trains at fixed learning rates (1e-3 / 1e-4, §8.4); schedules
are provided as substrate for the §9.3 discussion — "the optimal learning
rate to use is smaller for smaller batch sizes" — and for the batch-size
ablations, where decaying schedules let the stochastic regimes finish
training without the divergence a fixed high rate risks.

A schedule maps a 0-based epoch index to a learning rate and plugs into
:meth:`repro.core.base.Trainer.fit` via the ``lr_schedule`` argument.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

__all__ = [
    "Schedule",
    "ConstantSchedule",
    "StepDecaySchedule",
    "ExponentialDecaySchedule",
    "CosineSchedule",
    "WarmupSchedule",
    "get_schedule",
]

Schedule = Callable[[int], float]
"""A learning-rate schedule: epoch index (0-based) → learning rate."""


class ConstantSchedule:
    """Fixed learning rate — the paper's setting."""

    def __init__(self, lr: float):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = float(lr)

    def __call__(self, epoch: int) -> float:
        return self.lr


class StepDecaySchedule:
    """Multiply the rate by ``factor`` every ``every`` epochs."""

    def __init__(self, lr: float, factor: float = 0.5, every: int = 10):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        if every <= 0:
            raise ValueError(f"every must be positive, got {every}")
        self.lr = float(lr)
        self.factor = float(factor)
        self.every = int(every)

    def __call__(self, epoch: int) -> float:
        return self.lr * self.factor ** (epoch // self.every)


class ExponentialDecaySchedule:
    """lr · decay^epoch."""

    def __init__(self, lr: float, decay: float = 0.95):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.lr = float(lr)
        self.decay = float(decay)

    def __call__(self, epoch: int) -> float:
        return self.lr * self.decay**epoch


class CosineSchedule:
    """Cosine annealing from ``lr`` to ``lr_min`` over ``total_epochs``."""

    def __init__(self, lr: float, total_epochs: int, lr_min: float = 0.0):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if total_epochs <= 0:
            raise ValueError(f"total_epochs must be positive, got {total_epochs}")
        if lr_min < 0 or lr_min > lr:
            raise ValueError(f"lr_min must be in [0, lr], got {lr_min}")
        self.lr = float(lr)
        self.lr_min = float(lr_min)
        self.total_epochs = int(total_epochs)

    def __call__(self, epoch: int) -> float:
        t = min(epoch, self.total_epochs) / self.total_epochs
        return self.lr_min + 0.5 * (self.lr - self.lr_min) * (
            1.0 + math.cos(math.pi * t)
        )


class WarmupSchedule:
    """Linear warm-up over ``warmup_epochs`` then hand off to ``after``."""

    def __init__(self, after: Schedule, warmup_epochs: int = 3):
        if warmup_epochs <= 0:
            raise ValueError(f"warmup_epochs must be positive, got {warmup_epochs}")
        self.after = after
        self.warmup_epochs = int(warmup_epochs)

    def __call__(self, epoch: int) -> float:
        target = self.after(self.warmup_epochs)
        if epoch < self.warmup_epochs:
            return target * (epoch + 1) / self.warmup_epochs
        return self.after(epoch)


def _make_warmup(lr: float, after="constant", warmup_epochs: int = 3, **kwargs):
    """Registry adapter for :class:`WarmupSchedule`.

    ``after`` names (or is) the schedule handed off to once warm-up ends;
    remaining kwargs configure that inner schedule.
    """
    inner = after if callable(after) else get_schedule(after, lr, **kwargs)
    return WarmupSchedule(inner, warmup_epochs=warmup_epochs)


def get_schedule(name, lr: float, **kwargs) -> Schedule:
    """Build a schedule by name (or pass a callable through)."""
    if callable(name):
        return name
    registry = {
        "constant": ConstantSchedule,
        "step": StepDecaySchedule,
        "exponential": ExponentialDecaySchedule,
        "cosine": CosineSchedule,
        "warmup": _make_warmup,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise ValueError(
            f"unknown schedule {name!r}; available: {sorted(registry)}"
        ) from None
    return cls(lr, **kwargs)
