"""The multilayer perceptron container used by every training method.

Mirrors the paper's model (§4.1): ``m_i`` inputs, ``k`` hidden layers of
``n`` nodes each (widths may differ), ``m_o`` outputs, ReLU hidden
activations and a log-softmax output trained with negative log-likelihood.

The class provides the *exact* forward and backward passes (the STANDARD
method of §8.3 and the baseline every approximation is compared against);
the sampling-based trainers in :mod:`repro.core` reuse its layers but run
their own passes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..backend import active_backend
from .activations import Activation, LogSoftmax, get_activation
from .layers import DenseLayer
from .losses import NLLLoss

__all__ = ["MLP", "ForwardCache"]


class ForwardCache:
    """Intermediate state of one forward pass.

    Attributes
    ----------
    activations:
        ``[a^0 = x, a^1, ..., a^{l-1}]`` — inputs to each layer.
    zs:
        ``[z^1, ..., z^l]`` — pre-activations of each layer.
    output:
        Network output (log-probabilities for the default head).
    """

    __slots__ = ("activations", "zs", "output")

    def __init__(
        self,
        activations: List[np.ndarray],
        zs: List[np.ndarray],
        output: np.ndarray,
    ):
        self.activations = activations
        self.zs = zs
        self.output = output


class MLP:
    """A fully connected feedforward network.

    Parameters
    ----------
    layer_sizes:
        ``[m_i, n_1, ..., n_k, m_o]`` — at least input and output.
    hidden_activation:
        Name or instance; the paper uses ReLU (§8.4).
    output_activation:
        Name or instance; the paper uses log-softmax.
    initializer:
        Weight init scheme (see :mod:`repro.nn.init`).
    seed / rng:
        Reproducibility controls; ``rng`` wins when both are given.

    Examples
    --------
    >>> net = MLP([784, 100, 100, 10], seed=0)
    >>> net.depth
    2
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        hidden_activation="relu",
        output_activation="log_softmax",
        initializer="he_normal",
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        layer_sizes = list(layer_sizes)
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output sizes")
        if any(s <= 0 for s in layer_sizes):
            raise ValueError(f"all layer sizes must be positive: {layer_sizes}")
        self.layer_sizes = layer_sizes
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.hidden_activation: Activation = get_activation(hidden_activation)
        self.output_activation: Activation = get_activation(output_activation)
        self.layers: List[DenseLayer] = [
            DenseLayer(n_in, n_out, self.rng, initializer)
            for n_in, n_out in zip(layer_sizes[:-1], layer_sizes[1:])
        ]

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of *hidden* layers (the paper's ``k``)."""
        return len(self.layers) - 1

    @property
    def n_outputs(self) -> int:
        """Width of the output layer."""
        return self.layer_sizes[-1]

    def num_params(self) -> int:
        """Total learnable scalars across all layers."""
        return sum(layer.num_params() for layer in self.layers)

    def activation_for(self, layer_idx: int) -> Activation:
        """The activation applied after layer ``layer_idx`` (0-based)."""
        if layer_idx == len(self.layers) - 1:
            return self.output_activation
        return self.hidden_activation

    # ------------------------------------------------------------------
    # exact passes
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> ForwardCache:
        """Exact forward pass; returns all intermediates for backprop."""
        a = np.atleast_2d(np.asarray(x, dtype=float))
        activations = [a]
        zs: List[np.ndarray] = []
        backend = active_backend()
        for i, layer in enumerate(self.layers):
            z = layer.forward(a)
            zs.append(z)
            a = backend.apply_activation(self.activation_for(i), z)
            if i < len(self.layers) - 1:
                activations.append(a)
        return ForwardCache(activations, zs, a)

    def backward(
        self, cache: ForwardCache, y: np.ndarray
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Exact gradients ``[(gW^1, gb^1), ...]`` for mean NLL loss.

        Assumes the log-softmax + NLL head (the paper's setting); the fused
        gradient at the output logits is ``softmax(z^l) - onehot(y)``.
        """
        if not isinstance(self.output_activation, LogSoftmax):
            raise NotImplementedError(
                "exact backward currently assumes a log-softmax + NLL head"
            )
        grads: List[Tuple[np.ndarray, np.ndarray]] = [None] * len(self.layers)
        delta = NLLLoss.fused_logit_gradient(cache.zs[-1], y)
        for i in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[i]
            grads[i] = layer.weight_gradients(cache.activations[i], delta)
            if i > 0:
                da = layer.backprop_delta(delta)
                delta = da * self.hidden_activation.derivative(cache.zs[i - 1])
        return grads

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def predict_logproba(self, x: np.ndarray) -> np.ndarray:
        """Log class probabilities for a batch."""
        return self.forward(x).output

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class predictions for a batch."""
        return self.predict_logproba(x).argmax(axis=1)

    def loss(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean NLL of the batch under the current parameters."""
        return NLLLoss().value(self.predict_logproba(x), y)

    def clone_architecture(self, seed: Optional[int] = None) -> "MLP":
        """Fresh network with the same architecture but new weights."""
        return MLP(
            self.layer_sizes,
            hidden_activation=self.hidden_activation,
            output_activation=self.output_activation,
            seed=seed,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        arch = "-".join(str(s) for s in self.layer_sizes)
        return f"MLP({arch}, hidden={self.hidden_activation.name})"
