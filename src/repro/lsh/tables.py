"""Multi-table LSH index with bucket storage and partial rebuilds.

ALSH-approx assigns every layer L independent hash tables of 2^K buckets
(§5.2).  Querying returns the *union* of the colliding buckets across the L
tables — a set of candidate node ids — which becomes the layer's active set.
The index supports re-inserting a subset of items (after their weight
vectors change) without rebuilding untouched entries, mirroring the paper's
periodic hash-table updates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from ..obs import NULL_RECORDER, Recorder
from ..obs.counters import (
    LSH_BUCKET_MAX_LOAD,
    LSH_BUCKETS_OCCUPIED,
    LSH_BUILDS,
    LSH_CANDIDATES,
    LSH_QUERIES,
    LSH_REHASHED_ITEMS,
    LSH_UPDATES,
)
from .dwta import DensifiedWTA
from .flat import FlatHashTables
from .srp import SignedRandomProjection

__all__ = [
    "HashTable",
    "LSHIndex",
    "make_hash_function",
    "HASH_FAMILIES",
    "LSH_BACKENDS",
]

HASH_FAMILIES = ("srp", "dwta")
LSH_BACKENDS = ("dict", "flat")


def make_hash_function(family: str, dim: int, n_bits: int, rng: np.random.Generator):
    """Build a hash function by family name ("srp" or "dwta")."""
    if family == "srp":
        return SignedRandomProjection(dim, n_bits, rng)
    if family == "dwta":
        return DensifiedWTA(dim, n_bits, rng=rng)
    raise ValueError(f"unknown hash family {family!r}; available: {HASH_FAMILIES}")


class HashTable:
    """One hash table: a K-bit hash function plus bucket → item-id sets."""

    def __init__(
        self, dim: int, n_bits: int, rng: np.random.Generator, family: str = "srp"
    ):
        self.fn = make_hash_function(family, dim, n_bits, rng)
        self.buckets: Dict[int, Set[int]] = {}
        self._item_bucket: Dict[int, int] = {}

    def insert(self, ids: np.ndarray, vectors: np.ndarray) -> None:
        """Insert (or move) items; an existing id is first removed."""
        codes = self.fn.hash(vectors)
        for item, code in zip(np.asarray(ids).tolist(), codes.tolist()):
            old = self._item_bucket.get(item)
            if old is not None and old != code:
                bucket = self.buckets.get(old)
                if bucket is not None:
                    bucket.discard(item)
                    if not bucket:
                        del self.buckets[old]
            self.buckets.setdefault(code, set()).add(item)
            self._item_bucket[item] = code

    def query(self, vector: np.ndarray) -> Set[int]:
        """Item ids sharing the query's bucket."""
        return self.buckets.get(self.fn.hash_one(vector), set())

    def query_batch(self, vectors: np.ndarray) -> List[Set[int]]:
        """Bucket contents for a batch of queries."""
        codes = self.fn.hash(vectors)
        return [self.buckets.get(int(c), set()) for c in codes]

    def clear(self) -> None:
        """Drop all stored items (hash function is kept)."""
        self.buckets.clear()
        self._item_bucket.clear()

    def state(self):
        """Bucket membership as ``(items, codes)`` arrays (sorted by id)."""
        items = np.fromiter(
            sorted(self._item_bucket), dtype=np.int64, count=len(self._item_bucket)
        )
        codes = np.fromiter(
            (self._item_bucket[i] for i in items.tolist()),
            dtype=np.int64,
            count=items.size,
        )
        return items, codes

    def restore(self, items: np.ndarray, codes: np.ndarray) -> None:
        """Rebuild buckets from a :meth:`state` capture (no re-hashing)."""
        self.clear()
        for item, code in zip(
            np.asarray(items).tolist(), np.asarray(codes).tolist()
        ):
            self.buckets.setdefault(code, set()).add(item)
            self._item_bucket[item] = code

    def __len__(self) -> int:
        return len(self._item_bucket)


class LSHIndex:
    """L independent K-bit hash tables over a fixed vector collection.

    Parameters
    ----------
    dim:
        Dimensionality of the (already transformed) vectors.
    n_bits:
        K — bits per table (2^K buckets).
    n_tables:
        L — number of independent tables (paper default L = 5, K = 6).
    family:
        Hash family: "srp" (SimHash, the default) or "dwta"
        (densified winner-take-all, the SLIDE-style family).
    seed / rng:
        Reproducibility controls.
    backend:
        Bucket storage: "dict" (per-table ``Dict[int, Set[int]]`` buckets,
        the pure-Python reference) or "flat" (vectorized CSR arrays with
        fused all-table hashing — see :mod:`repro.lsh.flat`).  Both return
        identical candidate sets for identical seeds; "flat" is several
        times faster on batched queries and bulk builds.
    recorder:
        Observability sink (:mod:`repro.obs`); counts queries, candidate
        volume, builds and incremental re-hashes.  Defaults to the no-op
        :data:`~repro.obs.NULL_RECORDER`.
    """

    def __init__(
        self,
        dim: int,
        n_bits: int = 6,
        n_tables: int = 5,
        family: str = "srp",
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        backend: str = "dict",
        recorder: Optional[Recorder] = None,
    ):
        if n_tables <= 0:
            raise ValueError(f"n_tables must be positive, got {n_tables}")
        if backend not in LSH_BACKENDS:
            raise ValueError(
                f"backend must be one of {LSH_BACKENDS}, got {backend!r}"
            )
        rng = rng if rng is not None else np.random.default_rng(seed)
        self.dim = int(dim)
        self.n_bits = int(n_bits)
        self.n_tables = int(n_tables)
        self.family = family
        self.backend = backend
        self.obs: Recorder = recorder if recorder is not None else NULL_RECORDER
        # Both backends draw their hash functions from the rng in the same
        # order, so the same seed hashes identically under either.
        if backend == "flat":
            self.tables: List[HashTable] = []
            self.flat: Optional[FlatHashTables] = FlatHashTables(
                [
                    make_hash_function(family, dim, n_bits, rng)
                    for _ in range(n_tables)
                ]
            )
        else:
            self.tables = [
                HashTable(dim, n_bits, rng, family=family)
                for _ in range(n_tables)
            ]
            self.flat = None

    def build(self, vectors: np.ndarray) -> None:
        """(Re)index a full collection; item ids are the row indices."""
        vectors = np.atleast_2d(vectors)
        if self.flat is not None:
            self.flat.build(vectors)
        else:
            ids = np.arange(vectors.shape[0])
            for table in self.tables:
                table.clear()
                table.insert(ids, vectors)
        self.obs.add(LSH_BUILDS)
        if self.obs.enabled:
            loads = self.bucket_loads()
            if any(load.size for load in loads):
                self.obs.gauge(
                    LSH_BUCKET_MAX_LOAD,
                    max(int(load.max()) for load in loads if load.size),
                )
                self.obs.gauge(
                    LSH_BUCKETS_OCCUPIED,
                    sum(int(load.size) for load in loads),
                )

    def update(self, ids: np.ndarray, vectors: np.ndarray) -> None:
        """Re-insert only the given items (after their vectors changed)."""
        self.obs.add(LSH_UPDATES)
        if self.obs.enabled:
            self.obs.add(LSH_REHASHED_ITEMS, int(np.size(ids)))
        if self.flat is not None:
            self.flat.update(ids, vectors)
            return
        for table in self.tables:
            table.insert(ids, vectors)

    def compact(self) -> int:
        """Force-compact the flat backend's tables; no-op on dict.

        Returns the number of tables re-packed.  Lets an external policy
        (the streaming trainer's garbage-gauge compaction) trigger
        re-packing instead of the backend's per-table threshold.
        """
        if self.flat is not None:
            return self.flat.compact()
        return 0

    def query(self, vector: np.ndarray, record: bool = True) -> np.ndarray:
        """Union of colliding ids across all L tables, sorted.

        ``record=False`` skips the query/candidate counters — used by
        read-only quality probes so measuring recall does not inflate
        the work counters the probe sits beside.
        """
        if self.flat is not None:
            result = self.flat.query(vector)
        else:
            hits: Set[int] = set()
            for table in self.tables:
                hits |= table.query(vector)
            result = np.fromiter(sorted(hits), dtype=np.int64, count=len(hits))
        if record:
            self.obs.add(LSH_QUERIES)
            if self.obs.enabled:
                self.obs.add(LSH_CANDIDATES, int(result.size))
        return result

    def query_batch(
        self, vectors: np.ndarray, record: bool = True
    ) -> List[np.ndarray]:
        """Per-query candidate sets for a batch."""
        vectors = np.atleast_2d(vectors)
        if self.flat is not None:
            results = self.flat.query_batch(vectors)
        else:
            per_table = [table.query_batch(vectors) for table in self.tables]
            results = []
            for i in range(vectors.shape[0]):
                hits: Set[int] = set()
                for table_hits in per_table:
                    hits |= table_hits[i]
                results.append(
                    np.fromiter(sorted(hits), dtype=np.int64, count=len(hits))
                )
        if record and self.obs.enabled:
            self.obs.add(LSH_QUERIES, len(results))
            self.obs.add(LSH_CANDIDATES, int(sum(r.size for r in results)))
        return results

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Bucket state of every table as npz-friendly flat arrays.

        Hash functions are *not* captured: they are a pure function of the
        construction seed, so the restoring index must be built with the
        same shape/family/seed (the trainers guarantee this by
        reconstructing from the same config).
        """
        if self.flat is not None:
            return dict(self.flat.state_dict())
        out: Dict[str, np.ndarray] = {}
        for t, table in enumerate(self.tables):
            items, codes = table.state()
            out[f"t{t}.items"] = items
            out[f"t{t}.codes"] = codes
        return out

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore bucket state captured by :meth:`state_dict`."""
        if self.flat is not None:
            self.flat.load_state_dict(state)
            return
        for t, table in enumerate(self.tables):
            table.restore(state[f"t{t}.items"], state[f"t{t}.codes"])

    def bucket_loads(self) -> List[np.ndarray]:
        """Per-table array of item counts for each occupied bucket.

        Backend-independent view for the diagnostics module.
        """
        if self.flat is not None:
            return self.flat.bucket_loads()
        return [
            np.array(
                [len(bucket) for bucket in table.buckets.values()], dtype=np.int64
            )
            for table in self.tables
        ]

    def garbage_fraction(self) -> float:
        """Fraction of stored entries that are maintenance garbage.

        The flat backend accumulates tombstones and appended extras
        between compactions (see :mod:`repro.lsh.flat`); the dict
        backend moves items in place, so its garbage is always 0.  A
        health gauge for the quality probes, backend-independent.
        """
        if self.flat is not None:
            return self.flat.garbage_fraction()
        return 0.0

    def memory_bytes(self) -> int:
        """Rough memory footprint: hyperplanes plus bucket entries.

        Used by the §9.4-style memory analysis (table setup cost of
        ALSH-approx).
        """
        if self.flat is not None:
            return self.flat.memory_bytes()
        planes = sum(t.fn.nbytes for t in self.tables)
        entries = sum(len(t) for t in self.tables) * 8
        return planes + entries

    def __len__(self) -> int:
        if self.flat is not None:
            return len(self.flat)
        return len(self.tables[0])
