"""Vectorized flat-array bucket storage for multi-table LSH.

The dict backend (:class:`~repro.lsh.tables.HashTable`) keeps ``Dict[int,
Set[int]]`` buckets and walks them with per-item Python loops — faithful
and easy to audit, but it makes table maintenance and candidate lookup the
dominant cost of ALSH training (the very path §9.2 says must be near-free
for sampling to pay off).  :class:`FlatHashTables` stores the same L
tables as contiguous int arrays and serves whole query batches with a
handful of NumPy calls:

* hashing of all L tables is fused into one pass over the batch
  (:class:`~repro.lsh.srp.FusedSRP` — a single ``(B, dim) @ (dim, L·K)``
  GEMM — or :class:`~repro.lsh.dwta.FusedDWTA`);
* bucket membership is one CSR-style ``(offsets, members)`` pair spanning
  all L tables at once, addressed by *global* bucket ids
  ``t·2^K + code`` and storing *global* member ids ``t·n + item``, so a
  whole (batch × tables) probe is a single range-gather;
* the across-table candidate union is one sort + flag-dedup over fused
  ``(query, item)`` keys instead of Python ``set.union`` per query.

Storage layout
--------------
``item_gcode[t, i]``
    Current *global* bucket code of item ``i`` in table ``t`` (−1 = item
    never inserted).  This array is the ground truth; everything else is
    an inverted view.  Its row-major ravel is indexed directly by global
    member ids, which is what makes tombstone filtering one comparison.
``offsets[t]`` / ``members[t]`` (fused lazily into one global CSR)
    Snapshot of bucket membership at the last compaction.  Entries whose
    item has since moved buckets are *tombstones*: a member ``m`` listed
    under code ``c`` is live iff ``item_gcode`` still maps it to ``c``.
``extra_items[t]`` / ``extra_gcodes[t]``
    Entries appended by :meth:`FlatHashTables.update` since the last
    compaction, scanned vectorized at query time.

:meth:`FlatHashTables.update` therefore costs O(|ids|) appends — no
bucket surgery — which is what keeps the rebuild scheduler's frequent
partial re-inserts cheap.  When a table's garbage (tombstones + appended
extras) exceeds ``compact_garbage_frac`` of its live items, the table is
re-packed into a fresh CSR snapshot with a single stable argsort.

The flat backend returns byte-identical candidate sets to the dict
backend for identical seeds (the equivalence tests in
``tests/lsh/test_flat_backend.py`` enforce this), so the dict backend is
retained purely as the reference oracle.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .dwta import DensifiedWTA, FusedDWTA
from .srp import FusedSRP, SignedRandomProjection

__all__ = ["FlatHashTables", "make_fused_bank"]


def make_fused_bank(fns: Sequence):
    """Build the fused multi-table hasher matching a family of functions."""
    if all(isinstance(fn, SignedRandomProjection) for fn in fns):
        return FusedSRP(fns)
    if all(isinstance(fn, DensifiedWTA) for fn in fns):
        return FusedDWTA(fns)
    raise ValueError("hash functions must all be SRP or all be DWTA")


def _gather_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat indices covering ``[starts[i], starts[i] + counts[i])`` ranges."""
    total = int(counts.sum())
    exclusive = np.cumsum(counts) - counts
    shift = np.repeat(starts - exclusive, counts)
    return np.arange(total, dtype=np.int64) + shift


def _dedup_sorted(values: np.ndarray) -> np.ndarray:
    """Unique values of a pre-sorted array (cheaper than ``np.unique``)."""
    keep = np.empty(values.size, dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    return values[keep]


class FlatHashTables:
    """L hash tables over flat int arrays with tombstoned updates.

    Parameters
    ----------
    fns:
        The L hash functions (one per table), all sharing ``dim`` and
        ``n_bits``.  They must be constructed in the same order as the
        dict backend's so that identical seeds give identical tables.
    compact_garbage_frac:
        Re-pack a table's CSR snapshot when its dead entries exceed this
        fraction of its live items.  The fraction is honoured at every
        table size — small tables compact after proportionally few
        updates (cheap, they are small), so ``garbage_fraction`` stays
        bounded by roughly ``frac / (1 + frac)`` under sustained churn.
        A freshly built table starts from a clean CSR with zero garbage,
        which is the only place an absolute floor ever applied.
    """

    def __init__(self, fns: Sequence, compact_garbage_frac: float = 0.5):
        if not fns:
            raise ValueError("need at least one hash function")
        if compact_garbage_frac <= 0.0:
            raise ValueError(
                f"compact_garbage_frac must be positive, got {compact_garbage_frac}"
            )
        self.fns = list(fns)
        self.n_tables = len(self.fns)
        self.n_buckets = int(self.fns[0].n_buckets)
        self.compact_garbage_frac = float(compact_garbage_frac)
        self.bank = make_fused_bank(self.fns)
        # Global bucket-code base of each table: gcode = t·2^K + code.
        self._code_base = (
            np.arange(self.n_tables, dtype=np.int64) * self.n_buckets
        )
        self.compactions = 0  # maintenance counter (diagnostics)
        self._reset(0)

    # ------------------------------------------------------------------
    # storage management
    # ------------------------------------------------------------------
    def _reset(self, n_slots: int) -> None:
        L = self.n_tables
        self.item_gcode = np.full((L, n_slots), -1, dtype=np.int64)
        self._offsets = [
            np.zeros(self.n_buckets + 1, dtype=np.int64) for _ in range(L)
        ]
        self._members = [np.empty(0, dtype=np.int64) for _ in range(L)]
        self._extra_items: List[List[np.ndarray]] = [[] for _ in range(L)]
        self._extra_gcodes: List[List[np.ndarray]] = [[] for _ in range(L)]
        self._extra_len = [0] * L
        self._stale = [0] * L
        self._live = [0] * L
        self._fused_csr: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._fused_extras: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @property
    def n_slots(self) -> int:
        """Highest item id ever stored, plus one."""
        return self.item_gcode.shape[1]

    def _grow(self, n_slots: int) -> None:
        pad = np.full(
            (self.n_tables, n_slots - self.n_slots), -1, dtype=np.int64
        )
        self.item_gcode = np.concatenate([self.item_gcode, pad], axis=1)
        self._fused_csr = None
        self._fused_extras = None

    def _compact(self, t: int) -> None:
        """Re-pack table ``t``'s CSR snapshot from ``item_gcode`` truth."""
        row = self.item_gcode[t]
        items = np.flatnonzero(row >= 0)
        codes = row[items] - self._code_base[t]
        order = np.argsort(codes, kind="stable")
        self._members[t] = items[order]
        offsets = np.zeros(self.n_buckets + 1, dtype=np.int64)
        offsets[1:] = np.cumsum(np.bincount(codes, minlength=self.n_buckets))
        self._offsets[t] = offsets
        self._extra_items[t] = []
        self._extra_gcodes[t] = []
        self._extra_len[t] = 0
        self._stale[t] = 0
        self._live[t] = int(items.size)
        self._fused_csr = None
        self._fused_extras = None
        self.compactions += 1

    def _fused(self) -> Tuple[np.ndarray, np.ndarray]:
        """One CSR over all tables: global bucket ids → global member ids.

        Table ``t``'s buckets occupy global ids ``[t·2^K, (t+1)·2^K)`` and
        its members are stored as ``t·n + item``, so a (batch × tables)
        probe needs no per-table loop.  Rebuilt lazily after mutations —
        a few small concatenates, nothing per-item.
        """
        if self._fused_csr is None:
            n = self.n_slots
            sizes = [m.size for m in self._members]
            base = np.concatenate([[0], np.cumsum(sizes)])
            offsets = np.concatenate(
                [
                    self._offsets[t][:-1] + base[t]
                    for t in range(self.n_tables)
                ]
                + [base[-1:]]
            )
            members = np.concatenate(
                [self._members[t] + t * n for t in range(self.n_tables)]
            )
            self._fused_csr = (offsets, members)
        return self._fused_csr

    def _extras(self, t: int) -> Tuple[np.ndarray, np.ndarray]:
        """Table ``t``'s appended (local item, global code) entries."""
        chunks_i, chunks_c = self._extra_items[t], self._extra_gcodes[t]
        if not chunks_i:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        if len(chunks_i) > 1:
            # Coalesce so repeated queries don't re-concatenate.
            self._extra_items[t] = [np.concatenate(chunks_i)]
            self._extra_gcodes[t] = [np.concatenate(chunks_c)]
        return self._extra_items[t][0], self._extra_gcodes[t][0]

    def _all_extras(self) -> Tuple[np.ndarray, np.ndarray]:
        """All tables' extras as (global member ids, global codes)."""
        if self._fused_extras is None:
            n = self.n_slots
            items_parts, code_parts = [], []
            for t in range(self.n_tables):
                e_items, e_gcodes = self._extras(t)
                if e_items.size:
                    items_parts.append(e_items + t * n)
                    code_parts.append(e_gcodes)
            if items_parts:
                self._fused_extras = (
                    np.concatenate(items_parts),
                    np.concatenate(code_parts),
                )
            else:
                empty = np.empty(0, dtype=np.int64)
                self._fused_extras = (empty, empty)
        return self._fused_extras

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def build(self, vectors: np.ndarray) -> None:
        """(Re)index a full collection; item ids are the row indices."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=float))
        n = vectors.shape[0]
        self._reset(n)
        if n:
            codes = self.bank.hash_all(vectors) + self._code_base[None, :]
            self.item_gcode = np.ascontiguousarray(codes.T)
        for t in range(self.n_tables):
            self._compact(t)

    def update(self, ids: np.ndarray, vectors: np.ndarray) -> None:
        """Re-insert (or newly insert) items after their vectors changed."""
        ids = np.asarray(ids, dtype=np.int64).reshape(-1)
        vectors = np.atleast_2d(np.asarray(vectors, dtype=float))
        if ids.size != vectors.shape[0]:
            raise ValueError(
                f"got {ids.size} ids for {vectors.shape[0]} vectors"
            )
        if ids.size == 0:
            return
        if (ids < 0).any():
            raise ValueError("item ids must be non-negative")
        if ids.size > 1:
            # Duplicate ids within one call: the last occurrence wins,
            # matching the dict backend's sequential insert semantics.
            uniq, rev_first = np.unique(ids[::-1], return_index=True)
            if uniq.size != ids.size:
                keep = ids.size - 1 - rev_first
                ids, vectors = ids[keep], vectors[keep]
        if int(ids.max()) >= self.n_slots:
            self._grow(int(ids.max()) + 1)
        gcodes = self.bank.hash_all(vectors) + self._code_base[None, :]
        new = np.ascontiguousarray(gcodes.T)  # (L, n) — table-major
        old = self.item_gcode[:, ids]
        changed = old != new
        if not changed.any():
            return
        # One 2-D scatter updates the ground truth for every table at
        # once; unchanged entries rewrite their old value, a no-op.
        self.item_gcode[:, ids] = new
        self._fused_extras = None
        fresh = changed & (old < 0)
        stale = changed & (old >= 0)
        for t in np.flatnonzero(changed.any(axis=1)):
            mask = changed[t]
            self._extra_items[t].append(ids[mask])
            self._extra_gcodes[t].append(new[t, mask])
            self._extra_len[t] += int(np.count_nonzero(mask))
            self._stale[t] += int(np.count_nonzero(stale[t]))
            self._live[t] += int(np.count_nonzero(fresh[t]))
            garbage = self._stale[t] + self._extra_len[t]
            if garbage > self.compact_garbage_frac * self._live[t]:
                self._compact(t)

    def compact(self) -> int:
        """Force-compact every table that holds any garbage.

        Returns the number of tables re-packed.  Exposed so an external
        policy — e.g. the streaming trainer acting on the
        ``lsh.garbage_frac`` gauge — can re-pack on its own signal
        instead of waiting for the per-table threshold.
        """
        done = 0
        for t in range(self.n_tables):
            if self._stale[t] or self._extra_len[t]:
                self._compact(t)
                done += 1
        return done

    def clear(self) -> None:
        """Drop all stored items (hash functions are kept)."""
        self._reset(0)

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Bucket state as arrays: ``item_gcode`` alone is ground truth."""
        return {"item_gcode": self.item_gcode.copy()}

    def load_state_dict(self, state: dict) -> None:
        """Restore bucket membership captured by :meth:`state_dict`.

        The CSR snapshot is re-packed per table from the restored
        ``item_gcode``, so subsequent queries return exactly the candidate
        sets the saved instance would have (internal compaction layout is
        not part of the contract — it never affects results).
        """
        gcode = np.asarray(state["item_gcode"], dtype=np.int64)
        if gcode.ndim != 2 or gcode.shape[0] != self.n_tables:
            raise ValueError(
                f"item_gcode must be ({self.n_tables}, n) shaped, "
                f"got {gcode.shape}"
            )
        before = self.compactions
        self._reset(gcode.shape[1])
        self.item_gcode = np.ascontiguousarray(gcode)
        for t in range(self.n_tables):
            self._compact(t)
        self.compactions = before

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query_batch(self, vectors: np.ndarray) -> List[np.ndarray]:
        """Sorted-unique candidate union across tables, one per query."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=float))
        n_queries = vectors.shape[0]
        n = self.n_slots
        if n == 0:
            return [np.empty(0, dtype=np.int64) for _ in range(n_queries)]
        gcodes = self.bank.hash_all(vectors) + self._code_base[None, :]
        probes = gcodes.ravel()  # (B·L,) — query-major, tables contiguous
        gcode_flat = self.item_gcode.reshape(-1)  # indexed by global ids
        offsets, members_g = self._fused()
        starts = offsets[probes]
        counts = offsets[probes + 1] - starts
        probe_qid = np.repeat(
            np.arange(n_queries, dtype=np.int64), self.n_tables
        )
        item_parts: List[np.ndarray] = []
        qid_parts: List[np.ndarray] = []
        if counts.any():
            gathered = members_g[_gather_ranges(starts, counts)]
            live = gcode_flat[gathered] == np.repeat(probes, counts)
            item_parts.append(gathered[live])
            qid_parts.append(np.repeat(probe_qid, counts)[live])
        e_items, e_gcodes = self._all_extras()
        if e_items.size:
            p_idx, e_idx = np.nonzero(probes[:, None] == e_gcodes[None, :])
            hits = e_items[e_idx]
            live = gcode_flat[hits] == e_gcodes[e_idx]
            item_parts.append(hits[live])
            qid_parts.append(probe_qid[p_idx[live]])
        items = (
            np.concatenate(item_parts) if item_parts else np.empty(0, np.int64)
        )
        if items.size == 0:
            return [np.empty(0, dtype=np.int64) for _ in range(n_queries)]
        qids = np.concatenate(qid_parts)
        # Across-table union: global member ids collapse to local with one
        # mod, then one sort + flag-dedup over fused (query, item) keys
        # replaces L set unions per query.
        keys = _dedup_sorted(np.sort(qids * n + items % n))
        out_qids = keys // n
        out_items = keys - out_qids * n
        bounds = np.searchsorted(
            out_qids, np.arange(n_queries + 1, dtype=np.int64)
        )
        return [
            out_items[bounds[b] : bounds[b + 1]] for b in range(n_queries)
        ]

    def query(self, vector: np.ndarray) -> np.ndarray:
        """Candidate ids for a single query (sorted, unique).

        Dedicated path: bucket ranges are plain slices here, so the batch
        machinery (range gathers, fused keys) would be pure overhead.
        """
        vector = np.asarray(vector, dtype=float).reshape(1, -1)
        if self.n_slots == 0:
            return np.empty(0, dtype=np.int64)
        gcodes = self.bank.hash_all(vector)[0] + self._code_base
        parts: List[np.ndarray] = []
        for t in range(self.n_tables):
            g = int(gcodes[t])
            c = g - t * self.n_buckets
            offsets = self._offsets[t]
            members = self._members[t][offsets[c] : offsets[c + 1]]
            if members.size:
                parts.append(members[self.item_gcode[t][members] == g])
            e_items, e_gcodes = self._extras(t)
            if e_items.size:
                hits = e_items[e_gcodes == g]
                if hits.size:
                    parts.append(hits[self.item_gcode[t][hits] == g])
        if not parts:
            return np.empty(0, dtype=np.int64)
        merged = np.sort(np.concatenate(parts))
        if merged.size == 0:
            return merged
        return _dedup_sorted(merged)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def bucket_loads(self) -> List[np.ndarray]:
        """Per-table array of live item counts for each occupied bucket."""
        loads = []
        for t in range(self.n_tables):
            row = self.item_gcode[t]
            codes = row[row >= 0] - self._code_base[t]
            counts = np.bincount(codes, minlength=self.n_buckets)
            loads.append(counts[counts > 0])
        return loads

    def garbage_fraction(self) -> float:
        """Fraction of stored entries that are tombstones or extras.

        Stale CSR members plus appended extras, over all entries the
        query path has to scan.  Rises between compactions and drops to
        0 when :meth:`_compact` fires; the obs probes surface it as a
        backend-health gauge.
        """
        scanned = sum(m.size for m in self._members) + sum(self._extra_len)
        if scanned == 0:
            return 0.0
        garbage = sum(self._stale) + sum(self._extra_len)
        return float(garbage) / float(scanned)

    def memory_bytes(self) -> int:
        """Hash-function tables plus all bucket-storage arrays."""
        total = sum(fn.nbytes for fn in self.fns) + self.item_gcode.nbytes
        for t in range(self.n_tables):
            total += self._offsets[t].nbytes + self._members[t].nbytes
            total += sum(chunk.nbytes for chunk in self._extra_items[t])
            total += sum(chunk.nbytes for chunk in self._extra_gcodes[t])
        return total

    def __len__(self) -> int:
        if self.n_slots == 0:
            return 0
        return int((self.item_gcode[0] >= 0).sum())
