"""Densified Winner-Take-All (DWTA) hashing.

SRP/SimHash is the textbook LSH family, but the system the paper's
ALSH-approx descends from (SLIDE, and the later revisions of Spring &
Shrivastava's line of work) hashes with *winner-take-all* permutations:
each hash value is the index of the largest coordinate within a random
subset of dimensions.  WTA hashing is sensitive to *order* statistics
rather than angles, needs no floating-point projections at query time, and
is empirically better suited to the sparse, non-negative activation
vectors ReLU networks produce.

The "densified" variant (Shrivastava 2017) fixes plain WTA's failure on
sparse vectors: when a bin contains no non-zero coordinate, its value is
borrowed from a neighbouring bin via a fixed rotation schedule, so every
bin always produces a valid hash.

This module provides :class:`DensifiedWTA` with the same interface as
:class:`~repro.lsh.srp.SignedRandomProjection`, so the two families are
drop-in interchangeable in :class:`~repro.lsh.tables.LSHIndex` and the
ALSH trainer (see the ``hash_family`` option).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..backend import active_backend

__all__ = ["DensifiedWTA", "FusedDWTA"]


class DensifiedWTA:
    """A K-bin densified winner-take-all hash over ``dim`` dimensions.

    Parameters
    ----------
    dim:
        Input dimensionality.
    n_bits:
        Number of output "bits" worth of bucket address.  Internally the
        hash uses ``n_bins`` bins of ``bin_size`` permuted coordinates and
        packs the argmax indices into an integer; ``n_bits`` controls the
        packed width (bucket space is ``2^n_bits``, matching the SRP
        interface so tables are interchangeable).
    bin_size:
        Coordinates per WTA bin (the classic WTA "k"); each bin
        contributes ``log2(bin_size)`` bits.
    rng:
        Source of the random permutation.
    """

    def __init__(
        self,
        dim: int,
        n_bits: int,
        bin_size: int = 8,
        rng: Optional[np.random.Generator] = None,
    ):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if not 1 <= n_bits <= 62:
            raise ValueError(f"n_bits must be in [1, 62], got {n_bits}")
        if bin_size < 2 or bin_size & (bin_size - 1):
            raise ValueError(f"bin_size must be a power of two >= 2, got {bin_size}")
        rng = rng if rng is not None else np.random.default_rng()
        self.dim = int(dim)
        self.n_bits = int(n_bits)
        self.bin_size = int(bin_size)
        self._bits_per_bin = int(np.log2(bin_size))
        self.n_bins = max(1, -(-n_bits // self._bits_per_bin))

        # One long permutation cycled over the input provides the bins;
        # repeating the permutation when n_bins * bin_size > dim keeps
        # every bin populated for any dim.
        needed = self.n_bins * self.bin_size
        reps = -(-needed // dim)
        perm = np.concatenate([rng.permutation(dim) for _ in range(reps)])
        self._bins = perm[:needed].reshape(self.n_bins, self.bin_size)
        # Densification rotation offsets (fixed per hash function).
        self._rotation = rng.permutation(self.n_bins)

    @property
    def n_buckets(self) -> int:
        """Number of addressable buckets, ``2^n_bits``."""
        return 1 << self.n_bits

    @property
    def nbytes(self) -> int:
        """Memory footprint of the permutation tables."""
        return self._bins.nbytes + self._rotation.nbytes

    def _bin_argmax(self, vectors: np.ndarray) -> np.ndarray:
        """Argmax index within every bin; -1 where the bin is all-zero."""
        gathered = active_backend().gather_cols(vectors, self._bins)  # (n, n_bins, bin_size)
        arg = gathered.argmax(axis=2)
        empty = (gathered != 0.0).sum(axis=2) == 0
        arg[empty] = -1
        return arg

    def signatures(self, vectors: np.ndarray) -> np.ndarray:
        """Densified per-bin winner indices, shape ``(n, n_bins)``.

        Empty bins borrow the winner of the next non-empty bin along the
        fixed rotation (densification); an all-zero vector densifies to
        all-zero winners.
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=float))
        if vectors.shape[1] != self.dim:
            raise ValueError(
                f"expected vectors of dim {self.dim}, got {vectors.shape[1]}"
            )
        arg = self._bin_argmax(vectors)
        if (arg < 0).any():
            for row in range(arg.shape[0]):
                missing = np.nonzero(arg[row] < 0)[0]
                if missing.size == 0:
                    continue
                filled = np.nonzero(arg[row] >= 0)[0]
                if filled.size == 0:
                    arg[row] = 0  # all-zero vector: degenerate but valid
                    continue
                for b in missing:
                    # Walk the rotation until a filled bin is found.
                    for step in range(1, self.n_bins + 1):
                        candidate = self._rotation[
                            (np.nonzero(self._rotation == b)[0][0] + step)
                            % self.n_bins
                        ]
                        if arg[row, candidate] >= 0:
                            arg[row, b] = arg[row, candidate]
                            break
        return arg

    def hash(self, vectors: np.ndarray) -> np.ndarray:
        """Integer bucket ids in ``[0, 2^n_bits)`` for a batch of vectors."""
        winners = self.signatures(vectors)
        codes = np.zeros(winners.shape[0], dtype=np.int64)
        for b in range(self.n_bins):
            codes = (codes << self._bits_per_bin) | winners[:, b].astype(np.int64)
        mask = (1 << self.n_bits) - 1
        return codes & mask

    def hash_one(self, vector: np.ndarray) -> int:
        """Bucket id of a single vector."""
        return int(self.hash(np.asarray(vector).reshape(1, -1))[0])


class FusedDWTA:
    """L DWTA functions hashed together through one fused gather.

    The WTA analogue of :class:`~repro.lsh.srp.FusedSRP`: the bin
    permutations of all L functions are stacked into one ``(L, n_bins,
    bin_size)`` index tensor, so a query batch gathers and arg-maxes every
    table's bins in a single vectorized pass instead of L separate calls.
    Rows that hit an empty bin (sparse vectors) fall back to the owning
    function's reference densification path, so codes are identical to
    calling each function's :meth:`~DensifiedWTA.hash` separately.
    """

    def __init__(self, fns: Sequence[DensifiedWTA]):
        if not fns:
            raise ValueError("need at least one hash function")
        shapes = {(fn.dim, fn.n_bits, fn.bin_size) for fn in fns}
        if len(shapes) != 1:
            raise ValueError(
                "fused DWTA functions must share dim, n_bits and bin_size"
            )
        self.fns = list(fns)
        self.dim = fns[0].dim
        self.n_bits = fns[0].n_bits
        self.n_fns = len(fns)
        self._bins = np.stack([fn._bins for fn in fns])  # (L, n_bins, bin_size)
        self._n_bins = fns[0].n_bins
        self._bits_per_bin = fns[0]._bits_per_bin

    def hash_all(self, vectors: np.ndarray) -> np.ndarray:
        """Codes for all functions at once, shape ``(n_vectors, L)``."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=float))
        if vectors.shape[1] != self.dim:
            raise ValueError(
                f"expected vectors of dim {self.dim}, got {vectors.shape[1]}"
            )
        gathered = active_backend().gather_cols(vectors, self._bins)  # (n, L, n_bins, bin_size)
        arg = gathered.argmax(axis=3).astype(np.int64)
        codes = np.zeros(arg.shape[:2], dtype=np.int64)
        for b in range(self._n_bins):
            codes = (codes << self._bits_per_bin) | arg[:, :, b]
        codes &= (1 << self.n_bits) - 1
        empty = ~(gathered != 0.0).any(axis=3)  # (n, L, n_bins)
        if empty.any():
            rows, tables = np.nonzero(empty.any(axis=2))
            for r, t in zip(rows.tolist(), tables.tolist()):
                codes[r, t] = self.fns[t].hash(vectors[r : r + 1])[0]
        return codes
