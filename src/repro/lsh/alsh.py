"""Shrivastava–Li asymmetric LSH transforms for MIPS (paper Eq. 2–3).

Maximum-inner-product search is reduced to near-neighbour search by the
asymmetric pair of maps

    P(w) = [w; ‖w‖²; ‖w‖⁴; …; ‖w‖^{2m}]        (data / weight columns)
    Q(a) = [a; ½; ½; …; ½]                      (query / activations)

after rescaling the data so every ‖w‖ ≤ U < 1 and normalising the query.
Then ‖Q(a) − P(w)‖² = 1 + m/4 − 2⟨a, w⟩ + ‖w‖^{2^{m+1}}, and since the last
term vanishes as m grows, argmax ⟨a, w⟩ ≈ argmin ‖Q(a) − P(w)‖ (Eq. 3).
The paper uses m = 3 (§8.4).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["AsymmetricTransform"]


class AsymmetricTransform:
    """The (P, Q) transform pair with a fixed scaling factor U.

    Parameters
    ----------
    m:
        Number of padding terms (paper default 3).
    scale:
        U — the target maximum norm of the scaled data vectors; must be in
        (0, 1) for the ‖w‖^{2^{m+1}} residual to vanish.
    """

    def __init__(self, m: int = 3, scale: float = 0.83):
        if m < 1:
            raise ValueError(f"m must be at least 1, got {m}")
        if not 0.0 < scale < 1.0:
            raise ValueError(f"scale must be in (0, 1), got {scale}")
        self.m = int(m)
        self.scale = float(scale)

    def output_dim(self, dim: int) -> int:
        """Dimensionality of the transformed space: dim + m."""
        return dim + self.m

    # ------------------------------------------------------------------
    # data side
    # ------------------------------------------------------------------
    def fit_data_scaling(self, data: np.ndarray) -> float:
        """Scalar s such that ``max_i ‖s · data_i‖ = U``.

        An all-zero collection scales by 1.0 (nothing to normalise).
        """
        data = np.atleast_2d(data)
        max_norm = float(np.linalg.norm(data, axis=1).max())
        if max_norm == 0.0:
            return 1.0
        return self.scale / max_norm

    def transform_data(
        self, data: np.ndarray, scale: Optional[float] = None
    ) -> Tuple[np.ndarray, float]:
        """Apply P to a collection of vectors.

        Returns ``(P(s·data), s)`` where ``s`` is the scaling applied; the
        caller needs ``s`` only for diagnostics, since argmax ⟨a, w⟩ is
        invariant to a positive global rescaling of the data.

        Pass ``scale`` to reuse a previously fitted factor instead of
        refitting on ``data`` — the incremental-update path, where a
        subset must be hashed consistently with the full collection it
        belongs to.
        """
        data = np.atleast_2d(np.asarray(data, dtype=float))
        s = self.fit_data_scaling(data) if scale is None else float(scale)
        scaled = data * s
        norms_sq = (scaled * scaled).sum(axis=1, keepdims=True)
        pads = [norms_sq]
        for _ in range(self.m - 1):
            pads.append(pads[-1] * pads[-1])  # ‖w‖^{2^{i}} progression
        return np.hstack([scaled] + pads), s

    # ------------------------------------------------------------------
    # query side
    # ------------------------------------------------------------------
    def transform_query(self, queries: np.ndarray) -> np.ndarray:
        """Apply Q: l2-normalise each query and pad with m halves.

        Zero queries are padded without normalisation (they collide
        arbitrarily, which is the honest behaviour for a dead activation
        vector).
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        norms = np.linalg.norm(queries, axis=1, keepdims=True)
        safe = np.where(norms > 0.0, norms, 1.0)
        normalised = queries / safe
        pad = np.full((queries.shape[0], self.m), 0.5)
        return np.hstack([normalised, pad])

    def transform_query_one(self, query: np.ndarray) -> np.ndarray:
        """Q applied to a single vector (1-D in, 1-D out)."""
        return self.transform_query(query.reshape(1, -1))[0]

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def distance_identity_residual(self, w: np.ndarray) -> float:
        """The ‖w‖^{2^{m+1}} residual term of the Eq. 3 identity.

        After scaling, this bounds how far argmin ‖Q(a) − P(w)‖ can deviate
        from argmax ⟨a, w⟩; it decays doubly exponentially in m.
        """
        w = np.asarray(w, dtype=float).reshape(-1)
        return float(np.linalg.norm(w) ** (2 ** (self.m + 1)))
