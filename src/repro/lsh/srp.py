"""Signed random projection (SimHash) hash family.

ALSH-approx hashes layer inputs and weight columns with K-bit signatures
built from K random hyperplanes (§5.2: "L independent hash tables with 2^K
hash buckets and a K-bit randomized hash function").  For unit vectors the
per-bit collision probability is the classic ``1 − θ/π`` where θ is the
angle between the vectors; :func:`collision_probability` exposes that
analytic value so tests can compare empirical collision rates against it.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..backend import active_backend

__all__ = [
    "SignedRandomProjection",
    "FusedSRP",
    "pack_bits",
    "collision_probability",
]


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(..., K)`` bool array into little-endian int64 codes.

    Equivalent to ``bits @ [1, 2, 4, ...]`` but shift-accumulates over the
    K axis instead of materializing an int64 copy of the whole bit matrix,
    so only the ``(...)``-shaped accumulator is ever allocated.
    """
    codes = np.zeros(bits.shape[:-1], dtype=np.int64)
    for k in range(bits.shape[-1]):
        codes |= bits[..., k].astype(np.int64) << k
    return codes


class SignedRandomProjection:
    """A K-bit SimHash function over ``dim``-dimensional vectors.

    Each bit is the sign of a projection onto an independent Gaussian
    direction; the K bits are packed into a single integer bucket id in
    ``[0, 2^K)``.
    """

    def __init__(self, dim: int, n_bits: int, rng: Optional[np.random.Generator] = None):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if not 1 <= n_bits <= 62:
            raise ValueError(f"n_bits must be in [1, 62], got {n_bits}")
        rng = rng if rng is not None else np.random.default_rng()
        self.dim = int(dim)
        self.n_bits = int(n_bits)
        self.planes = rng.normal(size=(dim, n_bits))

    @property
    def n_buckets(self) -> int:
        """Number of addressable buckets, ``2^K``."""
        return 1 << self.n_bits

    @property
    def nbytes(self) -> int:
        """Memory footprint of the hyperplane matrix."""
        return self.planes.nbytes

    def signatures(self, vectors: np.ndarray) -> np.ndarray:
        """Bit matrix of signs, shape ``(n_vectors, n_bits)``."""
        vectors = np.atleast_2d(vectors)
        if vectors.shape[1] != self.dim:
            raise ValueError(
                f"expected vectors of dim {self.dim}, got {vectors.shape[1]}"
            )
        return active_backend().matmul(vectors, self.planes) >= 0.0

    def hash(self, vectors: np.ndarray) -> np.ndarray:
        """Integer bucket ids in ``[0, 2^K)`` for a batch of vectors."""
        return pack_bits(self.signatures(vectors))

    def hash_one(self, vector: np.ndarray) -> int:
        """Bucket id of a single vector.

        Fast path: projects the 1-D vector directly (one GEMV) without the
        ``atleast_2d`` round-trip of :meth:`hash`.
        """
        vector = np.asarray(vector, dtype=float).reshape(-1)
        if vector.shape[0] != self.dim:
            raise ValueError(
                f"expected a vector of dim {self.dim}, got {vector.shape[0]}"
            )
        bits = (vector @ self.planes) >= 0.0
        code = 0
        for k in range(self.n_bits):
            if bits[k]:
                code |= 1 << k
        return code


class FusedSRP:
    """L SRP functions hashed together through one fused GEMM.

    The dict backend hashes a query batch once per table — L small matrix
    products.  Stacking the hyperplanes of all L functions into a single
    ``(dim, L·K)`` operand turns the whole multi-table hash into one
    ``(B, dim) @ (dim, L·K)`` product followed by bit-packing, which is
    what makes the flat backend's query path a single BLAS call.

    All functions must share ``dim`` and ``n_bits``; per-column results
    are identical to calling each function's :meth:`hash` separately.
    """

    def __init__(self, fns: Sequence[SignedRandomProjection]):
        if not fns:
            raise ValueError("need at least one hash function")
        dims = {fn.dim for fn in fns}
        bits = {fn.n_bits for fn in fns}
        if len(dims) != 1 or len(bits) != 1:
            raise ValueError("fused SRP functions must share dim and n_bits")
        self.dim = fns[0].dim
        self.n_bits = fns[0].n_bits
        self.n_fns = len(fns)
        self.planes = np.concatenate([fn.planes for fn in fns], axis=1)

    def hash_all(self, vectors: np.ndarray) -> np.ndarray:
        """Codes for all functions at once, shape ``(n_vectors, L)``."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=float))
        if vectors.shape[1] != self.dim:
            raise ValueError(
                f"expected vectors of dim {self.dim}, got {vectors.shape[1]}"
            )
        bits = active_backend().matmul(vectors, self.planes) >= 0.0  # the one GEMM
        return pack_bits(bits.reshape(vectors.shape[0], self.n_fns, self.n_bits))


def collision_probability(u: np.ndarray, v: np.ndarray, n_bits: int = 1) -> float:
    """Analytic SimHash collision probability ``(1 − θ/π)^n_bits``.

    θ is the angle between ``u`` and ``v``.  Degenerate zero vectors give an
    angle of π/2 (projections are symmetric coin flips on one side).
    """
    u = np.asarray(u, dtype=float).reshape(-1)
    v = np.asarray(v, dtype=float).reshape(-1)
    nu, nv = np.linalg.norm(u), np.linalg.norm(v)
    if nu == 0.0 or nv == 0.0:
        theta = np.pi / 2
    else:
        cos = np.clip(u @ v / (nu * nv), -1.0, 1.0)
        theta = float(np.arccos(cos))
    return float((1.0 - theta / np.pi) ** n_bits)
