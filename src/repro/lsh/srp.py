"""Signed random projection (SimHash) hash family.

ALSH-approx hashes layer inputs and weight columns with K-bit signatures
built from K random hyperplanes (§5.2: "L independent hash tables with 2^K
hash buckets and a K-bit randomized hash function").  For unit vectors the
per-bit collision probability is the classic ``1 − θ/π`` where θ is the
angle between the vectors; :func:`collision_probability` exposes that
analytic value so tests can compare empirical collision rates against it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["SignedRandomProjection", "collision_probability"]


class SignedRandomProjection:
    """A K-bit SimHash function over ``dim``-dimensional vectors.

    Each bit is the sign of a projection onto an independent Gaussian
    direction; the K bits are packed into a single integer bucket id in
    ``[0, 2^K)``.
    """

    def __init__(self, dim: int, n_bits: int, rng: Optional[np.random.Generator] = None):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if not 1 <= n_bits <= 62:
            raise ValueError(f"n_bits must be in [1, 62], got {n_bits}")
        rng = rng if rng is not None else np.random.default_rng()
        self.dim = int(dim)
        self.n_bits = int(n_bits)
        self.planes = rng.normal(size=(dim, n_bits))
        self._powers = (1 << np.arange(n_bits)).astype(np.int64)

    @property
    def n_buckets(self) -> int:
        """Number of addressable buckets, ``2^K``."""
        return 1 << self.n_bits

    @property
    def nbytes(self) -> int:
        """Memory footprint of the hyperplane matrix."""
        return self.planes.nbytes

    def signatures(self, vectors: np.ndarray) -> np.ndarray:
        """Bit matrix of signs, shape ``(n_vectors, n_bits)``."""
        vectors = np.atleast_2d(vectors)
        if vectors.shape[1] != self.dim:
            raise ValueError(
                f"expected vectors of dim {self.dim}, got {vectors.shape[1]}"
            )
        return (vectors @ self.planes) >= 0.0

    def hash(self, vectors: np.ndarray) -> np.ndarray:
        """Integer bucket ids in ``[0, 2^K)`` for a batch of vectors."""
        bits = self.signatures(vectors)
        return bits.astype(np.int64) @ self._powers

    def hash_one(self, vector: np.ndarray) -> int:
        """Bucket id of a single vector."""
        return int(self.hash(vector.reshape(1, -1))[0])


def collision_probability(u: np.ndarray, v: np.ndarray, n_bits: int = 1) -> float:
    """Analytic SimHash collision probability ``(1 − θ/π)^n_bits``.

    θ is the angle between ``u`` and ``v``.  Degenerate zero vectors give an
    angle of π/2 (projections are symmetric coin flips on one side).
    """
    u = np.asarray(u, dtype=float).reshape(-1)
    v = np.asarray(v, dtype=float).reshape(-1)
    nu, nv = np.linalg.norm(u), np.linalg.norm(v)
    if nu == 0.0 or nv == 0.0:
        theta = np.pi / 2
    else:
        cos = np.clip(u @ v / (nu * nv), -1.0, 1.0)
        theta = float(np.arccos(cos))
    return float((1.0 - theta / np.pi) ** n_bits)
