"""Drift-aware hash-table maintenance.

The paper's rebuild schedule (§9.2) is purely count-based: every N samples,
re-hash whatever changed.  But a touched column whose weights barely moved
still hashes to the same buckets with high probability — re-inserting it is
wasted work.  :class:`ColumnDriftTracker` keeps a snapshot of each column
as of its last re-hash and, at refresh time, selects only the columns whose
relative drift ‖w − w_ref‖/‖w_ref‖ exceeds a threshold.

This is an *extension* beyond the paper (its reference implementation
re-hashes all touched columns); the rebuild-schedule ablation bench
quantifies what it saves.  Threshold 0 reduces exactly to the paper's
behaviour, which is also the trainer's default.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["ColumnDriftTracker"]


class ColumnDriftTracker:
    """Tracks per-column weight drift since the last re-hash.

    Parameters
    ----------
    weights:
        The layer's weight matrix (n_in × n_out); a snapshot is taken at
        construction.
    rel_threshold:
        Relative-drift threshold for :meth:`drifted`; 0 selects every
        queried column (the paper's re-hash-all-touched behaviour).
    """

    def __init__(self, weights: np.ndarray, rel_threshold: float = 0.1):
        if weights.ndim != 2:
            raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
        if rel_threshold < 0:
            raise ValueError(
                f"rel_threshold must be non-negative, got {rel_threshold}"
            )
        self.rel_threshold = float(rel_threshold)
        self._reference = weights.copy()

    def drift(self, weights: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Relative drift ‖w − w_ref‖/‖w_ref‖ for the given columns.

        Columns whose reference is (numerically) zero report infinite
        drift when they moved at all — they must be re-hashed.
        """
        cols = np.asarray(cols)
        delta = np.linalg.norm(
            weights[:, cols] - self._reference[:, cols], axis=0
        )
        ref = np.linalg.norm(self._reference[:, cols], axis=0)
        out = np.empty(cols.shape, dtype=float)
        zero_ref = ref == 0.0
        out[~zero_ref] = delta[~zero_ref] / ref[~zero_ref]
        out[zero_ref] = np.where(delta[zero_ref] > 0.0, np.inf, 0.0)
        return out

    def drifted(self, weights: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Subset of ``cols`` whose drift exceeds the threshold."""
        cols = np.asarray(cols)
        if cols.size == 0:
            return cols
        if self.rel_threshold == 0.0:
            return cols
        mask = self.drift(weights, cols) > self.rel_threshold
        return cols[mask]

    def mark_rehashed(self, weights: np.ndarray, cols: np.ndarray) -> None:
        """Reset the reference snapshot for re-hashed columns."""
        cols = np.asarray(cols)
        if cols.size:
            self._reference[:, cols] = weights[:, cols]

    @property
    def reference(self) -> np.ndarray:
        """The per-column reference snapshot (checkpoint support)."""
        return self._reference

    def restore_reference(self, reference: np.ndarray) -> None:
        """Replace the reference snapshot with a checkpointed copy."""
        reference = np.asarray(reference, dtype=float)
        if reference.shape != self._reference.shape:
            raise ValueError(
                f"reference shape {reference.shape} does not match "
                f"{self._reference.shape}"
            )
        self._reference = reference.copy()
