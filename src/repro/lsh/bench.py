"""Microbenchmark: dict vs flat LSH backends on the ALSH hot path.

Times ``build`` / ``update`` / ``query_batch`` for both
:class:`~repro.lsh.tables.LSHIndex` backends across a (K, L, width,
batch) grid, checks that the backends return identical candidate sets,
and writes a ``BENCH_lsh.json`` perf-trajectory file so later PRs can
compare against this one.  The paper's default shape (K = 6, L = 5) is
the regression gate: the run fails under ``--check`` if the flat backend
is not at least ``--min-speedup`` times faster there on ``query_batch``.

Runnable three ways:

* ``python benchmarks/bench_lsh_backend.py [--smoke]`` (CI uses
  ``--smoke --check``),
* ``python -m repro lsh-bench``, which can also stream per-config
  records to the executor's resumable JSONL sink (``--store``),
* programmatically via :func:`run_grid`.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from .tables import LSHIndex

__all__ = [
    "PAPER_SHAPE",
    "default_grid",
    "bench_config",
    "run_grid",
    "check_speedups",
    "write_bench_json",
    "add_arguments",
    "run_cli",
    "main",
]

# The paper's default LSH shape (§8.4): the perf-regression gate.
PAPER_SHAPE = {"n_bits": 6, "n_tables": 5}

_OPS = ("build", "update", "query_batch")


def default_grid(smoke: bool = False) -> List[Dict]:
    """The benchmark grid: a tiny smoke slice or the full sweep.

    Both include a (K = 6, L = 5) point so the regression gate always has
    a record to check; the full grid covers the acceptance shape
    (width 1024, batch 128) plus K, L, width, and batch sweeps around it,
    and one DWTA point.
    """
    if smoke:
        return [
            {"family": "srp", "n_bits": 6, "n_tables": 5,
             "width": 256, "batch": 32, "dim": 64},
            {"family": "srp", "n_bits": 4, "n_tables": 2,
             "width": 128, "batch": 16, "dim": 64},
        ]
    dim = 128
    grid = []
    for n_bits, n_tables in [(4, 5), (6, 5), (8, 5), (6, 2), (6, 10)]:
        for width in (256, 1024):
            for batch in (32, 128):
                grid.append(
                    {"family": "srp", "n_bits": n_bits, "n_tables": n_tables,
                     "width": width, "batch": batch, "dim": dim}
                )
    grid.append(
        {"family": "dwta", "n_bits": 6, "n_tables": 5,
         "width": 1024, "batch": 128, "dim": dim}
    )
    return grid


def config_key(cfg: Dict) -> str:
    """Stable identifier for one grid point (the JSONL resume key)."""
    return (
        f"lsh-bench:{cfg['family']}:K{cfg['n_bits']}:L{cfg['n_tables']}"
        f":w{cfg['width']}:b{cfg['batch']}"
    )


def _best_of(fn, inputs: Sequence) -> float:
    """Minimum wall-clock over one call per prepared input."""
    best = float("inf")
    for arg in inputs:
        start = time.perf_counter()
        fn(*arg)
        best = min(best, time.perf_counter() - start)
    return best


def bench_config(cfg: Dict, repeats: int = 3, seed: int = 0) -> Dict:
    """Time one grid point on both backends and compute speedups.

    Data, queries, and update perturbations are derived from a
    per-config :class:`~numpy.random.SeedSequence`, so records are
    reproducible and independent of grid order.
    """
    ss = np.random.SeedSequence(
        [seed, cfg["n_bits"], cfg["n_tables"], cfg["width"], cfg["batch"]]
    )
    rng = np.random.default_rng(ss)
    data = rng.normal(size=(cfg["width"], cfg["dim"]))
    queries = rng.normal(size=(cfg["batch"], cfg["dim"]))
    # The rebuild scheduler re-inserts a touched subset (~10% of columns);
    # a fresh perturbation per repeat so no repeat is a no-op.
    ids = np.arange(max(1, cfg["width"] // 10))
    update_sets = [
        (ids, data[ids] + 0.1 * rng.normal(size=(ids.size, cfg["dim"])))
        for _ in range(repeats)
    ]

    record: Dict = dict(cfg)
    candidates = {}
    for backend in ("dict", "flat"):
        index = LSHIndex(
            cfg["dim"],
            n_bits=cfg["n_bits"],
            n_tables=cfg["n_tables"],
            family=cfg["family"],
            seed=seed,
            backend=backend,
        )
        timings = {
            "build": _best_of(index.build, [(data,)] * repeats),
            "update": _best_of(index.update, update_sets),
        }
        # Rebuild so both backends answer queries over identical contents.
        index.build(data)
        timings["query_batch"] = _best_of(
            index.query_batch, [(queries,)] * repeats
        )
        candidates[backend] = index.query_batch(queries)
        record[backend] = timings
    record["candidates_equal"] = all(
        np.array_equal(a, b)
        for a, b in zip(candidates["dict"], candidates["flat"])
    )
    record["speedup"] = {
        op: record["dict"][op] / max(record["flat"][op], 1e-12) for op in _OPS
    }
    return record


def run_grid(
    grid: Sequence[Dict],
    repeats: int = 3,
    seed: int = 0,
    store: Optional[str] = None,
    verbose: bool = True,
) -> List[Dict]:
    """Benchmark every grid point, optionally streaming to a JSONL sink."""
    sink = None
    if store is not None:
        from ..harness.executor import JsonlSink

        sink = JsonlSink(store)
    records = []
    for i, cfg in enumerate(grid):
        record = bench_config(cfg, repeats=repeats, seed=seed)
        records.append(record)
        if sink is not None:
            sink.append(
                {"key": config_key(cfg), "status": "ok", "record": record}
            )
        if verbose:
            print(
                f"  [{i + 1}/{len(grid)}] {config_key(cfg)}: "
                f"query_batch {record['speedup']['query_batch']:.1f}x, "
                f"build {record['speedup']['build']:.1f}x, "
                f"update {record['speedup']['update']:.1f}x "
                f"(candidates {'equal' if record['candidates_equal'] else 'DIFFER'})"
            )
    return records


def check_speedups(records: Sequence[Dict], min_speedup: float = 1.0) -> List[str]:
    """Regression gate: failures at the paper's default (K, L) shape.

    Every record must return identical candidate sets; records at
    K = 6, L = 5 must additionally beat the dict backend on
    ``query_batch`` by ``min_speedup``.
    """
    failures = []
    for record in records:
        if not record["candidates_equal"]:
            failures.append(f"{config_key(record)}: candidate sets differ")
        at_default = all(record[k] == v for k, v in PAPER_SHAPE.items())
        if at_default and record["speedup"]["query_batch"] < min_speedup:
            failures.append(
                f"{config_key(record)}: flat query_batch only "
                f"{record['speedup']['query_batch']:.2f}x vs dict "
                f"(need >= {min_speedup:.2f}x)"
            )
    return failures


def write_bench_json(
    records: Sequence[Dict], path, smoke: bool = False
) -> Path:
    """Write the perf-trajectory file consumed by later PRs' benches."""
    path = Path(path)
    payload = {
        "bench": "lsh_backend",
        "smoke": bool(smoke),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "numpy": np.__version__,
        "paper_shape": PAPER_SHAPE,
        "records": list(records),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """CLI flags shared by the script and the ``lsh-bench`` subcommand."""
    parser.add_argument("--smoke", action="store_true",
                        help="tiny grid for CI (seconds, not minutes)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per op (best-of)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_lsh.json",
                        help="perf-trajectory JSON output path")
    parser.add_argument("--store", default=None,
                        help="also stream per-config records to this JSONL sink")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if flat loses at the paper shape")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="required flat/dict query_batch ratio at K=6, L=5")


def run_cli(args: argparse.Namespace) -> int:
    """Run the grid per parsed args; returns the process exit code."""
    grid = default_grid(smoke=args.smoke)
    print(
        f"lsh-bench: {len(grid)} configurations "
        f"({'smoke' if args.smoke else 'full'} grid), "
        f"best-of-{args.repeats} timings"
    )
    records = run_grid(
        grid, repeats=args.repeats, seed=args.seed, store=args.store
    )
    out = write_bench_json(records, args.out, smoke=args.smoke)
    print(f"wrote {out}")
    failures = check_speedups(records, min_speedup=args.min_speedup)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if args.check and failures:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``benchmarks/bench_lsh_backend.py``)."""
    parser = argparse.ArgumentParser(
        description="dict vs flat LSH backend microbenchmark"
    )
    add_arguments(parser)
    return run_cli(parser.parse_args(argv))
