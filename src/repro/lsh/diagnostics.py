"""LSH index health diagnostics.

ALSH-approx's behaviour is governed by quantities the trainer never prints:
how full the buckets are, how large the candidate unions get, and how much
recall the tables actually achieve against exact MIPS.  This module
computes them, both for debugging a mis-tuned (K, L) and for the
hash-family ablations (SRP vs DWTA occupancy profiles differ noticeably).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .mips import MIPSIndex, exact_mips
from .tables import LSHIndex

__all__ = ["BucketStats", "bucket_stats", "recall_at_k", "candidate_size_profile"]


@dataclass(frozen=True)
class BucketStats:
    """Occupancy statistics across every table of an index."""

    n_tables: int
    n_items: int
    occupied_buckets: int
    total_buckets: int
    max_bucket: int
    mean_bucket: float
    gini: float

    @property
    def occupancy(self) -> float:
        """Fraction of addressable buckets holding at least one item."""
        if self.total_buckets == 0:
            return 0.0
        return self.occupied_buckets / self.total_buckets


def _gini(counts: np.ndarray) -> float:
    """Gini coefficient of bucket loads (0 = perfectly even)."""
    if counts.size == 0:
        return 0.0
    sorted_counts = np.sort(counts.astype(float))
    n = sorted_counts.size
    total = sorted_counts.sum()
    if total == 0:
        return 0.0
    cum = np.cumsum(sorted_counts)
    return float((n + 1 - 2 * (cum / total).sum()) / n)


def bucket_stats(index: LSHIndex) -> BucketStats:
    """Aggregate occupancy statistics over an index's tables.

    A healthy index spreads items: low Gini, max bucket ≪ n_items.  A
    degenerate hash (e.g. all-equal vectors) concentrates everything in
    one bucket, which makes every query return the whole collection — the
    failure mode where "sampling" stops sampling.
    """
    per_table = index.bucket_loads()
    occupied = sum(counts.size for counts in per_table)
    loads_arr = (
        np.concatenate(per_table).astype(float) if occupied else np.zeros(0)
    )
    return BucketStats(
        n_tables=index.n_tables,
        n_items=len(index),
        occupied_buckets=occupied,
        total_buckets=index.n_tables * (1 << index.n_bits),
        max_bucket=int(loads_arr.max()) if loads_arr.size else 0,
        mean_bucket=float(loads_arr.mean()) if loads_arr.size else 0.0,
        gini=_gini(loads_arr),
    )


def recall_at_k(
    index: MIPSIndex,
    data: np.ndarray,
    queries: np.ndarray,
    k: int = 10,
) -> float:
    """Mean fraction of the true top-k MIPS results in the candidate set.

    The recall/active-set-size trade-off is the whole (K, L) tuning game:
    more tables raise recall and candidate counts together.
    """
    data = np.atleast_2d(data)
    queries = np.atleast_2d(queries)
    if not 1 <= k <= data.shape[0]:
        raise ValueError(f"k must be in [1, {data.shape[0]}], got {k}")
    total = 0.0
    for q in queries:
        truth = set(exact_mips(data, q, k).tolist())
        candidates = set(index.query(q).tolist())
        total += len(truth & candidates) / k
    return total / queries.shape[0]


def candidate_size_profile(
    index: MIPSIndex,
    queries: np.ndarray,
) -> np.ndarray:
    """Candidate-set size for each query (the trainer's active-set size
    before clamping)."""
    queries = np.atleast_2d(queries)
    return np.array([index.query(q).size for q in queries])
