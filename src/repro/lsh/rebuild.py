"""Hash-table rebuild scheduling for ALSH-approx.

The paper (§9.2) follows the reference implementation's schedule: rebuild
the tables every 100 training samples for the first 10 000 samples, then
back off to every 1 000 samples, "to avoid time-consuming table
reconstructions".  :class:`RebuildScheduler` encodes exactly that policy
with the thresholds exposed as parameters so the ablation benches can sweep
them.
"""

from __future__ import annotations

__all__ = ["RebuildScheduler"]


class RebuildScheduler:
    """Decide after which training samples the hash tables are rebuilt.

    Parameters
    ----------
    early_every:
        Rebuild period (in samples) during the warm-up phase (paper: 100).
    late_every:
        Rebuild period after warm-up (paper: 1000).
    warmup_samples:
        Length of the warm-up phase in samples (paper: 10 000).
    """

    def __init__(
        self,
        early_every: int = 100,
        late_every: int = 1000,
        warmup_samples: int = 10_000,
    ):
        if early_every <= 0 or late_every <= 0:
            raise ValueError("rebuild periods must be positive")
        if warmup_samples < 0:
            raise ValueError("warmup_samples must be non-negative")
        self.early_every = int(early_every)
        self.late_every = int(late_every)
        self.warmup_samples = int(warmup_samples)
        self._seen = 0
        self._since_rebuild = 0
        self.rebuild_count = 0

    @property
    def samples_seen(self) -> int:
        """Total samples recorded so far."""
        return self._seen

    def current_period(self) -> int:
        """Rebuild period in force at the current sample count."""
        if self._seen < self.warmup_samples:
            return self.early_every
        return self.late_every

    def record(self, n_samples: int = 1) -> bool:
        """Record processed samples; return True if a rebuild is due.

        The caller performs the rebuild and the scheduler resets its
        counter (and counts the rebuild) when it returns True.
        """
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {n_samples}")
        # The period in force is decided by the phase these samples *start*
        # in, so the rebuild at exactly the warm-up boundary still uses the
        # early period.
        period = self.current_period()
        self._seen += n_samples
        self._since_rebuild += n_samples
        if self._since_rebuild >= period:
            self._since_rebuild = 0
            self.rebuild_count += 1
            return True
        return False

    def reset(self) -> None:
        """Forget all history (new training run)."""
        self._seen = 0
        self._since_rebuild = 0
        self.rebuild_count = 0

    def state_dict(self) -> dict:
        """Mutable counters as a JSON-safe dict (checkpoint support)."""
        return {
            "seen": self._seen,
            "since_rebuild": self._since_rebuild,
            "rebuild_count": self.rebuild_count,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore counters captured by :meth:`state_dict`."""
        self._seen = int(state["seen"])
        self._since_rebuild = int(state["since_rebuild"])
        self.rebuild_count = int(state["rebuild_count"])
