"""Locality-sensitive hashing substrate.

Signed-random-projection hashing, multi-table indexes, the Shrivastava–Li
asymmetric transforms reducing maximum-inner-product search to
near-neighbour search, and the rebuild scheduler ALSH-approx uses during
training.
"""

from .alsh import AsymmetricTransform
from .diagnostics import (
    BucketStats,
    bucket_stats,
    candidate_size_profile,
    recall_at_k,
)
from .flat import FlatHashTables, make_fused_bank
from .mips import MIPSIndex, exact_mips
from .rebuild import RebuildScheduler
from .drift import ColumnDriftTracker
from .dwta import DensifiedWTA, FusedDWTA
from .srp import FusedSRP, SignedRandomProjection, collision_probability, pack_bits
from .tables import (
    HASH_FAMILIES,
    LSH_BACKENDS,
    HashTable,
    LSHIndex,
    make_hash_function,
)

__all__ = [
    "SignedRandomProjection",
    "DensifiedWTA",
    "FusedSRP",
    "FusedDWTA",
    "FlatHashTables",
    "make_fused_bank",
    "pack_bits",
    "HASH_FAMILIES",
    "LSH_BACKENDS",
    "make_hash_function",
    "collision_probability",
    "HashTable",
    "LSHIndex",
    "AsymmetricTransform",
    "MIPSIndex",
    "exact_mips",
    "RebuildScheduler",
    "BucketStats",
    "bucket_stats",
    "recall_at_k",
    "candidate_size_profile",
    "ColumnDriftTracker",
]
