"""Locality-sensitive hashing substrate.

Signed-random-projection hashing, multi-table indexes, the Shrivastava–Li
asymmetric transforms reducing maximum-inner-product search to
near-neighbour search, and the rebuild scheduler ALSH-approx uses during
training.
"""

from .alsh import AsymmetricTransform
from .diagnostics import (
    BucketStats,
    bucket_stats,
    candidate_size_profile,
    recall_at_k,
)
from .mips import MIPSIndex, exact_mips
from .rebuild import RebuildScheduler
from .drift import ColumnDriftTracker
from .dwta import DensifiedWTA
from .srp import SignedRandomProjection, collision_probability
from .tables import HASH_FAMILIES, HashTable, LSHIndex, make_hash_function

__all__ = [
    "SignedRandomProjection",
    "DensifiedWTA",
    "HASH_FAMILIES",
    "make_hash_function",
    "collision_probability",
    "HashTable",
    "LSHIndex",
    "AsymmetricTransform",
    "MIPSIndex",
    "exact_mips",
    "RebuildScheduler",
    "BucketStats",
    "bucket_stats",
    "recall_at_k",
    "candidate_size_profile",
    "ColumnDriftTracker",
]
