"""Maximum inner-product search over a mutable vector collection.

:class:`MIPSIndex` is the engine behind ALSH-approx's active-node selection:
the collection is the set of weight columns of a layer, queries are the
layer's input activation vectors, and a query returns the ids of columns
likely to have large inner product with the query (Eq. 4 of the paper).

:func:`exact_mips` is the brute-force reference used in tests and as a
deterministic "oracle sampler" ablation.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..obs import Recorder
from .alsh import AsymmetricTransform
from .tables import LSHIndex

__all__ = ["MIPSIndex", "exact_mips", "exact_mips_batch"]


def exact_mips(data: np.ndarray, query: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k rows of ``data`` with largest ⟨row, query⟩."""
    data = np.atleast_2d(data)
    if not 1 <= k <= data.shape[0]:
        raise ValueError(f"k must be in [1, {data.shape[0]}], got {k}")
    scores = data @ np.asarray(query, dtype=float).reshape(-1)
    top = np.argpartition(-scores, k - 1)[:k]
    return top[np.argsort(-scores[top])]


def exact_mips_batch(data: np.ndarray, queries: np.ndarray, k: int) -> np.ndarray:
    """Row-wise :func:`exact_mips`: an ``(m, k)`` array of top-k ids.

    One GEMM over the whole query batch instead of ``m`` GEMVs — the
    brute-force baseline the serving head's recall probe and bench
    compare against.
    """
    data = np.atleast_2d(data)
    queries = np.atleast_2d(np.asarray(queries, dtype=float))
    if not 1 <= k <= data.shape[0]:
        raise ValueError(f"k must be in [1, {data.shape[0]}], got {k}")
    scores = queries @ data.T
    top = np.argpartition(-scores, k - 1, axis=1)[:, :k]
    order = np.argsort(-np.take_along_axis(scores, top, axis=1), axis=1)
    return np.take_along_axis(top, order, axis=1)


class MIPSIndex:
    """ALSH-based approximate MIPS with incremental updates.

    Parameters
    ----------
    dim:
        Dimensionality of the stored vectors (weight-column length).
    n_bits, n_tables:
        LSH shape (paper defaults K = 6, L = 5).
    m, scale:
        Asymmetric transform parameters (paper default m = 3).
    family:
        Hash family — "srp" (default) or "dwta".
    seed:
        Reproducibility control for the hash hyperplanes.
    backend:
        Bucket storage — "dict" (reference) or "flat" (vectorized CSR
        arrays; see :mod:`repro.lsh.flat`).
    refit_subset_scale:
        If True, :meth:`update` refits the P-transform scaling on the
        update subset (the reference implementation's partial-rebuild
        behaviour, kept for the ablation).  Default False: updates reuse
        the global scaling fitted by the last :meth:`build`, so
        incremental re-hashing matches a fresh full build.
    recorder:
        Observability sink forwarded to the underlying :class:`LSHIndex`
        (query/candidate/update counters).
    """

    def __init__(
        self,
        dim: int,
        n_bits: int = 6,
        n_tables: int = 5,
        m: int = 3,
        scale: float = 0.83,
        family: str = "srp",
        seed: Optional[int] = None,
        backend: str = "dict",
        refit_subset_scale: bool = False,
        recorder: Optional[Recorder] = None,
    ):
        self.transform = AsymmetricTransform(m=m, scale=scale)
        self.index = LSHIndex(
            self.transform.output_dim(dim),
            n_bits=n_bits,
            n_tables=n_tables,
            family=family,
            seed=seed,
            backend=backend,
            recorder=recorder,
        )
        self.dim = int(dim)
        self.refit_subset_scale = bool(refit_subset_scale)
        self._n_items = 0
        self._data_scale: Optional[float] = None
        # Times update() had to abandon the cached build-time scale
        # because an updated vector's norm overflowed it (diagnostics).
        self.scale_refits = 0

    @property
    def data_scale(self) -> Optional[float]:
        """Scaling factor fitted by the last :meth:`build` (None before)."""
        return self._data_scale

    def build(self, data: np.ndarray) -> None:
        """Index a collection; item ids are row indices into ``data``."""
        data = np.atleast_2d(data)
        if data.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {data.shape[1]}")
        transformed, s = self.transform.transform_data(data)
        self._data_scale = s
        self.index.build(transformed)
        self._n_items = data.shape[0]

    def update(self, ids: np.ndarray, data: np.ndarray) -> None:
        """Re-index a subset of items after their vectors changed.

        The subset is scaled with the factor cached by the last
        :meth:`build`, so a partial re-hash lands items exactly where a
        fresh full build would.  If an updated vector's norm exceeds the
        build-time maximum, the cached factor would map it beyond the
        transform's ``scale`` bound U — the asymmetric padding terms are
        then invalid and recall silently degrades — so the scaling is
        refit on the subset and the tighter factor is adopted for
        subsequent updates.  With ``refit_subset_scale=True`` the
        scaling is always refit on the subset instead (the reference
        implementation's behaviour, biased when the subset's norms are
        unrepresentative).
        """
        data = np.atleast_2d(data)
        if data.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {data.shape[1]}")
        ids = np.asarray(ids).reshape(-1)
        if ids.size == 0:
            return
        reuse = None if self.refit_subset_scale else self._data_scale
        overflow = False
        if reuse is not None:
            max_norm = float(np.sqrt((data * data).sum(axis=1).max()))
            if max_norm * reuse > self.transform.scale * (1.0 + 1e-12):
                reuse = None  # cached scale overflows the U bound: refit
                overflow = True
        transformed, s = self.transform.transform_data(data, scale=reuse)
        if overflow:
            # Adopt the (strictly tighter) refit factor so later updates
            # of this or smaller-norm columns stay within the bound.
            self._data_scale = s
            self.scale_refits += 1
        self.index.update(ids, transformed)
        self._n_items = max(self._n_items, int(ids.max()) + 1)

    def query(self, query: np.ndarray, record: bool = True) -> np.ndarray:
        """Candidate item ids colliding with the query (sorted, unique).

        ``record=False`` suppresses the query/candidate counters (the
        read-only probe path — probe lookups must not count as work).
        """
        q = self.transform.transform_query_one(np.asarray(query, dtype=float))
        return self.index.query(q, record=record)

    def query_batch(
        self, queries: np.ndarray, record: bool = True
    ) -> List[np.ndarray]:
        """Candidate sets for a batch of queries."""
        q = self.transform.transform_query(np.asarray(queries, dtype=float))
        return self.index.query_batch(q, record=record)

    def garbage_fraction(self) -> float:
        """Backend-health stat of the underlying tables (see LSHIndex)."""
        return self.index.garbage_fraction()

    def compact(self) -> int:
        """Force-compact the underlying tables (flat backend only)."""
        return self.index.compact()

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self):
        """Mutable index state as ``(meta, arrays)`` for checkpointing.

        Captures the bucket tables plus the fitted P-transform scale; the
        hash hyperplanes are reproduced from the construction seed, so the
        restoring instance must be built with the same parameters.
        """
        meta = {"n_items": self._n_items, "data_scale": self._data_scale}
        return meta, self.index.state_dict()

    def load_state_dict(self, meta, arrays) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self._n_items = int(meta["n_items"])
        scale = meta["data_scale"]
        self._data_scale = None if scale is None else float(scale)
        self.index.load_state_dict(arrays)

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the underlying tables."""
        return self.index.memory_bytes()

    def __len__(self) -> int:
        return self._n_items
