"""LSH-accelerated inference serving (ISSUE 8).

The repo trains; production traffic is mostly inference.  This package
serves the checkpoints the trainers produce:

* :mod:`~repro.serve.registry` — immutable, versioned
  :class:`ServableModel`\\ s loaded from kind-tagged ``.npz`` archives
  (corrupt archives rejected at load, digests pinnable per deploy).
* :mod:`~repro.serve.batcher` — the async micro-batching queue: collect
  requests for ~N ms or until ``max_batch``, one batched forward,
  scatter responses; bounded depth, per-request deadlines, 429-style
  load shedding.
* :mod:`~repro.serve.head` — the :class:`ALSHTopKHead`, answering
  top-k classes from LSH candidates without the full output GEMM.
* :mod:`~repro.serve.tenants` — per-user heads over a shared trunk,
  LRU-evicted by the :mod:`repro.memsim` cache model.
* :mod:`~repro.serve.server` — the :class:`InferenceServer`
  composition, plus the CI smoke.
* :mod:`~repro.serve.bench` — qps / tail-latency benchmark behind
  ``python -m repro serve-bench`` and ``BENCH_serve.json``.

Everything reports through :mod:`repro.obs` (queue-depth gauge,
batch-size series, shed counters, p50/p99 latency gauges, head recall
series) and surfaces via ``python -m repro serve``.
"""

from .batcher import (
    BatchCollector,
    DeadlineExceeded,
    MicroBatcher,
    ServeError,
    ServeRequest,
    ServerClosed,
    ServerOverloaded,
)
from .head import ALSHTopKHead, HeadRecallProbe, head_recall
from .registry import ModelRegistry, ServableModel, load_servable, weights_digest
from .server import InferenceServer, seeded_servable
from .tenants import TenantHeadCache

__all__ = [
    "ServeError",
    "ServerOverloaded",
    "DeadlineExceeded",
    "ServerClosed",
    "ServeRequest",
    "BatchCollector",
    "MicroBatcher",
    "ALSHTopKHead",
    "HeadRecallProbe",
    "head_recall",
    "ModelRegistry",
    "ServableModel",
    "load_servable",
    "weights_digest",
    "InferenceServer",
    "seeded_servable",
    "TenantHeadCache",
]
