"""Serving benchmark: sustained qps and tail latency at the paper shape.

Four configurations on one seeded paper-shape model (784 in, three
1000-wide hidden layers, a wide prototype output layer): exact vs ALSH
top-k head, each served batch-1 and micro-batched.  Every configuration
fires the same request stream through a live :class:`~repro.serve.
server.InferenceServer` from a windowed client loop and records
sustained queries/sec, p50/p99 latency, mean batch size — and for the
ALSH head, recall@k against brute-force MIPS.

``BENCH_serve.json`` is the perf-trajectory file; under ``--check`` the
run fails when micro-batching does not beat batch-1 serving by
``--min-speedup`` for either head (CI passes a slack factor so noisy
runners only fail on real regressions) or when the ALSH head's recall
drops below ``--min-recall``.  ``--store`` appends the merged
observability snapshot as a trace record, so ``python -m repro report``
renders the serving section from real bench traffic.

Runnable three ways: ``python benchmarks/bench_serve.py``,
``python -m repro serve-bench``, or :func:`run_configs`.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..obs import InMemoryRecorder, merge_snapshots
from .head import head_recall
from .server import InferenceServer, _fire, seeded_servable

__all__ = [
    "default_configs",
    "config_key",
    "bench_config",
    "run_configs",
    "check_records",
    "write_bench_json",
    "add_arguments",
    "run_cli",
    "main",
]

#: paper-shape model served by every configuration: the paper trunk
#: (three 1000-wide hidden layers) into a narrow embedding and a wide
#: "nearest prototypes" output — the retrieval regime where a top-k
#: head earns its keep (SRP hashes discriminate at embedding width,
#: not trunk width).
MODEL_SHAPE = {
    "input_dim": 784,
    "hidden": 1000,
    "depth": 3,
    "embed": 128,
    "classes": 512,
}

MICRO_BATCH = 32


def default_configs(quick: bool = False) -> List[Dict]:
    """The four benchmark configurations; ``quick`` shrinks the stream."""
    requests = 400 if quick else 1600
    configs = []
    for head in ("exact", "alsh"):
        for batching in ("batch1", "micro"):
            configs.append({
                "head": head,
                "batching": batching,
                "requests": requests,
                "max_batch": 1 if batching == "batch1" else MICRO_BATCH,
                # The micro/batch1 qps ratio per head is the gate.
                "gate": batching == "micro",
            })
    return configs


def config_key(config: Dict) -> str:
    return f"serve-bench:{config['head']}:{config['batching']}"


def bench_config(
    config: Dict,
    model,
    xs: np.ndarray,
    k: int = 10,
    window: int = 128,
) -> Dict:
    """Serve the request stream under one configuration; returns a record."""
    recorder = InMemoryRecorder()
    server = InferenceServer(
        model,
        mode="topk",
        k=k,
        exact=config["head"] == "exact",
        max_batch=config["max_batch"],
        max_wait=0.002,
        max_queue=max(4 * len(xs), 1024),
        recorder=recorder,
    )
    start = time.perf_counter()
    outcome = _fire(server, xs, window=window if config["max_batch"] > 1 else 8)
    server.close()
    elapsed = time.perf_counter() - start
    stats = server.stats()
    snapshot = recorder.snapshot()
    record = dict(config)
    record.update({
        "k": k,
        "served": outcome["ok"],
        "shed": outcome["shed"],
        "failed": outcome["failed"],
        "elapsed_s": elapsed,
        "qps": outcome["ok"] / elapsed if elapsed > 0 else 0.0,
        "latency_p50_ms": (stats["latency_p50"] or 0.0) * 1e3,
        "latency_p99_ms": (stats["latency_p99"] or 0.0) * 1e3,
        "batches": snapshot["counters"].get("serve.batches", 0),
    })
    if config["head"] == "alsh":
        sample = model.trunk_forward(xs[: min(64, len(xs))])
        record["recall_at_k"] = head_recall(server.head, sample, k)
    record["_snapshot"] = snapshot
    return record


def run_configs(
    configs: Sequence[Dict],
    seed: int = 0,
    k: int = 10,
    verbose: bool = True,
) -> List[Dict]:
    """Benchmark every configuration on one shared model and stream."""
    model = seeded_servable(seed=seed, name="serve-bench", **MODEL_SHAPE)
    rng = np.random.default_rng(seed + 1)
    # One request stream shared by every configuration, so qps ratios
    # and the two ALSH recall figures compare like for like.
    n_requests = max(c["requests"] for c in configs)
    stream = rng.normal(size=(n_requests, MODEL_SHAPE["input_dim"]))
    records = []
    for i, config in enumerate(configs):
        xs = stream[: config["requests"]]
        record = bench_config(config, model, xs, k=k)
        records.append(record)
        if verbose:
            recall = (
                f", recall@{k} {record['recall_at_k']:.3f}"
                if "recall_at_k" in record else ""
            )
            print(
                f"  [{i + 1}/{len(configs)}] {config_key(config)}: "
                f"{record['qps']:.0f} qps, "
                f"p99 {record['latency_p99_ms']:.2f}ms, "
                f"{record['batches']} batches{recall}"
                f"{' [gate]' if config.get('gate') else ''}"
            )
    return records


def check_records(
    records: Sequence[Dict],
    min_speedup: float = 2.0,
    min_recall: float = 0.9,
) -> List[str]:
    """Regression gate: micro-batching qps ratio and ALSH head recall."""
    failures = []
    qps = {(r["head"], r["batching"]): r["qps"] for r in records}
    for head in ("exact", "alsh"):
        base = qps.get((head, "batch1"))
        micro = qps.get((head, "micro"))
        if base is None or micro is None:
            continue
        ratio = micro / max(base, 1e-12)
        if ratio < min_speedup:
            failures.append(
                f"serve-bench:{head}: micro-batching only {ratio:.2f}x "
                f"batch-1 qps (need >= {min_speedup:.2f}x)"
            )
    for record in records:
        recall = record.get("recall_at_k")
        if recall is not None and recall < min_recall:
            failures.append(
                f"{config_key(record)}: recall@{record['k']} {recall:.3f} "
                f"below {min_recall:.2f}"
            )
        if record.get("shed") or record.get("failed"):
            failures.append(
                f"{config_key(record)}: {record['shed']} shed / "
                f"{record['failed']} failed under nominal bench load"
            )
    return failures


def write_bench_json(records: Sequence[Dict], path, quick: bool = False) -> Path:
    """Write the perf-trajectory file (snapshots stripped)."""
    path = Path(path)
    payload = {
        "bench": "serve",
        "quick": bool(quick),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "numpy": np.__version__,
        "model": dict(MODEL_SHAPE),
        "records": [
            {k: v for k, v in record.items() if not k.startswith("_")}
            for record in records
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """CLI flags shared by the script and the ``serve-bench`` subcommand."""
    parser.add_argument("--quick", action="store_true",
                        help="short request streams, for CI (seconds)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--k", type=int, default=10,
                        help="top-k answer size for both heads")
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="perf-trajectory JSON output path")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on a gate failure")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required micro/batch1 qps ratio per head")
    parser.add_argument("--min-recall", type=float, default=0.9,
                        help="required ALSH head recall@k")
    parser.add_argument("--store", default=None,
                        help="append the merged obs snapshot as a trace "
                             "record to this JSONL (for `repro report`)")


def run_cli(args: argparse.Namespace) -> int:
    """Run the configurations per parsed args; returns the exit code."""
    configs = default_configs(quick=args.quick)
    print(
        f"serve-bench: {len(configs)} configurations at the paper shape "
        f"({'quick' if args.quick else 'full'} streams, "
        f"micro-batch {MICRO_BATCH})"
    )
    records = run_configs(configs, seed=args.seed, k=args.k)
    if args.store:
        from ..obs import trace_record, write_trace

        merged = merge_snapshots([r["_snapshot"] for r in records])
        write_trace(
            args.store,
            trace_record(merged, label="serve-bench", key="serve-bench"),
        )
        print(f"trace appended to {args.store}")
    out = write_bench_json(records, args.out, quick=args.quick)
    print(f"wrote {out}")
    failures = check_records(
        records, min_speedup=args.min_speedup, min_recall=args.min_recall
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if args.check and failures:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``benchmarks/bench_serve.py``)."""
    parser = argparse.ArgumentParser(
        description="micro-batched LSH serving benchmark at the paper shape"
    )
    add_arguments(parser)
    return run_cli(parser.parse_args(argv))
