"""The inference server: registry model + micro-batcher + optional head.

:class:`InferenceServer` is the composition point of the serving layer:
requests enter through :meth:`submit`, the
:class:`~repro.serve.batcher.MicroBatcher` forms micro-batches, one
batched forward runs through the active compute backend, and responses
scatter back to their callers.  Two answer modes:

``logproba``
    Full log-probability rows — the exact serving path.  With
    ``pad_batches=True`` every forward runs at ``max_batch`` rows, so
    responses are bitwise identical to unbatched forwards on the
    reference backend regardless of batch composition.
``topk``
    ``(ids, logits)`` of the top-k classes, answered by the
    :class:`~repro.serve.head.ALSHTopKHead` from LSH candidates alone
    (``exact=True`` restores the full output GEMM).

Quality measurement reuses the training-side probe machinery: the
server duck-types the :class:`~repro.obs.probes.ProbeManager`'s trainer
protocol (it has an ``obs`` recorder), so
:class:`~repro.serve.head.HeadRecallProbe` runs on the standard
cadence/budget rules and lands recall@k in the trace.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Union

import numpy as np

from ..backend import use_backend
from ..obs import NULL_RECORDER, Recorder
from ..obs.counters import SERVE_LATENCY_P50, SERVE_LATENCY_P99
from ..obs.probes import ProbeManager
from ..obs.tracectx import NULL_TRACER, RequestTracer
from .batcher import MicroBatcher, ServeRequest
from .head import ALSHTopKHead, HeadRecallProbe
from .registry import ServableModel

__all__ = ["InferenceServer", "seeded_servable"]


def seeded_servable(
    input_dim: int = 64,
    hidden: int = 128,
    depth: int = 2,
    classes: int = 32,
    embed: Optional[int] = None,
    seed: int = 0,
    name: str = "demo",
) -> ServableModel:
    """A deterministic untrained MLP servable for smokes, benches, tests.

    The weights are seeded He-normal draws — for serving-layer
    measurements (latency, batching, recall of an index over the real
    weight columns) a trained model adds nothing but minutes.

    ``embed`` inserts a narrow layer between the trunk and the output —
    the retrieval-style "wide trunk → small embedding → wide prototype
    layer" shape where an LSH top-k head earns its keep (SRP hashes
    discriminate far better at embedding width than at trunk width).
    """
    from ..nn.network import MLP

    sizes = [input_dim] + [hidden] * depth
    if embed is not None:
        sizes.append(int(embed))
    net = MLP(sizes + [classes], seed=seed)
    return ServableModel(net, name=name)


class InferenceServer:
    """Serve one :class:`~repro.serve.registry.ServableModel`.

    Parameters
    ----------
    model:
        The servable to answer with (MLP kinds only).
    mode:
        ``"logproba"`` or ``"topk"``.
    k, exact, head, head_kwargs:
        Top-k mode configuration: answer size, the exact escape hatch,
        an optional pre-built :class:`ALSHTopKHead` (otherwise one is
        built over the model's output layer with ``head_kwargs``).
    max_batch, max_wait, max_queue, default_deadline:
        Micro-batching and overload policy (see
        :class:`~repro.serve.batcher.MicroBatcher`).
    pad_batches:
        Pad every forward to ``max_batch`` rows — the bitwise-serving
        mode (costs the padding FLOPs on partial batches).
    backend:
        Compute-backend name/instance activated around every handler
        call (None = the ambient default).
    probe_every:
        Attach a :class:`HeadRecallProbe` on this batch cadence
        (requires an enabled recorder to do anything).
    clock, recorder, tracer, start_worker:
        Injection points shared with :class:`MicroBatcher`; ``tracer``
        mints one request id per :meth:`submit` and records the
        request's hops (enqueued → dispatched → completed/shed) plus
        the batch-scoped trunk/head spans.
    """

    def __init__(
        self,
        model: ServableModel,
        mode: str = "logproba",
        k: int = 10,
        exact: bool = False,
        head: Optional[ALSHTopKHead] = None,
        head_kwargs: Optional[dict] = None,
        max_batch: int = 32,
        max_wait: float = 0.002,
        max_queue: int = 256,
        default_deadline: Optional[float] = None,
        pad_batches: bool = False,
        backend: Union[str, object, None] = None,
        probe_every: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        recorder: Recorder = NULL_RECORDER,
        tracer: RequestTracer = NULL_TRACER,
        start_worker: bool = True,
    ):
        if mode not in ("logproba", "topk"):
            raise ValueError(f"unknown serve mode {mode!r}")
        if mode == "topk" and not model.supports_head:
            raise ValueError(f"model kind {model.kind!r} cannot serve top-k")
        if mode == "logproba" and model.kind != "mlp":
            raise ValueError(f"model kind {model.kind!r} cannot serve logproba")
        self.model = model
        self.mode = mode
        self.k = int(k)
        self.exact = bool(exact)
        self.obs = recorder
        self.tracer = tracer
        self.backend = backend
        self.head: Optional[ALSHTopKHead] = None
        if mode == "topk":
            if head is not None:
                self.head = head
            else:
                self.head = ALSHTopKHead(
                    model.output_layer(), k=self.k,
                    recorder=recorder, **(head_kwargs or {}),
                )
        self._pad_to = int(max_batch) if pad_batches else None
        self._probes: Optional[ProbeManager] = None
        if probe_every is not None:
            self._probes = ProbeManager(
                probes=[HeadRecallProbe()], probe_every=probe_every,
                budget=None, seed=0,
            )
        self.batcher = MicroBatcher(
            self._handle,
            max_batch=max_batch,
            max_wait=max_wait,
            max_queue=max_queue,
            default_deadline=default_deadline,
            clock=clock,
            recorder=recorder,
            tracer=tracer,
            start_worker=start_worker,
        )

    # ------------------------------------------------------------------
    def _answer(self, batch: np.ndarray):
        batch_id = self.batcher.dispatching_batch_id
        if self.mode == "logproba":
            start = time.perf_counter()
            out = self.model.predict_logproba(batch, pad_to=self._pad_to)
            if batch_id is not None:
                self.tracer.batch_event(
                    batch_id, "forward", seconds=time.perf_counter() - start
                )
            return out
        start = time.perf_counter()
        trunk = self.model.trunk_forward(batch, pad_to=self._pad_to)
        mid = time.perf_counter()
        ids, logits = self.head.topk(trunk, self.k, exact=self.exact)
        if batch_id is not None:
            self.tracer.batch_event(
                batch_id, "trunk_forward", seconds=mid - start
            )
            self.tracer.batch_event(
                batch_id, "head_topk", seconds=time.perf_counter() - mid
            )
        return [(ids[i], logits[i]) for i in range(ids.shape[0])]

    def _handle(self, batch: np.ndarray):
        start = time.perf_counter()
        if self.backend is not None:
            with use_backend(self.backend):
                out = self._answer(batch)
        else:
            out = self._answer(batch)
        self.obs.add_time("serve.handler", time.perf_counter() - start)
        if self._probes is not None:
            self._probes.on_batch(self, batch, None)
        return out

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def submit(
        self, x: np.ndarray, deadline: Optional[float] = None
    ) -> ServeRequest:
        """Enqueue one sample; returns a future-like request handle.

        With a live tracer the request id is minted here — read it from
        the returned handle's ``request_id`` to follow the request
        through ``trace-report --request``.
        """
        return self.batcher.submit(
            x, deadline=deadline, request_id=self.tracer.mint()
        )

    def predict(self, x: np.ndarray, timeout: Optional[float] = 5.0):
        """Synchronous single-sample convenience wrapper."""
        return self.submit(x).result(timeout=timeout)

    def run_once(self, force: bool = False) -> int:
        """Deterministic dispatch (``start_worker=False`` mode)."""
        return self.batcher.run_once(force=force)

    def close(self, drain: bool = True) -> None:
        self.batcher.close(drain=drain)
        self._record_latency_gauges()

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _record_latency_gauges(self) -> None:
        lat = self.batcher.latency
        if lat.count and self.obs.enabled:
            self.obs.gauge(SERVE_LATENCY_P50, float(lat.quantile(0.5)))
            self.obs.gauge(SERVE_LATENCY_P99, float(lat.quantile(0.99)))

    def stats(self) -> dict:
        """Latency percentiles and queue statistics for reporting.

        Percentiles are estimated from the batcher's bounded log-bucket
        histogram, so memory stays O(buckets) however long the server
        runs; each estimate lies in the same bucket as the true order
        statistic (relative error at most one bucket width, ≤ ~15% at
        the default layout — see :mod:`repro.obs.histogram`).
        """
        lat = self.batcher.latency
        self._record_latency_gauges()
        return {
            "served": lat.count,
            "queue_depth": self.batcher.queue_depth(),
            "latency_p50": lat.quantile(0.5),
            "latency_p99": lat.quantile(0.99),
        }


def _fire(
    server: InferenceServer,
    xs: np.ndarray,
    window: int = 64,
) -> dict:
    """Submit every row with a bounded in-flight window; await all.

    Returns shed/error/ok counts — the smoke and bench client loop.
    """
    from .batcher import ServeError, ServerOverloaded

    pending: List[ServeRequest] = []
    ok = shed = failed = 0
    for row in xs:
        try:
            pending.append(server.submit(row))
        except ServerOverloaded:
            shed += 1
            continue
        if len(pending) >= window:
            request = pending.pop(0)
            try:
                request.result(timeout=30.0)
                ok += 1
            except ServeError:
                failed += 1
    for request in pending:
        try:
            request.result(timeout=30.0)
            ok += 1
        except ServeError:
            failed += 1
    return {"ok": ok, "shed": shed, "failed": failed}


def run_smoke(
    requests: int = 1000,
    seed: int = 0,
    verbose: bool = True,
    metrics_port: Optional[int] = None,
    store: Optional[str] = None,
) -> int:
    """The CI serve-smoke: nominal load sheds nothing, overload sheds.

    Spins the server in-process, fires ``requests`` requests at a
    generously sized queue (asserting zero sheds and all answers
    served), then again at a tiny queue with a deliberately slowed
    handler (asserting the load-shedding path actually rejects).
    Returns a process exit code.

    ``metrics_port`` additionally attaches the live exporter, then
    self-scrapes ``/metrics``, ``/healthz`` and ``/readyz`` and
    validates the exposition — the CI metrics-smoke path.  ``store``
    writes the final snapshot (histograms included) and the request
    trace events to a JSONL file for ``slo-check`` /
    ``trace-report --request``.
    """
    from ..obs import InMemoryRecorder
    from ..obs.counters import SERVE_SHED_QUEUE_FULL
    from ..obs.export import MetricsServer, parse_prometheus
    from ..obs.sink import trace_record, write_trace

    rng = np.random.default_rng(seed)
    model = seeded_servable(seed=seed)
    xs = rng.normal(size=(requests, model.input_dim))

    recorder = InMemoryRecorder()
    tracer = RequestTracer(sink=store) if store else NULL_TRACER
    server = InferenceServer(
        model, max_batch=32, max_wait=0.001, max_queue=4 * requests,
        recorder=recorder, tracer=tracer,
    )
    metrics = None
    if metrics_port is not None:
        metrics = MetricsServer(
            recorder.snapshot,
            port=metrics_port,
            ready_fn=lambda: (
                (True, "ok")
                if server.batcher.queue_depth() < server.batcher.max_queue
                else (False, "queue at shed threshold")
            ),
        )
        if verbose:
            print(f"metrics: serving {metrics.url}/metrics")
    try:
        nominal = _fire(server, xs)
        nominal_stats = server.stats()
        if metrics is not None:
            from urllib.request import urlopen

            with urlopen(metrics.url + "/metrics", timeout=10.0) as resp:
                samples = parse_prometheus(resp.read().decode("utf-8"))
            with urlopen(metrics.url + "/healthz", timeout=10.0) as resp:
                health = resp.status
            with urlopen(metrics.url + "/readyz", timeout=10.0) as resp:
                ready = resp.status
            if verbose:
                print(
                    f"metrics: scraped {len(samples)} metric(s), "
                    f"healthz {health}, readyz {ready}"
                )
            if health != 200 or ready != 200:
                print("FAIL: health endpoints must answer 200 under nominal load")
                return 1
            if "repro_serve_latency_s_count" not in samples:
                print("FAIL: /metrics must expose the serve latency histogram")
                return 1
    finally:
        server.close()
        if metrics is not None:
            metrics.close()
    if store:
        tracer.flush()
        write_trace(
            store,
            trace_record(recorder.snapshot(), label="serve-smoke"),
        )
        if verbose:
            print(f"store: snapshot + request traces written to {store}")
    if verbose:
        print(
            f"nominal: {nominal['ok']}/{requests} served, "
            f"{nominal['shed']} shed, "
            f"p50 {nominal_stats['latency_p50'] * 1e3:.2f}ms, "
            f"p99 {nominal_stats['latency_p99'] * 1e3:.2f}ms"
        )
    if nominal["shed"] or nominal["failed"] or nominal["ok"] != requests:
        print("FAIL: nominal load must serve every request without shedding")
        return 1

    # Overload: a handler an order of magnitude slower than the arrival
    # rate and a queue of 8 — the shed counter must move.
    slow_model_delay = 0.005
    answer = model.predict_logproba

    def slow_handler(batch):
        time.sleep(slow_model_delay)
        return answer(batch)

    overload_recorder = InMemoryRecorder()
    batcher = MicroBatcher(
        slow_handler, max_batch=8, max_wait=0.001, max_queue=8,
        recorder=overload_recorder,
    )
    shed = 0
    pending = []
    from .batcher import ServerOverloaded

    for row in xs:
        try:
            pending.append(batcher.submit(row))
        except ServerOverloaded:
            shed += 1
    batcher.close()
    if verbose:
        print(f"overload: {shed}/{requests} shed "
              f"(queue depth 8, {slow_model_delay * 1e3:.0f}ms handler)")
    if shed == 0 or overload_recorder.get(SERVE_SHED_QUEUE_FULL) != shed:
        print("FAIL: overload must shed and count what it shed")
        return 1
    if verbose:
        print("serve smoke ok")
    return 0
