"""Async micro-batching request queue (stdlib threading only).

Inference traffic arrives one sample at a time, but the hardware wants
batches: one batch-64 GEMM costs ~an order of magnitude less than 64
batch-1 GEMVs.  The :class:`MicroBatcher` buys that back by holding
requests for up to ``max_wait`` seconds (or until ``max_batch`` are
waiting, whichever comes first), running one batched forward, and
scattering the result rows to their callers.

The *policy* — when is a batch ready, which requests expired — lives in
:class:`BatchCollector`, a pure object driven entirely by timestamps
passed in.  The threaded runtime injects ``time.monotonic``; tests
inject a fake clock and step it, so every deadline path is exercised
deterministically without sleeping.

Overload never blocks and never deadlocks:

* a full queue rejects new work immediately (:class:`ServerOverloaded`,
  the 429 path) rather than queueing unboundedly;
* requests whose deadline passes while queued are shed at dispatch time
  (:class:`DeadlineExceeded`) so a slow handler degrades to serving
  fewer, fresher requests instead of a growing backlog of stale ones;
* a handler that raises fails only the requests in its batch — the
  worker survives and the next batch is served.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..obs import NULL_RECORDER, Recorder
from ..obs.counters import (
    HIST_SERVE_LATENCY,
    HIST_SERVE_QUEUE_WAIT,
    SERVE_BATCHES,
    SERVE_HANDLER_ERRORS,
    SERVE_QUEUE_DEPTH,
    SERVE_REQUESTS,
    SERVE_SHED_DEADLINE,
    SERVE_SHED_QUEUE_FULL,
)
from ..obs.histogram import Histogram
from ..obs.timeseries import SERIES_SERVE_BATCH_SIZE
from ..obs.tracectx import NULL_TRACER, RequestTracer

__all__ = [
    "ServeError",
    "ServerOverloaded",
    "DeadlineExceeded",
    "ServerClosed",
    "ServeRequest",
    "BatchCollector",
    "MicroBatcher",
]


class ServeError(Exception):
    """Base class for serving-layer failures."""


class ServerOverloaded(ServeError):
    """Request rejected because the queue is at its depth limit (429)."""


class DeadlineExceeded(ServeError):
    """Request shed because its deadline passed before dispatch."""


class ServerClosed(ServeError):
    """Request rejected or abandoned because the server shut down."""


class ServeRequest:
    """One queued inference request; a minimal single-waiter future.

    ``x`` is one sample (a 1-D feature row); ``deadline`` is an absolute
    clock value or ``None``.  ``request_id`` is the trace id minted at
    submit time (None when tracing is off).  The batcher fulfils the
    request with :meth:`set_result` / :meth:`set_exception`; the caller
    blocks in :meth:`result`.
    """

    __slots__ = ("x", "enqueued_at", "deadline", "request_id", "_event",
                 "_result", "_exception", "completed_at")

    def __init__(self, x: np.ndarray, enqueued_at: float,
                 deadline: Optional[float] = None,
                 request_id: Optional[str] = None):
        self.x = x
        self.enqueued_at = float(enqueued_at)
        self.deadline = None if deadline is None else float(deadline)
        self.request_id = request_id
        self._event = threading.Event()
        self._result = None
        self._exception: Optional[BaseException] = None
        self.completed_at: Optional[float] = None

    def expired(self, now: float) -> bool:
        # Inclusive: a request dispatched exactly at its deadline has zero
        # remaining budget, so it is shed rather than served late.
        return self.deadline is not None and now >= self.deadline

    def set_result(self, value, now: float) -> None:
        self._result = value
        self.completed_at = float(now)
        self._event.set()

    def set_exception(self, exc: BaseException, now: float) -> None:
        self._exception = exc
        self.completed_at = float(now)
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None):
        """Block until fulfilled; raises the request's failure if any."""
        if not self._event.wait(timeout):
            raise TimeoutError("request not completed within timeout")
        if self._exception is not None:
            raise self._exception
        return self._result

    @property
    def latency(self) -> Optional[float]:
        """Enqueue-to-completion seconds (None while pending)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.enqueued_at


class BatchCollector:
    """Pure micro-batching policy: no threads, no clock of its own.

    A batch is *ready* when ``max_batch`` requests are pending or the
    oldest pending request has waited ``max_wait`` seconds.  All time
    enters through method arguments, so tests drive the policy with a
    scripted clock.
    """

    def __init__(self, max_batch: int, max_wait: float):
        if max_batch < 1:
            raise ValueError(f"max_batch must be at least 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be non-negative, got {max_wait}")
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.pending: List[ServeRequest] = []

    def __len__(self) -> int:
        return len(self.pending)

    def offer(self, request: ServeRequest) -> None:
        self.pending.append(request)

    def ready(self, now: float) -> bool:
        """Whether a batch should be dispatched at time ``now``."""
        if not self.pending:
            return False
        if len(self.pending) >= self.max_batch:
            return True
        return now - self.pending[0].enqueued_at >= self.max_wait

    def wait_time(self, now: float) -> Optional[float]:
        """Seconds until the oldest request's wait expires (None if idle)."""
        if not self.pending:
            return None
        return max(0.0, self.pending[0].enqueued_at + self.max_wait - now)

    def drain(self, now: float) -> tuple:
        """Take the next batch: ``(live_requests, expired_requests)``.

        Removes up to ``max_batch`` live requests in arrival order,
        shedding every already-expired request encountered on the way
        (expired requests do not consume batch slots).
        """
        live: List[ServeRequest] = []
        expired: List[ServeRequest] = []
        taken = 0
        for request in self.pending:
            if request.expired(now):
                expired.append(request)
                taken += 1
            elif len(live) < self.max_batch:
                live.append(request)
                taken += 1
            else:
                break
        self.pending = self.pending[taken:]
        return live, expired


class MicroBatcher:
    """Threaded runtime around :class:`BatchCollector`.

    Parameters
    ----------
    handler:
        ``(batch_x) -> batch_out`` where ``batch_x`` stacks the batch's
        sample rows; row ``i`` of the result answers request ``i``.
    max_batch, max_wait:
        Batch-formation policy (see :class:`BatchCollector`).
    max_queue:
        Bound on pending requests; submissions beyond it are shed with
        :class:`ServerOverloaded`.
    default_deadline:
        Per-request deadline in seconds from enqueue (None = no
        deadline); individual submissions may override.
    clock:
        Monotonic time source (tests inject a fake).
    recorder:
        Observability sink (queue-depth gauge, shed counters,
        batch-size series, latency/queue-wait histograms).
    tracer:
        Per-request trace propagation (:class:`RequestTracer`); the
        default :data:`NULL_TRACER` mints no ids and drops all events.
    start_worker:
        ``False`` leaves dispatch to explicit :meth:`run_once` calls —
        the deterministic mode the clock-injected tests run in.

    Latency tracking is O(buckets), not O(requests): completed-request
    latencies and queue waits land in two bounded log-bucket
    :class:`~repro.obs.histogram.Histogram`\\ s (:attr:`latency`,
    :attr:`queue_wait`) that a long-running server can hold forever.
    """

    def __init__(
        self,
        handler: Callable[[np.ndarray], np.ndarray],
        max_batch: int = 32,
        max_wait: float = 0.002,
        max_queue: int = 256,
        default_deadline: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        recorder: Recorder = NULL_RECORDER,
        tracer: RequestTracer = NULL_TRACER,
        start_worker: bool = True,
    ):
        if max_queue < 1:
            raise ValueError(f"max_queue must be at least 1, got {max_queue}")
        self.handler = handler
        self.collector = BatchCollector(max_batch, max_wait)
        self.max_queue = int(max_queue)
        self.default_deadline = default_deadline
        self.clock = clock
        self.obs = recorder
        self.tracer = tracer
        #: bounded latency/queue-wait histograms — always on, because
        #: ``stats()`` must answer even under the null recorder.  With a
        #: live recorder they ARE the recorder's histograms (aliased via
        #: ``get_histogram``), so one O(1) record per sample feeds both
        #: ``stats()`` and the snapshot/JSONL/exporter surface.
        if recorder.enabled and hasattr(recorder, "get_histogram"):
            self.latency = recorder.get_histogram(HIST_SERVE_LATENCY)
            self.queue_wait = recorder.get_histogram(HIST_SERVE_QUEUE_WAIT)
        else:
            self.latency = Histogram()
            self.queue_wait = Histogram()
        #: trace batch id of the batch currently inside the handler
        #: (readable by the handler itself for batch-scoped spans).
        self.dispatching_batch_id: Optional[str] = None
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._closed = False
        self._batch_seq = 0
        self._depth_high_water = 0
        self._worker: Optional[threading.Thread] = None
        if start_worker:
            self._worker = threading.Thread(
                target=self._run, name="micro-batcher", daemon=True
            )
            self._worker.start()

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def submit(
        self,
        x: np.ndarray,
        deadline: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> ServeRequest:
        """Enqueue one sample; returns its future-like request handle.

        ``request_id`` is the trace id minted by the caller (the server
        mints one per submission when tracing is on); when omitted the
        batcher mints its own via the tracer.

        Raises :class:`ServerClosed` after shutdown and
        :class:`ServerOverloaded` when the queue is at depth — the two
        conditions a client must handle rather than wait out.
        """
        now = self.clock()
        rel = self.default_deadline if deadline is None else deadline
        if request_id is None:
            request_id = self.tracer.mint()
        request = ServeRequest(
            np.asarray(x, dtype=float),
            enqueued_at=now,
            deadline=None if rel is None else now + float(rel),
            request_id=request_id,
        )
        with self._wake:
            if self._closed:
                raise ServerClosed("server is shut down")
            depth = len(self.collector)
            if depth >= self.max_queue:
                self.obs.add(SERVE_SHED_QUEUE_FULL)
                self.tracer.event(request_id, "shed_queue_full", t=now)
                raise ServerOverloaded(
                    f"queue at depth limit {self.max_queue}; retry later"
                )
            self.collector.offer(request)
            depth += 1
            if depth > self._depth_high_water:
                self._depth_high_water = depth
                self.obs.gauge(SERVE_QUEUE_DEPTH, depth)
            self.obs.add(SERVE_REQUESTS)
            self._wake.notify()
        self.tracer.event(request_id, "enqueued", t=now, depth=depth)
        return request

    def queue_depth(self) -> int:
        with self._lock:
            return len(self.collector)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, live: Sequence[ServeRequest],
                  expired: Sequence[ServeRequest]) -> int:
        """Run one batch outside the lock; fulfil every request."""
        now = self.clock()
        for request in expired:
            self.obs.add(SERVE_SHED_DEADLINE)
            self.tracer.event(request.request_id, "shed_deadline", t=now)
            request.set_exception(
                DeadlineExceeded("deadline passed while queued"), now
            )
        if not live:
            return 0
        batch_id = self.tracer.mint_batch()
        for request in live:
            self.queue_wait.record(now - request.enqueued_at)
            self.tracer.event(
                request.request_id, "dispatched", batch=batch_id, t=now
            )
        if batch_id is not None:
            self.tracer.batch_event(
                batch_id, "handler_start", size=len(live)
            )
        batch = np.stack([r.x for r in live])
        self.dispatching_batch_id = batch_id
        try:
            out = self.handler(batch)
        except Exception as exc:  # degrade: fail the batch, keep serving
            self.obs.add(SERVE_HANDLER_ERRORS)
            now = self.clock()
            for request in live:
                self.tracer.event(
                    request.request_id, "failed", batch=batch_id, t=now
                )
                request.set_exception(
                    ServeError(f"handler failed: {exc!r}"), now
                )
            return len(live)
        finally:
            self.dispatching_batch_id = None
        now = self.clock()
        if batch_id is not None:
            self.tracer.batch_event(batch_id, "handler_end", t=now)
        self._batch_seq += 1
        self.obs.add(SERVE_BATCHES)
        self.obs.series(SERIES_SERVE_BATCH_SIZE, self._batch_seq, len(live))
        for i, request in enumerate(live):
            request.set_result(out[i], now)
            latency = request.latency
            if latency is not None:
                self.latency.record(latency)
                self.tracer.event(
                    request.request_id, "completed", batch=batch_id, t=now
                )
        return len(live)

    def run_once(self, force: bool = False) -> int:
        """Synchronously dispatch one batch if the policy says so.

        Returns the number of requests completed (served, failed or
        shed).  ``force=True`` dispatches whatever is pending without
        waiting for the policy — the drain path of :meth:`close`.
        """
        now = self.clock()
        with self._lock:
            if not (force and self.collector.pending) and not self.collector.ready(now):
                return 0
            live, expired = self.collector.drain(now)
        self._dispatch(live, expired)
        return len(live) + len(expired)

    def _run(self) -> None:
        while True:
            with self._wake:
                while True:
                    if self._closed and not self.collector.pending:
                        return
                    now = self.clock()
                    if self.collector.ready(now) or (
                        self._closed and self.collector.pending
                    ):
                        live, expired = self.collector.drain(now)
                        break
                    wait = self.collector.wait_time(now)
                    self._wake.wait(timeout=wait)
            self._dispatch(live, expired)

    # ------------------------------------------------------------------
    def close(self, drain: bool = True, timeout: float = 5.0) -> None:
        """Shut down; by default serve what is queued first.

        With ``drain=False`` pending requests fail with
        :class:`ServerClosed` instead of being served.
        """
        with self._wake:
            if self._closed:
                return
            self._closed = True
            if not drain:
                now = self.clock()
                for request in self.collector.pending:
                    request.set_exception(ServerClosed("server shut down"), now)
                self.collector.pending = []
            self._wake.notify_all()
        if self._worker is not None:
            self._worker.join(timeout=timeout)
        elif drain:
            while self.run_once(force=True):
                pass

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
