"""ALSH top-k serving head: answer "top-k classes" without the output GEMM.

At inference the output-layer product ``h @ W + b`` dominates the paper
shape (hidden width 1000 into a wide class/prototype layer), yet a
classification answer only needs the *largest* few logits.  That is
maximum inner-product search — the same problem the training-side
ALSH-approx trainer solves for active-node selection — so the head
builds a :class:`~repro.lsh.mips.MIPSIndex` over the output layer's
weight columns once at model-load time and, per query, scores only the
LSH candidate columns (``backend.matmul_cols``) instead of all of them.

The bias is folded into the index by augmenting each column with its
bias entry and each query with a trailing 1, so candidate ranking uses
the true logits ``h·w_j + b_j``, not just the inner products.

Guarantees and escape hatches:

* ``exact=True`` (or a candidate set smaller than ``k``) falls back to
  the full GEMM — always correct, never fast.
* Whenever the true top-k all appear in the candidate set, the head's
  answer equals brute-force MIPS exactly (property-tested).
* Recall@k against :func:`~repro.lsh.mips.exact_mips_batch` is measured
  by :class:`HeadRecallProbe` riding the standard
  :class:`~repro.obs.probes.ProbeManager` cadence machinery.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np

from ..backend import active_backend
from ..lsh.mips import MIPSIndex, exact_mips_batch
from ..obs import NULL_RECORDER, Recorder
from ..obs.counters import (
    HIST_SERVE_HEAD_SECONDS,
    SERVE_HEAD_CANDIDATES,
    SERVE_HEAD_FALLBACKS,
    SERVE_HEAD_QUERIES,
)
from ..obs.probes import PROBE_POINTS, Probe
from ..obs.timeseries import SERIES_SERVE_HEAD_RECALL

__all__ = ["ALSHTopKHead", "HeadRecallProbe", "head_recall"]


class ALSHTopKHead:
    """Top-k over a frozen output layer via candidate-only scoring.

    Parameters
    ----------
    layer:
        The output :class:`~repro.nn.layers.DenseLayer` (``W`` is
        ``n_hidden x n_classes``).  Its weights must not change after
        the index is built — the registry freezes them.
    k:
        Default answer size.
    n_bits, n_tables, seed:
        LSH shape; serving defaults trade a little more probing
        (fewer bits, more tables) for recall on unit-scale trunks.
        SRP discrimination degrades as the trunk widens (random angles
        concentrate near 90°), so serve wide-prototype layers behind a
        narrow embedding layer — the bench shape.
    family, m, scale:
        Hash family and asymmetric-transform knobs forwarded to
        :class:`~repro.lsh.mips.MIPSIndex`.
    backend:
        LSH bucket backend; the flat CSR arrays are the serving default.
    recorder:
        Observability sink for query/candidate/fallback counters.
    """

    def __init__(
        self,
        layer,
        k: int = 10,
        n_bits: int = 4,
        n_tables: int = 16,
        seed: Optional[int] = 0,
        family: str = "srp",
        m: int = 3,
        scale: float = 0.83,
        backend: str = "flat",
        recorder: Recorder = NULL_RECORDER,
    ):
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        self.layer = layer
        self.k = int(k)
        self.n_classes = int(layer.n_out)
        self.obs = recorder
        # Augmented collection: column j becomes (w_j, b_j) so the MIPS
        # scores are the true logits once queries append a trailing 1.
        self._aug_cols = np.ascontiguousarray(
            np.vstack([layer.W, layer.b[None, :]]).T
        )
        self.index = MIPSIndex(
            dim=self._aug_cols.shape[1],
            n_bits=n_bits,
            n_tables=n_tables,
            m=m,
            scale=scale,
            family=family,
            seed=seed,
            backend=backend,
        )
        self.index.build(self._aug_cols)
        self._last_queries: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _augment(self, h: np.ndarray) -> np.ndarray:
        h = np.atleast_2d(np.asarray(h, dtype=float))
        return np.concatenate([h, np.ones((h.shape[0], 1))], axis=1)

    def exact_topk(
        self, h: np.ndarray, k: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Brute-force ``(ids, logits)`` via the full output GEMM."""
        k = self.k if k is None else int(k)
        h = np.atleast_2d(np.asarray(h, dtype=float))
        logits = active_backend().matmul_add_bias(h, self.layer.W, self.layer.b)
        top = np.argpartition(-logits, k - 1, axis=1)[:, :k]
        order = np.argsort(-np.take_along_axis(logits, top, axis=1), axis=1)
        ids = np.take_along_axis(top, order, axis=1)
        return ids, np.take_along_axis(logits, ids, axis=1)

    def candidates(self, h: np.ndarray, record: bool = True):
        """Raw LSH candidate sets for a trunk batch (sorted ids per row)."""
        return self.index.query_batch(self._augment(h), record=record)

    def topk(
        self,
        h: np.ndarray,
        k: Optional[int] = None,
        exact: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Top-k class ids and logits for a batch of trunk activations.

        Returns ``(ids, logits)``, both ``(m, k)``, ids sorted by
        descending logit.  ``exact=True`` is the escape hatch: full
        GEMM, no index involved.  Rows whose candidate set is smaller
        than ``k`` silently fall back to the exact path (counted under
        ``serve.head.exact_fallbacks``).
        """
        k = self.k if k is None else int(k)
        if not 1 <= k <= self.n_classes:
            raise ValueError(f"k must be in [1, {self.n_classes}], got {k}")
        h = np.atleast_2d(np.asarray(h, dtype=float))
        self._last_queries = h
        if exact:
            return self.exact_topk(h, k)
        if self.obs.enabled:
            start = time.perf_counter()
            out = self._approx_topk(h, k)
            dt = time.perf_counter() - start
            self.obs.add_time("serve.head.topk", dt)
            self.obs.histogram(HIST_SERVE_HEAD_SECONDS, dt)
            return out
        return self._approx_topk(h, k)

    def _approx_topk(
        self, h: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        backend = active_backend()
        candidate_sets = self.candidates(h)
        m = h.shape[0]
        ids = np.empty((m, k), dtype=np.int64)
        logits = np.empty((m, k))
        self.obs.add(SERVE_HEAD_QUERIES, m)
        exact_rows = []
        for i, cand in enumerate(candidate_sets):
            if cand.size < k:
                exact_rows.append(i)
                continue
            self.obs.add(SERVE_HEAD_CANDIDATES, int(cand.size))
            # Score only the candidate columns: O(n_hidden * |cand|)
            # instead of the full O(n_hidden * n_classes) GEMM row.
            scores = backend.matmul_cols(
                h[i : i + 1], self.layer.W, self.layer.b, cand
            )[0]
            top = np.argpartition(-scores, k - 1)[:k]
            order = np.argsort(-scores[top])
            ids[i] = cand[top[order]]
            logits[i] = scores[top[order]]
        if exact_rows:
            self.obs.add(SERVE_HEAD_FALLBACKS, len(exact_rows))
            rows = np.asarray(exact_rows)
            e_ids, e_logits = self.exact_topk(h[rows], k)
            ids[rows] = e_ids
            logits[rows] = e_logits
        return ids, logits


def head_recall(
    head: ALSHTopKHead, queries: np.ndarray, k: Optional[int] = None
) -> float:
    """Mean recall@k of the head against brute-force MIPS on ``queries``.

    Uses the counters-off candidate path, so measuring recall never
    inflates the head's work counters.
    """
    k = head.k if k is None else int(k)
    queries = np.atleast_2d(np.asarray(queries, dtype=float))
    truth = exact_mips_batch(head._aug_cols, head._augment(queries), k)
    hits = 0
    for q_true, cand in zip(truth, head.candidates(queries, record=False)):
        hits += np.intersect1d(q_true, cand).size
    return hits / float(truth.size)


class HeadRecallProbe(Probe):
    """Recall@k of the serving head, recorded on the probe cadence.

    Duck-types its "trainer" as anything with an ``obs`` recorder and a
    ``head`` whose last query batch is retained — the
    :class:`~repro.serve.server.InferenceServer` qualifies, so the
    standard :class:`~repro.obs.probes.ProbeManager` cadence/budget
    machinery drives serving-quality measurement unchanged.
    """

    name = "head_recall"

    def __init__(self, max_queries: int = 8):
        if max_queries < 1:
            raise ValueError(f"max_queries must be at least 1, got {max_queries}")
        self.max_queries = int(max_queries)

    def supports(self, trainer) -> bool:
        head = getattr(trainer, "head", None)
        return head is not None and getattr(head, "_last_queries", None) is not None

    def run(self, trainer, step, x, y, rng, recorder) -> None:
        head: ALSHTopKHead = trainer.head
        queries = head._last_queries[: self.max_queries]
        recorder.series(
            SERIES_SERVE_HEAD_RECALL, step, head_recall(head, queries)
        )
        recorder.add(PROBE_POINTS)
