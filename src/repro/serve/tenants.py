"""Multi-tenant head cache: thousands of per-user heads, LRU-evicted.

The personalisation scenario (§2 of the paper, ``examples/
personalization.py``) fine-tunes a small classifier head per user on
top of one shared trunk.  Serving that means holding *some* heads in
memory — all of them would dwarf the trunk — and the eviction policy is
exactly the set-associative LRU question :mod:`repro.memsim.cache`
already models for the §9.4 analysis.

So instead of re-implementing LRU, the cache maps each tenant to one
cache line of a single fully-associative :class:`~repro.memsim.cache.
CacheLevel` (one set, ``capacity`` ways) and lets the simulator decide
who stays: after every touch, any loaded head whose line left the
level's resident set is evicted.  Hit/miss/eviction counts land in the
``serve.tenant.*`` counters and the simulator's own hit/miss statistics
stay available for analysis.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..memsim.cache import CacheLevel
from ..obs import NULL_RECORDER, Recorder
from ..obs.counters import (
    SERVE_TENANT_EVICTIONS,
    SERVE_TENANT_HITS,
    SERVE_TENANT_MISSES,
    SERVE_TENANT_RESIDENT,
)

__all__ = ["TenantHeadCache"]


class TenantHeadCache:
    """LRU cache of per-tenant heads, driven by the memsim cache model.

    Parameters
    ----------
    capacity:
        Maximum heads resident at once (the level's associativity).
    loader:
        ``(tenant_id) -> head`` called on every miss — typically loads a
        per-user checkpoint through the model registry.
    recorder:
        Observability sink for the ``serve.tenant.*`` counters.
    """

    def __init__(
        self,
        capacity: int,
        loader: Callable[[str], object],
        recorder: Recorder = NULL_RECORDER,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self.capacity = int(capacity)
        self.loader = loader
        self.obs = recorder
        # One fully-associative set: every head is one 64-byte "line",
        # the level's LRU stamps decide eviction order.
        self.level = CacheLevel(
            size_bytes=64 * self.capacity,
            line_size=64,
            associativity=self.capacity,
            name="tenant-heads",
        )
        self._line_of: Dict[str, int] = {}
        self._tenant_of: Dict[int, str] = {}
        self._heads: Dict[str, object] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def _line(self, tenant: str) -> int:
        line = self._line_of.get(tenant)
        if line is None:
            line = len(self._line_of)
            self._line_of[tenant] = line
            self._tenant_of[line] = tenant
        return line

    def get(self, tenant: str) -> object:
        """The tenant's head, loading (and possibly evicting) on miss."""
        tenant = str(tenant)
        hit = self.level.access_line(self._line(tenant))
        if hit and tenant in self._heads:
            self.hits += 1
            self.obs.add(SERVE_TENANT_HITS)
            return self._heads[tenant]
        self.misses += 1
        self.obs.add(SERVE_TENANT_MISSES)
        head = self.loader(tenant)
        self._heads[tenant] = head
        self._evict_nonresident()
        self.obs.gauge(SERVE_TENANT_RESIDENT, len(self._heads))
        return head

    def _evict_nonresident(self) -> None:
        """Drop every loaded head whose line the simulator evicted."""
        resident = self.level.resident_lines()
        for tenant in [
            t for t in self._heads if self._line_of[t] not in resident
        ]:
            del self._heads[tenant]
            self.evictions += 1
            self.obs.add(SERVE_TENANT_EVICTIONS)

    # ------------------------------------------------------------------
    def resident(self) -> List[str]:
        """Tenants whose heads are currently in memory (sorted)."""
        return sorted(self._heads)

    def __contains__(self, tenant: str) -> bool:
        return str(tenant) in self._heads

    def __len__(self) -> int:
        return len(self._heads)

    def stats(self) -> dict:
        """Cache statistics: the serving view plus the simulator's own."""
        total = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "resident": len(self._heads),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / total if total else 0.0,
            "model_miss_rate": self.level.miss_rate(),
        }
