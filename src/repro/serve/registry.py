"""Model registry: immutable servable models from ``.npz`` checkpoints.

Training produces kind-tagged archives (:mod:`repro.nn.serialize`);
serving needs the inverse with stronger guarantees:

* **Immutability.**  A loaded model's parameter arrays are frozen
  (``writeable=False``), so no handler, probe or head can silently
  perturb the weights a thousand in-flight requests share.
* **Version pins.**  Every load computes a content digest of the
  parameter arrays; a registry entry can pin the expected digest so a
  deploy that picks up the wrong checkpoint fails at load time, not in
  production answers.
* **Corrupt-archive rejection.**  Loads go through
  :func:`repro.nn.serialize.read_archive`, which turns truncated or
  garbled archives into a clear ``ValueError`` up front.

The fixed-pad forward (:meth:`ServableModel.predict_logproba` with
``pad_to``) is the mechanism behind the serving layer's bitwise
guarantee: BLAS picks different kernels per GEMM *shape* (an ``m=1``
forward is a GEMV, a small-m forward is blocked differently), but at a
fixed shape each output row depends only on its own input row.  Padding
every batch to the same row count therefore makes each row's bits
independent of how many requests happened to share its micro-batch.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..backend import active_backend
from ..nn.conv import ConvClassifier
from ..nn.network import MLP
from ..nn.serialize import read_archive

__all__ = ["ServableModel", "ModelRegistry", "load_servable", "weights_digest"]

_KIND_LOADERS = ("mlp", "conv_classifier")


def weights_digest(arrays) -> str:
    """Short content digest over parameter arrays (order-sensitive)."""
    h = hashlib.sha256()
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()[:12]


def _freeze(arr: np.ndarray) -> np.ndarray:
    arr.flags.writeable = False
    return arr


class ServableModel:
    """An immutable, versioned model ready to answer inference requests.

    Parameters
    ----------
    model:
        A trained :class:`~repro.nn.network.MLP` or
        :class:`~repro.nn.conv.ConvClassifier`.  Its parameter arrays
        are frozen in place.
    name, version:
        Registry identity; ``version`` defaults to the content digest.
    """

    def __init__(self, model, name: str = "model", version: Optional[str] = None):
        if isinstance(model, MLP):
            self.kind = "mlp"
            self._mlp = model
            params = [a for layer in model.layers for a in (layer.W, layer.b)]
        elif isinstance(model, ConvClassifier):
            self.kind = "conv_classifier"
            self._mlp = None
            params = [
                a
                for conv, _ in model.extractor.stages
                for a in (conv.kernels, conv.bias)
            ] + [a for layer in model.head.layers for a in (layer.W, layer.b)]
        else:
            raise TypeError(
                f"cannot serve a {type(model).__name__}; expected MLP or "
                "ConvClassifier"
            )
        self.model = model
        self.name = str(name)
        for arr in params:
            _freeze(arr)
        self.digest = weights_digest(params)
        self.version = self.digest if version is None else str(version)

    # ------------------------------------------------------------------
    @property
    def supports_head(self) -> bool:
        """Whether an ALSH top-k head can sit on this model (MLP only)."""
        return self.kind == "mlp"

    @property
    def input_dim(self) -> int:
        if self.kind == "mlp":
            return self.model.layer_sizes[0]
        raise AttributeError("conv servables take NCHW images, not flat rows")

    @property
    def n_outputs(self) -> int:
        if self.kind == "mlp":
            return self.model.n_outputs
        return self.model.head.n_outputs

    def output_layer(self):
        """The final dense layer (the ALSH head indexes its columns)."""
        net = self.model if self.kind == "mlp" else self.model.head
        return net.layers[-1]

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def _padded(self, x: np.ndarray, pad_to: Optional[int]) -> Tuple[np.ndarray, int]:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        m = x.shape[0]
        if pad_to is None or m == pad_to:
            return x, m
        if m > pad_to:
            raise ValueError(f"batch of {m} rows exceeds pad_to={pad_to}")
        pad = np.broadcast_to(x[:1], (pad_to - m,) + x.shape[1:])
        return np.concatenate([x, pad], axis=0), m

    def predict_logproba(
        self, x: np.ndarray, pad_to: Optional[int] = None
    ) -> np.ndarray:
        """Log class probabilities for a batch of flat rows.

        With ``pad_to=M`` the forward always runs at exactly ``M`` rows
        (short batches repeat their first row as filler, then slice),
        which pins the BLAS kernel choice and makes every row's result
        bit-identical regardless of batch composition — the serving
        layer's bitwise-batching mode.
        """
        if self.kind != "mlp":
            raise TypeError("predict_logproba requires an MLP servable")
        xp, m = self._padded(x, pad_to)
        return self._mlp.predict_logproba(xp)[:m]

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class predictions (both model kinds)."""
        return self.model.predict(x)

    def trunk_forward(
        self, x: np.ndarray, pad_to: Optional[int] = None
    ) -> np.ndarray:
        """Activations entering the output layer (the shared trunk).

        The multi-tenant scenario serves thousands of per-user heads on
        top of this one computation; the ALSH top-k head consumes it as
        its query batch.
        """
        if self.kind != "mlp":
            raise TypeError("trunk_forward requires an MLP servable")
        xp, m = self._padded(x, pad_to)
        a = xp
        backend = active_backend()
        net = self._mlp
        for layer in net.layers[:-1]:
            a = backend.apply_activation(net.hidden_activation, layer.forward(a))
        return a[:m]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServableModel({self.name}@{self.version}, kind={self.kind})"


def load_servable(
    path: Union[str, Path], name: str = "model", version: Optional[str] = None
) -> ServableModel:
    """Load any kind-tagged checkpoint into a :class:`ServableModel`.

    Sniffs the archive's ``kind`` marker and dispatches to the matching
    restorer; raises ``ValueError`` for corrupt archives, unknown kinds
    and — when ``version`` names a digest pin — checkpoints whose
    content digest does not match the pin.
    """
    from ..nn.serialize import load_conv, load_mlp

    path = Path(path)
    archive = read_archive(path)
    if "meta" not in archive:
        raise ValueError(f"{path} is not a saved model (no meta entry)")
    meta = json.loads(archive["meta"].tobytes().decode())
    kind = meta.get("kind", "mlp")
    if kind not in _KIND_LOADERS:
        raise ValueError(
            f"{path} holds unservable kind {kind!r}; "
            f"expected one of {_KIND_LOADERS}"
        )
    model = load_mlp(path) if kind == "mlp" else load_conv(path)
    servable = ServableModel(model, name=name)
    if version is not None and servable.digest != version:
        raise ValueError(
            f"{path} digest {servable.digest} does not match the pinned "
            f"version {version} for model {name!r}"
        )
    if version is not None:
        servable.version = version
    return servable


class ModelRegistry:
    """Named, versioned servable models loaded from checkpoint archives.

    ``register`` loads eagerly so a bad checkpoint fails the deploy, not
    the first request.  Each name maps to one *current* servable; older
    versions stay retrievable by digest (in-flight requests may hold
    them) until :meth:`unregister` drops the name.
    """

    def __init__(self) -> None:
        self._current: Dict[str, ServableModel] = {}
        self._versions: Dict[Tuple[str, str], ServableModel] = {}

    def register(
        self,
        name: str,
        source: Union[str, Path, MLP, ConvClassifier, ServableModel],
        version: Optional[str] = None,
    ) -> ServableModel:
        """Load/adopt a model under ``name``; returns the servable.

        ``source`` may be a checkpoint path, a live model object, or an
        existing :class:`ServableModel`.  ``version`` pins the expected
        content digest for path sources and overrides the label
        otherwise.
        """
        if isinstance(source, ServableModel):
            servable = source
            servable.name = str(name)
            if version is not None and servable.digest != version:
                raise ValueError(
                    f"servable digest {servable.digest} does not match the "
                    f"pinned version {version} for model {name!r}"
                )
        elif isinstance(source, (MLP, ConvClassifier)):
            servable = ServableModel(source, name=name, version=version)
        else:
            servable = load_servable(source, name=name, version=version)
        self._current[str(name)] = servable
        self._versions[(str(name), servable.version)] = servable
        return servable

    def get(self, name: str, version: Optional[str] = None) -> ServableModel:
        """The current servable for ``name`` (or a pinned ``version``)."""
        if version is not None:
            try:
                return self._versions[(str(name), str(version))]
            except KeyError:
                raise KeyError(
                    f"no model {name!r} at version {version!r} registered"
                ) from None
        try:
            return self._current[str(name)]
        except KeyError:
            raise KeyError(
                f"no model {name!r} registered; "
                f"available: {', '.join(sorted(self._current)) or '(none)'}"
            ) from None

    def unregister(self, name: str) -> None:
        """Drop a name and every version registered under it."""
        self._current.pop(str(name), None)
        for key in [k for k in self._versions if k[0] == str(name)]:
            del self._versions[key]

    def names(self) -> List[str]:
        return sorted(self._current)

    def __contains__(self, name: str) -> bool:
        return str(name) in self._current

    def __len__(self) -> int:
        return len(self._current)
