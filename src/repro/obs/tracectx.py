"""Per-request trace propagation for the serving path.

A :class:`RequestTracer` mints a request id at ``InferenceServer.submit``
time; the id travels with the request through the micro-batch queue,
dispatch and the model handler, and every hop appends one *trace event*
— enqueued, shed, dispatched, completed — tagged with the id, a
monotonic timestamp and (once dispatched) the id of the micro-batch the
request rode in.  Batch-scoped work (trunk forward, ALSH head top-k)
emits events tagged with the batch id alone, so reconstructing one
request's timeline also recovers the shared work its batch paid for.

Events buffer in memory and flush to the shared JSONL sink as records of
kind :data:`REQUEST_TRACE_KIND` (``{"kind": "request_trace", "events":
[...]}``), riding the same file as executor outcomes and snapshot trace
records.  ``python -m repro trace-report --request <id>`` reconstructs a
timeline from such a store via :func:`reconstruct_request`.

Stdlib-only, like the rest of the ``repro.obs`` core.  Ids are minted
from a process-local counter (``r000001``, ...) — deterministic, cheap,
and unique within one serving process; multi-process deployments prefix
them via ``id_prefix``.
"""

from __future__ import annotations

import itertools
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from .sink import write_trace

__all__ = [
    "REQUEST_TRACE_KIND",
    "RequestTracer",
    "NULL_TRACER",
    "read_trace_events",
    "reconstruct_request",
    "render_request_timeline",
]

REQUEST_TRACE_KIND = "request_trace"

#: events a request emits over its lifetime, in causal order.
REQUEST_EVENTS = (
    "enqueued",
    "shed_queue_full",
    "shed_deadline",
    "dispatched",
    "completed",
    "failed",
)


class RequestTracer:
    """Mints request ids and buffers per-request trace events.

    ``sink`` is an optional JSONL path; events flush there in chunks of
    ``flush_every`` (and on :meth:`close`).  Without a sink the events
    stay in :attr:`events` for in-process inspection, bounded at
    ``max_buffer`` (oldest half dropped — a tracer must never be the
    unbounded-memory problem it exists to expose).  All methods are
    thread-safe and O(1) — the tracer sits on the serving hot path, so
    ids come from ``itertools.count`` (GIL-atomic, no lock) and event
    appends rely on the atomicity of ``list.append``; the lock guards
    only the rare drain.
    """

    def __init__(
        self,
        sink: Optional[Union[str, Path]] = None,
        clock: Callable[[], float] = time.monotonic,
        id_prefix: str = "r",
        flush_every: int = 256,
        max_buffer: int = 65536,
    ):
        self.sink = Path(sink) if sink is not None else None
        self.clock = clock
        self.id_prefix = id_prefix
        self.flush_every = int(flush_every)
        self.max_buffer = int(max_buffer)
        self.events: List[Dict[str, Any]] = []
        self._seq = itertools.count(1)
        self._batch_seq = itertools.count(1)
        self._lock = threading.Lock()

    # -- id minting ----------------------------------------------------
    def mint(self) -> str:
        """A new unique request id (``r000001``, ``r000002``, ...)."""
        return f"{self.id_prefix}{next(self._seq):06d}"

    def mint_batch(self) -> str:
        """A new unique micro-batch id (``b000001``, ...)."""
        return f"b{next(self._batch_seq):06d}"

    # -- event recording -----------------------------------------------
    def event(
        self,
        request_id: Optional[str],
        event: str,
        batch: Optional[str] = None,
        t: Optional[float] = None,
        **fields: Any,
    ) -> None:
        """Append one trace event; ``request_id=None`` marks batch scope."""
        record: Dict[str, Any] = {
            "request": request_id,
            "event": event,
            "t": self.clock() if t is None else float(t),
        }
        if batch is not None:
            record["batch"] = batch
        if fields:
            record.update(fields)
        self.events.append(record)  # GIL-atomic; no lock on the hot path
        if self.sink is not None:
            if len(self.events) >= self.flush_every:
                with self._lock:
                    pending = (
                        self._drain()
                        if len(self.events) >= self.flush_every
                        else None
                    )
                if pending:
                    self._write(pending)
        elif len(self.events) > self.max_buffer:
            with self._lock:
                if len(self.events) > self.max_buffer:
                    del self.events[: len(self.events) // 2]

    def batch_event(self, batch: str, event: str, **fields: Any) -> None:
        """A batch-scoped event (trunk forward, head top-k, dispatch)."""
        self.event(None, event, batch=batch, **fields)

    # -- flushing ------------------------------------------------------
    def _drain(self) -> List[Dict[str, Any]]:
        pending, self.events = self.events, []
        return pending

    def _write(self, pending: List[Dict[str, Any]]) -> None:
        write_trace(self.sink, {"kind": REQUEST_TRACE_KIND, "events": pending})

    def flush(self) -> None:
        """Write all buffered events to the sink (no-op without one)."""
        if self.sink is None:
            return
        with self._lock:
            pending = self._drain()
        if pending:
            self._write(pending)

    def close(self) -> None:
        self.flush()


class _NullTracer(RequestTracer):
    """Shared do-nothing tracer: mint returns None, events are dropped.

    Serving code calls ``tracer.mint()`` / ``tracer.event(...)``
    unconditionally; with the null tracer those are cheap no-ops and no
    request ids exist, matching the pre-tracing behaviour bit for bit.
    """

    def __init__(self):
        super().__init__()

    def mint(self) -> Optional[str]:  # type: ignore[override]
        return None

    def mint_batch(self) -> Optional[str]:  # type: ignore[override]
        return None

    def event(self, request_id, event, batch=None, t=None, **fields) -> None:
        pass

    def flush(self) -> None:
        pass


NULL_TRACER = _NullTracer()


# ----------------------------------------------------------------------
# reconstruction
# ----------------------------------------------------------------------

def read_trace_events(records: List[dict]) -> List[Dict[str, Any]]:
    """Flatten the events of every ``request_trace`` record in a store."""
    events: List[Dict[str, Any]] = []
    for record in records:
        if record.get("kind") != REQUEST_TRACE_KIND:
            continue
        for event in record.get("events", []):
            if isinstance(event, dict):
                events.append(event)
    return events


def reconstruct_request(
    events: List[Dict[str, Any]], request_id: str
) -> Dict[str, Any]:
    """One request's timeline, plus the batch it rode in.

    Returns ``{"request": id, "events": [...], "batch": id-or-None,
    "batch_events": [...], "siblings": [ids]}`` where *events* are the
    request's own hops, *batch_events* the batch-scoped work (dispatch,
    trunk forward, head top-k) of its micro-batch, and *siblings* the
    other requests that rode the same batch.  Raises :class:`KeyError`
    when the id never appears in the store.
    """
    own = sorted(
        (e for e in events if e.get("request") == request_id),
        key=lambda e: e.get("t", 0.0),
    )
    if not own:
        raise KeyError(f"request id {request_id!r} not found in trace store")
    batch = next((e["batch"] for e in own if e.get("batch") is not None), None)
    batch_events: List[Dict[str, Any]] = []
    siblings: List[str] = []
    if batch is not None:
        seen = {request_id}
        for e in events:
            if e.get("batch") != batch:
                continue
            if e.get("request") is None:
                batch_events.append(e)
            elif e["request"] not in seen:
                seen.add(e["request"])
                siblings.append(e["request"])
        batch_events.sort(key=lambda e: e.get("t", 0.0))
    return {
        "request": request_id,
        "events": own,
        "batch": batch,
        "batch_events": batch_events,
        "siblings": sorted(siblings),
    }


def render_request_timeline(timeline: Dict[str, Any]) -> str:
    """Human-readable timeline for ``trace-report --request``."""
    lines = [f"request {timeline['request']}"]
    t0 = timeline["events"][0].get("t", 0.0) if timeline["events"] else 0.0

    def _fmt(event: Dict[str, Any], indent: str) -> str:
        dt_ms = (event.get("t", t0) - t0) * 1e3
        extra = ", ".join(
            f"{k}={v}"
            for k, v in event.items()
            if k not in ("request", "event", "t", "batch") and v is not None
        )
        tail = f"  ({extra})" if extra else ""
        return f"{indent}{dt_ms:+10.3f} ms  {event['event']}{tail}"

    for event in timeline["events"]:
        lines.append(_fmt(event, "  "))
    if timeline["batch"] is not None:
        lines.append(
            f"  batch {timeline['batch']}"
            + (
                f"  (rode with {len(timeline['siblings'])} sibling(s): "
                + ", ".join(timeline["siblings"][:8])
                + ("..." if len(timeline["siblings"]) > 8 else "")
                + ")"
                if timeline["siblings"]
                else "  (alone in its batch)"
            )
        )
        for event in timeline["batch_events"]:
            lines.append(_fmt(event, "    "))
    return "\n".join(lines)
