"""Self-contained single-file HTML run reports.

``python -m repro report`` renders a trace/sweep JSONL into one HTML
file with zero external assets: span tree, counter rollup with derived
ratios, per-series sparklines, the theory-vs-measured forward-error
overlay, and probe overhead accounting.  Everything is inline SVG +
CSS custom properties (light and dark via ``prefers-color-scheme``),
so the file can be mailed around or attached to CI as an artifact.

Stdlib only, like the rest of the package core.  The Theorem 7.2
analytical bound is *data* here — the CLI computes it via
``repro.theory.error_propagation.error_ratio`` and passes the points
in; obs never imports theory.
"""

from __future__ import annotations

from html import escape
from typing import Dict, List, Optional, Sequence, Tuple

from .counters import COUNTER_CATALOG, GAUGE_CATALOG, HISTOGRAM_CATALOG, SLO_BURN_PREFIX
from .histogram import Histogram
from .report import derived_metrics, probe_overhead
from .timeseries import (
    SERIES_CATALOG,
    SERIES_FWD_REL_ERROR,
    SERIES_PREFIXES,
    series_points,
    split_layer_series,
)

__all__ = ["render_html_report", "forward_error_by_layer"]

# Palette: light/dark token pairs.  Series colors carry identity in the
# marks only; all text wears the ink tokens.
_CSS = """
:root {
  --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --s1: #3987e5; --s2: #d95926; --s3: #1baf7a;
  }
}
:root[data-theme="light"] {
  --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a;
}
:root[data-theme="dark"] {
  --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
  --grid: #2c2c2a; --baseline: #383835;
  --s1: #3987e5; --s2: #d95926; --s3: #1baf7a;
}
body {
  background: var(--surface); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
  max-width: 960px; margin: 2rem auto; padding: 0 1rem;
}
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
h3 { font-size: 1rem; color: var(--ink-2); }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 2px 12px 2px 0; vertical-align: middle; }
th { color: var(--ink-2); font-weight: 600;
     border-bottom: 1px solid var(--baseline); }
td.num { font-variant-numeric: tabular-nums; }
.desc { color: var(--ink-3); }
.muted { color: var(--ink-3); }
pre.spans { color: var(--ink-2); line-height: 1.4; }
.legend { display: flex; gap: 1.25rem; margin: 0.25rem 0; color: var(--ink-2); }
.legend .swatch { display: inline-block; width: 14px; height: 3px;
                  vertical-align: middle; margin-right: 6px; }
svg text { fill: var(--ink-2); font: 11px system-ui, sans-serif; }
"""


def _fmt(value: float) -> str:
    if isinstance(value, float) and not float(value).is_integer():
        return f"{value:.4g}"
    return f"{int(value):,}"


def _scale(
    values: Sequence[float], lo: float, hi: float, out_lo: float, out_hi: float
) -> List[float]:
    span = hi - lo
    if span <= 0:
        return [(out_lo + out_hi) / 2.0 for _ in values]
    k = (out_hi - out_lo) / span
    return [out_lo + (v - lo) * k for v in values]


def _sparkline(indices: Sequence[int], values: Sequence[float]) -> str:
    """Inline 140x30 sparkline for one series (2px line, no axes)."""
    w, h, pad = 140, 30, 3
    if len(values) == 1:
        xs, ys = [w / 2.0], [h / 2.0]
    else:
        xs = _scale(list(indices), min(indices), max(indices), pad, w - pad)
        ys = _scale(values, min(values), max(values), h - pad, pad)
    pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
    mark = (
        f'<circle cx="{xs[-1]:.1f}" cy="{ys[-1]:.1f}" r="2.5" '
        'fill="var(--s1)"/>'
    )
    line = (
        f'<polyline points="{pts}" fill="none" stroke="var(--s1)" '
        'stroke-width="2" stroke-linejoin="round"/>'
        if len(values) > 1
        else ""
    )
    return (
        f'<svg width="{w}" height="{h}" viewBox="0 0 {w} {h}" '
        f'role="img" aria-label="sparkline">{line}{mark}</svg>'
    )


def forward_error_by_layer(snapshot: dict) -> List[Tuple[int, float]]:
    """Mean measured relative forward error per layer, from the probe
    series — the measured side of the Theorem 7.2 overlay.

    Returns ``[(layer_k, mean_rel_error), ...]`` sorted by layer.
    """
    by_layer: Dict[int, List[float]] = {}
    for name in snapshot.get("series", {}):
        parts = split_layer_series(name)
        if parts is None or parts[0] != SERIES_FWD_REL_ERROR:
            continue
        _, values = series_points(snapshot, name)
        if values:
            by_layer[parts[1]] = list(values)
    return [
        (k, sum(v) / len(v)) for k, v in sorted(by_layer.items())
    ]


def _overlay_chart(
    measured: Sequence[Tuple[int, float]],
    bound: Optional[Sequence[Tuple[int, float]]],
) -> str:
    """Measured per-layer error (series-1) vs analytical bound (series-2).

    One y-axis, layer index on x.  Both curves share the scale; the
    legend carries identity, point markers get native ``<title>``
    tooltips.
    """
    w, h = 640, 260
    ml, mr, mt, mb = 56, 16, 12, 34
    all_pts = list(measured) + list(bound or [])
    if not all_pts:
        return '<p class="muted">(no forward-error probe data)</p>'
    ks = sorted({k for k, _ in all_pts})
    vals = [v for _, v in all_pts]
    v_lo, v_hi = 0.0, max(max(vals), 1e-12)
    v_hi *= 1.05

    def x(k: float) -> float:
        if len(ks) == 1:
            return (ml + w - mr) / 2.0
        return ml + (k - ks[0]) * (w - ml - mr) / (ks[-1] - ks[0])

    def y(v: float) -> float:
        return (h - mb) - (v - v_lo) * (h - mt - mb) / (v_hi - v_lo)

    parts: List[str] = []
    # gridlines + y tick labels (4 ticks)
    for i in range(5):
        v = v_lo + (v_hi - v_lo) * i / 4.0
        yy = y(v)
        stroke = "var(--baseline)" if i == 0 else "var(--grid)"
        parts.append(
            f'<line x1="{ml}" y1="{yy:.1f}" x2="{w - mr}" y2="{yy:.1f}" '
            f'stroke="{stroke}" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{ml - 6}" y="{yy + 4:.1f}" '
            f'text-anchor="end">{v:.3g}</text>'
        )
    for k in ks:
        parts.append(
            f'<text x="{x(k):.1f}" y="{h - mb + 16}" '
            f'text-anchor="middle">{k}</text>'
        )
    parts.append(
        f'<text x="{(ml + w - mr) / 2:.0f}" y="{h - 4}" '
        'text-anchor="middle">layer</text>'
    )

    def curve(points, color, label):
        if not points:
            return
        pts = " ".join(f"{x(k):.1f},{y(v):.1f}" for k, v in points)
        if len(points) > 1:
            parts.append(
                f'<polyline points="{pts}" fill="none" stroke="{color}" '
                'stroke-width="2" stroke-linejoin="round"/>'
            )
        for k, v in points:
            parts.append(
                f'<circle cx="{x(k):.1f}" cy="{y(v):.1f}" r="4" '
                f'fill="{color}" stroke="var(--surface)" stroke-width="2">'
                f"<title>{escape(label)} · layer {k}: {v:.4g}</title>"
                "</circle>"
            )

    curve(measured, "var(--s1)", "measured")
    if bound:
        curve(bound, "var(--s2)", "Theorem 7.2 bound")
    svg = (
        f'<svg width="{w}" height="{h}" viewBox="0 0 {w} {h}" role="img" '
        f'aria-label="per-layer forward error">{"".join(parts)}</svg>'
    )
    legend = (
        '<div class="legend">'
        '<span><span class="swatch" style="background:var(--s1)"></span>'
        "measured mean rel. error</span>"
    )
    if bound:
        legend += (
            '<span><span class="swatch" style="background:var(--s2)"></span>'
            "Theorem 7.2 bound ((c+1)/c)^k − 1</span>"
        )
    legend += "</div>"
    return legend + svg


def _counters_table(snapshot: dict) -> str:
    counters = dict(snapshot.get("counters", {}))
    counters.update(derived_metrics(snapshot))
    gauges = snapshot.get("gauges", {})
    if not counters and not gauges:
        return '<p class="muted">(no counters recorded)</p>'
    rows = []
    for name in sorted(counters):
        desc = COUNTER_CATALOG.get(name, "")
        rows.append(
            f"<tr><td>{escape(name)}</td>"
            f'<td class="num">{_fmt(counters[name])}</td>'
            f'<td class="desc">{escape(desc)}</td></tr>'
        )
    for name in sorted(gauges):
        desc = GAUGE_CATALOG.get(name, "")
        rows.append(
            f"<tr><td>{escape(name)}</td>"
            f'<td class="num">{_fmt(gauges[name])}</td>'
            f'<td class="desc">(gauge) {escape(desc)}</td></tr>'
        )
    return (
        "<table><tr><th>counter</th><th>value</th><th></th></tr>"
        + "".join(rows)
        + "</table>"
    )


def _spans_block(snapshot: dict) -> str:
    spans = snapshot.get("spans", {})
    timings = snapshot.get("timings", {})
    if not spans and not timings:
        return '<p class="muted">(no spans recorded)</p>'
    lines = []
    for path in sorted(spans):
        depth = path.count("/")
        name = path.rsplit("/", 1)[-1]
        v = spans[path]
        lines.append(
            f"{'  ' * depth}{name:<{max(24 - 2 * depth, 1)}}"
            f"  n={v['count']:<8} total={v['total']:.3f}s"
        )
    for name in sorted(timings):
        v = timings[name]
        lines.append(f"{name:<24}  n={v['count']:<8} total={v['total']:.3f}s")
    return f'<pre class="spans">{escape(chr(10).join(lines))}</pre>'


def _series_block(snapshot: dict) -> str:
    series = snapshot.get("series", {})
    if not series:
        return '<p class="muted">(no series recorded)</p>'
    rows = []
    for name in sorted(series):
        idx, values = series_points(snapshot, name)
        if not values:
            continue
        desc = SERIES_CATALOG.get(name, "")
        if not desc:
            parts = split_layer_series(name)
            if parts is not None:
                desc = SERIES_PREFIXES.get(parts[0], "")
        rows.append(
            f"<tr><td>{escape(name)}</td><td>{_sparkline(idx, values)}</td>"
            f'<td class="num">{len(values)}</td>'
            f'<td class="num">{values[-1]:.4g}</td>'
            f'<td class="desc">{escape(desc)}</td></tr>'
        )
    if not rows:
        return '<p class="muted">(no series recorded)</p>'
    return (
        "<table><tr><th>series</th><th></th><th>points</th><th>last</th>"
        "<th></th></tr>" + "".join(rows) + "</table>"
    )


def _overhead_block(snapshot: dict) -> str:
    acct = probe_overhead(snapshot)
    if not acct:
        return '<p class="muted">(no probe timings recorded)</p>'
    rows = []
    labels = {
        "probe.seconds": "total probe wall-clock",
        "fit.seconds": "total fit wall-clock",
        "probe.overhead_frac": "probe overhead fraction",
    }
    for key in ("probe.seconds", "fit.seconds", "probe.overhead_frac"):
        if key in acct:
            val = acct[key]
            shown = f"{val:.2%}" if key.endswith("frac") else f"{val:.3f}s"
            rows.append(
                f"<tr><td>{escape(labels[key])}</td>"
                f'<td class="num">{shown}</td></tr>'
            )
    timings = snapshot.get("timings", {})
    for name in sorted(t for t in timings if t.startswith("probe.")):
        v = timings[name]
        rows.append(
            f"<tr><td>{escape(name)}</td>"
            f'<td class="num">{v["total"]:.3f}s over {v["count"]} runs</td>'
            "</tr>"
        )
    return "<table>" + "".join(rows) + "</table>"


def _serving_block(snapshot: dict) -> str:
    """The serving rollup: traffic, shedding, head and tenant-cache stats.

    Only rendered when the snapshot actually carries ``serve.*``
    counters or gauges, so training-only reports are unchanged.
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    requests = counters.get("serve.requests", 0)
    batches = counters.get("serve.batches", 0)
    rows = [("requests", _fmt(requests)), ("batches", _fmt(batches))]
    if batches:
        rows.append(("mean batch size", f"{requests / batches:.2f}"))
    shed = (counters.get("serve.shed.queue_full", 0),
            counters.get("serve.shed.deadline", 0))
    rows.append(("shed (queue full / deadline)", f"{shed[0]} / {shed[1]}"))
    if counters.get("serve.handler_errors"):
        rows.append(("handler errors", _fmt(counters["serve.handler_errors"])))
    if "serve.queue_depth" in gauges:
        rows.append(("queue depth (high water)", _fmt(gauges["serve.queue_depth"])))
    for key, label in (("serve.latency_p50", "latency p50"),
                       ("serve.latency_p99", "latency p99")):
        if key in gauges:
            rows.append((label, f"{gauges[key] * 1e3:.2f}ms"))
    head_queries = counters.get("serve.head.queries", 0)
    if head_queries:
        rows.append(("head queries", _fmt(head_queries)))
        rows.append(("mean candidates / query",
                     f"{counters.get('serve.head.candidates', 0) / head_queries:.1f}"))
        rows.append(("head exact fallbacks",
                     _fmt(counters.get("serve.head.exact_fallbacks", 0))))
    tenant_total = (counters.get("serve.tenant.hits", 0)
                    + counters.get("serve.tenant.misses", 0))
    if tenant_total:
        rows.append((
            "tenant cache (hits / misses / evictions)",
            f"{counters.get('serve.tenant.hits', 0)} / "
            f"{counters.get('serve.tenant.misses', 0)} / "
            f"{counters.get('serve.tenant.evictions', 0)}",
        ))
        rows.append(("tenant hit rate",
                     f"{counters.get('serve.tenant.hits', 0) / tenant_total:.2%}"))
    return "<table>" + "".join(
        f"<tr><td>{escape(label)}</td><td class=\"num\">{value}</td></tr>"
        for label, value in rows
    ) + "</table>"


def _histograms_block(snapshot: dict) -> str:
    """Latency-distribution table from the log-bucket histograms."""
    histograms = snapshot.get("histograms", {})
    rows = []
    for name in sorted(histograms):
        hist = Histogram.from_snapshot(histograms[name])
        if not hist.count:
            continue
        desc = HISTOGRAM_CATALOG.get(name, "")
        rows.append(
            f"<tr><td>{escape(name)}</td>"
            f'<td class="num">{hist.count:,}</td>'
            f'<td class="num">{hist.quantile(0.5) * 1e3:.3f}</td>'
            f'<td class="num">{hist.quantile(0.9) * 1e3:.3f}</td>'
            f'<td class="num">{hist.quantile(0.99) * 1e3:.3f}</td>'
            f'<td class="num">{hist.max * 1e3:.3f}</td>'
            f'<td class="muted">{escape(desc)}</td></tr>'
        )
    if not rows:
        return '<p class="muted">(no histograms recorded)</p>'
    return (
        "<table><tr><th>histogram</th><th>n</th><th>p50 (ms)</th>"
        "<th>p90 (ms)</th><th>p99 (ms)</th><th>max (ms)</th><th></th></tr>"
        + "".join(rows)
        + "</table>"
    )


def _has_histograms(snapshot: dict) -> bool:
    return bool(snapshot.get("histograms"))


def _slo_block(snapshot: dict) -> str:
    """Error-budget burn gauges (``slo.burn.*``) when any were recorded."""
    burns = {
        name[len(SLO_BURN_PREFIX):]: value
        for name, value in snapshot.get("gauges", {}).items()
        if name.startswith(SLO_BURN_PREFIX)
    }
    rows = []
    for name in sorted(burns):
        burn = burns[name]
        verdict = "within budget" if burn <= 1.0 else "VIOLATED"
        rows.append(
            f"<tr><td>{escape(name)}</td>"
            f'<td class="num">{burn:.3f}</td>'
            f"<td>{verdict}</td></tr>"
        )
    return (
        "<table><tr><th>SLO</th><th>budget burn</th><th></th></tr>"
        + "".join(rows)
        + "</table>"
    )


def _has_slo(snapshot: dict) -> bool:
    return any(
        name.startswith(SLO_BURN_PREFIX)
        for name in snapshot.get("gauges", {})
    )


def _has_serving(snapshot: dict) -> bool:
    return any(
        name.startswith("serve.")
        for section in ("counters", "gauges")
        for name in snapshot.get(section, {})
    )


def _streaming_block(snapshot: dict) -> str:
    """The streaming rollup: stream volume, maintenance and table health.

    Only rendered when the snapshot actually carries ``stream.*``
    counters or series, so batch-training reports are unchanged.
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    batches = counters.get("stream.batches", 0)
    rows = [("stream batches", _fmt(batches)),
            ("stream samples", _fmt(counters.get("stream.samples", 0)))]
    rows.append(("drift checks", _fmt(counters.get("stream.drift_checks", 0))))
    rows.append(("drift-triggered rebuilds",
                 _fmt(counters.get("stream.rebuilds", 0))))
    if counters.get("lsh.rehashed_columns"):
        rows.append(("columns re-hashed",
                     _fmt(counters["lsh.rehashed_columns"])))
    if counters.get("lsh.rehashed_items"):
        rows.append(("items re-hashed", _fmt(counters["lsh.rehashed_items"])))
    rows.append(("gauge-driven compactions",
                 _fmt(counters.get("stream.compactions", 0))))
    if "lsh.garbage_frac" in gauges:
        rows.append(("garbage fraction (last gauge)",
                     f"{gauges['lsh.garbage_frac']:.3f}"))
    rows.append(("checkpoints written",
                 _fmt(counters.get("stream.checkpoints", 0))))
    rows.append(("held-out evals", _fmt(counters.get("stream.evals", 0))))
    series = snapshot.get("series", {})
    accuracy = series.get("stream.accuracy")
    if accuracy:
        rows.append(("last held-out accuracy", f"{accuracy[-1][1]:.3f}"))
    return "<table>" + "".join(
        f"<tr><td>{escape(label)}</td><td class=\"num\">{value}</td></tr>"
        for label, value in rows
    ) + "</table>"


def _has_streaming(snapshot: dict) -> bool:
    return any(
        name.startswith("stream.")
        for section in ("counters", "series")
        for name in snapshot.get(section, {})
    )


def render_html_report(
    traces: Sequence[dict],
    title: str = "repro run report",
    merged: Optional[dict] = None,
    theory_bound: Optional[Sequence[Tuple[int, float]]] = None,
    theory_label: Optional[str] = None,
    corrupt: int = 0,
) -> str:
    """Render trace records into one self-contained HTML document.

    Parameters
    ----------
    traces:
        Trace records as loaded from the JSONL sink — dicts with a
        ``"snapshot"`` and optionally a ``"label"``.
    merged:
        Pre-merged snapshot for the rollup sections; when None the
        first trace's snapshot is used (single-run report).
    theory_bound:
        Analytical per-layer bound ``[(k, value), ...]`` computed by
        the caller (Theorem 7.2's ((c+1)/c)^k − 1), overlaid in orange
        against the measured error in blue.
    corrupt:
        Count of corrupt JSONL lines skipped while loading, surfaced
        in the header so silent truncation is visible.
    """
    snapshots = [t.get("snapshot") or {} for t in traces]
    roll = merged if merged is not None else (snapshots[0] if snapshots else {})
    measured = forward_error_by_layer(roll)

    body: List[str] = [f"<h1>{escape(title)}</h1>"]
    meta = f"{len(traces)} trace record(s)"
    if corrupt:
        meta += f" · {corrupt} corrupt line(s) skipped"
    if theory_label:
        meta += f" · {theory_label}"
    body.append(f'<p class="muted">{escape(meta)}</p>')

    body.append("<h2>Per-layer forward error vs Theorem 7.2 bound</h2>")
    body.append(_overlay_chart(measured, theory_bound))

    body.append("<h2>Counters</h2>")
    body.append(_counters_table(roll))

    body.append("<h2>Spans &amp; timings</h2>")
    body.append(_spans_block(roll))

    body.append("<h2>Time series</h2>")
    body.append(_series_block(roll))

    if _has_histograms(roll):
        body.append("<h2>Latency histograms</h2>")
        body.append(_histograms_block(roll))

    if _has_serving(roll):
        body.append("<h2>Serving</h2>")
        body.append(_serving_block(roll))

    if _has_streaming(roll):
        body.append("<h2>Streaming</h2>")
        body.append(_streaming_block(roll))

    if _has_slo(roll):
        body.append("<h2>SLO error budgets</h2>")
        body.append(_slo_block(roll))

    body.append("<h2>Probe overhead</h2>")
    body.append(_overhead_block(roll))

    if len(traces) > 1:
        body.append("<h2>Individual runs</h2>")
        for t, snap in zip(traces, snapshots):
            label = str(t.get("label", "run"))
            body.append(f"<h3>{escape(label)}</h3>")
            body.append(_counters_table(snap))
            body.append(_series_block(snap))

    return (
        "<!doctype html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{escape(title)}</title>\n"
        f"<style>{_CSS}</style>\n"
        "</head><body>\n" + "\n".join(body) + "\n</body></html>\n"
    )
