"""JSONL trace records, sink-compatible with the experiment executor.

The executor's :class:`~repro.harness.executor.JsonlSink` writes one JSON
object per line and its resume logic only consumes records whose
``status`` field is ``"ok"``.  Trace records written here carry a
``kind`` field and *no* ``status``, so traces and sweep outcomes can
share one file: the executor ignores trace lines on resume, and
:func:`read_traces` ignores outcome lines.

This module stays dependency-free (it re-implements the three lines of
append/read rather than importing the harness) so ``repro.obs`` never
imports the packages it instruments.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = [
    "TRACE_KIND",
    "AGGREGATE_KIND",
    "trace_record",
    "write_trace",
    "read_traces",
    "scan_jsonl",
    "load_trace_file",
]

TRACE_KIND = "trace"
AGGREGATE_KIND = "trace_aggregate"


def trace_record(
    snapshot: dict,
    label: str = "",
    key: Optional[str] = None,
    kind: str = TRACE_KIND,
    **extra: Any,
) -> Dict[str, Any]:
    """One JSON-safe trace record for a JSONL sink.

    ``key`` mirrors the executor's task key so a trace can be matched to
    its sweep outcome; ``extra`` fields (summary stats, config dumps)
    are stored verbatim.
    """
    record: Dict[str, Any] = {"kind": kind, "label": label, "snapshot": snapshot}
    if key is not None:
        record["key"] = key
    record.update(extra)
    return record


def write_trace(path: Union[str, Path], record: Dict[str, Any]) -> None:
    """Append one record to a JSONL file (created with parents)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as f:
        f.write(json.dumps(record) + "\n")


def scan_jsonl(path: Union[str, Path]) -> Tuple[List[dict], int]:
    """All intact JSON records in a JSONL file plus a corrupt-line count.

    Returns ``(records, corrupt)`` where *records* keeps every
    decodable object line — trace records *and* executor outcomes — and
    *corrupt* counts non-empty lines that failed to decode (truncated
    crash-mid-write tails included).  Raises :class:`FileNotFoundError`
    for a missing path; callers wanting the lenient empty-list behaviour
    use :func:`read_traces`.
    """
    path = Path(path)
    records: List[dict] = []
    corrupt = 0
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                corrupt += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                corrupt += 1
    return records, corrupt


def _trace_filter(records: List[dict], kind: Optional[str]) -> List[dict]:
    out = []
    for record in records:
        if "kind" not in record or "snapshot" not in record:
            continue  # an executor outcome line, not a trace
        if kind is not None and record["kind"] != kind:
            continue
        out.append(record)
    return out


def read_traces(path: Union[str, Path], kind: Optional[str] = None) -> List[dict]:
    """All intact trace records in the file (skips executor outcomes).

    ``kind`` filters to one record kind; corrupt lines (including a
    truncated crash-mid-write tail) are skipped, matching the executor
    sink's tolerance, and a missing file reads as empty.
    """
    path = Path(path)
    if not path.exists():
        return []
    records, _ = scan_jsonl(path)
    return _trace_filter(records, kind)


def load_trace_file(
    path: Union[str, Path], kind: Optional[str] = None
) -> Tuple[List[dict], int]:
    """Strict read for CLI entry points: trace records + corrupt count.

    Raises :class:`FileNotFoundError` when the file does not exist and
    :class:`ValueError` (with a one-line human message) when it is empty
    or holds no trace records — so commands can fail cleanly instead of
    rendering an empty report.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"trace file not found: {path}")
    records, corrupt = scan_jsonl(path)
    traces = _trace_filter(records, kind)
    if not traces:
        if corrupt and not records:
            raise ValueError(
                f"no readable trace records in {path} "
                f"({corrupt} corrupt line(s))"
            )
        if records:
            raise ValueError(
                f"no trace records in {path} (found {len(records)} "
                "non-trace record(s); was it written with --trace/--store?)"
            )
        raise ValueError(f"trace file is empty: {path}")
    return traces, corrupt
