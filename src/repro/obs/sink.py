"""JSONL trace records, sink-compatible with the experiment executor.

The executor's :class:`~repro.harness.executor.JsonlSink` writes one JSON
object per line and its resume logic only consumes records whose
``status`` field is ``"ok"``.  Trace records written here carry a
``kind`` field and *no* ``status``, so traces and sweep outcomes can
share one file: the executor ignores trace lines on resume, and
:func:`read_traces` ignores outcome lines.

This module stays dependency-free (it re-implements the three lines of
append/read rather than importing the harness) so ``repro.obs`` never
imports the packages it instruments.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = ["TRACE_KIND", "AGGREGATE_KIND", "trace_record", "write_trace", "read_traces"]

TRACE_KIND = "trace"
AGGREGATE_KIND = "trace_aggregate"


def trace_record(
    snapshot: dict,
    label: str = "",
    key: Optional[str] = None,
    kind: str = TRACE_KIND,
    **extra: Any,
) -> Dict[str, Any]:
    """One JSON-safe trace record for a JSONL sink.

    ``key`` mirrors the executor's task key so a trace can be matched to
    its sweep outcome; ``extra`` fields (summary stats, config dumps)
    are stored verbatim.
    """
    record: Dict[str, Any] = {"kind": kind, "label": label, "snapshot": snapshot}
    if key is not None:
        record["key"] = key
    record.update(extra)
    return record


def write_trace(path: Union[str, Path], record: Dict[str, Any]) -> None:
    """Append one record to a JSONL file (created with parents)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as f:
        f.write(json.dumps(record) + "\n")


def read_traces(path: Union[str, Path], kind: Optional[str] = None) -> List[dict]:
    """All intact trace records in the file (skips executor outcomes).

    ``kind`` filters to one record kind; truncated trailing lines (a
    crash mid-write) are skipped, matching the executor sink's tolerance.
    """
    path = Path(path)
    if not path.exists():
        return []
    records = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if "kind" not in record or "snapshot" not in record:
                continue  # an executor outcome line, not a trace
            if kind is not None and record["kind"] != kind:
                continue
            records.append(record)
    return records
