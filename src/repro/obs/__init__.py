"""Unified observability layer: spans, counters and trace records.

The paper's contribution is a *measurement harness* — its §8–§11 claims
are runtime, FLOP and cache-behaviour comparisons — so the repo needs a
first-class record of what each trainer actually did: dense vs skipped
FLOPs, LSH candidates retrieved, hash-table rebuilds, sampler rows/cols
kept, lazy optimiser updates.  This package provides that record without
perturbing the thing being measured:

* :class:`~repro.obs.recorder.NullRecorder` — the default everywhere.
  Every method is a no-op and ``enabled`` is False, so instrumented code
  paths cost one attribute load + no-op call (and skip any non-trivial
  counter computation entirely via ``if obs.enabled``).  Training under
  the null recorder is bitwise identical to the pre-instrumentation
  code — enforced by ``tests/obs/test_noop.py``.
* :class:`~repro.obs.recorder.InMemoryRecorder` — hierarchical spans
  (run → epoch → phase), counters, gauges and phase timings, snapshotted
  to a JSON-safe dict.
* :mod:`~repro.obs.sink` — JSONL trace records in the same
  one-object-per-line format as the executor's resumable sink, so traces
  and sweep outcomes can share a file.
* :func:`~repro.obs.recorder.merge_snapshots` — cross-process
  aggregation: executor workers attach their snapshot to each
  :class:`~repro.harness.experiment.ExperimentResult` and the parent
  merges them into one sweep-level rollup.
* :mod:`~repro.obs.timeseries` — epoch/batch-indexed metric series
  (loss curves, probe error trajectories) riding the same snapshot,
  merge and checkpoint machinery as counters.
* :mod:`~repro.obs.probes` — cadence-bounded quality probes (forward
  error vs the exact pass, LSH recall vs brute-force MIPS, MC
  estimator moments), strictly read-only with a private RNG stream.
* :mod:`~repro.obs.html` / :mod:`~repro.obs.monitor` — the reporting
  surface: self-contained HTML run reports and live sink tailing.

The package core is dependency-free (stdlib only) and must never import
from the rest of ``repro`` — everything else imports *it*.  The one
sanctioned exception is :mod:`~repro.obs.probes`, the measurement
boundary: it uses numpy, duck-types trainers, and defers its single
``repro.approx`` import to probe-run time.  To preserve the stdlib-only
core, ``repro.obs`` itself does not import it — attach probes via
``from repro.obs.probes import ProbeManager, default_probes``.
"""

from . import counters
from .counters import (
    COUNTER_CATALOG,
    GAUGE_CATALOG,
    HISTOGRAM_CATALOG,
    HISTOGRAM_PREFIXES,
    gemm_flops,
)
from .export import (
    MetricsServer,
    parse_prometheus,
    render_prometheus,
    sanitize_metric_name,
    write_exposition,
)
from .histogram import Histogram, merge_histogram_snapshots
from .recorder import (
    NULL_RECORDER,
    InMemoryRecorder,
    NullRecorder,
    Recorder,
    merge_snapshots,
)
from .slo import (
    SLOResult,
    attach_burn_gauges,
    burn_gauges,
    evaluate_slos,
    load_slo_spec,
    render_slo_results,
)
from .tracectx import (
    NULL_TRACER,
    REQUEST_TRACE_KIND,
    RequestTracer,
    read_trace_events,
    reconstruct_request,
    render_request_timeline,
)
from .html import render_html_report
from .monitor import follow_jsonl, monitor_sink, summarize_record
from .report import (
    derived_metrics,
    probe_overhead,
    render_counters,
    render_histograms,
    render_series,
    render_spans,
    render_trace,
)
from .sink import (
    AGGREGATE_KIND,
    TRACE_KIND,
    load_trace_file,
    read_traces,
    scan_jsonl,
    trace_record,
    write_trace,
)
from .spans import Span
from .timeseries import (
    SERIES_CATALOG,
    SERIES_PREFIXES,
    SeriesStore,
    is_catalogued_series,
    layer_series,
    merge_series,
    series_points,
    split_layer_series,
)

__all__ = [
    "TRACE_KIND",
    "AGGREGATE_KIND",
    "REQUEST_TRACE_KIND",
    "Histogram",
    "merge_histogram_snapshots",
    "HISTOGRAM_CATALOG",
    "HISTOGRAM_PREFIXES",
    "MetricsServer",
    "render_prometheus",
    "parse_prometheus",
    "sanitize_metric_name",
    "write_exposition",
    "SLOResult",
    "load_slo_spec",
    "evaluate_slos",
    "burn_gauges",
    "attach_burn_gauges",
    "render_slo_results",
    "RequestTracer",
    "NULL_TRACER",
    "read_trace_events",
    "reconstruct_request",
    "render_request_timeline",
    "Recorder",
    "NullRecorder",
    "InMemoryRecorder",
    "NULL_RECORDER",
    "merge_snapshots",
    "Span",
    "counters",
    "COUNTER_CATALOG",
    "GAUGE_CATALOG",
    "gemm_flops",
    "trace_record",
    "write_trace",
    "read_traces",
    "scan_jsonl",
    "load_trace_file",
    "render_trace",
    "render_counters",
    "render_spans",
    "render_series",
    "render_histograms",
    "derived_metrics",
    "probe_overhead",
    "render_html_report",
    "follow_jsonl",
    "monitor_sink",
    "summarize_record",
    "SERIES_CATALOG",
    "SERIES_PREFIXES",
    "SeriesStore",
    "is_catalogued_series",
    "layer_series",
    "merge_series",
    "series_points",
    "split_layer_series",
]
