"""Plain-text rendering of trace snapshots.

Used by ``python -m repro trace-report`` and by the sweep command's
``--trace`` rollup.  Rendering is deliberately simple fixed-width text
(no dependency on the harness's table formatter — obs imports nothing
from the rest of the package).
"""

from __future__ import annotations

from typing import Dict, List

from .counters import (
    COUNTER_CATALOG,
    FLOPS_ACTUAL,
    FLOPS_DENSE,
    LSH_ACTIVE_NODES,
    LSH_ACTIVE_POOL,
    LSH_CANDIDATES,
    LSH_QUERIES,
    MEM_GATHER_BYTES,
    MEM_SCATTER_BYTES,
    SAMPLER_ROWS_KEPT,
    SAMPLER_ROWS_POOL,
)

from .histogram import Histogram
from .timeseries import series_points

__all__ = [
    "derived_metrics",
    "render_counters",
    "render_spans",
    "render_series",
    "render_histograms",
    "render_trace",
    "probe_overhead",
]


def probe_overhead(snapshot: dict) -> Dict[str, float]:
    """Probe wall-clock accounting from the ``probe.*`` timings.

    Returns total probe seconds, the ``fit`` span total, and the
    overhead fraction (probe seconds / fit seconds) when both exist —
    the number the ≤5 % bench gate watches.
    """
    timings = snapshot.get("timings", {})
    probe_s = sum(
        v["total"] for k, v in timings.items() if k.startswith("probe.")
    )
    out: Dict[str, float] = {}
    if probe_s:
        out["probe.seconds"] = probe_s
    fit = snapshot.get("spans", {}).get("fit")
    if fit and fit.get("total"):
        out["fit.seconds"] = fit["total"]
        if probe_s:
            out["probe.overhead_frac"] = probe_s / fit["total"]
    return out


def derived_metrics(snapshot: dict) -> Dict[str, float]:
    """Headline ratios computed from raw counters.

    ``flops.skipped`` is the measured work avoided (dense − actual);
    the fractions are guarded against zero denominators so partially
    instrumented traces still render.
    """
    counters = snapshot.get("counters", {})
    out: Dict[str, float] = {}
    dense = counters.get(FLOPS_DENSE, 0)
    actual = counters.get(FLOPS_ACTUAL, 0)
    if dense:
        out["flops.skipped"] = dense - actual
        out["flops.skipped_frac"] = (dense - actual) / dense
    # Subset-kernel memory traffic: the gather/scatter bytes that explain
    # why skipped FLOPs do not translate 1:1 into skipped wall-clock.
    traffic = counters.get(MEM_GATHER_BYTES, 0) + counters.get(
        MEM_SCATTER_BYTES, 0
    )
    if traffic:
        out["mem.subset_traffic_bytes"] = traffic
        if actual:
            out["mem.bytes_per_actual_flop"] = traffic / actual
    queries = counters.get(LSH_QUERIES, 0)
    if queries:
        out["lsh.candidates_per_query"] = counters.get(LSH_CANDIDATES, 0) / queries
    pool = counters.get(LSH_ACTIVE_POOL, 0)
    if pool:
        out["lsh.active_frac"] = counters.get(LSH_ACTIVE_NODES, 0) / pool
    rows_pool = counters.get(SAMPLER_ROWS_POOL, 0)
    if rows_pool:
        out["sampler.rows_kept_frac"] = (
            counters.get(SAMPLER_ROWS_KEPT, 0) / rows_pool
        )
    return out


def _fmt(value) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    return f"{int(value):,}"


def render_counters(snapshot: dict, describe: bool = True) -> str:
    """Counter table (sorted by name), derived ratios appended."""
    counters = dict(snapshot.get("counters", {}))
    counters.update(derived_metrics(snapshot))
    if not counters:
        return "(no counters recorded)"
    width = max(len(k) for k in counters)
    lines = []
    for name in sorted(counters):
        line = f"  {name:<{width}}  {_fmt(counters[name]):>16}"
        if describe and name in COUNTER_CATALOG:
            line += f"  {COUNTER_CATALOG[name]}"
        lines.append(line)
    gauges = snapshot.get("gauges", {})
    for name in sorted(gauges):
        lines.append(f"  {name:<{width}}  {_fmt(gauges[name]):>16}  (gauge)")
    return "\n".join(lines)


def render_spans(snapshot: dict) -> str:
    """Span tree indented by path depth, with per-path count and time."""
    spans = snapshot.get("spans", {})
    timings = snapshot.get("timings", {})
    if not spans and not timings:
        return "(no spans recorded)"
    lines: List[str] = []
    for path in sorted(spans):
        depth = path.count("/")
        name = path.rsplit("/", 1)[-1]
        v = spans[path]
        lines.append(
            f"  {'  ' * depth}{name:<{24 - 2 * depth}}"
            f"  n={v['count']:<8} total={v['total']:.3f}s"
        )
    for name in sorted(timings):
        v = timings[name]
        lines.append(
            f"  {name:<24}  n={v['count']:<8} total={v['total']:.3f}s"
        )
    return "\n".join(lines)


def render_series(snapshot: dict) -> str:
    """One line per recorded series: point count, range and last value."""
    series = snapshot.get("series", {})
    if not series:
        return "(no series recorded)"
    width = max(len(k) for k in series)
    lines = []
    for name in sorted(series):
        idx, values = series_points(snapshot, name)
        if not values:
            continue
        lines.append(
            f"  {name:<{width}}  n={len(values):<6} "
            f"last[{idx[-1]}]={values[-1]:.4g}  "
            f"min={min(values):.4g}  max={max(values):.4g}"
        )
    return "\n".join(lines) if lines else "(no series recorded)"


def render_histograms(snapshot: dict) -> str:
    """One line per log-bucket histogram: count, quantiles and range."""
    histograms = snapshot.get("histograms", {})
    if not histograms:
        return "(no histograms recorded)"
    width = max(len(k) for k in histograms)
    lines = []
    for name in sorted(histograms):
        hist = Histogram.from_snapshot(histograms[name])
        if not hist.count:
            continue
        lines.append(
            f"  {name:<{width}}  n={hist.count:<8} "
            f"p50={hist.quantile(0.5):.4g}  p99={hist.quantile(0.99):.4g}  "
            f"max={hist.max:.4g}  mean={hist.mean:.4g}"
        )
    return "\n".join(lines) if lines else "(no histograms recorded)"


def render_trace(snapshot: dict, title: str = "trace") -> str:
    """Full human-readable dump: spans, counters, series, histograms."""
    text = (
        f"{title}\n"
        f"{'=' * len(title)}\n"
        f"spans/timings:\n{render_spans(snapshot)}\n"
        f"counters:\n{render_counters(snapshot)}"
    )
    if snapshot.get("series"):
        text += f"\nseries:\n{render_series(snapshot)}"
    if snapshot.get("histograms"):
        text += f"\nhistograms:\n{render_histograms(snapshot)}"
    return text
