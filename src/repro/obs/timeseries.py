"""Epoch/batch-indexed metric series.

Counters collapse a run to single totals; *series* keep the trajectory:
loss per epoch, measured forward error per probe invocation, LSH recall
as the weights drift.  A series is a name plus a list of ``(index,
value)`` points where ``index`` is a monotone integer supplied by the
caller (epoch number or global batch step) — never a wall-clock stamp —
so two runs of the same seed produce bitwise-identical series.

Series travel the same road as counters: recorded through the
:class:`~repro.obs.recorder.Recorder` (``series`` method), snapshotted
into the JSON-safe dict under a ``"series"`` section, merged across
executor workers by :func:`~repro.obs.recorder.merge_snapshots`
(concatenate, then sort by index), persisted to the shared JSONL sink,
and carried through ``TrainerCheckpoint`` so a killed-and-resumed run
reproduces the identical series.

Like counters, names are catalogued: exact names in
:data:`SERIES_CATALOG`, families with a per-layer suffix (``<base>.l3``)
in :data:`SERIES_PREFIXES`.  Tests assert instrumented runs emit only
catalogued series names.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "SERIES_CATALOG",
    "SERIES_PREFIXES",
    # per-epoch training series
    "SERIES_EPOCH_LOSS",
    "SERIES_EPOCH_TIME",
    "SERIES_VAL_ACCURACY",
    # probe series (per-layer families use layer_series())
    "SERIES_FWD_REL_ERROR",
    "SERIES_FWD_COMPOUND",
    "SERIES_LSH_RECALL",
    "SERIES_LSH_PRECISION",
    "SERIES_MC_REL_BIAS",
    "SERIES_MC_REL_STD",
    "SERIES_MC_EXPECTED_ERROR",
    # serving series (index = batch / probe sequence number)
    "SERIES_SERVE_BATCH_SIZE",
    "SERIES_SERVE_HEAD_RECALL",
    # streaming series (index = stream batch number)
    "SERIES_STREAM_LOSS",
    "SERIES_STREAM_ACCURACY",
    "SERIES_STREAM_GARBAGE",
    # machinery
    "layer_series",
    "split_layer_series",
    "is_catalogued_series",
    "SeriesStore",
    "merge_series",
    "series_points",
]

SERIES_EPOCH_LOSS = "train.epoch_loss"
SERIES_EPOCH_TIME = "train.epoch_time"
SERIES_VAL_ACCURACY = "train.val_accuracy"

# Per-layer families: the recorded name is ``layer_series(base, k)`` =
# ``f"{base}.l{k}"`` with k the 1-based layer index (matching the k in
# Theorem 7.2's ((c+1)/c)^k - 1 bound).
SERIES_FWD_REL_ERROR = "probe.forward.rel_error"
SERIES_FWD_COMPOUND = "probe.forward.compound"
SERIES_LSH_RECALL = "probe.lsh.recall"
SERIES_LSH_PRECISION = "probe.lsh.precision"

SERIES_MC_REL_BIAS = "probe.mc.rel_bias"
SERIES_MC_REL_STD = "probe.mc.rel_std"
SERIES_MC_EXPECTED_ERROR = "probe.mc.expected_rel_error"

SERIES_SERVE_BATCH_SIZE = "serve.batch_size"
SERIES_SERVE_HEAD_RECALL = "serve.head.recall"

SERIES_STREAM_LOSS = "stream.loss"
SERIES_STREAM_ACCURACY = "stream.accuracy"
SERIES_STREAM_GARBAGE = "stream.garbage_frac"

#: exact series name -> one-line description (docs + reports render it).
SERIES_CATALOG: Dict[str, str] = {
    SERIES_EPOCH_LOSS: "mean training loss per epoch",
    SERIES_EPOCH_TIME: "wall-clock seconds per epoch (excluded from resume identity)",
    SERIES_VAL_ACCURACY: "validation accuracy per epoch",
    SERIES_MC_REL_BIAS: "relative Frobenius bias of the MC estimator mean over repeated draws",
    SERIES_MC_REL_STD: "mean relative Frobenius error of single MC draws",
    SERIES_MC_EXPECTED_ERROR: "closed-form expected relative error of one MC draw",
    SERIES_SERVE_BATCH_SIZE: "requests per dispatched micro-batch, indexed by batch number",
    SERIES_SERVE_HEAD_RECALL: "ALSH head recall@k vs exact MIPS, indexed by probe invocation",
    SERIES_STREAM_LOSS: "training loss per streamed minibatch",
    SERIES_STREAM_ACCURACY: "held-out accuracy on the current stream distribution",
    SERIES_STREAM_GARBAGE: "flat-backend garbage fraction at compaction checks",
}

#: per-layer family base -> description; recorded names are "<base>.l<k>".
SERIES_PREFIXES: Dict[str, str] = {
    SERIES_FWD_REL_ERROR: "relative Frobenius error of the approximate forward pass at layer k",
    SERIES_FWD_COMPOUND: "per-layer compounding ratio err(k)/err(k-1)",
    SERIES_LSH_RECALL: "LSH recall@k against brute-force MIPS at layer k",
    SERIES_LSH_PRECISION: "fraction of LSH candidates that are true top-k at layer k",
}


def layer_series(base: str, layer: int) -> str:
    """Recorded name of a per-layer series family member: ``base.l<k>``."""
    return f"{base}.l{int(layer)}"


def split_layer_series(name: str) -> Optional[Tuple[str, int]]:
    """Inverse of :func:`layer_series`; None when ``name`` has no ``.l<k>``."""
    base, dot, suffix = name.rpartition(".l")
    if not dot or not suffix.isdigit():
        return None
    return base, int(suffix)


def is_catalogued_series(name: str) -> bool:
    """True when ``name`` is an exact catalogue entry or a layer family member."""
    if name in SERIES_CATALOG:
        return True
    parsed = split_layer_series(name)
    return parsed is not None and parsed[0] in SERIES_PREFIXES


class SeriesStore:
    """Ordered (index, value) points per series name; JSON-safe snapshots."""

    def __init__(self) -> None:
        self._series: Dict[str, List[List[float]]] = {}

    def append(self, name: str, index: int, value: float) -> None:
        self._series.setdefault(name, []).append([int(index), float(value)])

    def names(self) -> List[str]:
        return list(self._series)

    def points(self, name: str) -> List[List[float]]:
        return self._series.get(name, [])

    def __len__(self) -> int:
        return len(self._series)

    def snapshot(self) -> Dict[str, List[List[float]]]:
        """JSON-safe dump: ``{name: [[index, value], ...]}``."""
        return {
            name: [[int(i), float(v)] for i, v in points]
            for name, points in self._series.items()
        }

    def load(self, payload: Dict[str, List[List[float]]]) -> None:
        """Replace all series with a snapshot (checkpoint restore path)."""
        self._series = {
            name: [[int(i), float(v)] for i, v in points]
            for name, points in payload.items()
        }


def merge_series(
    parts: Iterable[Optional[Dict[str, List[List[float]]]]],
) -> Dict[str, List[List[float]]]:
    """Merge per-worker series sections: concatenate, then sort by index.

    The sort is stable, so same-index points keep their per-worker order;
    ``None`` parts (untraced workers, pre-series snapshots) are skipped.
    """
    out: Dict[str, List[List[float]]] = {}
    for part in parts:
        if not part:
            continue
        for name, points in part.items():
            out.setdefault(name, []).extend(
                [int(i), float(v)] for i, v in points
            )
    for points in out.values():
        points.sort(key=lambda point: point[0])
    return out


def series_points(
    snapshot: dict, name: str
) -> Tuple[List[int], List[float]]:
    """(indices, values) of one series from a full snapshot dict.

    Accepts either a full recorder snapshot (reads its ``"series"``
    section, tolerating pre-series snapshots that lack one) or a bare
    series section.
    """
    section = snapshot.get("series", snapshot) or {}
    points = section.get(name, [])
    return [int(i) for i, _ in points], [float(v) for _, v in points]
