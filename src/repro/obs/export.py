"""Prometheus text exposition + a stdlib HTTP metrics/health endpoint.

Any recorder snapshot renders to Prometheus text format 0.0.4 with
:func:`render_prometheus`: counters become ``<name>_total``, gauges
gauges, phase timings a ``_seconds_total``/``_calls_total`` pair, series
a ``_last`` gauge, and log-bucket histograms full histogram families
(cumulative ``_bucket{le="..."}`` plus ``_sum``/``_count``) with bucket
edges taken from the histogram's own log-spaced layout.  Dotted metric
names sanitise to underscores under a configurable prefix (default
``repro_``).

:class:`MetricsServer` wraps a ``snapshot_fn`` in a background
``http.server`` thread serving:

* ``GET /metrics`` — Prometheus text exposition of the live snapshot;
* ``GET /metrics.json`` — the raw JSON snapshot (consumed by
  ``python -m repro slo-check --url``);
* ``GET /healthz`` — 200 while the process is up (liveness);
* ``GET /readyz`` — 200/503 from an injectable ``ready_fn`` (for the
  serving path: registry loaded and queue below the shed threshold).

For multi-process executor sweeps, :func:`write_exposition` atomically
writes the merged snapshot to a ``.prom`` text file after each task
outcome, so one node-exporter-style textfile scrape sees the whole
sweep.  Everything here is stdlib-only.
"""

from __future__ import annotations

import json
import math
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from .histogram import Histogram

__all__ = [
    "sanitize_metric_name",
    "render_prometheus",
    "parse_prometheus",
    "write_exposition",
    "MetricsServer",
]

DEFAULT_PREFIX = "repro_"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LINE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[^{}]*\})?"                       # optional label set
    r" [-+]?([0-9.eE+-]+|[Nn]a[Nn]|[Ii]nf|\+Inf)$"  # value
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def sanitize_metric_name(name: str, prefix: str = DEFAULT_PREFIX) -> str:
    """Dotted catalogue name -> valid Prometheus metric name."""
    return prefix + _NAME_OK.sub("_", name)


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _histogram_lines(metric: str, payload: dict, lines: List[str]) -> None:
    hist = Histogram.from_snapshot(payload)
    lines.append(f"# TYPE {metric} histogram")
    cum = 0
    for i, c in enumerate(hist.counts):
        if not c or i > hist.n_buckets:
            continue  # the overflow bucket is covered by the +Inf line
        cum += c
        lines.append(
            f'{metric}_bucket{{le="{_fmt(hist.upper_edge(i))}"}} {cum}'
        )
    lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
    lines.append(f"{metric}_sum {_fmt(hist.sum)}")
    lines.append(f"{metric}_count {hist.count}")


def render_prometheus(
    snapshot: Optional[dict], prefix: str = DEFAULT_PREFIX
) -> str:
    """Prometheus text exposition (format 0.0.4) of one snapshot."""
    snapshot = snapshot or {}
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric}_total counter")
        lines.append(f"{metric}_total {_fmt(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")
    for name, slot in sorted(snapshot.get("timings", {}).items()):
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric}_seconds_total counter")
        lines.append(f"{metric}_seconds_total {_fmt(slot['total'])}")
        lines.append(f"# TYPE {metric}_calls_total counter")
        lines.append(f"{metric}_calls_total {_fmt(slot['count'])}")
    for name, points in sorted(snapshot.get("series", {}).items()):
        if not points:
            continue
        metric = sanitize_metric_name(name, prefix) + "_last"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(points[-1][1])}")
    for name, payload in sorted(snapshot.get("histograms", {}).items()):
        _histogram_lines(sanitize_metric_name(name, prefix), payload, lines)
    return "\n".join(lines) + "\n" if lines else "\n"


def parse_prometheus(text: str) -> Dict[str, List[Tuple[str, float]]]:
    """Validate exposition text; samples grouped by metric name.

    Raises :class:`ValueError` on any malformed line — the validator the
    metrics-smoke CI job and the export tests run over a live scrape.
    Returns ``{metric_name: [(label_block, value), ...]}``.
    """
    samples: Dict[str, List[Tuple[str, float]]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) < 3 or parts[1] not in ("TYPE", "HELP"):
                raise ValueError(f"malformed comment on line {lineno}: {line!r}")
            continue
        if not _LINE_RE.match(line):
            raise ValueError(f"malformed sample on line {lineno}: {line!r}")
        name_part, value_part = line.rsplit(" ", 1)
        labels = ""
        if "{" in name_part:
            name, labels = name_part.split("{", 1)
            labels = "{" + labels
            body = labels[1:-1]
            if body:
                for pair in body.split(","):
                    if not _LABEL_RE.match(pair.strip()):
                        raise ValueError(
                            f"malformed label on line {lineno}: {pair!r}"
                        )
        else:
            name = name_part
        samples.setdefault(name, []).append((labels, float(value_part)))
    return samples


def write_exposition(
    path: Union[str, Path],
    snapshot: Optional[dict],
    prefix: str = DEFAULT_PREFIX,
) -> None:
    """Atomically write one snapshot as a ``.prom`` textfile exposition."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(render_prometheus(snapshot, prefix), encoding="utf-8")
    tmp.replace(path)


class MetricsServer:
    """Background HTTP thread exposing /metrics, /healthz and /readyz.

    ``snapshot_fn`` is called per scrape (it should be cheap — recorder
    snapshots are dict copies); ``ready_fn`` returns ``(ready, reason)``
    and defaults to always-ready.  ``port=0`` binds an ephemeral port,
    available as :attr:`port` after construction.
    """

    def __init__(
        self,
        snapshot_fn: Callable[[], Optional[dict]],
        port: int = 0,
        host: str = "127.0.0.1",
        ready_fn: Optional[Callable[[], Tuple[bool, str]]] = None,
        prefix: str = DEFAULT_PREFIX,
    ):
        self.snapshot_fn = snapshot_fn
        self.ready_fn = ready_fn or (lambda: (True, "ok"))
        self.prefix = prefix
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, *args: Any) -> None:
                pass  # scrapes must not spam the serving process stdout

            def _send(self, code: int, body: str, ctype: str) -> None:
                payload = body.encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def do_GET(self) -> None:
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        body = render_prometheus(
                            server.snapshot_fn(), server.prefix
                        )
                        self._send(
                            200, body, "text/plain; version=0.0.4; charset=utf-8"
                        )
                    elif path == "/metrics.json":
                        body = json.dumps(server.snapshot_fn() or {})
                        self._send(200, body, "application/json")
                    elif path == "/healthz":
                        self._send(200, "ok\n", "text/plain")
                    elif path == "/readyz":
                        ready, reason = server.ready_fn()
                        self._send(
                            200 if ready else 503, reason + "\n", "text/plain"
                        )
                    else:
                        self._send(404, "not found\n", "text/plain")
                except BrokenPipeError:  # pragma: no cover - client vanished
                    pass

        self._httpd = ThreadingHTTPServer((host, int(port)), _Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.close()
        return False
