"""Hierarchical wall-clock spans (run → epoch → phase).

A span is a context manager; nesting builds slash-separated paths
(``fit/epoch``), and the recorder aggregates *by path*: entering the same
path twice accumulates count and total seconds rather than storing every
instance, so a million batch spans stay O(distinct paths) in memory.
"""

from __future__ import annotations

import time
from typing import Dict, List

__all__ = ["Span", "SpanAggregator"]


class SpanAggregator:
    """Aggregates span durations by hierarchical path."""

    def __init__(self):
        self._stack: List[str] = []
        # path -> [count, total_seconds]
        self.totals: Dict[str, List[float]] = {}

    def current_path(self) -> str:
        """Slash-joined path of the open spans ('' at top level)."""
        return "/".join(self._stack)

    def enter(self, name: str) -> str:
        self._stack.append(name)
        return self.current_path()

    def exit(self, path: str, elapsed: float) -> None:
        if self._stack:
            self._stack.pop()
        slot = self.totals.get(path)
        if slot is None:
            self.totals[path] = [1, elapsed]
        else:
            slot[0] += 1
            slot[1] += elapsed

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-safe ``{path: {count, total}}`` view."""
        return {
            path: {"count": int(c), "total": float(t)}
            for path, (c, t) in self.totals.items()
        }


class Span:
    """One timed region; created via ``recorder.span(name)``."""

    __slots__ = ("_agg", "_name", "_path", "_start")

    def __init__(self, aggregator: SpanAggregator, name: str):
        self._agg = aggregator
        self._name = name

    def __enter__(self) -> "Span":
        self._path = self._agg.enter(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._agg.exit(self._path, time.perf_counter() - self._start)
        return False
