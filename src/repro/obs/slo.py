"""Declarative SLOs evaluated against recorder snapshots.

A spec file is JSON: ``{"slos": [...]}`` where each entry names one
objective and where to read it from a snapshot::

    {"name": "p99_latency_ms",
     "histogram": "serve.latency_s", "quantile": 0.99, "scale": 1000.0,
     "max": 50.0}

    {"name": "shed_rate",
     "ratio": ["serve.shed.queue_full", "serve.requests"],
     "max": 0.05}

    {"name": "recall_at_10", "gauge": "probe.head.recall", "min": 0.9}

Exactly one source per entry — ``histogram`` (+ ``quantile``, optional
``scale``), ``gauge``, ``counter``, ``ratio`` (two counters; 0/0 reads
as 0), or ``series_last`` — and exactly one bound, ``max`` or ``min``.

Evaluation yields one :class:`SLOResult` per entry with an
*error-budget burn*: ``value / max`` for upper bounds and
``min / value`` for lower bounds, so burn ≤ 1 is healthy and burn > 1
is a violation regardless of direction.  Burns are exported as
``slo.burn.<name>`` gauges (:data:`~repro.obs.counters.SLO_BURN_PREFIX`)
so a scrape of ``/metrics`` carries the budget state, and ``python -m
repro slo-check`` exits nonzero on any violation — the CI gate.

A metric missing from the snapshot fails closed (burn = inf) unless the
entry sets ``"absent_ok": true`` (useful for probes that only fire on
some runs).  Stdlib-only.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .counters import SLO_BURN_PREFIX
from .histogram import Histogram

__all__ = [
    "SLOResult",
    "load_slo_spec",
    "evaluate_slos",
    "burn_gauges",
    "attach_burn_gauges",
    "render_slo_results",
]

_SOURCES = ("histogram", "gauge", "counter", "ratio", "series_last")


@dataclass
class SLOResult:
    """Outcome of one SLO entry against one snapshot."""

    name: str
    value: Optional[float]   # None when the metric is absent
    bound: float
    kind: str                # "max" or "min"
    burn: float              # error-budget burn; > 1 means violated
    ok: bool
    detail: str = ""


def load_slo_spec(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load and validate a spec file; raises ValueError with a reason."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise FileNotFoundError(f"SLO spec not found: {path}")
    except json.JSONDecodeError as exc:
        raise ValueError(f"SLO spec {path} is not valid JSON: {exc}")
    entries = payload.get("slos") if isinstance(payload, dict) else None
    if not isinstance(entries, list) or not entries:
        raise ValueError(
            f'SLO spec {path} must be an object {{"slos": [...]}} '
            "with at least one entry"
        )
    for i, entry in enumerate(entries):
        where = f"{path} entry {i}"
        if not isinstance(entry, dict) or not entry.get("name"):
            raise ValueError(f'{where}: every entry needs a "name"')
        sources = [s for s in _SOURCES if s in entry]
        if len(sources) != 1:
            raise ValueError(
                f"{where} ({entry['name']}): exactly one source of "
                f"{_SOURCES} required, got {sources or 'none'}"
            )
        if sources[0] == "histogram" and "quantile" not in entry:
            raise ValueError(
                f'{where} ({entry["name"]}): histogram entries need a '
                '"quantile" in [0, 1]'
            )
        if sources[0] == "ratio":
            ratio = entry["ratio"]
            if not (isinstance(ratio, list) and len(ratio) == 2):
                raise ValueError(
                    f'{where} ({entry["name"]}): "ratio" must be '
                    "[numerator_counter, denominator_counter]"
                )
        bounds = [b for b in ("max", "min") if b in entry]
        if len(bounds) != 1:
            raise ValueError(
                f'{where} ({entry["name"]}): exactly one of "max"/"min" '
                "required"
            )
    return entries


def _read_value(entry: Dict[str, Any], snapshot: dict) -> Optional[float]:
    if "histogram" in entry:
        payload = snapshot.get("histograms", {}).get(entry["histogram"])
        if payload is None:
            return None
        q = Histogram.from_snapshot(payload).quantile(float(entry["quantile"]))
        if q is None:
            return None
        return q * float(entry.get("scale", 1.0))
    if "gauge" in entry:
        value = snapshot.get("gauges", {}).get(entry["gauge"])
        return None if value is None else float(value)
    if "counter" in entry:
        value = snapshot.get("counters", {}).get(entry["counter"])
        return None if value is None else float(value)
    if "ratio" in entry:
        num_name, den_name = entry["ratio"]
        counters = snapshot.get("counters", {})
        if num_name not in counters and den_name not in counters:
            return None
        den = float(counters.get(den_name, 0))
        return float(counters.get(num_name, 0)) / den if den else 0.0
    points = snapshot.get("series", {}).get(entry["series_last"])
    return float(points[-1][1]) if points else None


def evaluate_slos(
    snapshot: Optional[dict], entries: List[Dict[str, Any]]
) -> List[SLOResult]:
    """Evaluate every spec entry against one (merged) snapshot."""
    snapshot = snapshot or {}
    results: List[SLOResult] = []
    for entry in entries:
        name = entry["name"]
        kind = "max" if "max" in entry else "min"
        bound = float(entry[kind])
        value = _read_value(entry, snapshot)
        if value is None:
            if entry.get("absent_ok"):
                results.append(
                    SLOResult(name, None, bound, kind, 0.0, True, "absent (ok)")
                )
            else:
                results.append(
                    SLOResult(
                        name, None, bound, kind, math.inf, False,
                        "metric absent from snapshot",
                    )
                )
            continue
        if kind == "max":
            burn = value / bound if bound > 0 else (math.inf if value > 0 else 0.0)
        else:
            burn = bound / value if value > 0 else math.inf
        ok = burn <= 1.0
        results.append(SLOResult(name, value, bound, kind, burn, ok))
    return results


def burn_gauges(results: List[SLOResult]) -> Dict[str, float]:
    """``slo.burn.<name>`` gauge values for a result set."""
    return {SLO_BURN_PREFIX + r.name: float(r.burn) for r in results}


def attach_burn_gauges(
    snapshot: Optional[dict], entries: List[Dict[str, Any]]
) -> dict:
    """Copy of a snapshot with SLO burn gauges merged into ``gauges``.

    This is what ``--metrics-port --slo <spec>`` scrapes: the exporter
    wraps its ``snapshot_fn`` with this so every scrape carries live
    error-budget state.
    """
    snapshot = dict(snapshot or {})
    gauges = dict(snapshot.get("gauges", {}))
    for name, burn in burn_gauges(evaluate_slos(snapshot, entries)).items():
        # +Inf is JSON-hostile and useless on a dashboard: clamp.
        gauges[name] = min(burn, 1e9)
    snapshot["gauges"] = gauges
    return snapshot


def render_slo_results(results: List[SLOResult]) -> str:
    """Plain-text verdict table for ``python -m repro slo-check``."""
    lines = []
    width = max((len(r.name) for r in results), default=4)
    for r in results:
        mark = "ok " if r.ok else "VIOLATED"
        value = "absent" if r.value is None else f"{r.value:.6g}"
        burn = "inf" if math.isinf(r.burn) else f"{r.burn:.3f}"
        lines.append(
            f"  {r.name:<{width}}  {mark:<8}  value={value}  "
            f"{r.kind}={r.bound:.6g}  burn={burn}"
            + (f"  ({r.detail})" if r.detail else "")
        )
    violated = sum(not r.ok for r in results)
    lines.append(
        f"{len(results)} SLO(s), {violated} violated"
        if violated
        else f"{len(results)} SLO(s), all within budget"
    )
    return "\n".join(lines)
