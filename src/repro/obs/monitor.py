"""Live tailing of a run's JSONL sink: ``python -m repro monitor``.

The executor and the traced harness both append one JSON object per
line to a shared sink.  This module follows that file while a sweep is
running and prints one rolling summary line per record as it lands —
trace records get their headline series (epochs seen, last loss, last
validation accuracy, probe overhead), executor outcomes get their
status.  Corrupt or partial lines (a writer mid-append) are skipped
and retried on the next poll.

Stdlib only; records are consumed as raw dicts so the monitor never
imports the harness.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

from .histogram import Histogram
from .report import probe_overhead
from .timeseries import (
    SERIES_EPOCH_LOSS,
    SERIES_STREAM_ACCURACY,
    SERIES_VAL_ACCURACY,
    series_points,
)

__all__ = ["follow_jsonl", "summarize_record", "monitor_sink"]


def follow_jsonl(
    path: Union[str, Path],
    follow: bool = False,
    poll: float = 0.5,
    stop: Optional[Callable[[], bool]] = None,
) -> Iterator[dict]:
    """Yield decoded records from a JSONL file, optionally tailing it.

    With ``follow=False`` reads the records present now and returns.
    With ``follow=True`` keeps polling for appended lines every
    ``poll`` seconds until ``stop()`` (when given) returns True.
    Undecodable lines are skipped: a complete-but-corrupt line is
    dropped for good, while a partial final line (no newline yet) is
    left in the buffer and retried once the writer finishes it.

    Truncation and rotation are detected: when the file shrinks below
    the stored offset (a sink rewritten from scratch, or log rotation
    swapping in a fresh file), the offset and partial-line buffer reset
    so the monitor re-reads from the top instead of silently tailing
    past EOF forever.
    """
    path = Path(path)
    offset = 0
    buffer = ""
    while True:
        if path.exists():
            if path.stat().st_size < offset:
                offset = 0
                buffer = ""
            with open(path, "r", encoding="utf-8") as fh:
                fh.seek(offset)
                chunk = fh.read()
                offset = fh.tell()
            buffer += chunk
            while "\n" in buffer:
                line, buffer = buffer.split("\n", 1)
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    yield record
        if not follow:
            return
        if stop is not None and stop():
            return
        time.sleep(poll)


def _last(snapshot: dict, name: str):
    _, values = series_points(snapshot, name)
    return values[-1] if values else None


def _quantile_ms(snapshot: dict, name: str, q: float) -> Optional[float]:
    payload = snapshot.get("histograms", {}).get(name)
    if not payload:
        return None
    value = Histogram.from_snapshot(payload).quantile(q)
    return None if value is None else value * 1e3


def _serve_summary(record: dict, snapshot: dict, label: str) -> str:
    counters = snapshot.get("counters", {})
    served = counters.get("serve.requests", 0)
    shed = counters.get("serve.shed.queue_full", 0) + counters.get(
        "serve.shed.deadline", 0
    )
    parts = [f"[serve] {label}:", f"served={int(served)}"]
    elapsed = record.get("elapsed")
    if elapsed:
        parts.append(f"qps={served / float(elapsed):.0f}")
    p99 = _quantile_ms(snapshot, "serve.latency_s", 0.99)
    if p99 is not None:
        parts.append(f"p99={p99:.2f}ms")
    parts.append(f"shed={int(shed)}")
    errors = counters.get("serve.handler_errors")
    if errors:
        parts.append(f"handler_errors={int(errors)}")
    return " ".join(parts)


def _stream_summary(record: dict, snapshot: dict, label: str) -> str:
    counters = snapshot.get("counters", {})
    parts = [
        f"[stream] {label}:",
        f"batches={int(counters.get('stream.batches', 0))}",
        f"rebuilds={int(counters.get('stream.rebuilds', 0))}",
        f"compactions={int(counters.get('stream.compactions', 0))}",
    ]
    p99 = _quantile_ms(snapshot, "stream.batch_s", 0.99)
    if p99 is not None:
        parts.append(f"batch_p99={p99:.2f}ms")
    acc = _last(snapshot, SERIES_STREAM_ACCURACY)
    if acc is not None:
        parts.append(f"acc={acc:.4f}")
    return " ".join(parts)


def summarize_record(record: dict) -> Optional[str]:
    """One summary line for a sink record; None for unknown shapes.

    Training traces render their headline series; serve and stream
    snapshots get dedicated lines (qps, histogram p99, shed counts,
    rebuild events); executor outcomes their status; request-trace
    event batches a count.
    """
    snapshot = record.get("snapshot")
    if isinstance(snapshot, dict):
        label = record.get("label", record.get("kind", "trace"))
        counters = snapshot.get("counters", {})
        if "serve.requests" in counters:
            return _serve_summary(record, snapshot, label)
        if "stream.batches" in counters:
            return _stream_summary(record, snapshot, label)
        _, losses = series_points(snapshot, SERIES_EPOCH_LOSS)
        parts = [f"[trace] {label}:"]
        if losses:
            parts.append(f"epochs={len(losses)}")
            parts.append(f"loss={losses[-1]:.4g}")
        val = _last(snapshot, SERIES_VAL_ACCURACY)
        if val is not None:
            parts.append(f"val_acc={val:.4f}")
        frac = probe_overhead(snapshot).get("probe.overhead_frac")
        if frac is not None:
            parts.append(f"probe_overhead={frac:.1%}")
        if len(parts) == 1:
            counters = snapshot.get("counters", {})
            parts.append(f"counters={len(counters)}")
        return " ".join(parts)
    if "status" in record:
        label = record.get("key", record.get("label", "run"))
        line = f"[{record['status']}] {label}"
        error = record.get("error")
        if error:
            line += f": {error}"
        return line
    if record.get("kind") == "request_trace":
        events = record.get("events", [])
        requests = {
            e.get("request") for e in events
            if isinstance(e, dict) and e.get("request")
        }
        return (
            f"[request-trace] {len(events)} event(s) "
            f"across {len(requests)} request(s)"
        )
    return None


def monitor_sink(
    path: Union[str, Path],
    follow: bool = False,
    poll: float = 0.5,
    out: Callable[[str], None] = print,
    stop: Optional[Callable[[], bool]] = None,
) -> int:
    """Print rolling summaries of a sink; returns records summarized."""
    count = 0
    for record in follow_jsonl(path, follow=follow, poll=poll, stop=stop):
        line = summarize_record(record)
        if line is not None:
            out(line)
            count += 1
    return count
