"""Live tailing of a run's JSONL sink: ``python -m repro monitor``.

The executor and the traced harness both append one JSON object per
line to a shared sink.  This module follows that file while a sweep is
running and prints one rolling summary line per record as it lands —
trace records get their headline series (epochs seen, last loss, last
validation accuracy, probe overhead), executor outcomes get their
status.  Corrupt or partial lines (a writer mid-append) are skipped
and retried on the next poll.

Stdlib only; records are consumed as raw dicts so the monitor never
imports the harness.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

from .report import probe_overhead
from .timeseries import (
    SERIES_EPOCH_LOSS,
    SERIES_VAL_ACCURACY,
    series_points,
)

__all__ = ["follow_jsonl", "summarize_record", "monitor_sink"]


def follow_jsonl(
    path: Union[str, Path],
    follow: bool = False,
    poll: float = 0.5,
    stop: Optional[Callable[[], bool]] = None,
) -> Iterator[dict]:
    """Yield decoded records from a JSONL file, optionally tailing it.

    With ``follow=False`` reads the records present now and returns.
    With ``follow=True`` keeps polling for appended lines every
    ``poll`` seconds until ``stop()`` (when given) returns True.
    Undecodable lines are skipped: a complete-but-corrupt line is
    dropped for good, while a partial final line (no newline yet) is
    left in the buffer and retried once the writer finishes it.
    """
    path = Path(path)
    offset = 0
    buffer = ""
    while True:
        if path.exists():
            with open(path, "r", encoding="utf-8") as fh:
                fh.seek(offset)
                chunk = fh.read()
                offset = fh.tell()
            buffer += chunk
            while "\n" in buffer:
                line, buffer = buffer.split("\n", 1)
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    yield record
        if not follow:
            return
        if stop is not None and stop():
            return
        time.sleep(poll)


def _last(snapshot: dict, name: str):
    _, values = series_points(snapshot, name)
    return values[-1] if values else None


def summarize_record(record: dict) -> Optional[str]:
    """One summary line for a sink record; None for unknown shapes."""
    snapshot = record.get("snapshot")
    if isinstance(snapshot, dict):
        label = record.get("label", record.get("kind", "trace"))
        _, losses = series_points(snapshot, SERIES_EPOCH_LOSS)
        parts = [f"[trace] {label}:"]
        if losses:
            parts.append(f"epochs={len(losses)}")
            parts.append(f"loss={losses[-1]:.4g}")
        val = _last(snapshot, SERIES_VAL_ACCURACY)
        if val is not None:
            parts.append(f"val_acc={val:.4f}")
        frac = probe_overhead(snapshot).get("probe.overhead_frac")
        if frac is not None:
            parts.append(f"probe_overhead={frac:.1%}")
        if len(parts) == 1:
            counters = snapshot.get("counters", {})
            parts.append(f"counters={len(counters)}")
        return " ".join(parts)
    if "status" in record:
        label = record.get("key", record.get("label", "run"))
        line = f"[{record['status']}] {label}"
        error = record.get("error")
        if error:
            line += f": {error}"
        return line
    return None


def monitor_sink(
    path: Union[str, Path],
    follow: bool = False,
    poll: float = 0.5,
    out: Callable[[str], None] = print,
    stop: Optional[Callable[[], bool]] = None,
) -> int:
    """Print rolling summaries of a sink; returns records summarized."""
    count = 0
    for record in follow_jsonl(path, follow=follow, poll=poll, stop=stop):
        line = summarize_record(record)
        if line is not None:
            out(line)
            count += 1
    return count
