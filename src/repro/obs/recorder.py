"""Recorders: the write side of the observability layer.

Instrumented code holds a ``Recorder`` and calls :meth:`~Recorder.add`,
:meth:`~Recorder.gauge`, :meth:`~Recorder.add_time`,
:meth:`~Recorder.series` and :meth:`~Recorder.span`.  Two
implementations exist:

* :class:`NullRecorder` (the default, shared singleton
  :data:`NULL_RECORDER`): every method is a no-op and ``enabled`` is
  False.  Instrumentation sites guard anything costlier than a scalar
  behind ``if obs.enabled:``, so the disabled path costs a single
  attribute load + C-level call — and provably never touches the
  training RNG or any floating-point state.
* :class:`InMemoryRecorder`: accumulates counters, gauges, phase
  timings, hierarchical spans, indexed time series and bounded
  log-bucket histograms, and snapshots them to a JSON-safe dict.

Snapshots from many processes merge with :func:`merge_snapshots`
(counters/timings/spans sum; gauges take the max; series concatenate
and re-sort by index; histograms merge bucket-exactly).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .histogram import Histogram, merge_histogram_snapshots
from .spans import Span, SpanAggregator
from .timeseries import SeriesStore, merge_series

__all__ = [
    "Recorder",
    "NullRecorder",
    "InMemoryRecorder",
    "NULL_RECORDER",
    "merge_snapshots",
]


class Recorder:
    """Interface every recorder implements.  All methods must be cheap."""

    #: False on the null recorder — gate non-trivial counter *computation*
    #: (sums over masks, bucket scans, FLOP arithmetic) on this flag.
    enabled: bool = False

    def add(self, name: str, value: float = 1) -> None:
        """Increment counter ``name`` by ``value``."""
        raise NotImplementedError

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of gauge ``name``."""
        raise NotImplementedError

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into the named phase clock."""
        raise NotImplementedError

    def series(self, name: str, index: int, value: float) -> None:
        """Append one (index, value) point to the named time series."""
        raise NotImplementedError

    def histogram(self, name: str, value: float) -> None:
        """Record one sample into the named log-bucket histogram."""
        raise NotImplementedError

    def span(self, name: str):
        """Context manager timing a hierarchical region."""
        raise NotImplementedError

    def snapshot(self) -> Dict[str, dict]:
        """JSON-safe state dump (empty sections on the null recorder)."""
        raise NotImplementedError


class _NullSpan:
    """Shared do-nothing context manager."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder(Recorder):
    """The zero-cost default: records nothing, perturbs nothing."""

    enabled = False

    def add(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def add_time(self, name: str, seconds: float) -> None:
        pass

    def series(self, name: str, index: int, value: float) -> None:
        pass

    def histogram(self, name: str, value: float) -> None:
        pass

    def span(self, name: str):
        return _NULL_SPAN

    def snapshot(self) -> Dict[str, dict]:
        return {
            "counters": {},
            "gauges": {},
            "timings": {},
            "spans": {},
            "series": {},
            "histograms": {},
        }


#: module-level singleton used as the default recorder everywhere.
NULL_RECORDER = NullRecorder()


class InMemoryRecorder(Recorder):
    """Accumulating recorder backing golden traces and trace reports."""

    enabled = True

    def __init__(self):
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        # name -> [count, total_seconds]
        self.timings: Dict[str, List[float]] = {}
        self._spans = SpanAggregator()
        self._series = SeriesStore()
        self.histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def add(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def add_time(self, name: str, seconds: float) -> None:
        slot = self.timings.get(name)
        if slot is None:
            self.timings[name] = [1, seconds]
        else:
            slot[0] += 1
            slot[1] += seconds

    def series(self, name: str, index: int, value: float) -> None:
        self._series.append(name, index, value)

    def histogram(self, name: str, value: float) -> None:
        self.get_histogram(name).record(value)

    def get_histogram(self, name: str) -> Histogram:
        """Get-or-create the named histogram object itself.

        Hot loops (the serving batcher) hold the returned object and
        call ``record`` directly, skipping the per-sample name lookup;
        the samples still land in this recorder's snapshot.
        """
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        return hist

    def span(self, name: str) -> Span:
        return Span(self._spans, name)

    # ------------------------------------------------------------------
    def get(self, name: str, default: float = 0) -> float:
        """Current value of a counter (0 when never incremented)."""
        return self.counters.get(name, default)

    def series_snapshot(self) -> Dict[str, List[List[float]]]:
        """JSON-safe dump of the series section alone (checkpoint carry)."""
        return self._series.snapshot()

    def load_series(self, payload: Dict[str, List[List[float]]]) -> None:
        """Replace all series with a checkpointed snapshot (resume path)."""
        self._series.load(payload)

    def histograms_snapshot(self) -> Dict[str, dict]:
        """JSON-safe dump of the histogram section alone (checkpoint carry)."""
        return {k: h.snapshot() for k, h in self.histograms.items()}

    def load_histograms(self, payload: Dict[str, dict]) -> None:
        """Replace all histograms with a checkpointed snapshot (resume path)."""
        self.histograms = {
            k: Histogram.from_snapshot(v) for k, v in payload.items()
        }

    def snapshot(self) -> Dict[str, dict]:
        """JSON-safe dump of everything recorded so far."""
        return {
            "counters": {
                k: (int(v) if float(v).is_integer() else float(v))
                for k, v in self.counters.items()
            },
            "gauges": {k: float(v) for k, v in self.gauges.items()},
            "timings": {
                k: {"count": int(c), "total": float(t)}
                for k, (c, t) in self.timings.items()
            },
            "spans": self._spans.snapshot(),
            "series": self._series.snapshot(),
            "histograms": self.histograms_snapshot(),
        }


def merge_snapshots(snapshots: Iterable[Optional[dict]]) -> dict:
    """Merge worker snapshots into one sweep-level snapshot.

    Counters sum; timings and spans sum both count and total; gauges take
    the maximum (they are high-water marks); series concatenate and
    re-sort by index; histograms merge bucket-exactly (the merged
    histogram equals the histogram of the concatenated samples).
    ``None`` entries — tasks that ran untraced or failed — are skipped,
    so the merge accepts the raw ``result.trace`` list of a sweep
    directly.  Snapshots from recorders predating a section (e.g.
    pre-series traces on disk) merge fine: missing sections are treated
    as empty.
    """
    out: dict = {
        "counters": {},
        "gauges": {},
        "timings": {},
        "spans": {},
        "series": {},
        "histograms": {},
    }
    series_parts: List[Optional[dict]] = []
    hist_parts: List[Optional[dict]] = []
    for snap in snapshots:
        if not snap:
            continue
        series_parts.append(snap.get("series"))
        hist_parts.append(snap.get("histograms"))
        for k, v in snap.get("counters", {}).items():
            out["counters"][k] = out["counters"].get(k, 0) + v
        for k, v in snap.get("gauges", {}).items():
            prev = out["gauges"].get(k)
            out["gauges"][k] = v if prev is None else max(prev, v)
        for section in ("timings", "spans"):
            for k, v in snap.get(section, {}).items():
                slot = out[section].get(k)
                if slot is None:
                    out[section][k] = {
                        "count": v["count"], "total": v["total"]
                    }
                else:
                    slot["count"] += v["count"]
                    slot["total"] += v["total"]
    out["series"] = merge_series(series_parts)
    out["histograms"] = merge_histogram_snapshots(hist_parts)
    return out
