"""Quality probes: read-only measurements of approximation drift.

The PR 3 recorder counts *work* (FLOPs, candidates, rebuilds); probes
measure *quality* — how far a sampling-based trainer's forward pass has
drifted from the exact computation, how well LSH candidate sets recover
the true top-k neurons, and how the MC estimator's bias/variance evolve
as the weights move.  Theorem 7.2 says forward error compounds
exponentially with depth; probes turn the trace into an empirical check
of that bound.

Three invariants, enforced by ``tests/obs/test_noop.py``:

* **Read-only.**  A probe never mutates trainer state and never touches
  the trainer's RNG — all probe randomness comes from the
  :class:`ProbeManager`'s private generator, and probe-time LSH lookups
  go through the counters-off ``query(..., record=False)`` path.
  Training with probes attached is bitwise identical to training
  without.
* **Cadence-bounded.**  Probes fire every ``probe_every`` batches; a
  probe whose single invocation exceeds the manager's wall-clock budget
  is disabled for the rest of the run (recorded under
  ``probe.budget_disabled``) so a pathological probe cannot dominate
  training time.
* **Deterministic series.**  Probe measurements are recorded as
  batch-indexed series (:mod:`repro.obs.timeseries`), keyed by the
  global batch step — never wall-clock — so a killed-and-resumed run
  reproduces them exactly (the manager's step counter and RNG state
  ride in the trainer checkpoint).

Layering note: ``repro.obs`` modules are import-time dependency-free
from the rest of ``repro``.  Probes are the sanctioned boundary — they
duck-type the trainer object (``probe_exact_forward`` /
``probe_approx_forward`` / ``indexes`` / ``_node_budget``) and defer the
one import they need (:func:`repro.approx.bernoulli.estimator_moments`)
to call time, so importing ``repro.obs`` still pulls in nothing else.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional

import numpy as np

from .counters import (
    LSH_GARBAGE_FRAC,
    PROBE_DISABLED,
    PROBE_POINTS,
    PROBE_RUNS,
    PROBE_SKIPPED,
)
from .recorder import Recorder
from .timeseries import (
    SERIES_FWD_COMPOUND,
    SERIES_FWD_REL_ERROR,
    SERIES_LSH_PRECISION,
    SERIES_LSH_RECALL,
    SERIES_MC_EXPECTED_ERROR,
    SERIES_MC_REL_BIAS,
    SERIES_MC_REL_STD,
    layer_series,
)

__all__ = [
    "Probe",
    "ForwardErrorProbe",
    "LSHRecallProbe",
    "MCEstimatorProbe",
    "ProbeManager",
    "default_probes",
    "DEFAULT_PROBE_EVERY",
    "DEFAULT_PROBE_BUDGET",
]

#: default cadence — probe once every N batches.  Chosen so the default
#: configuration stays under the ≤5 % overhead gate in
#: ``benchmarks/bench_obs_overhead.py`` at paper-shape networks.
DEFAULT_PROBE_EVERY = 50

#: default per-invocation wall-clock budget (seconds).  ``None`` in
#: tests that need budget decisions out of the picture.
DEFAULT_PROBE_BUDGET = 0.25


class Probe:
    """One read-only measurement.  Subclasses override all three hooks."""

    #: stable identifier; timings land under ``probe.<name>``.
    name = "probe"

    def supports(self, trainer) -> bool:
        """Whether this probe applies to the given trainer (duck-typed)."""
        return True

    def run(
        self,
        trainer,
        step: int,
        x: np.ndarray,
        y: np.ndarray,
        rng: np.random.Generator,
        recorder: Recorder,
    ) -> None:
        """Measure and record series points at batch index ``step``."""
        raise NotImplementedError


def _rel_frobenius(approx: np.ndarray, exact: np.ndarray) -> float:
    denom = float(np.linalg.norm(exact))
    if denom == 0.0:
        return 0.0
    return float(np.linalg.norm(approx - exact)) / denom


class ForwardErrorProbe(Probe):
    """Per-layer exact-vs-approx forward error (the Theorem 7.2 signal).

    Runs the trainer's exact and approximate forward passes on a slice
    of the current batch and records, per layer ``k`` (1-based, matching
    the theorem's exponent), the relative Frobenius error
    ``‖ã^k − a^k‖/‖a^k‖`` and the compounding ratio
    ``err(k)/err(k-1)`` — the measured analogue of the analytical
    ``((c+1)/c)^k − 1`` curve the HTML report overlays.
    """

    name = "forward_error"

    def __init__(self, max_samples: int = 8):
        if max_samples < 1:
            raise ValueError(f"max_samples must be at least 1, got {max_samples}")
        self.max_samples = int(max_samples)

    def supports(self, trainer) -> bool:
        return hasattr(trainer, "probe_approx_forward")

    def run(self, trainer, step, x, y, rng, recorder) -> None:
        xs = np.atleast_2d(np.asarray(x, dtype=float))[: self.max_samples]
        exact = trainer.probe_exact_forward(xs)
        approx = trainer.probe_approx_forward(xs, rng)
        prev: Optional[float] = None
        for k, (e, a) in enumerate(zip(exact, approx), start=1):
            err = _rel_frobenius(a, e)
            recorder.series(layer_series(SERIES_FWD_REL_ERROR, k), step, err)
            recorder.add(PROBE_POINTS)
            if prev is not None and prev > 0.0:
                recorder.series(
                    layer_series(SERIES_FWD_COMPOUND, k), step, err / prev
                )
                recorder.add(PROBE_POINTS)
            prev = err


class LSHRecallProbe(Probe):
    """LSH recall@k and candidate precision against brute-force MIPS.

    For each hidden layer with a hash index: hash a few activation
    vectors through the counters-off query path, compare the candidate
    set against the exact top-k columns by inner product, and record
    mean recall (top-k hits / k) and precision (top-k hits / candidate
    count).  Activations advance layer-to-layer through the *exact*
    forward pass so layer ``k``'s queries are the inputs the index
    actually serves in training.  Also records the backend's garbage
    fraction gauge (flat-backend tombstone health).
    """

    name = "lsh_recall"

    def __init__(self, k: int = 10, max_queries: int = 4):
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if max_queries < 1:
            raise ValueError(
                f"max_queries must be at least 1, got {max_queries}"
            )
        self.k = int(k)
        self.max_queries = int(max_queries)

    def supports(self, trainer) -> bool:
        return bool(getattr(trainer, "indexes", None))

    def run(self, trainer, step, x, y, rng, recorder) -> None:
        a_prev = np.atleast_2d(np.asarray(x, dtype=float))[: self.max_queries]
        act = trainer.net.hidden_activation
        garbage = 0.0
        for i, index in enumerate(trainer.indexes):
            layer = trainer.net.layers[i]
            k = min(self.k, layer.n_out)
            scores = a_prev @ layer.W
            top = np.argpartition(-scores, k - 1, axis=1)[:, :k]
            recalls, precisions = [], []
            for q, true_top in zip(a_prev, top):
                cand = index.query(q, record=False)
                hits = np.intersect1d(cand, true_top).size
                recalls.append(hits / k)
                precisions.append(hits / cand.size if cand.size else 0.0)
            recorder.series(
                layer_series(SERIES_LSH_RECALL, i + 1),
                step,
                float(np.mean(recalls)),
            )
            recorder.series(
                layer_series(SERIES_LSH_PRECISION, i + 1),
                step,
                float(np.mean(precisions)),
            )
            recorder.add(PROBE_POINTS, 2)
            garbage = max(garbage, index.garbage_fraction())
            a_prev = act.forward(scores + layer.b)
        recorder.gauge(LSH_GARBAGE_FRAC, garbage)


class MCEstimatorProbe(Probe):
    """MC estimator bias/variance from repeated draws on live operands.

    Re-estimates the first layer's forward product ``x @ W¹`` several
    times at the trainer's own sample budget and records the empirical
    relative bias and single-draw error next to the closed-form
    expectation (:func:`repro.approx.bernoulli.estimator_moments`).
    Bias should sit near zero at every point of training — the
    estimator is unbiased by construction — while the std tracks how
    the waterfilled probabilities cope with the moving weight
    distribution.
    """

    name = "mc_estimator"

    def __init__(self, draws: int = 8, max_samples: int = 8):
        if draws < 2:
            raise ValueError(f"draws must be at least 2, got {draws}")
        if max_samples < 1:
            raise ValueError(f"max_samples must be at least 1, got {max_samples}")
        self.draws = int(draws)
        self.max_samples = int(max_samples)

    def supports(self, trainer) -> bool:
        return hasattr(trainer, "_node_budget") and hasattr(trainer, "k")

    def run(self, trainer, step, x, y, rng, recorder) -> None:
        # Deferred import: the sanctioned obs -> repro.approx boundary
        # (see the module docstring); repro.approx never imports obs.
        from ..approx.bernoulli import estimator_moments

        a = np.atleast_2d(np.asarray(x, dtype=float))[: self.max_samples]
        layer = trainer.net.layers[0]
        moments = estimator_moments(
            a, layer.W, trainer._node_budget(layer.n_in), rng, draws=self.draws
        )
        recorder.series(SERIES_MC_REL_BIAS, step, moments["rel_bias"])
        recorder.series(SERIES_MC_REL_STD, step, moments["rel_std"])
        recorder.series(
            SERIES_MC_EXPECTED_ERROR, step, moments["expected_rel_error"]
        )
        recorder.add(PROBE_POINTS, 3)


def default_probes() -> List[Probe]:
    """The standard probe set; inapplicable probes skip themselves."""
    return [ForwardErrorProbe(), LSHRecallProbe(), MCEstimatorProbe()]


class ProbeManager:
    """Owns the probe set, cadence, budget and the private RNG stream.

    Attach to a trainer with ``trainer.attach_probes(manager)``; the
    base ``fit`` loop calls :meth:`on_batch` after every optimisation
    step.  With the null recorder every call returns immediately (one
    integer increment), preserving the zero-cost disabled path.

    Parameters
    ----------
    probes:
        Probe instances; defaults to :func:`default_probes`.
    probe_every:
        Cadence in batches (fire when ``step % probe_every == 0``).
    budget:
        Per-invocation wall-clock budget in seconds; a probe exceeding
        it once is disabled for the rest of the run.  ``None`` disables
        budgeting (deterministic runs for tests).
    seed:
        Seed of the private RNG stream — independent of the trainer's.
    """

    def __init__(
        self,
        probes: Optional[Iterable[Probe]] = None,
        probe_every: int = DEFAULT_PROBE_EVERY,
        budget: Optional[float] = DEFAULT_PROBE_BUDGET,
        seed: Optional[int] = None,
    ):
        if probe_every < 1:
            raise ValueError(f"probe_every must be at least 1, got {probe_every}")
        if budget is not None and budget < 0:
            raise ValueError(f"budget must be non-negative, got {budget}")
        self.probes: List[Probe] = (
            list(probes) if probes is not None else default_probes()
        )
        self.probe_every = int(probe_every)
        self.budget = None if budget is None else float(budget)
        self.rng = np.random.default_rng(seed)
        self.step = 0
        self.disabled: set = set()

    # ------------------------------------------------------------------
    def on_batch(self, trainer, x: np.ndarray, y: np.ndarray) -> None:
        """Advance the batch counter; run the probe set on cadence."""
        self.step += 1
        recorder: Recorder = trainer.obs
        if not recorder.enabled:
            return
        if self.step % self.probe_every:
            return
        for probe in self.probes:
            if probe.name in self.disabled:
                continue
            if not probe.supports(trainer):
                recorder.add(PROBE_SKIPPED)
                continue
            start = time.perf_counter()
            probe.run(trainer, self.step, x, y, self.rng, recorder)
            elapsed = time.perf_counter() - start
            recorder.add(PROBE_RUNS)
            recorder.add_time(f"probe.{probe.name}", elapsed)
            if self.budget is not None and elapsed > self.budget:
                self.disabled.add(probe.name)
                recorder.add(PROBE_DISABLED)

    # ------------------------------------------------------------------
    # checkpoint support (rides in the trainer checkpoint payload)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe mutable state: step counter, RNG stream, disables."""
        return {
            "step": int(self.step),
            "disabled": sorted(self.disabled),
            "rng_state": self.rng.bit_generator.state,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` capture (bitwise-identical resume)."""
        self.step = int(state["step"])
        self.disabled = set(state["disabled"])
        self.rng.bit_generator.state = state["rng_state"]
