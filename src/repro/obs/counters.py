"""Canonical counter names and the measured-FLOP conventions.

Counters use dotted names grouped by subsystem.  The catalogue below is
the single source of truth: the docs render it, the trace report
explains unknown counters with it, and tests assert instrumented
trainers only emit catalogued names (plus the documented prefixes).

FLOP convention (matches :mod:`repro.harness.flops`): a multiply-
accumulate counts as 2 FLOPs.  Measured counters track *GEMM* work only
— ``flops.dense`` is what the exact computation would have cost,
``flops.actual`` is what was actually computed, and their difference is
the measured skipped work.  Element-wise passes (activations, masks,
probability machinery) are deliberately excluded: diffing the measured
numbers against the analytical model (which includes them) is how the
``trace-report`` command quantifies bookkeeping overhead.
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "COUNTER_CATALOG",
    "gemm_flops",
    # training
    "TRAIN_EPOCHS",
    "TRAIN_BATCHES",
    "TRAIN_SAMPLES",
    # measured FLOPs
    "FLOPS_DENSE",
    "FLOPS_ACTUAL",
    # memory traffic of subset kernels
    "MEM_GATHER_BYTES",
    "MEM_SCATTER_BYTES",
    # optimiser
    "OPT_DENSE_UPDATES",
    "OPT_LAZY_UPDATE_HITS",
    "OPT_LAZY_UPDATE_COLS",
    # LSH
    "LSH_QUERIES",
    "LSH_CANDIDATES",
    "LSH_BUILDS",
    "LSH_UPDATES",
    "LSH_REHASHED_ITEMS",
    "LSH_REBUILDS",
    "LSH_REHASHED_COLUMNS",
    "LSH_ACTIVE_NODES",
    "LSH_ACTIVE_POOL",
    # gauges
    "GAUGE_CATALOG",
    "LSH_BUCKET_MAX_LOAD",
    "LSH_BUCKETS_OCCUPIED",
    "LSH_GARBAGE_FRAC",
    # probes
    "PROBE_RUNS",
    "PROBE_SKIPPED",
    "PROBE_DISABLED",
    "PROBE_POINTS",
    # samplers
    "SAMPLER_COLS_KEPT",
    "SAMPLER_COLS_POOL",
    "SAMPLER_ROWS_KEPT",
    "SAMPLER_ROWS_POOL",
    "SAMPLER_MASK_KEPT",
    "SAMPLER_MASK_POOL",
    # streaming
    "STREAM_BATCHES",
    "STREAM_SAMPLES",
    "STREAM_DRIFT_CHECKS",
    "STREAM_REBUILDS",
    "STREAM_COMPACTIONS",
    "STREAM_CHECKPOINTS",
    "STREAM_EVALS",
    # serving
    "SERVE_REQUESTS",
    "SERVE_BATCHES",
    "SERVE_SHED_QUEUE_FULL",
    "SERVE_SHED_DEADLINE",
    "SERVE_HANDLER_ERRORS",
    "SERVE_HEAD_QUERIES",
    "SERVE_HEAD_CANDIDATES",
    "SERVE_HEAD_FALLBACKS",
    "SERVE_TENANT_HITS",
    "SERVE_TENANT_MISSES",
    "SERVE_TENANT_EVICTIONS",
    "SERVE_QUEUE_DEPTH",
    "SERVE_LATENCY_P50",
    "SERVE_LATENCY_P99",
    "SERVE_TENANT_RESIDENT",
    # histograms
    "HISTOGRAM_CATALOG",
    "HISTOGRAM_PREFIXES",
    "HIST_SERVE_LATENCY",
    "HIST_SERVE_QUEUE_WAIT",
    "HIST_SERVE_HEAD_SECONDS",
    "HIST_STREAM_BATCH_SECONDS",
    "KERNEL_SECONDS_PREFIX",
    "SLO_BURN_PREFIX",
]

TRAIN_EPOCHS = "train.epochs"
TRAIN_BATCHES = "train.batches"
TRAIN_SAMPLES = "train.samples"

FLOPS_DENSE = "flops.dense"
FLOPS_ACTUAL = "flops.actual"

MEM_GATHER_BYTES = "mem.gather_bytes"
MEM_SCATTER_BYTES = "mem.scatter_bytes"

#: per-backend usage counters are ``backend.used.<name>``; the built-in
#: names are catalogued below (custom backends should add their own).
BACKEND_USED_PREFIX = "backend.used."
#: per-kernel measured FLOPs are ``kernel.flops.<kernel>`` (see
#: :mod:`repro.backend.instrument` for the kernel list).
KERNEL_FLOPS_PREFIX = "kernel.flops."

OPT_DENSE_UPDATES = "optim.dense_updates"
OPT_LAZY_UPDATE_HITS = "optim.lazy_update_hits"
OPT_LAZY_UPDATE_COLS = "optim.lazy_update_cols"

LSH_QUERIES = "lsh.queries"
LSH_CANDIDATES = "lsh.candidates"
LSH_BUILDS = "lsh.builds"
LSH_UPDATES = "lsh.updates"
LSH_REHASHED_ITEMS = "lsh.rehashed_items"
LSH_REBUILDS = "lsh.rebuilds"
LSH_REHASHED_COLUMNS = "lsh.rehashed_columns"
LSH_ACTIVE_NODES = "lsh.active_nodes"
LSH_ACTIVE_POOL = "lsh.active_pool"

PROBE_RUNS = "probe.runs"
PROBE_SKIPPED = "probe.skipped"
PROBE_DISABLED = "probe.budget_disabled"
PROBE_POINTS = "probe.points"

SAMPLER_COLS_KEPT = "sampler.cols_kept"
SAMPLER_COLS_POOL = "sampler.cols_pool"
SAMPLER_ROWS_KEPT = "sampler.rows_kept"
SAMPLER_ROWS_POOL = "sampler.rows_pool"
SAMPLER_MASK_KEPT = "sampler.mask_kept"
SAMPLER_MASK_POOL = "sampler.mask_pool"

STREAM_BATCHES = "stream.batches"
STREAM_SAMPLES = "stream.samples"
STREAM_DRIFT_CHECKS = "stream.drift_checks"
STREAM_REBUILDS = "stream.rebuilds"
STREAM_COMPACTIONS = "stream.compactions"
STREAM_CHECKPOINTS = "stream.checkpoints"
STREAM_EVALS = "stream.evals"

SERVE_REQUESTS = "serve.requests"
SERVE_BATCHES = "serve.batches"
SERVE_SHED_QUEUE_FULL = "serve.shed.queue_full"
SERVE_SHED_DEADLINE = "serve.shed.deadline"
SERVE_HANDLER_ERRORS = "serve.handler_errors"
SERVE_HEAD_QUERIES = "serve.head.queries"
SERVE_HEAD_CANDIDATES = "serve.head.candidates"
SERVE_HEAD_FALLBACKS = "serve.head.exact_fallbacks"
SERVE_TENANT_HITS = "serve.tenant.hits"
SERVE_TENANT_MISSES = "serve.tenant.misses"
SERVE_TENANT_EVICTIONS = "serve.tenant.evictions"

#: name -> one-line description, rendered in docs and the trace report.
COUNTER_CATALOG: Dict[str, str] = {
    TRAIN_EPOCHS: "training epochs completed",
    TRAIN_BATCHES: "optimisation steps (batches) taken",
    TRAIN_SAMPLES: "training samples consumed",
    FLOPS_DENSE: "GEMM FLOPs the exact computation would have cost",
    FLOPS_ACTUAL: "GEMM FLOPs actually executed (dense - actual = skipped)",
    MEM_GATHER_BYTES: "bytes gathered by subset/sampled kernels (modelled)",
    MEM_SCATTER_BYTES: "bytes scattered by sparse-column updates (modelled)",
    BACKEND_USED_PREFIX + "reference": "fit() calls run on the reference backend",
    BACKEND_USED_PREFIX + "fast": "fit() calls run on the fast (float32) backend",
    BACKEND_USED_PREFIX + "threaded": "fit() calls run on the threaded backend",
    KERNEL_FLOPS_PREFIX + "matmul": "GEMM FLOPs executed by the matmul kernel",
    KERNEL_FLOPS_PREFIX + "matmul_add_bias": (
        "GEMM FLOPs executed by the matmul_add_bias kernel"
    ),
    KERNEL_FLOPS_PREFIX + "matmul_cols": (
        "GEMM FLOPs executed by the matmul_cols kernel"
    ),
    KERNEL_FLOPS_PREFIX + "matmul_rows": (
        "GEMM FLOPs executed by the matmul_rows kernel"
    ),
    KERNEL_FLOPS_PREFIX + "backprop_cols": (
        "GEMM FLOPs executed by the backprop_cols kernel"
    ),
    KERNEL_FLOPS_PREFIX + "grad_cols": (
        "GEMM FLOPs executed by the grad_cols kernel"
    ),
    KERNEL_FLOPS_PREFIX + "sampled_matmul": (
        "GEMM FLOPs executed by the sampled_matmul kernel"
    ),
    OPT_DENSE_UPDATES: "full-parameter optimiser updates",
    OPT_LAZY_UPDATE_HITS: "sparse-column (lazy) optimiser updates",
    OPT_LAZY_UPDATE_COLS: "columns advanced across all lazy updates",
    LSH_QUERIES: "hash-table lookups (one per sample per layer)",
    LSH_CANDIDATES: "candidate ids returned across all queries",
    LSH_BUILDS: "full hash-table builds",
    LSH_UPDATES: "incremental hash-table update calls",
    LSH_REHASHED_ITEMS: "items re-inserted by incremental updates",
    LSH_REBUILDS: "scheduled table refreshes triggered by the trainer",
    LSH_REHASHED_COLUMNS: "weight columns re-hashed at those refreshes",
    LSH_ACTIVE_NODES: "active nodes selected after candidate clamping",
    LSH_ACTIVE_POOL: "nodes that were eligible (layer widths summed)",
    PROBE_RUNS: "probe invocations executed (per probe, across the run)",
    PROBE_SKIPPED: "probe invocations skipped (probe did not apply to the trainer)",
    PROBE_DISABLED: "probes disabled after exceeding their wall-clock budget",
    PROBE_POINTS: "time-series points recorded by probes",
    SAMPLER_COLS_KEPT: "weight columns kept by column samplers",
    SAMPLER_COLS_POOL: "columns that were eligible",
    SAMPLER_ROWS_KEPT: "inner-dimension indices kept by MC samplers",
    SAMPLER_ROWS_POOL: "inner-dimension indices that were eligible",
    SAMPLER_MASK_KEPT: "mask entries kept by element-wise dropout masks",
    SAMPLER_MASK_POOL: "mask entries that were eligible",
    STREAM_BATCHES: "stream minibatches trained by the online trainer",
    STREAM_SAMPLES: "streamed samples consumed by the online trainer",
    STREAM_DRIFT_CHECKS: "drift-detector evaluations over touched columns",
    STREAM_REBUILDS: "drift-triggered table refreshes (checks that re-hashed columns)",
    STREAM_COMPACTIONS: "garbage-gauge-forced compactions of the flat backend",
    STREAM_CHECKPOINTS: "mid-stream checkpoints written",
    STREAM_EVALS: "held-out evaluations on the current stream distribution",
    SERVE_REQUESTS: "inference requests accepted by the serving queue",
    SERVE_BATCHES: "micro-batches dispatched to the model handler",
    SERVE_SHED_QUEUE_FULL: "requests shed with 429-style overload (queue at depth limit)",
    SERVE_SHED_DEADLINE: "requests shed because their deadline passed before dispatch",
    SERVE_HANDLER_ERRORS: "micro-batches whose handler raised (requests failed, server survived)",
    SERVE_HEAD_QUERIES: "top-k queries answered by the ALSH serving head",
    SERVE_HEAD_CANDIDATES: "candidate classes scored across all ALSH head queries",
    SERVE_HEAD_FALLBACKS: "head queries answered exactly (candidate set smaller than k)",
    SERVE_TENANT_HITS: "tenant head-cache hits (head already resident)",
    SERVE_TENANT_MISSES: "tenant head-cache misses (head loaded on demand)",
    SERVE_TENANT_EVICTIONS: "tenant heads evicted by the memsim LRU model",
}

LSH_BUCKET_MAX_LOAD = "lsh.bucket_max_load"
LSH_BUCKETS_OCCUPIED = "lsh.buckets_occupied"
LSH_GARBAGE_FRAC = "lsh.garbage_frac"

SERVE_QUEUE_DEPTH = "serve.queue_depth"
SERVE_LATENCY_P50 = "serve.latency_p50"
SERVE_LATENCY_P99 = "serve.latency_p99"
SERVE_TENANT_RESIDENT = "serve.tenant.resident"

#: SLO error-budget-burn gauges are ``slo.burn.<spec name>``; the spec
#: names are user-defined, so the family is catalogued by prefix.
SLO_BURN_PREFIX = "slo.burn."

#: gauges (last-value metrics); merged across processes by max.
GAUGE_CATALOG: Dict[str, str] = {
    LSH_BUCKET_MAX_LOAD: "largest bucket occupancy seen at build time",
    LSH_BUCKETS_OCCUPIED: "occupied buckets across all tables at build",
    LSH_GARBAGE_FRAC: "tombstone/extras fraction of the flat LSH backend at last probe",
    SERVE_QUEUE_DEPTH: "high-water queue depth of the serving request queue",
    SERVE_LATENCY_P50: "median request latency in seconds (enqueue to response)",
    SERVE_LATENCY_P99: "99th-percentile request latency in seconds",
    SERVE_TENANT_RESIDENT: "tenant heads resident in the cache at last touch",
}

HIST_SERVE_LATENCY = "serve.latency_s"
HIST_SERVE_QUEUE_WAIT = "serve.queue_wait_s"
HIST_SERVE_HEAD_SECONDS = "serve.head.topk_s"
HIST_STREAM_BATCH_SECONDS = "stream.batch_s"

#: per-kernel call-time histograms are ``kernel.seconds.<kernel>``
#: (same kernel names as :data:`KERNEL_FLOPS_PREFIX`).
KERNEL_SECONDS_PREFIX = "kernel.seconds."

#: log-bucket histograms (bounded, mergeable; see repro.obs.histogram).
HISTOGRAM_CATALOG: Dict[str, str] = {
    HIST_SERVE_LATENCY: "request latency in seconds (enqueue to response)",
    HIST_SERVE_QUEUE_WAIT: "queue wait in seconds (enqueue to dispatch)",
    HIST_SERVE_HEAD_SECONDS: "ALSH top-k head time per micro-batch in seconds",
    HIST_STREAM_BATCH_SECONDS: "wall-clock seconds per streamed training batch",
}

#: dotted-name prefixes for histogram families with dynamic suffixes.
HISTOGRAM_PREFIXES: Dict[str, str] = {
    KERNEL_SECONDS_PREFIX: "per-call seconds of the named backend kernel",
}


def gemm_flops(m: int, k: int, n: int) -> int:
    """FLOPs of an (m×k)·(k×n) matrix product at 2 FLOPs per MAC."""
    return 2 * int(m) * int(k) * int(n)
