"""Bounded, mergeable log-bucket histograms.

Latency-style metrics cannot be kept as raw sample lists on a
long-running server — an unbounded list is a memory leak and cannot be
merged across processes.  A :class:`Histogram` keeps a *fixed* layout of
log-spaced buckets instead: recording is O(1) (one ``log`` plus one
array increment), memory is O(buckets) regardless of how many samples
arrive, and two histograms with the same layout merge by summing bucket
counts — so sharded recorders (executor workers, serve threads)
aggregate to exactly the histogram of the concatenated samples.

Layout
------
Buckets are geometric: bucket ``i`` (1-based) covers
``(lo * growth**(i-1), lo * growth**i]``; everything at or below ``lo``
lands in the underflow bucket 0 and everything above the top edge in
the overflow bucket ``n_buckets + 1``.  The default layout spans 1µs to
~4300s with ``growth = 2**0.2`` (five buckets per octave, ~15% bucket
width), which covers every timing this repository records.

Quantile error bound
--------------------
``quantile(q)`` walks the exact cumulative counts to the bucket holding
the q-th order statistic and returns that bucket's geometric midpoint,
clamped to the observed ``[min, max]``.  The estimate therefore lies in
the *same bucket* as the true order statistic: its relative error is at
most one bucket width, i.e. a factor of ``growth`` (≤ ~15% at the
default layout).  ``merge`` is bucket-exact, so merging never widens
this bound.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

__all__ = [
    "Histogram",
    "DEFAULT_LO",
    "DEFAULT_GROWTH",
    "DEFAULT_BUCKETS",
    "merge_histogram_snapshots",
]

#: default layout: 1µs lower edge, five buckets per octave, 160 buckets
#: → top edge = lo * growth**160 = 2**32 µs ≈ 4.3e3 seconds.
DEFAULT_LO = 1e-6
DEFAULT_GROWTH = 2.0 ** 0.2
DEFAULT_BUCKETS = 160


class Histogram:
    """Fixed-layout log-bucket histogram: O(1) record, O(buckets) memory."""

    __slots__ = ("lo", "growth", "n_buckets", "_log_lo", "_inv_log_growth",
                 "counts", "count", "sum", "min", "max")

    def __init__(
        self,
        lo: float = DEFAULT_LO,
        growth: float = DEFAULT_GROWTH,
        n_buckets: int = DEFAULT_BUCKETS,
    ):
        if lo <= 0:
            raise ValueError(f"lo must be positive, got {lo}")
        if growth <= 1:
            raise ValueError(f"growth must exceed 1, got {growth}")
        if n_buckets < 1:
            raise ValueError(f"n_buckets must be at least 1, got {n_buckets}")
        self.lo = float(lo)
        self.growth = float(growth)
        self.n_buckets = int(n_buckets)
        self._log_lo = math.log(self.lo)
        self._inv_log_growth = 1.0 / math.log(self.growth)
        # underflow bucket 0, finite buckets 1..n, overflow bucket n+1.
        self.counts: List[int] = [0] * (self.n_buckets + 2)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # ------------------------------------------------------------------
    def same_layout(self, other: "Histogram") -> bool:
        return (
            self.lo == other.lo
            and self.growth == other.growth
            and self.n_buckets == other.n_buckets
        )

    def bucket_index(self, value: float) -> int:
        """The bucket a value lands in (0 = underflow, n+1 = overflow)."""
        if value <= self.lo:
            return 0
        idx = 1 + int((math.log(value) - self._log_lo) * self._inv_log_growth)
        # Guard the float rounding at exact edges: an edge value belongs
        # to the bucket it is the *upper* edge of.
        if value <= self.upper_edge(idx - 1):
            idx -= 1
        return idx if idx <= self.n_buckets else self.n_buckets + 1

    def upper_edge(self, index: int) -> float:
        """Upper edge of bucket ``index`` (``lo`` for the underflow bucket)."""
        if index <= 0:
            return self.lo
        if index > self.n_buckets:
            return math.inf
        return self.lo * self.growth ** index

    def record(self, value: float) -> None:
        """Add one sample; negative values clamp into the underflow bucket."""
        value = float(value)
        self.counts[self.bucket_index(value) if value > 0 else 0] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    # ------------------------------------------------------------------
    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Estimate of the q-quantile (q in [0, 1]); None when empty.

        The returned value lies in the same log bucket as the true
        order statistic, so its relative error is bounded by one bucket
        width (a factor of ``growth``).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if not self.count:
            return None
        # Rank of the order statistic the estimate should track (the
        # "nearest rank" definition; exact for the bucket walk).
        rank = max(1, math.ceil(q * self.count))
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= rank:
                return self._representative(i)
        return self.max  # pragma: no cover - cum always reaches count

    def _representative(self, index: int) -> float:
        """Geometric bucket midpoint clamped to the observed range."""
        if index <= 0:
            value = self.lo
        elif index > self.n_buckets:
            value = self.upper_edge(self.n_buckets)
        else:
            value = self.lo * self.growth ** (index - 0.5)
        if self.min is not None:
            value = max(value, self.min)
        if self.max is not None:
            value = min(value, self.max)
        return value

    # ------------------------------------------------------------------
    def merge(self, other: "Histogram") -> None:
        """Accumulate another histogram of the identical layout."""
        if not self.same_layout(other):
            raise ValueError(
                "cannot merge histograms with different layouts: "
                f"({self.lo:g}, {self.growth:g}, {self.n_buckets}) vs "
                f"({other.lo:g}, {other.growth:g}, {other.n_buckets})"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe dump; bucket counts stored sparsely by index."""
        return {
            "lo": self.lo,
            "growth": self.growth,
            "n_buckets": self.n_buckets,
            "counts": {
                str(i): int(c) for i, c in enumerate(self.counts) if c
            },
            "count": int(self.count),
            "sum": float(self.sum),
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_snapshot(cls, payload: dict) -> "Histogram":
        hist = cls(
            lo=payload.get("lo", DEFAULT_LO),
            growth=payload.get("growth", DEFAULT_GROWTH),
            n_buckets=payload.get("n_buckets", DEFAULT_BUCKETS),
        )
        for key, c in payload.get("counts", {}).items():
            hist.counts[int(key)] = int(c)
        hist.count = int(payload.get("count", 0))
        hist.sum = float(payload.get("sum", 0.0))
        hist.min = payload.get("min")
        hist.max = payload.get("max")
        return hist

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Histogram(count={self.count}, p50={self.quantile(0.5)}, "
            f"p99={self.quantile(0.99)})"
        )


def merge_histogram_snapshots(
    parts: Iterable[Optional[Dict[str, dict]]],
) -> Dict[str, dict]:
    """Merge per-worker histogram sections (bucket-exact).

    ``None`` parts — untraced workers, pre-histogram snapshots on disk —
    are skipped, mirroring :func:`repro.obs.timeseries.merge_series`.
    """
    merged: Dict[str, Histogram] = {}
    for part in parts:
        if not part:
            continue
        for name, payload in part.items():
            hist = Histogram.from_snapshot(payload)
            if name in merged:
                merged[name].merge(hist)
            else:
                merged[name] = hist
    return {name: hist.snapshot() for name, hist in merged.items()}
