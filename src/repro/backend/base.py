"""The compute-backend kernel interface.

Every hot matrix product in the repository — the dense layer products in
:mod:`repro.nn.layers`, the im2col convolution in :mod:`repro.nn.conv`,
the scaled sampled-GEMM of the MC trainer, the column-subset products of
the ALSH/top-k/dropout trainers and the fused LSH hashers — routes
through one of the kernels declared here.  A backend is an object with
these methods; :mod:`repro.backend` dispatches between registered
implementations (``reference``, ``fast``, ``threaded``).

:class:`ComputeBackend` is both the interface and the canonical
implementation: every method body below is the *exact* NumPy expression
the call sites used before the backend layer existed, so a subclass that
overrides nothing is bitwise-identical to the historical code at float64
(the property the no-op digest tests pin down).  Subclasses override
individual kernels and must either preserve bitwise equality (the
``reference`` and ``threaded`` backends, and ``fast`` at
``precision="float64"``) or document their tolerance (``fast`` at
float32, see :data:`repro.backend.fast.FAST_RTOL`).

Conventions
-----------
* Operands are float64 C- or F-contiguous ndarrays (1-D operands are
  accepted where the historical call sites passed them).
* Returned arrays are always freshly allocated — callers hold on to
  results across batches (activation caches), so kernels must never
  return their scratch buffers.
* Scratch buffers (:class:`ScratchPool`) are only used for operand
  staging and are keyed by a call-site slot name so two buffers of the
  same shape never alias within one kernel invocation.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["ComputeBackend", "ScratchPool", "KERNEL_NAMES"]

#: Every kernel a backend implements, in call-frequency order.  The
#: instrumentation wrapper and the property tests iterate this list so a
#: new kernel only needs to be added here once.
KERNEL_NAMES = (
    "matmul",
    "matmul_add_bias",
    "matmul_cols",
    "matmul_rows",
    "backprop_cols",
    "grad_cols",
    "sampled_matmul",
    "gather_cols",
    "apply_activation",
    "im2col",
    "col2im",
)


class ScratchPool:
    """Reusable staging buffers keyed by ``(slot, shape, dtype)``.

    The pool exists to kill the per-step slice allocations the sampled
    trainers otherwise pay (ISSUE 7 satellite): a gather like
    ``a[:, idx] * scales`` allocates two fresh ``(m, keep)`` arrays per
    call, while ``np.take(..., out=pool.get(...))`` reuses one buffer for
    the whole run.  ``hits``/``misses`` are exposed so the allocation
    regression test can assert steady-state reuse.
    """

    def __init__(self):
        self._buffers: Dict[Tuple[str, Tuple[int, ...], str], np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def get(self, slot: str, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """An uninitialised buffer of the requested shape and dtype."""
        key = (slot, tuple(int(s) for s in shape), np.dtype(dtype).str)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(key[1], dtype=np.dtype(dtype))
            self._buffers[key] = buf
            self.misses += 1
        else:
            self.hits += 1
        return buf

    def clear(self) -> None:
        """Drop all buffers (and reset the hit/miss statistics)."""
        self._buffers.clear()
        self.hits = 0
        self.misses = 0

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the pool."""
        return sum(buf.nbytes for buf in self._buffers.values())


class ComputeBackend:
    """Interface + canonical NumPy implementation of every kernel."""

    name = "base"

    def __init__(self):
        self.scratch = ScratchPool()

    # ------------------------------------------------------------------
    # dense GEMM
    # ------------------------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Plain ``a @ b`` (either operand may be 1-D)."""
        return a @ b

    def matmul_add_bias(
        self, a: np.ndarray, w: np.ndarray, bias: np.ndarray
    ) -> np.ndarray:
        """Dense layer forward: ``a @ w + bias``."""
        return a @ w + bias

    # ------------------------------------------------------------------
    # subset products (sampling from the current / previous layer)
    # ------------------------------------------------------------------
    def matmul_cols(
        self,
        a: np.ndarray,
        w: np.ndarray,
        bias: Optional[np.ndarray],
        cols: np.ndarray,
    ) -> np.ndarray:
        """Column-restricted forward: ``a @ w[:, cols] + bias[cols]``."""
        z = a @ w[:, cols]
        if bias is not None:
            z = z + bias[cols]
        return z

    def matmul_rows(
        self,
        a: np.ndarray,
        w: np.ndarray,
        bias: Optional[np.ndarray],
        rows: np.ndarray,
        scale: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Row-restricted forward: ``(a[:, rows] * scale) @ w[rows, :] + bias``."""
        a_sub = a[:, rows]
        if scale is not None:
            a_sub = a_sub * scale
        z = a_sub @ w[rows, :]
        if bias is not None:
            z = z + bias
        return z

    def backprop_cols(
        self, delta: np.ndarray, w: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        """Delta propagation through the active columns only.

        2-D ``delta``: ``delta @ w[:, cols].T`` (batched); 1-D ``delta``:
        ``w[:, cols] @ delta`` (the per-sample trainers) — both exactly as
        the historical call sites wrote them.
        """
        if delta.ndim == 1:
            return w[:, cols] @ delta
        return delta @ w[:, cols].T

    def grad_cols(self, a_prev: np.ndarray, delta: np.ndarray) -> np.ndarray:
        """Weight-gradient product ``a_prev.T @ delta`` (outer for 1-D)."""
        if a_prev.ndim == 1:
            return np.outer(a_prev, delta)
        return a_prev.T @ delta

    # ------------------------------------------------------------------
    # scaled sampled-GEMM (MC column-row estimator)
    # ------------------------------------------------------------------
    def sampled_matmul(
        self,
        a: np.ndarray,
        b: np.ndarray,
        idx: np.ndarray,
        scales: np.ndarray,
    ) -> np.ndarray:
        """Bernoulli column–row estimate ``(a[:, idx] * scales) @ b[idx, :]``."""
        if idx.size == 0:
            return np.zeros((a.shape[0], b.shape[1]))
        return (a[:, idx] * scales) @ b[idx, :]

    # ------------------------------------------------------------------
    # gathers and elementwise
    # ------------------------------------------------------------------
    def gather_cols(self, a: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Column gather ``a[:, idx]`` (``idx`` may be multi-dimensional).

        Used by the gather-based fused hashers (DWTA); index arrays of
        shape ``(..., bins)`` produce ``(n, ..., bins)`` outputs exactly
        like fancy indexing.
        """
        return a[:, idx]

    def apply_activation(self, activation, z: np.ndarray) -> np.ndarray:
        """Elementwise activation forward (``activation.forward(z)``)."""
        return activation.forward(z)

    # ------------------------------------------------------------------
    # im2col convolution support
    # ------------------------------------------------------------------
    @staticmethod
    def _window_offsets(field, stride, out_h, out_w):
        i0 = np.repeat(np.arange(field), field)
        j0 = np.tile(np.arange(field), field)
        i1 = stride * np.repeat(np.arange(out_h), out_w)
        j1 = stride * np.tile(np.arange(out_w), out_h)
        i = i0.reshape(1, -1) + i1.reshape(-1, 1)  # (out_h*out_w, field*field)
        j = j0.reshape(1, -1) + j1.reshape(-1, 1)
        return i, j

    def im2col(
        self,
        x: np.ndarray,
        field: int,
        stride: int,
        pad: int,
        out_h: int,
        out_w: int,
    ) -> np.ndarray:
        """Unfold sliding windows into matrix rows (see nn.conv.im2col)."""
        n, c = x.shape[0], x.shape[1]
        if pad > 0:
            x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        i, j = self._window_offsets(field, stride, out_h, out_w)
        windows = x[:, :, i, j]  # (n, c, out_h*out_w, field*field)
        return windows.transpose(0, 2, 1, 3).reshape(
            n * out_h * out_w, c * field * field
        )

    def col2im(
        self,
        cols: np.ndarray,
        x_shape: Tuple[int, int, int, int],
        field: int,
        stride: int,
        pad: int,
        out_h: int,
        out_w: int,
    ) -> np.ndarray:
        """Adjoint scatter-add of :meth:`im2col`."""
        n, c, h, w = x_shape
        padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad))
        i, j = self._window_offsets(field, stride, out_h, out_w)
        windows = cols.reshape(n, out_h * out_w, c, field * field).transpose(
            0, 2, 1, 3
        )
        np.add.at(padded, (slice(None), slice(None), i, j), windows)
        if pad > 0:
            return padded[:, :, pad:-pad, pad:-pad]
        return padded

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
