"""Per-kernel observability wrapper for compute backends.

:class:`InstrumentedBackend` decorates any backend with the
:mod:`repro.obs` recorder: every kernel call lands one
``kernel.<name>`` timing (so ``trace-report`` can attribute wall-clock
to kernels), one sample in the ``kernel.seconds.<name>`` log-bucket
histogram (so per-call latency *distributions* survive merging and the
``/metrics`` scrape, not just totals), and, for the GEMM-family
kernels, a ``kernel.flops.<name>`` counter using the repository's
2-FLOPs-per-MAC convention.  Counters are deterministic for a fixed
seed — they participate in the golden traces — while timings and
histograms live in the (non-golden) wall-clock sections.

Trainers construct the wrapper themselves when built with a live
recorder; with the null recorder no wrapper exists and dispatch goes
straight to the raw backend (the no-op guarantee).
"""

from __future__ import annotations

import time

import numpy as np

from ..obs.counters import KERNEL_SECONDS_PREFIX, gemm_flops

__all__ = ["InstrumentedBackend", "KERNEL_FLOPS_COUNTERS"]


def _rows(a: np.ndarray) -> int:
    return a.shape[0] if a.ndim == 2 else 1


def _flops_matmul(a, b):
    return gemm_flops(_rows(a), a.shape[-1], b.shape[-1] if b.ndim == 2 else 1)


def _flops_matmul_add_bias(a, w, bias):
    return gemm_flops(_rows(a), a.shape[-1], w.shape[-1])


def _flops_matmul_cols(a, w, bias, cols):
    return gemm_flops(_rows(a), a.shape[-1], len(cols))


def _flops_matmul_rows(a, w, bias, rows, scale=None):
    return gemm_flops(_rows(a), len(rows), w.shape[1])


def _flops_backprop_cols(delta, w, cols):
    return gemm_flops(_rows(delta), len(cols), w.shape[0])


def _flops_grad_cols(a_prev, delta):
    if a_prev.ndim == 1:
        return gemm_flops(a_prev.shape[0], 1, delta.shape[-1])
    return gemm_flops(a_prev.shape[1], a_prev.shape[0], delta.shape[-1])


def _flops_sampled_matmul(a, b, idx, scales):
    return gemm_flops(a.shape[0], idx.size, b.shape[1])


_FLOP_MODELS = {
    "matmul": _flops_matmul,
    "matmul_add_bias": _flops_matmul_add_bias,
    "matmul_cols": _flops_matmul_cols,
    "matmul_rows": _flops_matmul_rows,
    "backprop_cols": _flops_backprop_cols,
    "grad_cols": _flops_grad_cols,
    "sampled_matmul": _flops_sampled_matmul,
}

#: counter name -> description; COUNTER_CATALOG in repro.obs.counters
#: carries matching entries (asserted by the backend test suite).
KERNEL_FLOPS_COUNTERS = {
    f"kernel.flops.{kernel}": f"GEMM FLOPs executed by the {kernel} kernel"
    for kernel in _FLOP_MODELS
}

#: kernels that are timed but carry no GEMM FLOPs (gathers, elementwise).
_TIMED_ONLY = ("gather_cols", "apply_activation", "im2col", "col2im")


class InstrumentedBackend:
    """A backend proxy recording per-kernel timings and FLOP counters."""

    def __init__(self, inner, recorder):
        self.inner = inner
        self.obs = recorder
        for kernel, model in _FLOP_MODELS.items():
            setattr(self, kernel, self._wrap(kernel, model))
        for kernel in _TIMED_ONLY:
            setattr(self, kernel, self._wrap(kernel, None))

    @property
    def name(self) -> str:
        """The wrapped backend's name (what ``backend.used.*`` records)."""
        return self.inner.name

    @property
    def scratch(self):
        return self.inner.scratch

    def _wrap(self, kernel: str, flop_model):
        fn = getattr(self.inner, kernel)
        timing = f"kernel.{kernel}"
        histogram = KERNEL_SECONDS_PREFIX + kernel
        counter = f"kernel.flops.{kernel}"
        obs = self.obs

        if flop_model is None:

            def timed(*args, **kwargs):
                start = time.perf_counter()
                out = fn(*args, **kwargs)
                dt = time.perf_counter() - start
                obs.add_time(timing, dt)
                obs.histogram(histogram, dt)
                return out

        else:

            def timed(*args, **kwargs):
                start = time.perf_counter()
                out = fn(*args, **kwargs)
                dt = time.perf_counter() - start
                obs.add_time(timing, dt)
                obs.histogram(histogram, dt)
                obs.add(counter, int(flop_model(*args, **kwargs)))
                return out

        timed.__name__ = kernel
        return timed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InstrumentedBackend({self.inner!r})"
