"""The ``reference`` backend — today's NumPy code, bitwise-preserving.

Every kernel inherits the canonical expression from
:class:`~repro.backend.base.ComputeBackend` except the MC trainer's
scaled sampled-GEMM, which historically materialised two fresh
``(m, keep)`` arrays per call (``a[:, idx]`` and its product with the
scale row).  Here the gather lands in a pooled scratch buffer via
``np.take(..., out=...)`` and the scaling is an in-place ufunc — the
same floating-point operations in the same order, so the result is
bitwise identical (pinned by ``tests/backend/test_kernels.py`` and the
no-op digest tests), but the only allocation left is the GEMM output.

The B-side row gather stays plain fancy indexing: on this BLAS/NumPy
pairing ``b[idx, :]`` is measurably faster than ``np.take`` into a
preallocated buffer for row gathers (the copy is contiguous either
way), and the fresh array is unavoidable since the GEMM needs a
C-contiguous operand.
"""

from __future__ import annotations

import numpy as np

from .base import ComputeBackend

__all__ = ["ReferenceBackend"]


class ReferenceBackend(ComputeBackend):
    """Bitwise-faithful kernels with scratch-pooled sampled gathers."""

    name = "reference"

    def sampled_matmul(self, a, b, idx, scales):
        if idx.size == 0:
            return np.zeros((a.shape[0], b.shape[1]))
        if a.dtype != np.float64 or scales.dtype != np.float64:
            return super().sampled_matmul(a, b, idx, scales)
        ga = self.scratch.get("sampled.a", (a.shape[0], idx.size))
        np.take(a, idx, axis=1, out=ga)
        np.multiply(ga, scales, out=ga)
        return ga @ b[idx, :]
