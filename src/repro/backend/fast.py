"""The ``fast`` backend — float32 compute behind float64 interfaces.

Motivation (ISSUE 7): on the paper-scale shapes (§8.4: 1000-node layers,
batch 20–128) this box's BLAS runs sgemm 1.6–8× faster than dgemm, and
the sampled trainers' gather-then-GEMM patterns spend a further slice of
each step allocating operand copies.  This backend stages every GEMM
operand into pooled float32 scratch buffers (one cast-copy, reused
across batches) and runs the product in float32, returning float64 so
callers see the usual dtypes.

Accuracy contract
-----------------
* ``precision="float32"`` (the registered default): each kernel's result
  matches the reference backend within :data:`FAST_RTOL` relative /
  :data:`FAST_ATOL` absolute tolerance *per kernel call* (property-tested
  across kernel calls captured from all six trainers).  Whole training
  runs are NOT guaranteed to track the float64 trajectory: the sampling
  trainers branch on comparisons (LSH signs, top-k order, Bernoulli
  probabilities), so a one-ulp flip can legitimately diverge two runs.
* ``accumulate="float64"``: operands are still quantised to float32 but
  the product accumulates in float64 (``np.matmul(..., dtype=float64)``)
  — tighter error on long inner dimensions at dgemm speed; useful for
  separating quantisation error from accumulation error.
* ``precision="float64"``: no quantisation anywhere; inherits the
  reference kernels unchanged and is bitwise-equal to ``reference``.

Kernels fall back to the reference expression whenever the operands are
not float64 or the product is too small to amortise the casts
(:data:`FAST_MIN_MACS`), so tiny per-sample products never pay staging
overhead.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .reference import ReferenceBackend

__all__ = ["FastBackend", "FAST_RTOL", "FAST_ATOL", "FAST_MIN_MACS"]

#: Documented per-kernel-call tolerance of the float32 path vs reference.
#: sgemm rounds each MAC to ~1e-7 relative; inner dimensions up to ~10^4
#: and cancellation headroom put single-call error well inside 2e-4
#: relative (the property tests in tests/backend assert this bound).
FAST_RTOL = 2e-4
FAST_ATOL = 1e-6

#: Multiply-accumulates below which casting costs more than sgemm saves;
#: smaller products use the float64 reference path unchanged.
FAST_MIN_MACS = 1 << 15


class FastBackend(ReferenceBackend):
    """float32-staged GEMM kernels with pooled scratch operands."""

    name = "fast"

    def __init__(self, precision: str = "float32", accumulate: Optional[str] = None):
        super().__init__()
        if precision not in ("float32", "float64"):
            raise ValueError(
                f"precision must be 'float32' or 'float64', got {precision!r}"
            )
        if accumulate not in (None, "float32", "float64"):
            raise ValueError(
                f"accumulate must be None, 'float32' or 'float64', "
                f"got {accumulate!r}"
            )
        self.precision = precision
        self.accumulate = accumulate or precision
        self._quantise = precision == "float32"
        self._acc64 = self._quantise and self.accumulate == "float64"

    # ------------------------------------------------------------------
    # staging helpers
    # ------------------------------------------------------------------
    def _eligible(self, macs: int, *operands: np.ndarray) -> bool:
        if not self._quantise or macs < FAST_MIN_MACS:
            return False
        return all(
            op.ndim == 2 and op.dtype == np.float64 for op in operands
        )

    def _stage(self, slot: str, arr: np.ndarray) -> np.ndarray:
        """Cast-copy ``arr`` into the pooled float32 buffer for ``slot``."""
        buf = self.scratch.get(slot, arr.shape, np.float32)
        buf[...] = arr
        return buf

    def _product(self, a32: np.ndarray, b32: np.ndarray) -> np.ndarray:
        """The staged product; float64 output, fresh array."""
        if self._acc64:
            return np.matmul(a32, b32, dtype=np.float64)
        out32 = self.scratch.get(
            "out", (a32.shape[0], b32.shape[-1]), np.float32
        )
        np.matmul(a32, b32, out=out32)
        return out32.astype(np.float64)

    # ------------------------------------------------------------------
    # dense GEMM
    # ------------------------------------------------------------------
    def matmul(self, a, b):
        if a.ndim != 2 or b.ndim != 2 or not self._eligible(
            a.size * b.shape[1], a, b
        ):
            return super().matmul(a, b)
        return self._product(self._stage("matmul.a", a), self._stage("matmul.b", b))

    def matmul_add_bias(self, a, w, bias):
        if not self._eligible(a.size * w.shape[-1], a, w):
            return super().matmul_add_bias(a, w, bias)
        z = self._product(self._stage("fwd.a", a), self._stage("fwd.w", w))
        z += bias
        return z

    # ------------------------------------------------------------------
    # subset products
    # ------------------------------------------------------------------
    def matmul_cols(self, a, w, bias, cols):
        if not self._eligible(a.size * len(cols), a, w):
            return super().matmul_cols(a, w, bias, cols)
        ws = self.scratch.get("cols.w", (w.shape[0], len(cols)), np.float32)
        ws[...] = w[:, cols]
        z = self._product(self._stage("cols.a", a), ws)
        if bias is not None:
            z += bias[cols]
        return z

    def matmul_rows(self, a, w, bias, rows, scale=None):
        if not self._eligible(a.shape[0] * len(rows) * w.shape[1], a, w):
            return super().matmul_rows(a, w, bias, rows, scale)
        ga = self.scratch.get("rows.a", (a.shape[0], len(rows)), np.float32)
        ga[...] = a[:, rows]
        if scale is not None:
            np.multiply(ga, scale.astype(np.float32), out=ga)
        ws = self.scratch.get("rows.w", (len(rows), w.shape[1]), np.float32)
        ws[...] = w[rows, :]
        z = self._product(ga, ws)
        if bias is not None:
            z += bias
        return z

    def backprop_cols(self, delta, w, cols):
        if delta.ndim == 1 or not self._eligible(delta.size * w.shape[0], delta, w):
            return super().backprop_cols(delta, w, cols)
        ws = self.scratch.get("bp.w", (w.shape[0], len(cols)), np.float32)
        ws[...] = w[:, cols]
        return self._product(self._stage("bp.delta", delta), ws.T)

    def grad_cols(self, a_prev, delta):
        if a_prev.ndim == 1 or not self._eligible(
            a_prev.size * delta.shape[-1], a_prev, delta
        ):
            return super().grad_cols(a_prev, delta)
        return self._product(
            self._stage("gw.a", a_prev).T, self._stage("gw.delta", delta)
        )

    # ------------------------------------------------------------------
    # scaled sampled-GEMM — the fused float32 path
    # ------------------------------------------------------------------
    def sampled_matmul(self, a, b, idx, scales):
        if idx.size == 0:
            return np.zeros((a.shape[0], b.shape[1]))
        if not self._eligible(a.shape[0] * idx.size * b.shape[1], a, b):
            return super().sampled_matmul(a, b, idx, scales)
        ga = self.scratch.get("sampled.a32", (a.shape[0], idx.size), np.float32)
        ga[...] = a[:, idx]
        np.multiply(ga, scales.astype(np.float32), out=ga)
        gb = self.scratch.get("sampled.b32", (idx.size, b.shape[1]), np.float32)
        gb[...] = b[idx, :]
        return self._product(ga, gb)
