"""Pluggable compute backends for the hot matrix kernels (ISSUE 7).

Every dense GEMM, subset product, scaled sampled-GEMM, fused-hash
projection and im2col in the repository dispatches through the active
:class:`~repro.backend.base.ComputeBackend`.  Three implementations
ship:

``reference``
    Today's NumPy expressions, bitwise-preserving at float64 (the no-op
    digest and golden-trace tests run under it), with the MC sampled
    gather staged through a reusable scratch buffer.
``fast``
    float32 staging + sgemm with an optional float64-accumulation mode;
    per-kernel results match reference within
    :data:`~repro.backend.fast.FAST_RTOL`.
``threaded``
    Row-sharded, cache-tiled GEMM over a thread pool; bitwise-equal to
    reference at float64.

Selection (first match wins):

1. per-call: ``use_backend("fast")`` context manager / explicit
   ``get_backend(...)``;
2. per-trainer: the ``compute_backend=`` trainer argument (CLI:
   ``--backend``, harness: ``ExperimentConfig.backend``);
3. process default: ``set_default_backend("fast")``;
4. environment: ``REPRO_BACKEND=fast``;
5. fallback: ``reference``.

The thread-local activation stack means nested scopes behave like
dynamic scoping and worker threads fall back to the process default.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Union

from .base import ComputeBackend, KERNEL_NAMES, ScratchPool
from .fast import FAST_ATOL, FAST_RTOL, FastBackend
from .instrument import InstrumentedBackend
from .reference import ReferenceBackend
from .threaded import ThreadedBackend

__all__ = [
    "ComputeBackend",
    "ScratchPool",
    "KERNEL_NAMES",
    "ReferenceBackend",
    "FastBackend",
    "ThreadedBackend",
    "InstrumentedBackend",
    "FAST_RTOL",
    "FAST_ATOL",
    "ENV_VAR",
    "available_backends",
    "register_backend",
    "get_backend",
    "resolve_backend",
    "set_default_backend",
    "default_backend_name",
    "active_backend",
    "use_backend",
]

#: Environment variable consulted for the process-wide default.
ENV_VAR = "REPRO_BACKEND"

_REGISTRY: Dict[str, Callable[[], ComputeBackend]] = {
    "reference": ReferenceBackend,
    "fast": FastBackend,
    "threaded": ThreadedBackend,
}

_instances: Dict[str, ComputeBackend] = {}
_default_override: Optional[str] = None
_local = threading.local()


def available_backends() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def register_backend(name: str, factory: Callable[[], ComputeBackend]) -> None:
    """Register a custom backend factory under ``name``.

    Re-registering a name invalidates any cached instance so tests can
    swap implementations; traced runs of a custom backend should add a
    ``backend.used.<name>`` entry to the counter catalogue.
    """
    _REGISTRY[str(name)] = factory
    _instances.pop(str(name), None)


def get_backend(name: Optional[str] = None) -> ComputeBackend:
    """The shared instance for ``name`` (``None`` → the active backend)."""
    if name is None:
        return active_backend()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown compute backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    instance = _instances.get(name)
    if instance is None:
        instance = factory()
        _instances[name] = instance
    return instance


def resolve_backend(
    spec: Union[str, ComputeBackend, None],
) -> Optional[ComputeBackend]:
    """Normalise a name / instance / ``None`` spec to an instance (or None)."""
    if spec is None:
        return None
    if isinstance(spec, str):
        return get_backend(spec)
    return spec


def set_default_backend(name: Optional[str]) -> Optional[str]:
    """Set (or with ``None`` clear) the process default; returns the old one.

    Clearing restores the environment-variable lookup, so tests can
    monkeypatch :data:`ENV_VAR` and reset cleanly.
    """
    global _default_override
    if name is not None and name not in _REGISTRY:
        raise ValueError(
            f"unknown compute backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    previous = _default_override
    _default_override = name
    return previous


def default_backend_name() -> str:
    """The process default: override, else ``$REPRO_BACKEND``, else reference."""
    if _default_override is not None:
        return _default_override
    env = os.environ.get(ENV_VAR, "").strip()
    if env:
        if env not in _REGISTRY:
            raise ValueError(
                f"${ENV_VAR}={env!r} names no registered backend; "
                f"available: {', '.join(available_backends())}"
            )
        return env
    return "reference"


def _stack() -> List[ComputeBackend]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


def active_backend() -> ComputeBackend:
    """The backend kernels dispatch to right now (innermost scope wins)."""
    stack = _stack()
    if stack:
        return stack[-1]
    return get_backend(default_backend_name())


@contextmanager
def use_backend(spec: Union[str, ComputeBackend]):
    """Activate a backend for the dynamic extent of the ``with`` block."""
    backend = resolve_backend(spec)
    if backend is None:
        raise ValueError("use_backend requires a backend name or instance")
    stack = _stack()
    stack.append(backend)
    try:
        yield backend
    finally:
        stack.pop()
