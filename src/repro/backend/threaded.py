"""The ``threaded`` backend — row-sharded GEMM over a thread pool.

Large dense products are split into horizontal tiles of the left
operand and dispatched to a ``concurrent.futures.ThreadPoolExecutor``;
each worker runs ``np.matmul(a[lo:hi], b, out=out[lo:hi])``, so the
shards write disjoint slices of one preallocated output.  NumPy releases
the GIL inside BLAS, so shards genuinely overlap on multi-core machines;
single-core boxes simply serialise the tiles.

Bitwise contract: a row shard of a GEMM computes exactly the same dot
products as the full call — each output element is one inner product,
and BLAS evaluates it identically whatever the row count (verified
empirically for this NumPy/OpenBLAS pairing across the paper-scale
shapes, and pinned by the float64 equality tests in ``tests/backend``).
The tile height keeps each shard's working set (an ``A`` tile plus the
shared ``B`` panel) inside the last-level cache for paper-scale widths.

Products below :data:`THREADED_MIN_MACS`, or with too few rows to cut
at least two tiles, fall through to the reference expression — thread
handoff costs more than it saves on small operands, and the subset /
per-sample kernels stay on the inherited reference paths.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

import numpy as np

from .reference import ReferenceBackend

__all__ = ["ThreadedBackend", "THREADED_MIN_MACS"]

#: Multiply-accumulates below which sharding is pure overhead.
THREADED_MIN_MACS = 1 << 21


class ThreadedBackend(ReferenceBackend):
    """Cache-tiled, thread-sharded dense GEMM; reference everything else."""

    name = "threaded"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        tile_rows: int = 128,
        min_macs: int = THREADED_MIN_MACS,
    ):
        super().__init__()
        if max_workers is None:
            max_workers = min(4, os.cpu_count() or 1)
        if max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        if tile_rows < 1:
            raise ValueError(f"tile_rows must be positive, got {tile_rows}")
        self.max_workers = int(max_workers)
        self.tile_rows = int(tile_rows)
        self.min_macs = int(min_macs)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-backend",
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (it is recreated lazily on reuse)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _sharded(self, a: np.ndarray, b: np.ndarray) -> Optional[np.ndarray]:
        """Row-sharded ``a @ b``, or ``None`` when sharding cannot pay."""
        if a.ndim != 2 or b.ndim != 2:
            return None
        m, k = a.shape
        n = b.shape[1]
        if m * k * n < self.min_macs or m < 2 * self.tile_rows:
            return None
        n_tiles = min(max(2, m // self.tile_rows), max(2, self.max_workers * 2))
        bounds = np.linspace(0, m, n_tiles + 1, dtype=int)
        out = np.empty((m, n), dtype=np.result_type(a, b))
        pool = self._ensure_pool()
        futures = [
            pool.submit(np.matmul, a[lo:hi], b, out=out[lo:hi])
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]
        for future in futures:
            future.result()
        return out

    def matmul(self, a, b):
        out = self._sharded(a, b)
        return super().matmul(a, b) if out is None else out

    def matmul_add_bias(self, a, w, bias):
        out = self._sharded(a, w)
        if out is None:
            return super().matmul_add_bias(a, w, bias)
        out += bias
        return out
