"""Microbenchmark: reference vs fast/threaded compute backends.

Times the dense and sampled GEMM kernels at the paper's shapes (the
Table 2 minibatch, the 1000-wide hidden layers of Tables 3-4, and the
MC column-row sampled product) on every built-in backend, checks the
fast backend stays within its documented float32 tolerance of the
reference result, and writes a ``BENCH_backend.json`` perf-trajectory
file so later PRs can compare against this one.  Two shapes are the
regression gate: the run fails under ``--check`` if ``fast`` does not
beat ``reference`` by ``--min-speedup`` on the paper-scale dense GEMM
and on the batched sampled GEMM.

Runnable three ways:

* ``python benchmarks/bench_backend.py [--quick]`` (CI uses
  ``--quick --check``),
* ``python -m repro backend-bench``,
* programmatically via :func:`run_shapes`.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from .fast import FAST_RTOL, FastBackend
from .reference import ReferenceBackend
from .threaded import ThreadedBackend

__all__ = [
    "default_shapes",
    "shape_key",
    "bench_shape",
    "run_shapes",
    "check_speedups",
    "write_bench_json",
    "add_arguments",
    "run_cli",
    "main",
]

#: Absolute slack for the fast-vs-reference closeness check.  float32
#: accumulation over a k=1000 inner dimension on unit-normal data keeps
#: the relative error well under FAST_RTOL, but near-zero entries need
#: an absolute floor larger than the per-element FAST_ATOL.
_CHECK_ATOL = 1e-3


def default_shapes(quick: bool = False) -> List[Dict]:
    """The benchmark shapes: a quick CI slice or the full sweep.

    Both include the two gated shapes — the paper-scale dense GEMM
    (batch 128 against a 1000x1000 hidden layer, Tables 3-4) and the
    batched MC sampled GEMM (keep 100 of a 1000-wide inner dimension) —
    so the regression gate always has records to check.  The full sweep
    adds the Table 2 minibatch (batch 20 on 784x1000), a large-batch
    dense point, the minibatch-sized sampled product, and an ALSH-style
    column-subset product.
    """
    shapes = [
        {"kind": "dense", "m": 128, "k": 1000, "n": 1000, "gate": True},
        {"kind": "sampled", "m": 128, "k": 1000, "n": 1000, "keep": 100,
         "gate": True},
        {"kind": "dense", "m": 20, "k": 784, "n": 1000, "gate": False},
    ]
    if quick:
        return shapes
    return shapes + [
        {"kind": "dense", "m": 1024, "k": 784, "n": 1000, "gate": False},
        {"kind": "sampled", "m": 20, "k": 1000, "n": 1000, "keep": 100,
         "gate": False},
        {"kind": "cols", "m": 20, "k": 784, "n": 1000, "keep": 200,
         "gate": False},
    ]


def shape_key(shape: Dict) -> str:
    """Stable identifier for one benchmark shape."""
    key = f"backend-bench:{shape['kind']}:{shape['m']}x{shape['k']}x{shape['n']}"
    if "keep" in shape:
        key += f":keep{shape['keep']}"
    return key


def _make_call(shape: Dict, rng: np.random.Generator):
    """Build the operands and a ``call(backend) -> ndarray`` closure."""
    m, k, n = shape["m"], shape["k"], shape["n"]
    if shape["kind"] == "dense":
        a = rng.normal(size=(m, k))
        w = rng.normal(size=(k, n))
        bias = rng.normal(size=n)
        return lambda backend: backend.matmul_add_bias(a, w, bias)
    if shape["kind"] == "sampled":
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, n))
        idx = np.sort(rng.choice(k, size=shape["keep"], replace=False))
        scales = 1.0 / np.sqrt(shape["keep"] / k + rng.uniform(
            0.0, 0.1, size=shape["keep"]
        ))
        return lambda backend: backend.sampled_matmul(a, b, idx, scales)
    if shape["kind"] == "cols":
        a = rng.normal(size=(m, k))
        w = rng.normal(size=(k, n))
        bias = rng.normal(size=n)
        cols = np.sort(rng.choice(n, size=shape["keep"], replace=False))
        return lambda backend: backend.matmul_cols(a, w, bias, cols)
    raise ValueError(f"unknown shape kind {shape['kind']!r}")


def _best_of(call, backend, repeats: int) -> float:
    """Minimum wall-clock over ``repeats`` calls (one warm-up first)."""
    call(backend)  # warm up scratch buffers and BLAS threads
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        call(backend)
        best = min(best, time.perf_counter() - start)
    return best


def bench_shape(shape: Dict, repeats: int = 5, seed: int = 0) -> Dict:
    """Time one shape on every built-in backend and compute speedups.

    Operands are derived from a per-shape :class:`~numpy.random.
    SeedSequence`, so records are reproducible and independent of
    sweep order.
    """
    ss = np.random.SeedSequence(
        [seed, shape["m"], shape["k"], shape["n"], shape.get("keep", 0)]
    )
    call = _make_call(shape, np.random.default_rng(ss))
    backends = {
        "reference": ReferenceBackend(),
        "fast": FastBackend(),
        "threaded": ThreadedBackend(),
    }
    record: Dict = dict(shape)
    outputs = {}
    try:
        for name, backend in backends.items():
            record[name] = _best_of(call, backend, repeats)
            outputs[name] = call(backend)
    finally:
        backends["threaded"].close()
    record["speedup"] = {
        name: record["reference"] / max(record[name], 1e-12)
        for name in ("fast", "threaded")
    }
    record["fast_close"] = bool(
        np.allclose(outputs["fast"], outputs["reference"],
                    rtol=FAST_RTOL, atol=_CHECK_ATOL)
    )
    record["threaded_bitwise"] = bool(
        np.array_equal(outputs["threaded"], outputs["reference"])
    )
    return record


def run_shapes(
    shapes: Sequence[Dict],
    repeats: int = 5,
    seed: int = 0,
    verbose: bool = True,
) -> List[Dict]:
    """Benchmark every shape; returns one record per shape."""
    records = []
    for i, shape in enumerate(shapes):
        record = bench_shape(shape, repeats=repeats, seed=seed)
        records.append(record)
        if verbose:
            print(
                f"  [{i + 1}/{len(shapes)}] {shape_key(shape)}: "
                f"ref {record['reference'] * 1e3:.3f}ms, "
                f"fast {record['speedup']['fast']:.2f}x, "
                f"threaded {record['speedup']['threaded']:.2f}x"
                f"{' [gate]' if shape.get('gate') else ''}"
                f"{'' if record['fast_close'] else ' (fast DIVERGES)'}"
            )
    return records


def check_speedups(records: Sequence[Dict], min_speedup: float = 1.0) -> List[str]:
    """Regression gate: failures at the gated paper shapes.

    Every record's fast output must be within the documented float32
    tolerance of reference (and threaded bitwise-equal); gated records
    must additionally beat reference by ``min_speedup`` on ``fast``.
    """
    failures = []
    for record in records:
        if not record["fast_close"]:
            failures.append(
                f"{shape_key(record)}: fast output outside float32 tolerance"
            )
        if not record["threaded_bitwise"]:
            failures.append(
                f"{shape_key(record)}: threaded output not bitwise-equal"
            )
        if record.get("gate") and record["speedup"]["fast"] < min_speedup:
            failures.append(
                f"{shape_key(record)}: fast only "
                f"{record['speedup']['fast']:.2f}x vs reference "
                f"(need >= {min_speedup:.2f}x)"
            )
    return failures


def write_bench_json(records: Sequence[Dict], path, quick: bool = False) -> Path:
    """Write the perf-trajectory file consumed by later PRs' benches."""
    path = Path(path)
    payload = {
        "bench": "compute_backend",
        "quick": bool(quick),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "numpy": np.__version__,
        "records": list(records),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """CLI flags shared by the script and the ``backend-bench`` subcommand."""
    parser.add_argument("--quick", action="store_true",
                        help="gated shapes only, for CI (seconds)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repeats per backend (best-of)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_backend.json",
                        help="perf-trajectory JSON output path")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if fast loses at a gated shape")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="required fast/reference ratio at gated shapes")


def run_cli(args: argparse.Namespace) -> int:
    """Run the shapes per parsed args; returns the process exit code."""
    shapes = default_shapes(quick=args.quick)
    print(
        f"backend-bench: {len(shapes)} shapes "
        f"({'quick' if args.quick else 'full'} sweep), "
        f"best-of-{args.repeats} timings"
    )
    records = run_shapes(shapes, repeats=args.repeats, seed=args.seed)
    out = write_bench_json(records, args.out, quick=args.quick)
    print(f"wrote {out}")
    failures = check_speedups(records, min_speedup=args.min_speedup)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if args.check and failures:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``benchmarks/bench_backend.py``)."""
    parser = argparse.ArgumentParser(
        description="reference vs fast/threaded compute backend microbenchmark"
    )
    add_arguments(parser)
    return run_cli(parser.parse_args(argv))
