"""DROPOUT — uniform node sampling from the current layer (§5.1).

Srivastava et al.'s dropout viewed the way the paper frames it (Figure 2):
per training step, each hidden layer keeps a uniformly random subset of its
nodes — a subset of the *columns* of W — and both the feedforward products
and backpropagation touch only those columns.  The keep probability is the
paper's p = 0.05, chosen to match the ≈5 % active sets of ALSH-approx
(§8.4), which is exactly why plain dropout fares so badly in Table 2: at
p = 0.05 the kept subset is tiny *and chosen blind to the data*.

Inference uses the classic weight-scaling rule: hidden activations are
multiplied by p so their expected value matches training.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn.losses import NLLLoss
from ..nn.network import MLP
from ..obs import Recorder
from ..obs.counters import SAMPLER_COLS_KEPT, SAMPLER_COLS_POOL
from .base import Trainer

__all__ = ["DropoutTrainer"]


class DropoutTrainer(Trainer):
    """Dropout with computation restricted to the kept columns.

    One mask per hidden layer is drawn per *batch* (a shared mask is what
    lets the kept columns be sliced out of the GEMM; with the paper's
    stochastic setting, batch size 1, this is the per-sample mask of the
    original algorithm).

    Parameters
    ----------
    keep_prob:
        Probability a node stays active (paper: 0.05).
    min_active:
        Lower bound on the kept-set size, so a layer never goes dark.
    """

    name = "dropout"

    def __init__(
        self,
        network: MLP,
        lr: float = 1e-3,
        optimizer="sgd",
        keep_prob: float = 0.05,
        min_active: int = 1,
        seed: Optional[int] = None,
        recorder: Optional[Recorder] = None,
        compute_backend=None,
    ):
        super().__init__(
            network,
            lr=lr,
            optimizer=optimizer,
            seed=seed,
            recorder=recorder,
            compute_backend=compute_backend,
        )
        if not 0.0 < keep_prob <= 1.0:
            raise ValueError(f"keep_prob must be in (0, 1], got {keep_prob}")
        if min_active < 1:
            raise ValueError(f"min_active must be at least 1, got {min_active}")
        self.keep_prob = float(keep_prob)
        self.min_active = int(min_active)

    # ------------------------------------------------------------------
    def _sample_active(self, n_nodes: int) -> np.ndarray:
        """Uniformly random kept set for one hidden layer."""
        keep = np.nonzero(self.rng.random(n_nodes) < self.keep_prob)[0]
        if keep.size < self.min_active:
            extra = self.rng.choice(n_nodes, size=self.min_active, replace=False)
            keep = np.union1d(keep, extra)
        return keep

    def train_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        layers = self.net.layers
        n_hidden = len(layers) - 1
        act = self.net.hidden_activation

        with self._time_forward():
            active_sets: List[np.ndarray] = []
            activations = [x]
            zs_full: List[np.ndarray] = []
            a = x
            for i in range(n_hidden):
                layer = layers[i]
                cols = self._sample_active(layer.n_out)
                active_sets.append(cols)
                z_cols = layer.forward_columns(a, cols)
                z_full = np.zeros((a.shape[0], layer.n_out))
                z_full[:, cols] = z_cols
                zs_full.append(z_full)
                a_full = np.zeros_like(z_full)
                a_full[:, cols] = act.forward(z_cols)
                activations.append(a_full)
                a = a_full
            logits = layers[-1].forward(a)
            loss = self.loss_fn.value(
                self.net.output_activation.forward(logits), y
            )

        with self._time_backward():
            delta = NLLLoss.fused_logit_gradient(logits, y)
            # Output layer: dense update (its columns are never sampled).
            # Backpropagate through the pre-update weights first.
            da = layers[-1].backprop_delta(delta)
            g_w, g_b = layers[-1].weight_gradients(activations[-1], delta)
            self._update(("W", n_hidden), layers[-1].W, g_w)
            self._update(("b", n_hidden), layers[-1].b, g_b)
            # Hidden layers: column-sparse gradients over the kept sets.
            for i in range(n_hidden - 1, -1, -1):
                layer = layers[i]
                cols = active_sets[i]
                delta_cols = da[:, cols] * act.derivative(zs_full[i][:, cols])
                g_w_cols, g_b_cols = layer.weight_gradients_columns(
                    activations[i], delta_cols, cols
                )
                if i > 0:
                    da = layer.backprop_delta_columns(delta_cols, cols)
                self._update(("W", i), layer.W, g_w_cols, index=cols)
                self._update(("b", i), layer.b, g_b_cols, index=cols)
        if self.obs.enabled:
            self._record_step_flops(
                x.shape[0],
                [cols.size for cols in active_sets] + [layers[-1].n_out],
            )
            for i in range(n_hidden):
                self.obs.add(SAMPLER_COLS_KEPT, int(active_sets[i].size))
                self.obs.add(SAMPLER_COLS_POOL, int(layers[i].n_out))
        return loss

    # ------------------------------------------------------------------
    def probe_approx_forward(self, x, rng):
        """Training-style masked forward drawn from the probe RNG.

        Mirrors one :meth:`train_batch` forward (shared mask per hidden
        layer, no inference-time rescaling) but samples the kept sets
        from the caller's ``rng`` so probing never advances the
        trainer's own mask stream.
        """
        a = np.atleast_2d(np.asarray(x, dtype=float))
        layers = self.net.layers
        act = self.net.hidden_activation
        outs = []
        for i in range(len(layers) - 1):
            layer = layers[i]
            keep = np.nonzero(rng.random(layer.n_out) < self.keep_prob)[0]
            if keep.size < self.min_active:
                extra = rng.choice(
                    layer.n_out, size=self.min_active, replace=False
                )
                keep = np.union1d(keep, extra)
            z_cols = layer.forward_columns(a, keep)
            a_full = np.zeros((a.shape[0], layer.n_out))
            a_full[:, keep] = act.forward(z_cols)
            outs.append(a_full)
            a = a_full
        outs.append(layers[-1].forward(a))
        return outs

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Exact forward with hidden activations scaled by keep_prob."""
        a = np.atleast_2d(np.asarray(x, dtype=float))
        layers = self.net.layers
        for i in range(len(layers) - 1):
            a = self.net.hidden_activation.forward(layers[i].forward(a))
            a = a * self.keep_prob
        logits = layers[-1].forward(a)
        return logits.argmax(axis=1)
