"""Common trainer machinery shared by all five training methods (§8.3).

Every method — STANDARD, DROPOUT, ADAPTIVE-DROPOUT, ALSH-APPROX and
MC-APPROX — subclasses :class:`Trainer` and implements ``train_batch``.
The base class owns the epoch loop, loss-head plumbing, per-phase timing
(the paper's Tables 3–4 report per-epoch wall time, and §10.1 compares
feedforward vs backpropagation cost), validation tracking and the history
object the benches consume.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..backend import (
    ComputeBackend,
    InstrumentedBackend,
    active_backend,
    resolve_backend,
    use_backend,
)
from ..data.loader import BatchLoader
from ..nn.checkpoint import (
    TrainerCheckpoint,
    checkpoint_path,
    load_checkpoint,
    save_checkpoint,
)
from ..nn.losses import NLLLoss
from ..nn.metrics import accuracy
from ..nn.network import MLP
from ..nn.optim import Optimizer, get_optimizer
from ..obs import NULL_RECORDER, Recorder
from ..obs.counters import (
    BACKEND_USED_PREFIX,
    FLOPS_ACTUAL,
    FLOPS_DENSE,
    MEM_GATHER_BYTES,
    MEM_SCATTER_BYTES,
    OPT_DENSE_UPDATES,
    OPT_LAZY_UPDATE_COLS,
    OPT_LAZY_UPDATE_HITS,
    TRAIN_BATCHES,
    TRAIN_EPOCHS,
    TRAIN_SAMPLES,
    gemm_flops,
)
from ..obs.probes import ProbeManager
from ..obs.timeseries import (
    SERIES_EPOCH_LOSS,
    SERIES_EPOCH_TIME,
    SERIES_VAL_ACCURACY,
)

__all__ = ["EpochStats", "History", "Trainer"]


@dataclass
class EpochStats:
    """Bookkeeping for one training epoch."""

    epoch: int
    loss: float
    time: float
    forward_time: float
    backward_time: float
    val_accuracy: Optional[float] = None


@dataclass
class History:
    """Per-epoch training record returned by :meth:`Trainer.fit`."""

    method: str
    epochs: List[EpochStats] = field(default_factory=list)

    def losses(self) -> np.ndarray:
        """Mean training loss per epoch."""
        return np.array([e.loss for e in self.epochs])

    def epoch_times(self) -> np.ndarray:
        """Wall-clock seconds per epoch."""
        return np.array([e.time for e in self.epochs])

    def forward_times(self) -> np.ndarray:
        """Seconds spent in the feedforward phase per epoch."""
        return np.array([e.forward_time for e in self.epochs])

    def backward_times(self) -> np.ndarray:
        """Seconds spent in backpropagation (incl. updates) per epoch."""
        return np.array([e.backward_time for e in self.epochs])

    def val_accuracies(self) -> np.ndarray:
        """Validation accuracy per epoch (NaN where not evaluated)."""
        return np.array(
            [np.nan if e.val_accuracy is None else e.val_accuracy for e in self.epochs]
        )

    @property
    def total_time(self) -> float:
        """Total training wall time across epochs."""
        return float(sum(e.time for e in self.epochs))

    def to_dict(self) -> dict:
        """JSON-safe form (checkpoint support; floats round-trip exactly)."""
        return {
            "method": self.method,
            "epochs": [asdict(e) for e in self.epochs],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "History":
        """Rebuild a history captured by :meth:`to_dict`."""
        return cls(
            method=payload["method"],
            epochs=[EpochStats(**e) for e in payload["epochs"]],
        )


class Trainer:
    """Base class: owns the network, optimiser, loss head and epoch loop.

    Subclasses implement :meth:`train_batch`, timing their own phases via
    :meth:`_time_forward` / :meth:`_time_backward` context helpers (simple
    accumulators — NumPy releases the GIL rarely enough here that
    ``perf_counter`` deltas are honest).

    Parameters
    ----------
    network:
        The :class:`~repro.nn.network.MLP` to train (modified in place).
    lr:
        Learning rate (paper: 1e-3, or 1e-4 for MC-approx stochastic).
    optimizer:
        Name or instance (paper: SGD for most methods, Adam for ALSH).
    seed:
        Seed for the trainer's own sampling randomness.
    recorder:
        Observability sink (:mod:`repro.obs`).  Defaults to the shared
        :data:`~repro.obs.NULL_RECORDER`, under which every
        instrumentation site is a no-op and training is bitwise
        identical to the uninstrumented code (enforced by
        ``tests/obs/test_noop.py``).
    compute_backend:
        Per-trainer compute-backend override — a registered name
        (``"reference"``, ``"fast"``, ``"threaded"``) or a
        :class:`~repro.backend.ComputeBackend` instance.  ``None``
        (default) dispatches to the process-wide active backend at call
        time.  With a live recorder the backend is pinned at
        construction and wrapped in an
        :class:`~repro.backend.InstrumentedBackend`, so traced runs
        attribute wall-clock and FLOPs to individual kernels.
    """

    name = "base"

    def __init__(
        self,
        network: MLP,
        lr: float = 1e-3,
        optimizer="sgd",
        seed: Optional[int] = None,
        recorder: Optional[Recorder] = None,
        compute_backend: Union[str, ComputeBackend, None] = None,
    ):
        self.net = network
        self.optimizer: Optimizer = get_optimizer(optimizer, lr)
        self.loss_fn = NLLLoss()
        self.rng = np.random.default_rng(seed)
        self.obs: Recorder = recorder if recorder is not None else NULL_RECORDER
        backend = resolve_backend(compute_backend)
        if self.obs.enabled:
            # Pin the backend at construction so per-kernel timings and
            # FLOP counters land in this trainer's recorder.
            backend = InstrumentedBackend(
                backend if backend is not None else active_backend(), self.obs
            )
        self.compute_backend = backend
        self._probes: Optional[ProbeManager] = None
        self._t_fwd = 0.0
        self._t_bwd = 0.0

    # ------------------------------------------------------------------
    # compute-backend dispatch
    # ------------------------------------------------------------------
    def _backend(self):
        """The backend this trainer's kernel calls should use."""
        if self.compute_backend is not None:
            return self.compute_backend
        return active_backend()

    def _backend_scope(self):
        """Context manager activating this trainer's backend (if any).

        Wrapped around :meth:`fit` and :meth:`predict` so layer-level
        products (which dispatch via
        :func:`repro.backend.active_backend`) see the per-trainer
        override; a no-op when no override is configured.
        """
        if self.compute_backend is None:
            return nullcontext()
        return use_backend(self.compute_backend)

    # ------------------------------------------------------------------
    # quality probes (read-only; see repro.obs.probes)
    # ------------------------------------------------------------------
    def attach_probes(self, manager: ProbeManager) -> None:
        """Attach a probe manager; :meth:`fit` calls it after each batch.

        Probes are strictly read-only: they use the manager's private
        RNG stream, never the trainer's, so training with probes
        attached stays bitwise identical to an unprobed run
        (``tests/obs/test_noop.py``).  With the null recorder the
        per-batch hook is a single counter increment.
        """
        self._probes = manager

    def probe_exact_forward(self, x: np.ndarray) -> List[np.ndarray]:
        """Per-layer outputs of the *exact* forward pass (read-only).

        Returns ``[a^1, …, a^{L-1}, z^L]`` — hidden activations for
        every hidden layer and raw logits for the output layer (probes
        compare pre-log-softmax values so an all-zero approximate layer
        cannot produce infinities).
        """
        a = np.atleast_2d(np.asarray(x, dtype=float))
        layers = self.net.layers
        act = self.net.hidden_activation
        outs: List[np.ndarray] = []
        for i, layer in enumerate(layers):
            z = layer.forward(a)
            if i < len(layers) - 1:
                a = act.forward(z)
                outs.append(a)
            else:
                outs.append(z)
        return outs

    def probe_approx_forward(
        self, x: np.ndarray, rng: np.random.Generator
    ) -> List[np.ndarray]:
        """Per-layer outputs under this method's *approximate* forward.

        Layout matches :meth:`probe_exact_forward`.  All sampling draws
        from the caller-supplied ``rng`` (the probe stream) and no
        trainer state is mutated.  The base implementation is exact;
        sampling trainers override it.
        """
        return self.probe_exact_forward(x)

    # ------------------------------------------------------------------
    # phase timing helpers
    # ------------------------------------------------------------------
    class _PhaseTimer:
        __slots__ = ("_trainer", "_attr", "_phase", "_start")

        def __init__(self, trainer: "Trainer", attr: str, phase: str):
            self._trainer = trainer
            self._attr = attr
            self._phase = phase

        def __enter__(self):
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc):
            elapsed = time.perf_counter() - self._start
            setattr(
                self._trainer,
                self._attr,
                getattr(self._trainer, self._attr) + elapsed,
            )
            self._trainer.obs.add_time(self._phase, elapsed)
            return False

    def _time_forward(self) -> "_PhaseTimer":
        """Context manager accumulating into the forward-phase clock."""
        return Trainer._PhaseTimer(self, "_t_fwd", "phase.forward")

    def _time_backward(self) -> "_PhaseTimer":
        """Context manager accumulating into the backward-phase clock."""
        return Trainer._PhaseTimer(self, "_t_bwd", "phase.backward")

    # ------------------------------------------------------------------
    # optimiser dispatch (counts dense vs lazy sparse-column updates)
    # ------------------------------------------------------------------
    def _update(self, key, param, grad, index=None) -> None:
        """Apply an optimiser step, recording dense vs lazy-column hits."""
        if index is None:
            self.obs.add(OPT_DENSE_UPDATES)
        else:
            self.obs.add(OPT_LAZY_UPDATE_HITS)
            if self.obs.enabled:
                self.obs.add(OPT_LAZY_UPDATE_COLS, int(np.size(index)))
        self.optimizer.update(key, param, grad, index=index)

    # ------------------------------------------------------------------
    # measured-FLOP accounting
    # ------------------------------------------------------------------
    def _record_step_flops(self, batch: int, kept: List[int]) -> None:
        """Record dense-equivalent vs actual GEMM FLOPs for one step.

        ``kept[i]`` is the number of output columns layer ``i`` actually
        computed (its full ``n_out`` for unsampled layers).  Per layer the
        step costs a forward product, a weight-gradient product and — for
        every layer but the first — a delta-propagation product; each
        scales linearly in the kept-column count.  GEMM work only, by the
        conventions of :mod:`repro.obs.counters`.
        """
        if not self.obs.enabled:
            return
        dense = actual = gather = scatter = 0
        for i, layer in enumerate(self.net.layers):
            k = int(kept[i])
            dense += gemm_flops(batch, layer.n_in, layer.n_out)  # forward
            actual += gemm_flops(batch, layer.n_in, k)
            dense += gemm_flops(layer.n_in, batch, layer.n_out)  # gW
            actual += gemm_flops(layer.n_in, batch, k)
            if i > 0:  # delta propagation
                dense += gemm_flops(batch, layer.n_out, layer.n_in)
                actual += gemm_flops(batch, k, layer.n_in)
            if k < layer.n_out:
                # Subset-kernel memory traffic (8-byte elements): the
                # active column block W[:, cols] is gathered for the
                # forward product and again for delta propagation, and
                # the sparse update scatters the same block back.  This
                # traffic is what flops.actual cannot see — the
                # FLOP-vs-wallclock gap trace-report surfaces.
                block = 8 * layer.n_in * k
                gather += 2 * block
                scatter += block
        self.obs.add(FLOPS_DENSE, dense)
        self.obs.add(FLOPS_ACTUAL, actual)
        if gather:
            self.obs.add(MEM_GATHER_BYTES, gather)
        if scatter:
            self.obs.add(MEM_SCATTER_BYTES, scatter)

    # ------------------------------------------------------------------
    # checkpoint capture / restore
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        """Method-specific auxiliary state as ``(meta, arrays)``.

        Subclasses with mutable state beyond the network, optimiser and
        rng (ALSH hash tables, rebuild counters, …) override this
        together with :meth:`restore_checkpoint_state`.  ``meta`` must be
        JSON-safe; ``arrays`` maps names to ndarrays.
        """
        return {}, {}

    def restore_checkpoint_state(
        self, meta: dict, arrays: Dict[str, np.ndarray]
    ) -> None:
        """Restore the state captured by :meth:`checkpoint_state`."""

    def _capture_checkpoint(
        self,
        loader: BatchLoader,
        history: History,
        epoch: int,
        best_val: float,
        epochs_since_best: int,
        stopped_early: bool,
    ) -> TrainerCheckpoint:
        """Everything :meth:`fit` needs to continue bitwise-identically."""
        arrays: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.net.layers):
            arrays[f"net.W{i}"] = layer.W
            arrays[f"net.b{i}"] = layer.b
        opt_meta, opt_arrays = self.optimizer.state_dict()
        arrays.update(opt_arrays)
        aux_meta, aux_arrays = self.checkpoint_state()
        for name, arr in aux_arrays.items():
            arrays[f"aux.{name}"] = arr
        payload = {
            "optimizer": opt_meta,
            "rng_state": self.rng.bit_generator.state,
            "loader_rng_state": loader.rng.bit_generator.state,
            "early_stopping": {
                "best_val": float(best_val),
                "epochs_since_best": int(epochs_since_best),
            },
            "history": history.to_dict(),
            "aux": aux_meta,
        }
        # Observability carry: recorded series and the probe manager's
        # mutable state ride along so a killed-and-resumed run (same
        # recorder/probe configuration) reproduces the identical series.
        obs_payload: dict = {}
        if self.obs.enabled and hasattr(self.obs, "series_snapshot"):
            obs_payload["series"] = self.obs.series_snapshot()
        if self._probes is not None:
            obs_payload["probes"] = self._probes.state_dict()
        if obs_payload:
            payload["obs"] = obs_payload
        return TrainerCheckpoint(
            method=self.name,
            epoch=epoch,
            stopped_early=stopped_early,
            payload=payload,
            arrays=arrays,
        )

    def _restore_checkpoint(
        self, ckpt: TrainerCheckpoint, loader: BatchLoader, history: History
    ) -> Tuple[int, float, int]:
        """Apply a checkpoint; returns (start_epoch, best_val, since_best).

        The trainer must have been constructed identically to the one
        that wrote the checkpoint (same config and seed) — everything the
        constructor derives deterministically (hash hyperplanes, standout
        parameters, …) is reproduced from the seed, while everything
        mutated by training is restored here.
        """
        if ckpt.method != self.name:
            raise ValueError(
                f"checkpoint holds {ckpt.method!r} trainer state, "
                f"this trainer is {self.name!r}"
            )
        for i, layer in enumerate(self.net.layers):
            try:
                w = ckpt.arrays[f"net.W{i}"]
                b = ckpt.arrays[f"net.b{i}"]
            except KeyError:
                raise ValueError(
                    f"checkpoint is missing arrays for layer {i}"
                ) from None
            if w.shape != layer.W.shape or b.shape != layer.b.shape:
                raise ValueError(
                    f"layer {i} shape mismatch: checkpoint {w.shape} vs "
                    f"network {layer.W.shape}"
                )
            layer.W = w.copy()
            layer.b = b.copy()
        payload = ckpt.payload
        self.optimizer.load_state_dict(payload["optimizer"], ckpt.arrays)
        self.rng.bit_generator.state = payload["rng_state"]
        loader.rng.bit_generator.state = payload["loader_rng_state"]
        restored = History.from_dict(payload["history"])
        history.epochs[:] = restored.epochs
        prefix = "aux."
        aux_arrays = {
            name[len(prefix):]: arr
            for name, arr in ckpt.arrays.items()
            if name.startswith(prefix)
        }
        self.restore_checkpoint_state(payload.get("aux", {}), aux_arrays)
        obs_payload = payload.get("obs", {})
        if (
            self.obs.enabled
            and hasattr(self.obs, "load_series")
            and "series" in obs_payload
        ):
            self.obs.load_series(obs_payload["series"])
        if self._probes is not None and "probes" in obs_payload:
            self._probes.load_state_dict(obs_payload["probes"])
        es = payload["early_stopping"]
        return int(ckpt.epoch), float(es["best_val"]), int(es["epochs_since_best"])

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        """One optimisation step on a batch; returns the batch loss."""
        raise NotImplementedError

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        epochs: int = 1,
        batch_size: int = 20,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
        shuffle: bool = True,
        verbose: bool = False,
        lr_schedule=None,
        early_stopping_patience: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_tag: Optional[str] = None,
        resume: bool = True,
    ) -> History:
        """Run the full training loop and return the epoch history.

        ``lr_schedule`` is an optional callable ``epoch -> learning rate``
        (see :mod:`repro.nn.schedules`); when given, it overrides the
        optimiser's rate at the start of every epoch.

        ``early_stopping_patience`` stops training once validation accuracy
        has not improved for that many consecutive epochs (requires a
        validation split) — the standard guard against the §9.3 small-batch
        overfitting regime.

        ``checkpoint_dir`` enables crash-safe training: every
        ``checkpoint_every`` epochs (default 1) the complete trainer state
        is written atomically to ``checkpoint_dir/<tag>.ckpt.npz`` (tag
        defaults to the method name).  When ``resume`` is true and that
        file already exists, training continues from it — and is bitwise
        identical to an uninterrupted run with the same seed.  The caller
        must reconstruct the trainer with the same configuration and seed;
        a checkpoint from a different method or architecture raises
        ``ValueError``.
        """
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        if checkpoint_every is not None and checkpoint_dir is None:
            raise ValueError(
                "checkpoint_every requires checkpoint_dir"
            )
        ckpt_file: Optional[Path] = None
        if checkpoint_dir is not None:
            if checkpoint_every is None:
                checkpoint_every = 1
            if checkpoint_every <= 0:
                raise ValueError(
                    f"checkpoint_every must be positive, got {checkpoint_every}"
                )
            ckpt_file = checkpoint_path(
                checkpoint_dir, checkpoint_tag or self.name
            )
            ckpt_file.parent.mkdir(parents=True, exist_ok=True)
        if early_stopping_patience is not None:
            if early_stopping_patience <= 0:
                raise ValueError(
                    f"early_stopping_patience must be positive, "
                    f"got {early_stopping_patience}"
                )
            if x_val is None or y_val is None or not len(y_val):
                raise ValueError(
                    "early stopping requires a validation split"
                )
        loader = BatchLoader(
            x_train,
            y_train,
            batch_size=batch_size,
            shuffle=shuffle,
            seed=int(self.rng.integers(2**31)),
        )
        history = History(method=self.name)
        best_val = -np.inf
        epochs_since_best = 0
        start_epoch = 0
        if ckpt_file is not None and resume and ckpt_file.exists():
            ckpt = load_checkpoint(ckpt_file)
            done, best_val, epochs_since_best = self._restore_checkpoint(
                ckpt, loader, history
            )
            start_epoch = done + 1
            if verbose:
                print(
                    f"[{self.name}] resuming from {ckpt_file} "
                    f"(epoch {start_epoch})"
                )
            if ckpt.stopped_early or start_epoch >= epochs:
                return history
        if self.obs.enabled:
            self.obs.add(BACKEND_USED_PREFIX + self._backend().name)
        with self._backend_scope(), self.obs.span("fit"):
            for epoch in range(start_epoch, epochs):
                if lr_schedule is not None:
                    self.optimizer.lr = float(lr_schedule(epoch))
                self._t_fwd = 0.0
                self._t_bwd = 0.0
                start = time.perf_counter()
                losses = []
                with self.obs.span("epoch"):
                    if self._probes is None:
                        for xb, yb in loader:
                            losses.append(self.train_batch(xb, yb))
                    else:
                        for xb, yb in loader:
                            losses.append(self.train_batch(xb, yb))
                            self._probes.on_batch(self, xb, yb)
                elapsed = time.perf_counter() - start
                self.obs.add(TRAIN_EPOCHS)
                if self.obs.enabled:
                    self.obs.add(TRAIN_BATCHES, len(losses))
                    self.obs.add(TRAIN_SAMPLES, int(len(y_train)))
                val_acc = None
                if x_val is not None and y_val is not None and len(y_val):
                    with self.obs.span("validate"):
                        val_acc = self.evaluate(x_val, y_val)
                stats = EpochStats(
                    epoch=epoch,
                    loss=float(np.mean(losses)),
                    time=elapsed,
                    forward_time=self._t_fwd,
                    backward_time=self._t_bwd,
                    val_accuracy=val_acc,
                )
                history.epochs.append(stats)
                if self.obs.enabled:
                    self.obs.series(SERIES_EPOCH_LOSS, epoch, stats.loss)
                    self.obs.series(SERIES_EPOCH_TIME, epoch, elapsed)
                    if val_acc is not None:
                        self.obs.series(SERIES_VAL_ACCURACY, epoch, val_acc)
                if verbose:
                    acc_str = (
                        "" if val_acc is None else f", val_acc={val_acc:.4f}"
                    )
                    print(
                        f"[{self.name}] epoch {epoch}: loss={stats.loss:.4f}, "
                        f"time={elapsed:.3f}s{acc_str}"
                    )
                stop = False
                if early_stopping_patience is not None:
                    if val_acc is not None and val_acc > best_val:
                        best_val = val_acc
                        epochs_since_best = 0
                    else:
                        epochs_since_best += 1
                        if epochs_since_best >= early_stopping_patience:
                            stop = True
                if ckpt_file is not None and (
                    stop
                    or epoch + 1 == epochs
                    or (epoch + 1) % checkpoint_every == 0
                ):
                    save_checkpoint(
                        self._capture_checkpoint(
                            loader,
                            history,
                            epoch,
                            best_val,
                            epochs_since_best,
                            stopped_early=stop,
                        ),
                        ckpt_file,
                    )
                if stop:
                    break
        return history

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions under this method's inference mode.

        The default is the exact forward pass; methods whose *inference*
        also samples (ALSH-approx) override this.
        """
        with self._backend_scope():
            return self.net.predict(x)

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Accuracy of :meth:`predict` on the given split."""
        return accuracy(y, self.predict(x))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(net={self.net!r})"
