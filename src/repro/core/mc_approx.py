"""MC-APPROX — Monte-Carlo approximation of backprop products (§6.2,
Adelman et al. [1]).

The feedforward pass stays exact (the paper's §10.1: feed-forward
approximation failed in the original authors' experiments, so MC-approx
"only adds approximation during backpropagation").  During backpropagation
two families of products are estimated with the unbiased Bernoulli
column–row sampler of :mod:`repro.approx.bernoulli` (Eq. 7 probabilities):

* **delta propagation** ``da^{k-1} = δ^k (W^k)^T`` — the inner dimension is
  the current layer's node count; sampling it is "sampling from the
  previous layer" in the paper's taxonomy.  Importance scores combine the
  per-node gradient magnitude over the batch, ‖δ·i‖, with the node's weight
  column norm ‖W·i‖.
* **weight gradients** ``∇W^k = (a^{k-1})^T δ^k`` — the inner dimension is
  the *batch*.  This is why the method lives and dies by batch size
  (§9.3): with batch size 1 the "distribution" is a single point, the
  probability machinery is pure overhead, and MC-approxS ends up slower
  than STANDARD (Table 3).

``approximate_forward=True`` additionally estimates the feedforward
products — the §10.1 ablation that demonstrates why nobody ships that
variant.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..approx.bernoulli import (
    bernoulli_multiply,
    bernoulli_probabilities,
    bernoulli_sample,
)
from ..nn.losses import NLLLoss
from ..nn.network import MLP
from ..obs import Recorder
from ..obs.counters import (
    FLOPS_ACTUAL,
    FLOPS_DENSE,
    MEM_GATHER_BYTES,
    SAMPLER_ROWS_KEPT,
    SAMPLER_ROWS_POOL,
    gemm_flops,
)
from .base import Trainer

__all__ = ["MCApproxTrainer"]


class MCApproxTrainer(Trainer):
    """MC-approx training with Bernoulli-sampled backprop products.

    Parameters
    ----------
    k:
        Sample budget for the batch-dimension products (paper: k = 10 with
        batch size 20); clipped to the actual batch size.
    node_frac:
        Fraction of the inner node dimension kept when estimating delta
        propagation (paper reports a sampling ratio around 0.1).
    min_node_samples:
        Floor on the kept-node count.  The paper's setting keeps
        0.1 × 1000 = 100 nodes per layer; on narrower networks a bare
        fraction would keep so few nodes that the 1/p-scaled estimates
        destabilise SGD.  The floor preserves the paper's *absolute*
        sample count regime (it is inactive at paper widths).
    approximate_forward:
        Also approximate the feedforward products — the negative-result
        ablation of §10.1.  Off by default, like the published method.
    """

    name = "mc"

    def __init__(
        self,
        network: MLP,
        lr: float = 1e-3,
        optimizer="sgd",
        k: int = 10,
        node_frac: float = 0.1,
        min_node_samples: int = 32,
        approximate_forward: bool = False,
        seed: Optional[int] = None,
        recorder: Optional[Recorder] = None,
        compute_backend=None,
    ):
        super().__init__(
            network,
            lr=lr,
            optimizer=optimizer,
            seed=seed,
            recorder=recorder,
            compute_backend=compute_backend,
        )
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if not 0.0 < node_frac <= 1.0:
            raise ValueError(f"node_frac must be in (0, 1], got {node_frac}")
        if min_node_samples < 1:
            raise ValueError(
                f"min_node_samples must be at least 1, got {min_node_samples}"
            )
        self.k = int(k)
        self.node_frac = float(node_frac)
        self.min_node_samples = int(min_node_samples)
        self.approximate_forward = bool(approximate_forward)

    # ------------------------------------------------------------------
    # sampled products
    # ------------------------------------------------------------------
    def _sampled_matmul(self, a: np.ndarray, b: np.ndarray, budget: int) -> np.ndarray:
        """Unbiased Bernoulli estimate of ``a @ b`` with ~budget samples.

        Always runs the probability machinery (the pass over the operands
        that §9.3 identifies as MC-approx's fixed overhead), even when the
        budget covers the whole inner dimension.
        """
        inner = a.shape[1]
        budget = min(max(budget, 1), inner)
        probs = bernoulli_probabilities(a, b, budget)
        idx, scales = bernoulli_sample(probs, self.rng)
        if self.obs.enabled:
            self.obs.add(SAMPLER_ROWS_KEPT, int(idx.size))
            self.obs.add(SAMPLER_ROWS_POOL, int(inner))
            self.obs.add(FLOPS_DENSE, gemm_flops(a.shape[0], inner, b.shape[1]))
            self.obs.add(FLOPS_ACTUAL, gemm_flops(a.shape[0], idx.size, b.shape[1]))
            # The estimator gathers a (m, keep) slice of ``a`` and a
            # (keep, n) row block of ``b`` — byte traffic flops.actual
            # cannot see (8-byte elements).
            self.obs.add(
                MEM_GATHER_BYTES,
                8 * int(idx.size) * (int(a.shape[0]) + int(b.shape[1])),
            )
        if idx.size == 0:
            return np.zeros((a.shape[0], b.shape[1]))
        return self._backend().sampled_matmul(a, b, idx, scales)

    def _node_budget(self, inner: int) -> int:
        budget = max(self.min_node_samples, int(round(self.node_frac * inner)))
        return min(inner, budget)

    def probe_approx_forward(self, x, rng):
        """Forward under this configuration's approximation, read-only.

        The published method keeps the feedforward pass exact (§10.1),
        so by default this equals the exact forward and the probe
        measures zero drift — the MC estimator probe covers the
        backward-product quality instead.  With
        ``approximate_forward=True`` the hidden products are
        Bernoulli-sampled from the caller's ``rng`` (never
        ``self.rng``), with no counters recorded.
        """
        if not self.approximate_forward:
            return self.probe_exact_forward(x)
        a = np.atleast_2d(np.asarray(x, dtype=float))
        layers = self.net.layers
        act = self.net.hidden_activation
        outs = []
        for i, layer in enumerate(layers):
            if i < len(layers) - 1:
                z = bernoulli_multiply(
                    a, layer.W, self._node_budget(layer.n_in), rng
                ) + layer.b
                a = act.forward(z)
                outs.append(a)
            else:
                outs.append(layer.forward(a))
        return outs

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        layers = self.net.layers
        n_layers = len(layers)
        act = self.net.hidden_activation

        with self._time_forward():
            activations = [x]
            zs = []
            a = x
            for i in range(n_layers):
                layer = layers[i]
                if self.approximate_forward and i < n_layers - 1:
                    z = self._sampled_matmul(
                        a, layer.W, self._node_budget(layer.n_in)
                    ) + layer.b
                else:
                    z = layer.forward(a)
                zs.append(z)
                if i < n_layers - 1:
                    a = act.forward(z)
                    activations.append(a)
            logits = zs[-1]
            loss = self.loss_fn.value(
                self.net.output_activation.forward(logits), y
            )

        batch = x.shape[0]
        with self._time_backward():
            delta = NLLLoss.fused_logit_gradient(logits, y)
            for i in range(n_layers - 1, -1, -1):
                layer = layers[i]
                a_prev = activations[i]
                # Weight gradient: inner dimension is the batch (§9.3).
                g_w = self._sampled_matmul(a_prev.T, delta, min(self.k, batch))
                g_b = delta.sum(axis=0)
                if i > 0:
                    # Delta propagation: inner dimension is this layer's
                    # node count — "sampling from the previous layer".
                    da = self._sampled_matmul(
                        delta, layer.W.T, self._node_budget(layer.n_out)
                    )
                    delta = da * act.derivative(zs[i - 1])
                self._update(("W", i), layer.W, g_w)
                self._update(("b", i), layer.b, g_b)
        if self.obs.enabled:
            # Sampled products account for themselves inside
            # _sampled_matmul; only the exact forward GEMMs remain
            # (dense == actual — the feedforward pass is never skipped).
            for i, layer in enumerate(layers):
                if self.approximate_forward and i < n_layers - 1:
                    continue
                flops = gemm_flops(batch, layer.n_in, layer.n_out)
                self.obs.add(FLOPS_DENSE, flops)
                self.obs.add(FLOPS_ACTUAL, flops)
        return loss
