"""ALSH-APPROX — hashing-based active-node selection (§5.2, Spring &
Shrivastava [50]).

Each hidden layer owns L hash tables over (the ALSH transform of) its weight
*columns*.  For every input, the layer's incoming activation vector is
hashed and the union of the colliding buckets becomes the layer's *active
set*; exact inner products are computed only for those nodes and the
gradient flows back only through them (sparse column updates).  Hash tables
are refreshed on the paper's schedule — every 100 samples for the first
10 000, then every 1 000 — re-inserting only the columns whose weights
changed.

The output layer is always exact (all classes are candidates), matching the
reference implementation.

This is a faithfully *sequential* implementation: the paper's §9.2 notes
the reference system's speed comes from parallelising table maintenance
across cores, while accuracy is unaffected by parallelism — so accuracy
results here transfer, and the timing benches reproduce the paper's
single-CPU numbers where ALSH-approx is the slowest method.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..lsh.drift import ColumnDriftTracker
from ..lsh.mips import MIPSIndex
from ..lsh.rebuild import RebuildScheduler
from ..nn.activations import LogSoftmax
from ..nn.network import MLP
from ..obs import Recorder
from ..obs.counters import (
    LSH_ACTIVE_NODES,
    LSH_ACTIVE_POOL,
    LSH_REBUILDS,
    LSH_REHASHED_COLUMNS,
)
from .base import Trainer

__all__ = ["ALSHApproxTrainer"]


class ALSHApproxTrainer(Trainer):
    """ALSH-approx with per-layer MIPS indexes and sparse updates.

    Parameters
    ----------
    n_bits, n_tables, m, scale:
        LSH shape — paper defaults K = 6, L = 5, m = 3 (§8.4).
    min_active_frac, max_active_frac:
        Bounds on the active-set size as a fraction of layer width.  The
        lower bound keeps a layer from going dark when no bucket collides;
        the upper bound caps the work per step (the paper reports active
        sets around 5 % of nodes).
    optimizer:
        Paper uses Adam for ALSH-approx (§8.4).
    hash_family:
        "srp" (SimHash, the default) or "dwta" (densified winner-take-all,
        the SLIDE-style family — see :mod:`repro.lsh.dwta`).
    backend:
        LSH bucket storage — "flat" (default: vectorized CSR arrays with
        fused all-table hashing, see :mod:`repro.lsh.flat`) or "dict"
        (the pure-Python reference).  Both produce identical candidate
        sets — and therefore identical training trajectories — for
        identical seeds; "flat" makes table maintenance and candidate
        lookup (the reference system's §9.2 hot path) several times
        faster.
    rebuild:
        Hash-table refresh schedule; defaults to the paper's 100/1000
        policy with a 10 000-sample warm-up.
    drift_threshold:
        Optional extension beyond the paper: at refresh time, re-hash only
        the touched columns whose relative weight drift since their last
        re-hash exceeds this value (see :mod:`repro.lsh.drift`).  ``None``
        (default) reproduces the paper's re-hash-all-touched behaviour.
    batch_mode:
        "per_sample" (default): each sample selects and trains its own
        active sets — the algorithm as published, exact at any batch size.
        "union": one vectorised step per batch using the union of the
        samples' candidate sets per layer (the paper notes the reference
        system amortises table work over "a batch of inputs"; the union is
        the natural minibatch generalisation and is much faster in NumPy).
    """

    name = "alsh"

    def __init__(
        self,
        network: MLP,
        lr: float = 1e-3,
        optimizer="adam",
        n_bits: int = 6,
        n_tables: int = 5,
        m: int = 3,
        scale: float = 0.83,
        min_active_frac: float = 0.05,
        max_active_frac: float = 0.25,
        hash_family: str = "srp",
        backend: str = "flat",
        rebuild: Optional[RebuildScheduler] = None,
        drift_threshold: Optional[float] = None,
        batch_mode: str = "per_sample",
        seed: Optional[int] = None,
        recorder: Optional[Recorder] = None,
        compute_backend=None,
    ):
        super().__init__(
            network,
            lr=lr,
            optimizer=optimizer,
            seed=seed,
            recorder=recorder,
            compute_backend=compute_backend,
        )
        if not 0.0 < min_active_frac <= max_active_frac <= 1.0:
            raise ValueError(
                "need 0 < min_active_frac <= max_active_frac <= 1, got "
                f"{min_active_frac}, {max_active_frac}"
            )
        if batch_mode not in ("per_sample", "union"):
            raise ValueError(
                f"batch_mode must be 'per_sample' or 'union', got {batch_mode!r}"
            )
        self.min_active_frac = float(min_active_frac)
        self.max_active_frac = float(max_active_frac)
        self.batch_mode = batch_mode
        self.rebuild = rebuild if rebuild is not None else RebuildScheduler()

        self.n_hidden = len(network.layers) - 1
        self.indexes: List[MIPSIndex] = []
        for i in range(self.n_hidden):
            layer = network.layers[i]
            index = MIPSIndex(
                dim=layer.n_in,
                n_bits=n_bits,
                n_tables=n_tables,
                m=m,
                scale=scale,
                family=hash_family,
                seed=int(self.rng.integers(2**31)),
                backend=backend,
                recorder=self.obs,
            )
            index.build(layer.W.T)  # items are weight columns
            self.indexes.append(index)
        self._touched: List[Set[int]] = [set() for _ in range(self.n_hidden)]
        self._drift: Optional[List[ColumnDriftTracker]] = None
        if drift_threshold is not None:
            self._drift = [
                ColumnDriftTracker(network.layers[i].W, drift_threshold)
                for i in range(self.n_hidden)
            ]
        self.rehashed_columns = 0  # maintenance-work counter (diagnostics)
        # Diagnostics: running mean of |active| / n_out per layer.
        self._active_sum = np.zeros(self.n_hidden)
        self._active_count = 0

    # ------------------------------------------------------------------
    # active-set selection
    # ------------------------------------------------------------------
    def _bounds(self, n_out: int):
        lo = max(1, int(round(self.min_active_frac * n_out)))
        hi = max(lo, int(round(self.max_active_frac * n_out)))
        return lo, hi

    def _select_active(self, layer_idx: int, a_prev: np.ndarray) -> np.ndarray:
        """Query the layer's index and clamp the candidate set size."""
        layer = self.net.layers[layer_idx]
        candidates = self.indexes[layer_idx].query(a_prev)
        lo, hi = self._bounds(layer.n_out)
        if candidates.size > hi:
            candidates = self.rng.choice(candidates, size=hi, replace=False)
            candidates.sort()
        elif candidates.size < lo:
            pool = np.setdiff1d(
                np.arange(layer.n_out), candidates, assume_unique=False
            )
            extra = self.rng.choice(pool, size=lo - candidates.size, replace=False)
            candidates = np.union1d(candidates, extra)
        if self.obs.enabled:
            self.obs.add(LSH_ACTIVE_NODES, int(candidates.size))
            self.obs.add(LSH_ACTIVE_POOL, int(layer.n_out))
        return candidates

    def _probe_select_active(
        self, layer_idx: int, a_prev: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Read-only twin of :meth:`_select_active` for quality probes.

        Same query-and-clamp logic, but the clamping randomness comes
        from the caller's ``rng`` (the probe stream, never
        ``self.rng``), the lookup goes through the counters-off
        ``record=False`` path, and no diagnostics are updated — so a
        probe never perturbs training.
        """
        layer = self.net.layers[layer_idx]
        candidates = self.indexes[layer_idx].query(a_prev, record=False)
        lo, hi = self._bounds(layer.n_out)
        if candidates.size > hi:
            candidates = rng.choice(candidates, size=hi, replace=False)
            candidates.sort()
        elif candidates.size < lo:
            pool = np.setdiff1d(
                np.arange(layer.n_out), candidates, assume_unique=False
            )
            extra = rng.choice(pool, size=lo - candidates.size, replace=False)
            candidates = np.union1d(candidates, extra)
        return candidates

    def probe_approx_forward(self, x, rng):
        """Per-sample ALSH forward (training's selection rule), read-only.

        Layout matches :meth:`Trainer.probe_exact_forward`; unlike
        :meth:`predict` it mutates neither the active-fraction
        diagnostics nor the LSH work counters.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        layers = self.net.layers
        act = self.net.hidden_activation
        hidden = [
            np.zeros((x.shape[0], layers[i].n_out))
            for i in range(self.n_hidden)
        ]
        logits = np.zeros((x.shape[0], layers[-1].n_out))
        for s in range(x.shape[0]):
            a_prev = x[s]
            for i in range(self.n_hidden):
                cand = self._probe_select_active(i, a_prev, rng)
                z_c = a_prev @ layers[i].W[:, cand] + layers[i].b[cand]
                a_full = np.zeros(layers[i].n_out)
                a_full[cand] = act.forward(z_c)
                hidden[i][s] = a_full
                a_prev = a_full
            logits[s] = a_prev @ layers[-1].W + layers[-1].b
        return hidden + [logits]

    def average_active_fraction(self) -> np.ndarray:
        """Mean active fraction per hidden layer since construction."""
        if self._active_count == 0:
            return np.zeros(self.n_hidden)
        return self._active_sum / self._active_count

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        """One training step on a batch.

        In "per_sample" mode (default) each sample runs its own ALSH step
        — the algorithm as published.  In "union" mode the batch shares
        the union of its candidate sets per layer and trains in one
        vectorised pass.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y).reshape(-1)
        if self.batch_mode == "union" and x.shape[0] > 1:
            return self._train_union(x, y)
        total = 0.0
        for xi, yi in zip(x, y):
            total += self._train_one(xi, int(yi))
        return total / x.shape[0]

    def _select_active_union(
        self, layer_idx: int, a_prev: np.ndarray
    ) -> np.ndarray:
        """Union of per-sample candidate sets, clamped to the size caps."""
        layer = self.net.layers[layer_idx]
        per_sample = self.indexes[layer_idx].query_batch(a_prev)
        union: set = set()
        for cand in per_sample:
            union.update(cand.tolist())
        candidates = np.fromiter(sorted(union), dtype=np.int64, count=len(union))
        lo, hi = self._bounds(layer.n_out)
        if candidates.size > hi:
            candidates = self.rng.choice(candidates, size=hi, replace=False)
            candidates.sort()
        elif candidates.size < lo:
            pool = np.setdiff1d(np.arange(layer.n_out), candidates)
            extra = self.rng.choice(pool, size=lo - candidates.size, replace=False)
            candidates = np.union1d(candidates, extra)
        if self.obs.enabled:
            self.obs.add(LSH_ACTIVE_NODES, int(candidates.size))
            self.obs.add(LSH_ACTIVE_POOL, int(layer.n_out))
        return candidates

    def _train_union(self, x: np.ndarray, y: np.ndarray) -> float:
        layers = self.net.layers
        act = self.net.hidden_activation
        batch = x.shape[0]
        backend = self._backend()

        with self._time_forward():
            active_sets: List[np.ndarray] = []
            z_actives: List[np.ndarray] = []
            acts: List[np.ndarray] = [x]
            a_prev = x
            for i in range(self.n_hidden):
                cand = self._select_active_union(i, a_prev)
                active_sets.append(cand)
                self._active_sum[i] += cand.size / layers[i].n_out
                z_c = backend.matmul_cols(a_prev, layers[i].W, layers[i].b, cand)
                z_actives.append(z_c)
                a_full = np.zeros((batch, layers[i].n_out))
                a_full[:, cand] = act.forward(z_c)
                acts.append(a_full)
                a_prev = a_full
            self._active_count += 1
            logits = backend.matmul_add_bias(a_prev, layers[-1].W, layers[-1].b)
            logp = LogSoftmax().forward(logits)
            loss = float(-logp[np.arange(batch), y].mean())

        with self._time_backward():
            delta = np.exp(logp)
            delta[np.arange(batch), y] -= 1.0
            delta /= batch
            # Backpropagate through the pre-update output weights first.
            da = backend.matmul(delta, layers[-1].W.T)
            g_w = backend.grad_cols(acts[-1], delta)
            g_b = delta.sum(axis=0)
            self._update(("W", self.n_hidden), layers[-1].W, g_w)
            self._update(("b", self.n_hidden), layers[-1].b, g_b)
            for i in range(self.n_hidden - 1, -1, -1):
                cand = active_sets[i]
                delta_c = da[:, cand] * act.derivative(z_actives[i])
                g_w_cols = backend.grad_cols(acts[i], delta_c)
                g_b_cols = delta_c.sum(axis=0)
                if i > 0:
                    da = backend.backprop_cols(delta_c, layers[i].W, cand)
                self._update(("W", i), layers[i].W, g_w_cols, index=cand)
                self._update(("b", i), layers[i].b, g_b_cols, index=cand)
                self._touched[i].update(cand.tolist())
            if self.rebuild.record(batch):
                self._refresh_tables()
        if self.obs.enabled:
            self._record_step_flops(
                batch,
                [cand.size for cand in active_sets] + [layers[-1].n_out],
            )
        return loss

    def _train_one(self, x: np.ndarray, y: int) -> float:
        layers = self.net.layers
        act = self.net.hidden_activation
        backend = self._backend()

        with self._time_forward():
            active_sets: List[np.ndarray] = []
            z_actives: List[np.ndarray] = []
            acts: List[np.ndarray] = [x]
            a_prev = x
            for i in range(self.n_hidden):
                cand = self._select_active(i, a_prev)
                active_sets.append(cand)
                self._active_sum[i] += cand.size / layers[i].n_out
                z_c = backend.matmul_cols(a_prev, layers[i].W, layers[i].b, cand)
                z_actives.append(z_c)
                a_full = np.zeros(layers[i].n_out)
                a_full[cand] = act.forward(z_c)
                acts.append(a_full)
                a_prev = a_full
            self._active_count += 1
            logits = backend.matmul_add_bias(a_prev, layers[-1].W, layers[-1].b)
            logp = LogSoftmax().forward(logits.reshape(1, -1))[0]
            loss = float(-logp[y])

        with self._time_backward():
            probs = np.exp(logp)
            delta = probs
            delta[y] -= 1.0
            # Output layer: dense update (every class participates).
            # Backpropagate through the pre-update weights first.
            da = backend.matmul(layers[-1].W, delta)
            g_w = backend.grad_cols(acts[-1], delta)
            self._update(("W", self.n_hidden), layers[-1].W, g_w)
            self._update(("b", self.n_hidden), layers[-1].b, delta)
            for i in range(self.n_hidden - 1, -1, -1):
                cand = active_sets[i]
                delta_c = da[cand] * act.derivative(z_actives[i])
                g_w_cols = backend.grad_cols(acts[i], delta_c)
                self._update(("W", i), layers[i].W, g_w_cols, index=cand)
                self._update(("b", i), layers[i].b, delta_c, index=cand)
                self._touched[i].update(cand.tolist())
                if i > 0:
                    da = backend.backprop_cols(delta_c, layers[i].W, cand)
            if self.rebuild.record(1):
                self._refresh_tables()
        if self.obs.enabled:
            self._record_step_flops(
                1, [cand.size for cand in active_sets] + [layers[-1].n_out]
            )
        return loss

    def _refresh_tables(self) -> None:
        """Re-insert the columns whose weights changed since last refresh.

        With a drift tracker configured, only touched columns whose weights
        actually drifted are re-hashed (the rest would land in the same
        buckets anyway).
        """
        self.obs.add(LSH_REBUILDS)
        for i, touched in enumerate(self._touched):
            if not touched:
                continue
            ids = np.fromiter(sorted(touched), dtype=np.int64, count=len(touched))
            if self._drift is not None:
                ids = self._drift[i].drifted(self.net.layers[i].W, ids)
            if ids.size:
                self.indexes[i].update(ids, self.net.layers[i].W[:, ids].T)
                self.rehashed_columns += int(ids.size)
                self.obs.add(LSH_REHASHED_COLUMNS, int(ids.size))
                if self._drift is not None:
                    self._drift[i].mark_rehashed(self.net.layers[i].W, ids)
            touched.clear()

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        """Hash tables, rebuild counters and diagnostics.

        The hash *hyperplanes* are deterministic from the construction
        seed and are not serialised; the bucket contents are, because they
        are path-dependent (each column sits where it was hashed at its
        last re-hash, not where the current weights would place it).
        """
        meta = {
            "rebuild": self.rebuild.state_dict(),
            "active_count": self._active_count,
            "rehashed_columns": self.rehashed_columns,
            "indexes": [],
        }
        arrays: Dict[str, np.ndarray] = {"active_sum": self._active_sum.copy()}
        for i, index in enumerate(self.indexes):
            idx_meta, idx_arrays = index.state_dict()
            meta["indexes"].append(idx_meta)
            for name, arr in idx_arrays.items():
                arrays[f"index{i}.{name}"] = arr
            arrays[f"touched{i}"] = np.fromiter(
                sorted(self._touched[i]),
                dtype=np.int64,
                count=len(self._touched[i]),
            )
            if self._drift is not None:
                arrays[f"drift{i}"] = self._drift[i].reference
        return meta, arrays

    def restore_checkpoint_state(
        self, meta: dict, arrays: Dict[str, np.ndarray]
    ) -> None:
        idx_metas = meta["indexes"]
        if len(idx_metas) != len(self.indexes):
            raise ValueError(
                f"checkpoint holds {len(idx_metas)} hash indexes, "
                f"trainer has {len(self.indexes)}"
            )
        self.rebuild.load_state_dict(meta["rebuild"])
        self._active_count = int(meta["active_count"])
        self.rehashed_columns = int(meta["rehashed_columns"])
        self._active_sum = np.array(arrays["active_sum"], dtype=float)
        for i, index in enumerate(self.indexes):
            prefix = f"index{i}."
            idx_arrays = {
                name[len(prefix):]: arr
                for name, arr in arrays.items()
                if name.startswith(prefix)
            }
            index.load_state_dict(idx_metas[i], idx_arrays)
            self._touched[i] = {int(v) for v in arrays[f"touched{i}"]}
            if self._drift is not None:
                self._drift[i].restore_reference(arrays[f"drift{i}"])

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Sampled inference — the same active-node selection as training.

        This is the §10.3 setting: "when predicting the label of an input
        sample, the same set of nodes is activated", which is what produces
        the predicted-label collapse in deep networks.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        layers = self.net.layers
        act = self.net.hidden_activation
        backend = self._backend()
        out = np.empty(x.shape[0], dtype=int)
        for s in range(x.shape[0]):
            a_prev = x[s]
            for i in range(self.n_hidden):
                cand = self._select_active(i, a_prev)
                self._active_sum[i] += cand.size / layers[i].n_out
                z_c = backend.matmul_cols(a_prev, layers[i].W, layers[i].b, cand)
                a_full = np.zeros(layers[i].n_out)
                a_full[cand] = act.forward(z_c)
                a_prev = a_full
            self._active_count += 1
            logits = backend.matmul_add_bias(a_prev, layers[-1].W, layers[-1].b)
            out[s] = int(np.argmax(logits))
        return out

    def predict_exact(self, x: np.ndarray) -> np.ndarray:
        """Exact forward through the ALSH-trained weights (diagnostic)."""
        return self.net.predict(x)

    def index_memory_bytes(self) -> int:
        """Total memory footprint of all per-layer hash tables (§9.4)."""
        return sum(ix.memory_bytes() for ix in self.indexes)
