"""STANDARD — exact training, the paper's reference point (§8.3).

Exact feedforward and backpropagation with no sampling; every other method
is measured against this in accuracy (Table 2, Figure 7) and per-epoch
time (Tables 3–4, Figure 8).
"""

from __future__ import annotations

import numpy as np

from ..nn.losses import NLLLoss
from .base import Trainer

__all__ = ["StandardTrainer"]


class StandardTrainer(Trainer):
    """Plain SGD/minibatch training with exact matrix products."""

    name = "standard"

    def train_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        with self._time_forward():
            cache = self.net.forward(x)
            loss = self.loss_fn.value(cache.output, y)
        with self._time_backward():
            grads = self.net.backward(cache, y)
            for i, (g_w, g_b) in enumerate(grads):
                layer = self.net.layers[i]
                self._update(("W", i), layer.W, g_w)
                self._update(("b", i), layer.b, g_b)
        # Exact training: the dense-equivalent work IS the actual work.
        self._record_step_flops(
            np.atleast_2d(x).shape[0],
            [layer.n_out for layer in self.net.layers],
        )
        return loss

    def probe_approx_forward(self, x, rng):
        """STANDARD computes exactly — the probe measures zero drift.

        Kept explicit (rather than inheriting the base default) so the
        forward-error probe's zero baseline is a documented property of
        the method, not an accident of inheritance.
        """
        return self.probe_exact_forward(x)
