"""ADAPTIVE-DROPOUT (standout) — data-dependent node sampling (§5.1).

Ba & Frey's standout replaces dropout's fixed keep probability with a
per-node, per-input probability computed from the node's own pre-activation:

    π_j = sigmoid(α · z_j + β),

an approximation of the Bayesian posterior over sub-architectures.  Nodes
that matter for the current input are kept with high probability, which is
why it avoids dropout's catastrophic behaviour at small keep rates
(Table 2: 98.06 vs 90.21 on MNIST).

The cost is that π requires the *full* pre-activation vector, so the full
matrix product is computed before masking — the paper calls this out as
"the additional computational overhead of the construction of dropout
masks" (§9.2) and Table 4 shows Adaptive-DropoutS slower than StandardS.
Our implementation is faithful to that: no products are skipped.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.activations import Sigmoid
from ..nn.losses import NLLLoss
from ..nn.network import MLP
from ..obs import Recorder
from ..obs.counters import SAMPLER_MASK_KEPT, SAMPLER_MASK_POOL
from .base import Trainer

__all__ = ["AdaptiveDropoutTrainer"]


def _logit(p: float) -> float:
    return float(np.log(p / (1.0 - p)))


class AdaptiveDropoutTrainer(Trainer):
    """Standout training with sigmoid(α·z + β) keep probabilities.

    Parameters
    ----------
    alpha, beta:
        Standout parameters.  ``beta`` defaults to logit(target_keep) so
    the *baseline* keep rate matches the paper's p = 0.05 fair-comparison
    setting; data-dependence then raises π for strongly activated nodes.
    target_keep:
        Baseline keep probability used to derive ``beta`` when ``beta`` is
        not given explicitly.
    """

    name = "adaptive_dropout"

    def __init__(
        self,
        network: MLP,
        lr: float = 1e-3,
        optimizer="sgd",
        alpha: float = 1.0,
        beta: Optional[float] = None,
        target_keep: float = 0.05,
        seed: Optional[int] = None,
        recorder: Optional[Recorder] = None,
        compute_backend=None,
    ):
        super().__init__(
            network,
            lr=lr,
            optimizer=optimizer,
            seed=seed,
            recorder=recorder,
            compute_backend=compute_backend,
        )
        if not 0.0 < target_keep < 1.0:
            raise ValueError(f"target_keep must be in (0, 1), got {target_keep}")
        self.alpha = float(alpha)
        self.beta = _logit(target_keep) if beta is None else float(beta)
        self.target_keep = float(target_keep)
        self._sigmoid = Sigmoid()

    def keep_probabilities(self, z: np.ndarray) -> np.ndarray:
        """π = sigmoid(α·z + β) element-wise over pre-activations."""
        return self._sigmoid.forward(self.alpha * z + self.beta)

    def checkpoint_state(self):
        """Standout parameters — recorded so resume can verify config.

        α and β never change during training, but resuming with different
        values would silently change every mask; the restore hook rejects
        that instead.
        """
        return {"alpha": self.alpha, "beta": self.beta}, {}

    def restore_checkpoint_state(self, meta, arrays) -> None:
        if meta.get("alpha") != self.alpha or meta.get("beta") != self.beta:
            raise ValueError(
                f"checkpoint was written with standout parameters "
                f"alpha={meta.get('alpha')}, beta={meta.get('beta')}; "
                f"this trainer has alpha={self.alpha}, beta={self.beta}"
            )

    def train_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        layers = self.net.layers
        n_hidden = len(layers) - 1
        act = self.net.hidden_activation

        with self._time_forward():
            activations = [x]
            zs = []
            masks = []
            a = x
            for i in range(n_hidden):
                z = layers[i].forward(a)  # full product: standout overhead
                pi = self.keep_probabilities(z)
                mask = (self.rng.random(z.shape) < pi).astype(float)
                a = act.forward(z) * mask
                zs.append(z)
                masks.append(mask)
                activations.append(a)
            logits = layers[-1].forward(a)
            loss = self.loss_fn.value(
                self.net.output_activation.forward(logits), y
            )

        with self._time_backward():
            delta = NLLLoss.fused_logit_gradient(logits, y)
            # Backpropagate through the pre-update output weights first.
            da = layers[-1].backprop_delta(delta)
            g_w, g_b = layers[-1].weight_gradients(activations[-1], delta)
            self._update(("W", n_hidden), layers[-1].W, g_w)
            self._update(("b", n_hidden), layers[-1].b, g_b)
            for i in range(n_hidden - 1, -1, -1):
                # Standout treats the sampled mask as a constant in the
                # gradient (no derivative through π).
                delta_i = da * masks[i] * act.derivative(zs[i])
                g_w, g_b = layers[i].weight_gradients(activations[i], delta_i)
                if i > 0:
                    da = layers[i].backprop_delta(delta_i)
                self._update(("W", i), layers[i].W, g_w)
                self._update(("b", i), layers[i].b, g_b)
        if self.obs.enabled:
            # Standout's defining cost: every product is computed densely
            # (the mask needs the full pre-activation), so nothing is
            # skipped — the mask statistics are the interesting signal.
            self._record_step_flops(
                x.shape[0], [layer.n_out for layer in layers]
            )
            for mask in masks:
                self.obs.add(SAMPLER_MASK_KEPT, int(mask.sum()))
                self.obs.add(SAMPLER_MASK_POOL, int(mask.size))
        return loss

    def probe_approx_forward(self, x, rng):
        """Training-style standout forward with probe-RNG mask draws.

        Computes the full pre-activations (standout's defining cost),
        samples the π-masks from the caller's ``rng``, and leaves the
        trainer's own mask stream untouched.
        """
        a = np.atleast_2d(np.asarray(x, dtype=float))
        layers = self.net.layers
        act = self.net.hidden_activation
        outs = []
        for i in range(len(layers) - 1):
            z = layers[i].forward(a)
            pi = self.keep_probabilities(z)
            mask = (rng.random(z.shape) < pi).astype(float)
            a = act.forward(z) * mask
            outs.append(a)
        outs.append(layers[-1].forward(a))
        return outs

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Deterministic forward using expected masks π instead of samples."""
        a = np.atleast_2d(np.asarray(x, dtype=float))
        layers = self.net.layers
        for i in range(len(layers) - 1):
            z = layers[i].forward(a)
            a = self.net.hidden_activation.forward(z) * self.keep_probabilities(z)
        return layers[-1].forward(a).argmax(axis=1)
