"""The five training methods evaluated by the paper (§8.3).

STANDARD (exact baseline), DROPOUT and ADAPTIVE-DROPOUT (sampling from the
current layer, §5), ALSH-APPROX (hashing-based current-layer sampling,
§5.2) and MC-APPROX (Monte-Carlo previous-layer sampling, §6.2), all behind
the common :class:`~repro.core.base.Trainer` interface.
"""

from .adaptive_dropout import AdaptiveDropoutTrainer
from .alsh_approx import ALSHApproxTrainer
from .base import EpochStats, History, Trainer
from .dropout import DropoutTrainer
from .mc_approx import MCApproxTrainer
from .registry import TRAINERS, make_trainer, trainer_names
from .standard import StandardTrainer
from .topk_approx import TopKApproxTrainer

__all__ = [
    "Trainer",
    "History",
    "EpochStats",
    "StandardTrainer",
    "DropoutTrainer",
    "AdaptiveDropoutTrainer",
    "ALSHApproxTrainer",
    "MCApproxTrainer",
    "TopKApproxTrainer",
    "TRAINERS",
    "trainer_names",
    "make_trainer",
]
