"""Trainer registry — one factory for every method the paper evaluates.

The paper's method labels carry a superscript for the batching regime
(e.g. MC-approxM for minibatch, MC-approxS for stochastic); here the
regime is the ``batch_size`` passed to :meth:`Trainer.fit`, so the registry
only names the five algorithms.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from ..nn.network import MLP
from .adaptive_dropout import AdaptiveDropoutTrainer
from .alsh_approx import ALSHApproxTrainer
from .base import Trainer
from .dropout import DropoutTrainer
from .mc_approx import MCApproxTrainer
from .standard import StandardTrainer
from .topk_approx import TopKApproxTrainer

__all__ = ["TRAINERS", "trainer_names", "make_trainer"]

TRAINERS: Dict[str, Type[Trainer]] = {
    StandardTrainer.name: StandardTrainer,
    DropoutTrainer.name: DropoutTrainer,
    AdaptiveDropoutTrainer.name: AdaptiveDropoutTrainer,
    ALSHApproxTrainer.name: ALSHApproxTrainer,
    MCApproxTrainer.name: MCApproxTrainer,
    TopKApproxTrainer.name: TopKApproxTrainer,
}

_ALIASES = {
    "alsh_approx": ALSHApproxTrainer.name,
    "alsh-approx": ALSHApproxTrainer.name,
    "mc_approx": MCApproxTrainer.name,
    "mc-approx": MCApproxTrainer.name,
    "adaptive-dropout": AdaptiveDropoutTrainer.name,
    "topk_approx": TopKApproxTrainer.name,
    "topk-approx": TopKApproxTrainer.name,
}


def trainer_names():
    """Canonical method names, in the paper's presentation order."""
    return list(TRAINERS)


def make_trainer(
    name: str, network: MLP, seed: Optional[int] = None, **kwargs
) -> Trainer:
    """Build a trainer by name with method-specific keyword arguments.

    >>> net = MLP([10, 32, 3], seed=0)
    >>> make_trainer("standard", net, lr=1e-3).name
    'standard'
    """
    canonical = _ALIASES.get(name, name)
    try:
        cls = TRAINERS[canonical]
    except KeyError:
        raise ValueError(
            f"unknown trainer {name!r}; available: {trainer_names()}"
        ) from None
    return cls(network, seed=seed, **kwargs)
