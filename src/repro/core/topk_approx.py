"""TOPK-APPROX — ALSH-approx with an exact-MIPS oracle selector.

The paper's Theorem 7.2 assumes "the active nodes are detected exactly"
and *still* proves exponential error growth: the collapse is inherent to
sampling-from-the-current-layer, not an artefact of LSH recall.  This
trainer makes that argument executable: it is ALSH-approx with the hash
tables replaced by a brute-force maximum-inner-product search, i.e. the
best possible active-set selector at a given budget.  If TOPK-APPROX also
collapses with depth (it does — see the depth ablation bench), the LSH
machinery is exonerated and the blame lands on feedforward approximation
itself, exactly as §7 claims.

It is deliberately *not* a practical method: exact MIPS costs the full
product it is supposed to avoid.  It exists as scientific apparatus.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn.activations import LogSoftmax
from ..nn.network import MLP
from ..obs import Recorder
from ..obs.counters import SAMPLER_COLS_KEPT, SAMPLER_COLS_POOL
from .base import Trainer

__all__ = ["TopKApproxTrainer"]


class TopKApproxTrainer(Trainer):
    """Current-layer sampling with oracle (exact top-k) node selection.

    Parameters
    ----------
    active_frac:
        Fraction of each hidden layer kept active per sample — matched to
        ALSH-approx's active-set size for apples-to-apples comparisons.
    """

    name = "topk"

    def __init__(
        self,
        network: MLP,
        lr: float = 1e-3,
        optimizer="adam",
        active_frac: float = 0.25,
        seed: Optional[int] = None,
        recorder: Optional[Recorder] = None,
        compute_backend=None,
    ):
        super().__init__(
            network,
            lr=lr,
            optimizer=optimizer,
            seed=seed,
            recorder=recorder,
            compute_backend=compute_backend,
        )
        if not 0.0 < active_frac <= 1.0:
            raise ValueError(f"active_frac must be in (0, 1], got {active_frac}")
        self.active_frac = float(active_frac)
        self.n_hidden = len(network.layers) - 1

    def _select_active(self, layer_idx: int, a_prev: np.ndarray) -> np.ndarray:
        """Exact top-k columns by |⟨a_prev, W·j⟩| — the MIPS oracle."""
        layer = self.net.layers[layer_idx]
        keep = max(1, int(round(self.active_frac * layer.n_out)))
        scores = np.abs(self._backend().matmul(a_prev, layer.W))
        top = np.argpartition(-scores, keep - 1)[:keep]
        top.sort()
        return top

    # ------------------------------------------------------------------
    # training — identical structure to ALSH-approx, oracle selection
    # ------------------------------------------------------------------
    def train_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y).reshape(-1)
        total = 0.0
        for xi, yi in zip(x, y):
            total += self._train_one(xi, int(yi))
        return total / x.shape[0]

    def _train_one(self, x: np.ndarray, y: int) -> float:
        layers = self.net.layers
        act = self.net.hidden_activation
        backend = self._backend()

        with self._time_forward():
            active_sets: List[np.ndarray] = []
            z_actives: List[np.ndarray] = []
            acts: List[np.ndarray] = [x]
            a_prev = x
            for i in range(self.n_hidden):
                cand = self._select_active(i, a_prev)
                active_sets.append(cand)
                z_c = backend.matmul_cols(a_prev, layers[i].W, layers[i].b, cand)
                z_actives.append(z_c)
                a_full = np.zeros(layers[i].n_out)
                a_full[cand] = act.forward(z_c)
                acts.append(a_full)
                a_prev = a_full
            logits = backend.matmul_add_bias(a_prev, layers[-1].W, layers[-1].b)
            logp = LogSoftmax().forward(logits.reshape(1, -1))[0]
            loss = float(-logp[y])

        with self._time_backward():
            delta = np.exp(logp)
            delta[y] -= 1.0
            da = backend.matmul(layers[-1].W, delta)
            g_w = backend.grad_cols(acts[-1], delta)
            self._update(("W", self.n_hidden), layers[-1].W, g_w)
            self._update(("b", self.n_hidden), layers[-1].b, delta)
            for i in range(self.n_hidden - 1, -1, -1):
                cand = active_sets[i]
                delta_c = da[cand] * act.derivative(z_actives[i])
                g_w_cols = backend.grad_cols(acts[i], delta_c)
                self._update(("W", i), layers[i].W, g_w_cols, index=cand)
                self._update(("b", i), layers[i].b, delta_c, index=cand)
                if i > 0:
                    da = backend.backprop_cols(delta_c, layers[i].W, cand)
        if self.obs.enabled:
            # The selector itself is exact MIPS (a full product), so
            # flops.actual understates the oracle's true cost — that is the
            # point: it measures what a *perfect* selector would save.
            self._record_step_flops(
                1, [cand.size for cand in active_sets] + [layers[-1].n_out]
            )
            for i in range(self.n_hidden):
                self.obs.add(SAMPLER_COLS_KEPT, int(active_sets[i].size))
                self.obs.add(SAMPLER_COLS_POOL, int(layers[i].n_out))
        return loss

    # ------------------------------------------------------------------
    # quality probes
    # ------------------------------------------------------------------
    def probe_approx_forward(self, x, rng):
        """Oracle-sampled forward; deterministic, so ``rng`` is unused.

        The exact-MIPS selector has no randomness — the forward-error
        probe on TOPK measures the pure sampling-from-the-current-layer
        drift Theorem 7.2 bounds, with selector noise excluded.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        layers = self.net.layers
        act = self.net.hidden_activation
        hidden = [
            np.zeros((x.shape[0], layers[i].n_out))
            for i in range(self.n_hidden)
        ]
        logits = np.zeros((x.shape[0], layers[-1].n_out))
        for s in range(x.shape[0]):
            a_prev = x[s]
            for i in range(self.n_hidden):
                cand = self._select_active(i, a_prev)
                z_c = a_prev @ layers[i].W[:, cand] + layers[i].b[cand]
                a_full = np.zeros(layers[i].n_out)
                a_full[cand] = act.forward(z_c)
                hidden[i][s] = a_full
                a_prev = a_full
            logits[s] = a_prev @ layers[-1].W + layers[-1].b
        return hidden + [logits]

    # ------------------------------------------------------------------
    # inference — sampled, like training (matching ALSH semantics)
    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Oracle-sampled inference (same selection rule as training)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        layers = self.net.layers
        act = self.net.hidden_activation
        backend = self._backend()
        out = np.empty(x.shape[0], dtype=int)
        for s in range(x.shape[0]):
            a_prev = x[s]
            for i in range(self.n_hidden):
                cand = self._select_active(i, a_prev)
                z_c = backend.matmul_cols(a_prev, layers[i].W, layers[i].b, cand)
                a_full = np.zeros(layers[i].n_out)
                a_full[cand] = act.forward(z_c)
                a_prev = a_full
            logits = backend.matmul_add_bias(a_prev, layers[-1].W, layers[-1].b)
            out[s] = int(np.argmax(logits))
        return out

    def predict_exact(self, x: np.ndarray) -> np.ndarray:
        """Exact forward through the trained weights (diagnostic)."""
        return self.net.predict(x)
