"""Feature/label transforms shared by examples and benches."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["standardize", "minmax_scale", "one_hot", "flatten_images"]


def standardize(
    x_train: np.ndarray, *others: np.ndarray
) -> Tuple[np.ndarray, ...]:
    """Zero-mean/unit-variance using *training* statistics only.

    Returns the transformed train split followed by each extra split
    transformed with the same statistics (no test-set leakage).
    """
    x_train = np.asarray(x_train, dtype=float)
    mean = x_train.mean(axis=0)
    std = x_train.std(axis=0)
    std = np.where(std == 0, 1.0, std)
    out = [(x_train - mean) / std]
    for x in others:
        out.append((np.asarray(x, dtype=float) - mean) / std)
    return tuple(out)


def minmax_scale(
    x_train: np.ndarray, *others: np.ndarray
) -> Tuple[np.ndarray, ...]:
    """Scale features into [0, 1] using training min/max."""
    x_train = np.asarray(x_train, dtype=float)
    lo = x_train.min(axis=0)
    span = x_train.max(axis=0) - lo
    span = np.where(span == 0, 1.0, span)
    out = [(x_train - lo) / span]
    for x in others:
        out.append((np.asarray(x, dtype=float) - lo) / span)
    return tuple(out)


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Integer labels → one-hot matrix."""
    labels = np.asarray(labels).reshape(-1).astype(int)
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        raise ValueError("labels out of range for n_classes")
    out = np.zeros((labels.shape[0], n_classes))
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def flatten_images(images: np.ndarray) -> np.ndarray:
    """NCHW (or NHW) image tensor → flat rows."""
    images = np.asarray(images)
    if images.ndim < 2:
        raise ValueError(f"expected image tensor, got shape {images.shape}")
    return images.reshape(images.shape[0], -1)
