"""Datasets, loaders and transforms.

Six synthetic benchmarks matching the paper's image shapes, class counts
and split sizes (§8.2), with a ``scale`` knob for laptop-sized runs — see
DESIGN.md §1 for the substitution rationale.
"""

from .corruptions import (
    with_class_imbalance,
    with_dead_features,
    with_feature_noise,
    with_label_noise,
)
from .benchmarks import BENCHMARKS, benchmark_names, get_benchmark_spec, load_benchmark
from .datasets import Dataset
from .loader import BatchLoader
from .streams import DriftingStream
from .synthetic import SyntheticSpec, make_classification_images, make_prototypes
from .transforms import flatten_images, minmax_scale, one_hot, standardize

__all__ = [
    "Dataset",
    "SyntheticSpec",
    "make_prototypes",
    "make_classification_images",
    "BENCHMARKS",
    "benchmark_names",
    "get_benchmark_spec",
    "load_benchmark",
    "BatchLoader",
    "standardize",
    "minmax_scale",
    "one_hot",
    "flatten_images",
    "with_label_noise",
    "with_feature_noise",
    "with_dead_features",
    "with_class_imbalance",
    "DriftingStream",
]
