"""Dataset corruptions for robustness studies.

The premise behind every method the paper evaluates is that "SGD is a
noisy algorithm by nature ... more tolerant of small amounts of noise"
(§4.2).  These corruptions let that premise be stress-tested: if a
sampling-based method's approximation noise composes badly with *data*
noise, its tolerance margin was already spent.  Each corruption is
deterministic given a seed and returns a new :class:`Dataset` (inputs are
never mutated in place).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from .datasets import Dataset

__all__ = [
    "with_label_noise",
    "with_feature_noise",
    "with_dead_features",
    "with_class_imbalance",
]


def _copy_with(data: Dataset, **updates) -> Dataset:
    fields = dict(
        name=data.name,
        x_train=data.x_train,
        y_train=data.y_train,
        x_test=data.x_test,
        y_test=data.y_test,
        x_val=data.x_val,
        y_val=data.y_val,
        n_classes=data.n_classes,
        image_shape=data.image_shape,
    )
    fields.update(updates)
    return Dataset(**fields)


def with_label_noise(
    data: Dataset, fraction: float, seed: Optional[int] = 0
) -> Dataset:
    """Flip a fraction of *training* labels to uniformly random others.

    Test/validation labels stay clean, so measured accuracy still means
    accuracy on the true task.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    y = data.y_train.copy()
    n_flip = int(round(fraction * y.shape[0]))
    if n_flip:
        idx = rng.choice(y.shape[0], size=n_flip, replace=False)
        offsets = rng.integers(1, data.n_classes, size=n_flip)
        y[idx] = (y[idx] + offsets) % data.n_classes
    return _copy_with(
        data, name=f"{data.name}+labelnoise{fraction:g}", y_train=y
    )


def with_feature_noise(
    data: Dataset, sigma: float, seed: Optional[int] = 0
) -> Dataset:
    """Add i.i.d. Gaussian noise to the training features."""
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    rng = np.random.default_rng(seed)
    x = data.x_train + rng.normal(scale=sigma, size=data.x_train.shape)
    return _copy_with(data, name=f"{data.name}+featnoise{sigma:g}", x_train=x)


def with_dead_features(
    data: Dataset, fraction: float, seed: Optional[int] = 0
) -> Dataset:
    """Zero a random subset of feature columns in *every* split.

    Models dead sensors/pixels; the same columns die everywhere, so the
    train and test distributions stay matched.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    n_dead = int(round(fraction * data.input_dim))
    dead = rng.choice(data.input_dim, size=n_dead, replace=False)

    def kill(x: np.ndarray) -> np.ndarray:
        out = x.copy()
        if n_dead:
            out[:, dead] = 0.0
        return out

    return _copy_with(
        data,
        name=f"{data.name}+dead{fraction:g}",
        x_train=kill(data.x_train),
        x_test=kill(data.x_test),
        x_val=kill(data.x_val) if data.n_val else data.x_val,
    )


def with_class_imbalance(
    data: Dataset, keep_fraction: float, minority_classes: int = 1,
    seed: Optional[int] = 0,
) -> Dataset:
    """Subsample training rows of the lowest-id classes.

    ``minority_classes`` classes keep only ``keep_fraction`` of their
    training rows; evaluation splits stay balanced.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    if not 1 <= minority_classes < data.n_classes:
        raise ValueError(
            f"minority_classes must be in [1, {data.n_classes - 1}], "
            f"got {minority_classes}"
        )
    rng = np.random.default_rng(seed)
    keep = np.ones(data.n_train, dtype=bool)
    for cls in range(minority_classes):
        members = np.nonzero(data.y_train == cls)[0]
        n_keep = max(1, int(round(keep_fraction * members.size)))
        kept = set(rng.choice(members, size=n_keep, replace=False).tolist())
        for i in members:
            if int(i) not in kept:
                keep[i] = False
    return _copy_with(
        data,
        name=f"{data.name}+imbalanced{keep_fraction:g}",
        x_train=data.x_train[keep],
        y_train=data.y_train[keep],
    )
