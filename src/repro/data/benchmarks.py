"""The six paper benchmarks as synthetic specs (§8.2).

Every spec matches the paper's image shape, class count and
train/test/validation split sizes exactly; difficulty knobs are tuned so
the *relative* hardness ordering mirrors the real datasets (MNIST easiest,
then Fashion/Kuzushiji/EMNIST, NORB mid, CIFAR-10 hardest).

``load_benchmark(name, scale=...)`` is the main entry point; scale shrinks
all splits proportionally for laptop/CI runs.
"""

from __future__ import annotations

from typing import Dict, Optional

from .datasets import Dataset
from .synthetic import SyntheticSpec

__all__ = ["BENCHMARKS", "benchmark_names", "get_benchmark_spec", "load_benchmark"]


BENCHMARKS: Dict[str, SyntheticSpec] = {
    # 70 000 handwritten digits, 28×28 grayscale, 10 classes.
    "mnist": SyntheticSpec(
        name="mnist",
        shape=(1, 28, 28),
        n_classes=10,
        n_train=55_000,
        n_test=10_000,
        n_val=5_000,
        noise=4.0,
        class_spread=1.2,
    ),
    # 70 000 cursive Japanese characters — noticeably harder than MNIST.
    "kuzushiji": SyntheticSpec(
        name="kuzushiji",
        shape=(1, 28, 28),
        n_classes=10,
        n_train=55_000,
        n_test=10_000,
        n_val=5_000,
        noise=5.0,
        class_spread=1.0,
        max_shift=2,
    ),
    # 70 000 fashion products — harder than MNIST, easier than Kuzushiji.
    "fashion": SyntheticSpec(
        name="fashion",
        shape=(1, 28, 28),
        n_classes=10,
        n_train=55_000,
        n_test=10_000,
        n_val=5_000,
        noise=4.5,
        class_spread=1.0,
    ),
    # 145 600 handwritten letters, 26 classes.
    "emnist_letters": SyntheticSpec(
        name="emnist_letters",
        shape=(1, 28, 28),
        n_classes=26,
        n_train=104_800,
        n_test=20_000,
        n_val=20_000,
        noise=4.5,
        class_spread=1.0,
    ),
    # 48 600 toy photographs, 96×96 grayscale, 5 classes.
    "norb": SyntheticSpec(
        name="norb",
        shape=(1, 96, 96),
        n_classes=5,
        n_train=22_300,
        n_test=24_300,
        n_val=2_000,
        noise=5.0,
        class_spread=0.9,
        max_shift=3,
    ),
    # 60 000 colour images, 32×32×3, 10 classes — the hardest benchmark.
    "cifar10": SyntheticSpec(
        name="cifar10",
        shape=(3, 32, 32),
        n_classes=10,
        n_train=45_000,
        n_test=10_000,
        n_val=5_000,
        noise=6.0,
        class_spread=0.7,
        max_shift=2,
    ),
}


def benchmark_names():
    """Names of the six paper benchmarks, in the paper's order."""
    return list(BENCHMARKS)


def get_benchmark_spec(name: str) -> SyntheticSpec:
    """The full-size spec for a benchmark."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; available: {benchmark_names()}"
        ) from None


def load_benchmark(
    name: str, scale: float = 1.0, seed: Optional[int] = 0
) -> Dataset:
    """Generate a benchmark, optionally scaled down.

    ``scale=1.0`` reproduces the paper's split sizes exactly;
    ``scale=0.01`` gives a laptop-friendly miniature with identical
    structure.
    """
    spec = get_benchmark_spec(name)
    if scale != 1.0:
        spec = spec.scaled(scale)
    return spec.generate(seed=seed)
