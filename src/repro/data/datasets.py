"""Dataset container with the paper's train/test/validation splits.

A :class:`Dataset` bundles the three splits (§8.2 Table of splits) plus the
metadata the harness needs: class count, flat input dimensionality and the
original image shape (kept so the convolutional setting can reshape flat
rows back into NCHW tensors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

__all__ = ["Dataset"]


def _check_split(x: np.ndarray, y: np.ndarray, name: str):
    if x.ndim != 2:
        raise ValueError(f"{name} features must be 2-D, got shape {x.shape}")
    if y.ndim != 1:
        raise ValueError(f"{name} labels must be 1-D, got shape {y.shape}")
    if x.shape[0] != y.shape[0]:
        raise ValueError(
            f"{name}: {x.shape[0]} feature rows vs {y.shape[0]} labels"
        )


@dataclass
class Dataset:
    """Feature/label splits for one benchmark.

    Features are flat float rows (``n_samples × input_dim``); labels are
    integer class ids.  The validation split may be empty.
    """

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    x_val: np.ndarray
    y_val: np.ndarray
    n_classes: int
    image_shape: Tuple[int, ...] = field(default=())

    def __post_init__(self):
        _check_split(self.x_train, self.y_train, "train")
        _check_split(self.x_test, self.y_test, "test")
        _check_split(self.x_val, self.y_val, "validation")
        if self.n_classes <= 1:
            raise ValueError(f"need at least 2 classes, got {self.n_classes}")
        widths = {self.x_train.shape[1], self.x_test.shape[1], self.x_val.shape[1]}
        if len(widths) != 1:
            raise ValueError(f"splits disagree on input_dim: {widths}")
        for y in (self.y_train, self.y_test, self.y_val):
            if y.size and (y.min() < 0 or y.max() >= self.n_classes):
                raise ValueError("labels out of range for n_classes")

    @property
    def input_dim(self) -> int:
        """Flat feature dimensionality (the network's ``m_i``)."""
        return self.x_train.shape[1]

    @property
    def n_train(self) -> int:
        """Number of training samples."""
        return self.x_train.shape[0]

    @property
    def n_test(self) -> int:
        """Number of test samples."""
        return self.x_test.shape[0]

    @property
    def n_val(self) -> int:
        """Number of validation samples."""
        return self.x_val.shape[0]

    def subsample(self, n_train: int, seed: Optional[int] = None) -> "Dataset":
        """A smaller dataset with ``n_train`` random training rows.

        Test/validation splits are kept intact (evaluation stays honest);
        raises if more rows are requested than exist.
        """
        if not 1 <= n_train <= self.n_train:
            raise ValueError(
                f"n_train must be in [1, {self.n_train}], got {n_train}"
            )
        rng = np.random.default_rng(seed)
        idx = rng.choice(self.n_train, size=n_train, replace=False)
        return Dataset(
            name=f"{self.name}[{n_train}]",
            x_train=self.x_train[idx],
            y_train=self.y_train[idx],
            x_test=self.x_test,
            y_test=self.y_test,
            x_val=self.x_val,
            y_val=self.y_val,
            n_classes=self.n_classes,
            image_shape=self.image_shape,
        )

    def images(self, split: str = "train") -> np.ndarray:
        """Reshape a split's flat rows back into NCHW image tensors."""
        if not self.image_shape:
            raise ValueError(f"dataset {self.name!r} has no image shape")
        x = {"train": self.x_train, "test": self.x_test, "val": self.x_val}[split]
        c, h, w = self.image_shape
        return x.reshape(x.shape[0], c, h, w)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: {self.n_train}/{self.n_test}/{self.n_val} "
            f"train/test/val, dim={self.input_dim}, classes={self.n_classes}"
        )
