"""Minibatch iteration.

The paper's two training regimes are stochastic (batch size 1, the "S"
superscript) and minibatch (batch size 20, the "M" superscript);
:class:`BatchLoader` serves both, reshuffling every epoch from its own
generator so runs are reproducible independent of model initialisation.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = ["BatchLoader"]


class BatchLoader:
    """Shuffling minibatch iterator over (features, labels).

    Parameters
    ----------
    x, y:
        Features (2-D) and integer labels (1-D), equal first dimension.
    batch_size:
        1 for the paper's stochastic setting, 20 for minibatch (§8.4).
    shuffle:
        Reshuffle order at the start of every epoch.
    drop_last:
        Drop a trailing partial batch (keeps per-step cost uniform in the
        timing benches).
    seed:
        Shuffle reproducibility.
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        batch_size: int = 20,
        shuffle: bool = True,
        drop_last: bool = False,
        seed: Optional[int] = None,
    ):
        x = np.asarray(x)
        y = np.asarray(y)
        if x.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {x.shape}")
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"{x.shape[0]} rows vs {y.shape[0]} labels")
        if x.shape[0] == 0:
            raise ValueError("empty dataset")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.x = x
        self.y = y
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self.rng = np.random.default_rng(seed)

    @property
    def n_samples(self) -> int:
        """Total samples per epoch (before drop_last)."""
        return self.x.shape[0]

    def __len__(self) -> int:
        """Number of batches per epoch."""
        full, rem = divmod(self.n_samples, self.batch_size)
        if rem and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        order = np.arange(self.n_samples)
        if self.shuffle:
            self.rng.shuffle(order)
        stop = self.n_samples
        if self.drop_last:
            stop = (self.n_samples // self.batch_size) * self.batch_size
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self.x[idx], self.y[idx]
