"""Streaming data with concept drift.

The paper's §2 motivates CPU training with client-side personalisation:
models fine-tuned on device against *user data that keeps changing*.  For
hash-based methods this regime is adversarial in a specific way — the
tables index yesterday's weight columns against today's inputs — so the
repository provides a drift substrate to study it.

:class:`DriftingStream` yields minibatches from a class-prototype model
(the same construction as :mod:`repro.data.synthetic`) whose prototypes
rotate slowly in feature space: after ``period`` batches each prototype
has moved a fixed angle towards a fresh random direction.  Labels stay
meaningful throughout (the Bayes classifier tracks the rotation), so a
learner that adapts keeps its accuracy and a frozen one decays.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = ["DriftingStream"]


class DriftingStream:
    """An infinite minibatch stream whose class structure drifts.

    Parameters
    ----------
    dim:
        Feature dimensionality.
    n_classes:
        Number of classes.
    batch_size:
        Samples per emitted batch.
    drift_per_batch:
        Rotation angle (radians) each prototype moves per batch towards
        its target direction; 0 disables drift.
    noise:
        Per-feature Gaussian noise on samples.
    seed:
        Reproducibility control.
    """

    def __init__(
        self,
        dim: int,
        n_classes: int,
        batch_size: int = 20,
        drift_per_batch: float = 0.01,
        noise: float = 0.5,
        seed: Optional[int] = 0,
    ):
        if dim <= 1:
            raise ValueError(f"dim must be at least 2, got {dim}")
        if n_classes < 2:
            raise ValueError(f"need at least 2 classes, got {n_classes}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if drift_per_batch < 0:
            raise ValueError(
                f"drift_per_batch must be non-negative, got {drift_per_batch}"
            )
        if noise < 0:
            raise ValueError(f"noise must be non-negative, got {noise}")
        self.dim = int(dim)
        self.n_classes = int(n_classes)
        self.batch_size = int(batch_size)
        self.drift_per_batch = float(drift_per_batch)
        self.noise = float(noise)
        self.rng = np.random.default_rng(seed)
        self._protos = self._unit(self.rng.normal(size=(n_classes, dim)))
        self._targets = self._unit(self.rng.normal(size=(n_classes, dim)))
        self.batches_emitted = 0

    @staticmethod
    def _unit(v: np.ndarray) -> np.ndarray:
        norms = np.linalg.norm(v, axis=-1, keepdims=True)
        norms[norms == 0] = 1.0
        return v / norms

    def prototypes(self) -> np.ndarray:
        """Current class prototypes (unit vectors), copied."""
        return self._protos.copy()

    def _rotate_towards(self) -> None:
        """Move each prototype ``drift_per_batch`` radians toward its
        target; targets are refreshed when (nearly) reached."""
        for c in range(self.n_classes):
            p, t = self._protos[c], self._targets[c]
            cos = float(np.clip(p @ t, -1.0, 1.0))
            angle = np.arccos(cos)
            if angle < self.drift_per_batch + 1e-6:
                self._targets[c] = self._unit(self.rng.normal(size=self.dim))
                continue
            # Slerp a small step along the geodesic from p to t.
            step = self.drift_per_batch / angle
            sin = np.sin(angle)
            new = (
                np.sin((1 - step) * angle) / sin * p
                + np.sin(step * angle) / sin * t
            )
            self._protos[c] = self._unit(new)

    def next_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Emit one (x, y) batch and advance the drift."""
        labels = self.rng.integers(0, self.n_classes, size=self.batch_size)
        x = self._protos[labels] * 3.0 + self.rng.normal(
            scale=self.noise, size=(self.batch_size, self.dim)
        )
        if self.drift_per_batch > 0:
            self._rotate_towards()
        self.batches_emitted += 1
        return x, labels

    def eval_batch(self, n: int = 200) -> Tuple[np.ndarray, np.ndarray]:
        """A held-out batch from the *current* distribution (no drift
        advance, independent noise)."""
        rng = np.random.default_rng(self.rng.integers(2**31))
        labels = rng.integers(0, self.n_classes, size=n)
        x = self._protos[labels] * 3.0 + rng.normal(
            scale=self.noise, size=(n, self.dim)
        )
        return x, labels

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> Tuple[dict, dict]:
        """Mutable stream state as ``(meta, arrays)`` for checkpointing.

        Captures the generator state, drift position and batch count;
        the static parameters (dim, drift rate, noise, …) are *not*
        captured — the restoring stream must be constructed with the
        same ones.  A restored stream emits exactly the batches the
        saved one would have (``eval_batch`` draws from the same rng, so
        evaluation cadence is part of the reproduced trajectory).
        """
        meta = {
            "rng_state": self.rng.bit_generator.state,
            "batches_emitted": int(self.batches_emitted),
        }
        arrays = {
            "protos": self._protos.copy(),
            "targets": self._targets.copy(),
        }
        return meta, arrays

    def load_state_dict(self, meta: dict, arrays: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        protos = np.asarray(arrays["protos"], dtype=float)
        targets = np.asarray(arrays["targets"], dtype=float)
        expect = (self.n_classes, self.dim)
        if protos.shape != expect or targets.shape != expect:
            raise ValueError(
                f"stream state shaped {protos.shape}/{targets.shape}, "
                f"expected {expect} — was the stream built with the same "
                "dim/n_classes?"
            )
        self.rng.bit_generator.state = meta["rng_state"]
        self.batches_emitted = int(meta["batches_emitted"])
        self._protos = protos
        self._targets = targets

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        while True:
            yield self.next_batch()
