"""Deterministic synthetic image-classification generators.

The paper evaluates on six downloaded image benchmarks; this offline
reproduction substitutes class-structured synthetic data with the *same
shapes, class counts and split sizes* (see DESIGN.md §1).  Each class is a
smooth random "prototype" image; samples are noisy, randomly shifted and
scaled renderings of their class prototype.  The construction gives:

* learnable structure — a linear probe already beats chance, an MLP does
  much better, so accuracy orderings between training methods are
  meaningful;
* tunable difficulty — ``noise`` and ``class_spread`` control Bayes error,
  letting the six benchmarks differ in hardness the way the real ones do
  (CIFAR-10-like is the hardest, MNIST-like the easiest);
* determinism — everything derives from one seed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .datasets import Dataset

__all__ = ["make_prototypes", "make_classification_images", "SyntheticSpec"]


def _smooth(field: np.ndarray, passes: int) -> np.ndarray:
    """Cheap separable box blur; keeps prototypes low-frequency."""
    out = field
    for _ in range(passes):
        out = (
            out
            + np.roll(out, 1, axis=-1)
            + np.roll(out, -1, axis=-1)
            + np.roll(out, 1, axis=-2)
            + np.roll(out, -1, axis=-2)
        ) / 5.0
    return out


def make_prototypes(
    n_classes: int,
    shape: Tuple[int, int, int],
    rng: np.random.Generator,
    smoothness: int = 3,
    class_spread: float = 1.0,
) -> np.ndarray:
    """Per-class prototype images, shape ``(n_classes, c, h, w)``.

    ``class_spread`` scales inter-class distance: small values bring
    prototypes closer together (harder problem).
    """
    if n_classes <= 1:
        raise ValueError(f"need at least 2 classes, got {n_classes}")
    c, h, w = shape
    protos = rng.normal(size=(n_classes, c, h, w))
    protos = _smooth(protos, smoothness)
    # Normalise each prototype to unit RMS then apply the spread factor.
    rms = np.sqrt((protos**2).mean(axis=(1, 2, 3), keepdims=True))
    return protos / rms * class_spread


def _render(
    protos: np.ndarray,
    labels: np.ndarray,
    rng: np.random.Generator,
    noise: float,
    max_shift: int,
) -> np.ndarray:
    """Render noisy, shifted, intensity-jittered samples of prototypes."""
    n = labels.shape[0]
    imgs = protos[labels].copy()
    if max_shift > 0:
        shifts_y = rng.integers(-max_shift, max_shift + 1, size=n)
        shifts_x = rng.integers(-max_shift, max_shift + 1, size=n)
        for i in range(n):
            if shifts_y[i]:
                imgs[i] = np.roll(imgs[i], shifts_y[i], axis=-2)
            if shifts_x[i]:
                imgs[i] = np.roll(imgs[i], shifts_x[i], axis=-1)
    gains = rng.uniform(0.8, 1.2, size=(n, 1, 1, 1))
    imgs *= gains
    imgs += rng.normal(scale=noise, size=imgs.shape)
    return imgs


class SyntheticSpec:
    """Full recipe for one synthetic benchmark.

    Parameters mirror what differs between the paper's six datasets:
    image shape, class count, split sizes and difficulty knobs.
    """

    def __init__(
        self,
        name: str,
        shape: Tuple[int, int, int],
        n_classes: int,
        n_train: int,
        n_test: int,
        n_val: int,
        noise: float = 0.6,
        class_spread: float = 1.0,
        smoothness: int = 3,
        max_shift: int = 1,
    ):
        if min(n_train, n_test) <= 0 or n_val < 0:
            raise ValueError("split sizes must be positive (val may be 0)")
        self.name = name
        self.shape = shape
        self.n_classes = n_classes
        self.n_train = n_train
        self.n_test = n_test
        self.n_val = n_val
        self.noise = noise
        self.class_spread = class_spread
        self.smoothness = smoothness
        self.max_shift = max_shift

    def scaled(self, fraction: float) -> "SyntheticSpec":
        """The same benchmark with split sizes scaled by ``fraction``.

        Used to shrink the paper-sized splits to CI-sized runs while
        keeping every other property fixed.  At least ``n_classes`` samples
        are kept per split so all classes remain represented.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")

        def scale(n: int) -> int:
            return max(int(round(n * fraction)), self.n_classes)

        return SyntheticSpec(
            name=self.name,
            shape=self.shape,
            n_classes=self.n_classes,
            n_train=scale(self.n_train),
            n_test=scale(self.n_test),
            n_val=scale(self.n_val) if self.n_val else 0,
            noise=self.noise,
            class_spread=self.class_spread,
            smoothness=self.smoothness,
            max_shift=self.max_shift,
        )

    def generate(self, seed: Optional[int] = 0) -> Dataset:
        """Materialise the benchmark deterministically from ``seed``."""
        return make_classification_images(self, seed=seed)


def make_classification_images(spec: SyntheticSpec, seed: Optional[int] = 0) -> Dataset:
    """Generate a :class:`Dataset` according to a :class:`SyntheticSpec`."""
    rng = np.random.default_rng(seed)
    protos = make_prototypes(
        spec.n_classes, spec.shape, rng, spec.smoothness, spec.class_spread
    )

    def split(n: int) -> Tuple[np.ndarray, np.ndarray]:
        if n == 0:
            dim = int(np.prod(spec.shape))
            return np.empty((0, dim)), np.empty((0,), dtype=int)
        labels = rng.integers(0, spec.n_classes, size=n)
        imgs = _render(protos, labels, rng, spec.noise, spec.max_shift)
        return imgs.reshape(n, -1), labels

    x_train, y_train = split(spec.n_train)
    x_test, y_test = split(spec.n_test)
    x_val, y_val = split(spec.n_val)

    # Standardise with *training* statistics only.
    mean = x_train.mean(axis=0)
    std = x_train.std(axis=0)
    std[std == 0] = 1.0
    x_train = (x_train - mean) / std
    x_test = (x_test - mean) / std
    if x_val.shape[0]:
        x_val = (x_val - mean) / std

    return Dataset(
        name=spec.name,
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
        x_val=x_val,
        y_val=y_val,
        n_classes=spec.n_classes,
        image_shape=spec.shape,
    )
