"""Uniform front door over all matrix-product estimators.

The paper's central observation (§4.2) is that the two research directions
— sampling nodes of the current layer vs the previous layer — are both
instances of approximating ``A @ B`` by sub-sampling the inner dimension.
:func:`approx_matmul` exposes every estimator in this package behind one
signature so the benches can sweep methods with a single loop.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .baselines import topk_multiply, uniform_bernoulli_multiply, uniform_multiply
from .bernoulli import bernoulli_multiply
from .drineas import cr_multiply

__all__ = ["approx_matmul", "frobenius_error", "METHODS"]

METHODS = ("exact", "drineas", "bernoulli", "uniform", "uniform_bernoulli", "topk")


def approx_matmul(
    a: np.ndarray,
    b: np.ndarray,
    budget: int,
    method: str = "bernoulli",
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Estimate ``A @ B`` using ``budget`` inner-dimension samples.

    ``method`` is one of :data:`METHODS`; ``"exact"`` ignores the budget and
    returns the true product (the STANDARD reference point).
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; available: {METHODS}")
    if method == "exact":
        return np.atleast_2d(np.asarray(a, dtype=float)) @ np.atleast_2d(
            np.asarray(b, dtype=float)
        )
    if method == "topk":
        return topk_multiply(a, b, budget)
    if rng is None:
        rng = np.random.default_rng()
    if method == "drineas":
        return cr_multiply(a, b, budget, rng)
    if method == "bernoulli":
        return bernoulli_multiply(a, b, budget, rng)
    if method == "uniform":
        return uniform_multiply(a, b, budget, rng)
    return uniform_bernoulli_multiply(a, b, budget, rng)


def frobenius_error(exact: np.ndarray, estimate: np.ndarray) -> float:
    """Relative Frobenius error ‖exact − estimate‖_F / ‖exact‖_F.

    A zero exact product with a nonzero estimate reports infinity.
    """
    exact = np.atleast_2d(np.asarray(exact, dtype=float))
    estimate = np.atleast_2d(np.asarray(estimate, dtype=float))
    if exact.shape != estimate.shape:
        raise ValueError(f"shape mismatch: {exact.shape} vs {estimate.shape}")
    denom = float(np.linalg.norm(exact, "fro"))
    num = float(np.linalg.norm(exact - estimate, "fro"))
    if denom == 0.0:
        return 0.0 if num == 0.0 else float("inf")
    return num / denom
