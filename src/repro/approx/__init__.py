"""Randomized matrix-product approximation library.

Implements both sampling families the paper unifies (§4.2): the
Drineas–Kannan–Mahoney with-replacement CR estimator (§6.1, Eq. 6) and the
Adelman et al. Bernoulli column–row estimator that MC-approx trains with
(§6.2, Eq. 7), plus uniform and deterministic top-k baselines and
closed-form expected-error formulas for both randomized schemes.
"""

from .baselines import topk_multiply, uniform_bernoulli_multiply, uniform_multiply
from .bernoulli import (
    bernoulli_multiply,
    bernoulli_probabilities,
    bernoulli_sample,
)
from .bernoulli import expected_error_frobenius as bernoulli_expected_error
from .drineas import cr_decomposition, cr_multiply, optimal_probabilities
from .drineas import expected_error_frobenius as drineas_expected_error
from .interface import METHODS, approx_matmul, frobenius_error
from .sampling import (
    clipped_probabilities,
    importance_scores,
    normalize_probabilities,
    sample_with_replacement,
)

__all__ = [
    "importance_scores",
    "normalize_probabilities",
    "clipped_probabilities",
    "sample_with_replacement",
    "optimal_probabilities",
    "cr_decomposition",
    "cr_multiply",
    "drineas_expected_error",
    "bernoulli_probabilities",
    "bernoulli_sample",
    "bernoulli_multiply",
    "bernoulli_expected_error",
    "uniform_multiply",
    "uniform_bernoulli_multiply",
    "topk_multiply",
    "approx_matmul",
    "frobenius_error",
    "METHODS",
]
