"""Shared sampling utilities for the matrix-product estimators.

Both families the paper connects — Drineas-style with-replacement sampling
(§6.1) and Adelman-style Bernoulli sampling (§6.2) — start from importance
scores ``‖A·i‖ · ‖B i·‖`` over the inner dimension.  This module provides
the score computation, probability normalisation, and the waterfilling
solver needed for the clipped Bernoulli probabilities
``p_i = min{k · score_i / Σ score, 1}`` under the constraint ``Σ p_i = k``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "importance_scores",
    "normalize_probabilities",
    "clipped_probabilities",
    "sample_with_replacement",
]


def importance_scores(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Scores ‖A·i‖·‖B i·‖ over the shared inner dimension.

    ``a`` is m×n, ``b`` is n×p; returns an n-vector of non-negative scores.
    """
    a = np.atleast_2d(a)
    b = np.atleast_2d(b)
    if a.shape[1] != b.shape[0]:
        raise ValueError(
            f"inner dimensions differ: A is {a.shape}, B is {b.shape}"
        )
    col_norms = np.linalg.norm(a, axis=0)
    row_norms = np.linalg.norm(b, axis=1)
    return col_norms * row_norms


def normalize_probabilities(scores: np.ndarray) -> np.ndarray:
    """Scores → probability vector; all-zero scores become uniform.

    The uniform fallback keeps the estimators well-defined on degenerate
    inputs (e.g. an all-dead ReLU activation batch).
    """
    scores = np.asarray(scores, dtype=float)
    if not np.isfinite(scores).all():
        raise ValueError("scores must be finite (diverged training run?)")
    if (scores < 0).any():
        raise ValueError("scores must be non-negative")
    total = scores.sum()
    if total == 0.0:
        return np.full(scores.shape, 1.0 / scores.size)
    return scores / total


def clipped_probabilities(scores: np.ndarray, k: int) -> np.ndarray:
    """Bernoulli probabilities p_i = min{λ·score_i, 1} with Σ p_i = k.

    This is the §6.2 distribution (paper Eq. 7).  When the naive
    ``k·score/Σscore`` assignment pushes some entries past 1, the mass is
    redistributed by waterfilling: clipped entries are pinned at 1 and λ is
    re-solved over the remainder, so the budget constraint holds exactly.
    """
    scores = np.asarray(scores, dtype=float)
    n = scores.size
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if not np.isfinite(scores).all():
        # Non-finite scores mean the caller's matrices diverged (inf/NaN
        # weights); failing fast beats the alternative — NaN comparisons
        # would make the waterfilling loop spin forever.
        raise ValueError("scores must be finite (diverged training run?)")
    if (scores < 0).any():
        raise ValueError("scores must be non-negative")
    if scores.sum() == 0.0:
        return np.full(n, k / n)

    p = np.zeros(n)
    active = np.ones(n, dtype=bool)
    budget = float(k)
    # Each pass pins at least one entry at 1, so this terminates in ≤ n steps.
    while True:
        active_scores = scores[active]
        if active_scores.size == 0:
            break
        # The solution is invariant to a positive rescaling; renormalising
        # the *active* scores by their max each pass keeps λ and the trial
        # probabilities finite even for subnormal score tails (overflow
        # here once mis-clipped whole passes and broke the Σp = k budget).
        active_max = active_scores.max()
        if active_max == 0.0:
            # Remaining scores are all zero: spread leftover budget evenly.
            p[active] = min(budget / active_scores.size, 1.0)
            break
        scaled = active_scores / active_max
        lam = budget / scaled.sum()
        trial = lam * scaled
        if (trial <= 1.0).all():
            p[active] = trial
            break
        newly_clipped = active.copy()
        newly_clipped[active] = trial > 1.0
        p[newly_clipped] = 1.0
        budget -= float(newly_clipped.sum())
        active &= ~newly_clipped
        if budget <= 0.0 or not active.any():
            break
    return p


def sample_with_replacement(
    probs: np.ndarray, c: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw ``c`` i.i.d. indices; returns (indices, their probabilities)."""
    probs = np.asarray(probs, dtype=float)
    if c <= 0:
        raise ValueError(f"c must be positive, got {c}")
    idx = rng.choice(probs.size, size=c, replace=True, p=probs)
    return idx, probs[idx]
