"""Baseline samplers for the matrix-approximation ablations.

The paper's §6.1 argues uniform sampling "would add a high error" compared
to the norm-proportional distribution; these baselines let the benches show
that gap directly, plus a deterministic top-k selection that is biased but
variance-free.
"""

from __future__ import annotations

import numpy as np

from .drineas import cr_multiply
from .sampling import importance_scores

__all__ = ["uniform_multiply", "uniform_bernoulli_multiply", "topk_multiply"]


def uniform_multiply(
    a: np.ndarray, b: np.ndarray, c: int, rng: np.random.Generator
) -> np.ndarray:
    """With-replacement CR estimate under the uniform distribution.

    Unbiased but with strictly larger variance than the optimal Eq. 6
    probabilities whenever the importance scores are non-constant.
    """
    a = np.atleast_2d(a)
    probs = np.full(a.shape[1], 1.0 / a.shape[1])
    return cr_multiply(a, b, c, rng, probs=probs)


def uniform_bernoulli_multiply(
    a: np.ndarray, b: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Bernoulli estimate with equal keep-probability k/n per index."""
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_2d(np.asarray(b, dtype=float))
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} vs {b.shape}")
    n = a.shape[1]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    p = k / n
    keep = np.nonzero(rng.random(n) < p)[0]
    if keep.size == 0:
        return np.zeros((a.shape[0], b.shape[1]))
    return (a[:, keep] / p) @ b[keep, :]


def topk_multiply(a: np.ndarray, b: np.ndarray, k: int) -> np.ndarray:
    """Deterministic estimate from the k largest-score column–row pairs.

    Biased (it systematically drops the tail mass) but zero-variance; the
    natural deterministic counterpart of the randomized estimators.
    """
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_2d(np.asarray(b, dtype=float))
    scores = importance_scores(a, b)
    n = scores.size
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    top = np.argpartition(-scores, k - 1)[:k]
    return a[:, top] @ b[top, :]
