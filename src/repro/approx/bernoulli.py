"""Adelman et al. Bernoulli column–row sampling (paper §6.2, Eq. 7).

Each index i of the inner dimension is kept independently with probability
``p_i = min{k·‖A·i‖‖B i·‖/Σ, 1}`` (waterfilled so Σp_i = k) and the kept
outer products are rescaled by ``1/p_i``:

    AB ≈ Σ_i (Z_i / p_i) A·i B i·,   Z_i ~ Bernoulli(p_i).

The estimator is unbiased and, unlike the with-replacement scheme, never
duplicates an index, which is what makes it usable *inside* a training step:
the kept index set directly selects rows of W (sampling from the previous
layer, §6).  This is the machinery MC-approx builds on.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .sampling import clipped_probabilities, importance_scores

__all__ = [
    "bernoulli_probabilities",
    "bernoulli_sample",
    "bernoulli_multiply",
    "expected_error_frobenius",
    "estimator_moments",
]


def bernoulli_probabilities(a: np.ndarray, b: np.ndarray, k: int) -> np.ndarray:
    """Eq. 7 keep-probabilities over the inner dimension (Σ p_i = k)."""
    return clipped_probabilities(importance_scores(a, b), k)


def bernoulli_sample(
    probs: np.ndarray, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw the kept index set; returns (indices, 1/p_i scales)."""
    probs = np.asarray(probs, dtype=float)
    if ((probs < 0) | (probs > 1)).any():
        raise ValueError("probabilities must lie in [0, 1]")
    keep = rng.random(probs.size) < probs
    idx = np.nonzero(keep)[0]
    return idx, 1.0 / probs[idx]


def bernoulli_multiply(
    a: np.ndarray,
    b: np.ndarray,
    k: int,
    rng: np.random.Generator,
    probs: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Unbiased estimate of ``A @ B`` keeping ≈k column–row pairs.

    An empty draw (possible when k is tiny) returns the all-zero matrix,
    which is still a valid unbiased sample of the estimator.
    """
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_2d(np.asarray(b, dtype=float))
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} vs {b.shape}")
    if probs is None:
        probs = bernoulli_probabilities(a, b, k)
    idx, scales = bernoulli_sample(np.asarray(probs, dtype=float), rng)
    if idx.size == 0:
        return np.zeros((a.shape[0], b.shape[1]))
    return (a[:, idx] * scales) @ b[idx, :]


def expected_error_frobenius(
    a: np.ndarray, b: np.ndarray, probs: np.ndarray
) -> float:
    """Closed-form E‖AB − ÂB‖_F² = Σ_i (1−p_i)/p_i ‖A·i‖²‖B i·‖².

    Indices with p_i = 0 contribute infinity unless their score is zero
    (they are then never needed).
    """
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_2d(np.asarray(b, dtype=float))
    probs = np.asarray(probs, dtype=float)
    scores = importance_scores(a, b)
    mask = scores > 0
    if (probs[mask] == 0).any():
        return float("inf")
    p = probs[mask]
    s = scores[mask]
    return float((((1.0 - p) / p) * s * s).sum())


def estimator_moments(
    a: np.ndarray,
    b: np.ndarray,
    k: int,
    rng: np.random.Generator,
    draws: int = 8,
) -> dict:
    """Empirical bias/variance of the Eq. 7 estimator from repeated draws.

    Draws the estimator ``draws`` times on the same operands and returns
    relative (Frobenius, against ``‖AB‖_F``) error statistics alongside
    the closed-form single-draw expectation, so online measurements can
    be checked against theory:

    * ``rel_bias`` — ``‖mean(estimates) − AB‖ / ‖AB‖``; shrinks like
      ``1/√draws`` for the unbiased estimator.
    * ``rel_std`` — mean single-draw relative error.
    * ``expected_rel_error`` — ``√E‖AB − ÂB‖² / ‖AB‖`` from
      :func:`expected_error_frobenius` (what ``rel_std`` estimates).

    The quality probes in :mod:`repro.obs.probes` call this with their
    private RNG; it never touches global state.
    """
    if draws < 1:
        raise ValueError(f"draws must be at least 1, got {draws}")
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_2d(np.asarray(b, dtype=float))
    probs = bernoulli_probabilities(a, b, k)
    exact = a @ b
    denom = float(np.linalg.norm(exact))
    if denom == 0.0:
        denom = 1.0
    total = np.zeros_like(exact)
    errs = []
    for _ in range(draws):
        est = bernoulli_multiply(a, b, k, rng, probs=probs)
        total += est
        errs.append(float(np.linalg.norm(est - exact)) / denom)
    mean = total / draws
    expected_sq = expected_error_frobenius(a, b, probs)
    return {
        "draws": int(draws),
        "rel_bias": float(np.linalg.norm(mean - exact)) / denom,
        "rel_std": float(np.mean(errs)),
        "expected_rel_error": float(np.sqrt(expected_sq)) / denom,
    }
