"""Drineas–Kannan–Mahoney randomized matrix multiplication (paper §6.1).

Estimates ``AB`` by sampling ``c`` column–row pairs i.i.d. with replacement
from the inner dimension, with the variance-optimal probabilities

    p_i = ‖A·i‖ ‖B i·‖ / Σ_j ‖A·j‖ ‖B j·‖            (paper Eq. 6)

and rescaling each sampled outer product by ``1/(c·p_i)``.  The estimator is
unbiased, E[CR] = AB, and the probabilities above minimise
E‖AB − CR‖_F².  :func:`expected_error_frobenius` gives the closed-form
expected squared error so tests and benches can check the empirical variance
against theory.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .sampling import importance_scores, normalize_probabilities, sample_with_replacement

__all__ = [
    "optimal_probabilities",
    "cr_decomposition",
    "cr_multiply",
    "expected_error_frobenius",
]


def optimal_probabilities(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The Eq. 6 variance-minimising sampling distribution."""
    return normalize_probabilities(importance_scores(a, b))


def cr_decomposition(
    a: np.ndarray,
    b: np.ndarray,
    c: int,
    rng: np.random.Generator,
    probs: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample the C and R factors: ``C = A S D``, ``R = (S D)^T B``.

    Returns ``(C, R, sampled_indices)`` with ``C`` of shape m×c and ``R`` of
    shape c×p, such that ``C @ R`` estimates ``A @ B``.  ``probs`` overrides
    the optimal distribution (used by the uniform-sampling ablation).
    """
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_2d(np.asarray(b, dtype=float))
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} vs {b.shape}")
    if probs is None:
        probs = optimal_probabilities(a, b)
    else:
        probs = np.asarray(probs, dtype=float)
        if probs.shape != (a.shape[1],):
            raise ValueError(
                f"probs must have shape ({a.shape[1]},), got {probs.shape}"
            )
    idx, p_sel = sample_with_replacement(probs, c, rng)
    scale = 1.0 / np.sqrt(c * p_sel)
    c_factor = a[:, idx] * scale  # A S D
    r_factor = b[idx, :] * scale[:, None]  # (S D)^T B
    return c_factor, r_factor, idx


def cr_multiply(
    a: np.ndarray,
    b: np.ndarray,
    c: int,
    rng: np.random.Generator,
    probs: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One-shot unbiased estimate of ``A @ B`` from c sampled pairs."""
    c_factor, r_factor, _ = cr_decomposition(a, b, c, rng, probs)
    return c_factor @ r_factor


def expected_error_frobenius(
    a: np.ndarray,
    b: np.ndarray,
    c: int,
    probs: Optional[np.ndarray] = None,
) -> float:
    """Closed-form E‖AB − CR‖_F² for the with-replacement estimator.

    For sampling probabilities p:  (1/c)·(Σ_i ‖A·i‖²‖B i·‖²/p_i − ‖AB‖_F²).
    With the optimal p of Eq. 6 this reduces to
    ((Σ_i ‖A·i‖‖B i·‖)² − ‖AB‖_F²)/c.
    """
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_2d(np.asarray(b, dtype=float))
    if c <= 0:
        raise ValueError(f"c must be positive, got {c}")
    scores = importance_scores(a, b)
    if probs is None:
        probs = normalize_probabilities(scores)
    probs = np.asarray(probs, dtype=float)
    ab_norm_sq = float(np.linalg.norm(a @ b, "fro") ** 2)
    mask = scores > 0
    if (probs[mask] == 0).any():
        return float("inf")
    first = float((scores[mask] ** 2 / probs[mask]).sum())
    return (first - ab_norm_sq) / c
