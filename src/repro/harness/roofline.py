"""Roofline analysis of the training methods.

The paper's motivation section makes a memory argument before it makes an
arithmetic one: "large matrices often do not fit in the cache, and storing
them in main memory necessitates constant communication between the
processor and memory" (§1).  The roofline model makes that trade-off
explicit per method:

    predicted time = max( FLOPs / peak_flops , bytes / bandwidth )

A method is *compute-bound* when its arithmetic intensity (FLOPs per byte
of traffic) exceeds the machine balance point, *memory-bound* otherwise.
The interesting output: STANDARD's dense GEMMs are compute-bound at the
paper's widths, while column-sliced sampling (dropout/ALSH) drops the
intensity so far that the 18× FLOP saving buys far less wall time — the
quantitative version of why Table 3's measured speedups are nothing like
the arithmetic ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..memsim.cache import default_hierarchy
from ..memsim.profile import MethodTraceModel
from .flops import method_step_flops

__all__ = ["RooflineMachine", "RooflinePoint", "method_roofline", "roofline_table"]

# Trace-model bytes are itemsize-1; real arrays are float64.
_BYTE_UNSCALE = 8.0

# Which trace model each method's traffic follows.  The dropout row pairs
# the column-sliced trace with the column-sliced FLOP model (this repo's
# implementation); the paper's mask-based reference behaviour is the
# `adaptive_dropout` row.  `topk` has no trace of its own; its memory
# behaviour is the column-sliced pattern.
_TRACE_FOR = {
    "standard": "standard",
    "dropout": "dropout_sliced",
    "adaptive_dropout": "adaptive_dropout",
    "mc": "mc",
    "alsh": "alsh",
    "topk": "dropout_sliced",
}


@dataclass(frozen=True)
class RooflineMachine:
    """A two-parameter machine: peak arithmetic rate and memory bandwidth.

    Defaults are single-core desktop-CPU figures (tens of double-precision
    GFLOP/s, tens of GB/s); the balance point — the intensity where compute
    and memory cost the same — is what matters for the orderings.
    """

    peak_gflops: float = 50.0
    bandwidth_gbs: float = 20.0

    def __post_init__(self):
        if self.peak_gflops <= 0 or self.bandwidth_gbs <= 0:
            raise ValueError("machine parameters must be positive")

    @property
    def balance_point(self) -> float:
        """FLOPs per byte where compute time equals memory time."""
        return self.peak_gflops / self.bandwidth_gbs

    def predicted_time(self, flops: float, traffic_bytes: float) -> float:
        """Roofline time (seconds) for one step."""
        compute = flops / (self.peak_gflops * 1e9)
        memory = traffic_bytes / (self.bandwidth_gbs * 1e9)
        return max(compute, memory)


@dataclass(frozen=True)
class RooflinePoint:
    """One method's position on the roofline."""

    method: str
    flops: float
    traffic_bytes: float
    predicted_time_s: float
    compute_bound: bool

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of memory traffic."""
        if self.traffic_bytes == 0:
            return float("inf")
        return self.flops / self.traffic_bytes


def method_roofline(
    method: str,
    layer_sizes: Sequence[int],
    batch: int = 1,
    machine: RooflineMachine = RooflineMachine(),
    seed: int = 0,
    **method_kwargs,
) -> RooflinePoint:
    """Roofline point for one method on one architecture."""
    try:
        trace_method = _TRACE_FOR[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; available: {sorted(_TRACE_FOR)}"
        ) from None
    flops = method_step_flops(method, layer_sizes, batch, **method_kwargs).total
    # Traffic = DRAM line transfers from the cache simulation, so gather
    # patterns pay line-granularity amplification and streaming patterns
    # get cache reuse — logical byte counts would flatter the gathers.
    model = MethodTraceModel(layer_sizes, batch=batch, seed=seed)
    hierarchy = default_hierarchy(1.0 / 8.0)
    hierarchy.run_trace(model.step_trace(trace_method))
    traffic = hierarchy.dram_accesses * hierarchy.line_size * _BYTE_UNSCALE
    time = machine.predicted_time(flops, traffic)
    intensity = flops / traffic if traffic else float("inf")
    return RooflinePoint(
        method=method,
        flops=flops,
        traffic_bytes=traffic,
        predicted_time_s=time,
        compute_bound=intensity >= machine.balance_point,
    )


def roofline_table(
    layer_sizes: Sequence[int],
    batch: int = 1,
    machine: RooflineMachine = RooflineMachine(),
    methods: Sequence[str] = tuple(_TRACE_FOR),
    **method_kwargs,
) -> Dict[str, RooflinePoint]:
    """Roofline points for every method on one architecture."""
    return {
        m: method_roofline(m, layer_sizes, batch, machine, **method_kwargs)
        for m in methods
    }
