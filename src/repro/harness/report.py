"""Markdown report generation from stored experiment results.

Turns the contents of a :class:`~repro.harness.results.ResultStore` (or
any list of :class:`~repro.harness.experiment.ExperimentResult`) into the
tables this repository's EXPERIMENTS.md is made of: per-dataset method
comparisons and per-method depth sweeps, with the §10.3 collapse
diagnostics alongside accuracy and time.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence

from .experiment import ExperimentResult
from .reporting import format_markdown_table

__all__ = ["method_comparison_table", "depth_sweep_table", "render_report"]


def _by(results: Iterable[ExperimentResult], field: str) -> Dict[object, list]:
    groups: Dict[object, list] = defaultdict(list)
    for result in results:
        groups[getattr(result.config, field)].append(result)
    return groups


def method_comparison_table(results: Sequence[ExperimentResult]) -> str:
    """One row per method: accuracy / time / collapse diagnostics.

    When several results share a method (e.g. different depths), the
    highest-accuracy one represents it — report the method at its best.
    """
    if not results:
        raise ValueError("no results to report")
    best: Dict[str, ExperimentResult] = {}
    for result in results:
        label = result.config.label()
        if label not in best or result.test_accuracy > best[label].test_accuracy:
            best[label] = result
    rows = [
        [
            label,
            r.test_accuracy,
            r.time_per_epoch,
            r.pred_entropy,
            r.n_distinct_predictions,
        ]
        for label, r in sorted(best.items())
    ]
    return format_markdown_table(
        ["method", "accuracy", "time/epoch (s)", "pred entropy", "distinct labels"],
        rows,
    )


def depth_sweep_table(results: Sequence[ExperimentResult]) -> str:
    """Depth (rows) × method (columns) accuracy matrix."""
    if not results:
        raise ValueError("no results to report")
    methods = sorted({r.config.label() for r in results})
    by_depth = _by(results, "hidden_layers")
    rows: List[list] = []
    for depth in sorted(by_depth):
        cells: Dict[str, float] = {}
        for result in by_depth[depth]:
            label = result.config.label()
            cells[label] = max(
                cells.get(label, float("-inf")), result.test_accuracy
            )
        rows.append([depth] + [cells.get(m) for m in methods])
    return format_markdown_table(["hidden layers"] + methods, rows)


def render_report(
    results: Sequence[ExperimentResult], title: str = "Experiment report"
) -> str:
    """Full markdown report: per-dataset comparison + depth sweeps."""
    if not results:
        raise ValueError("no results to report")
    sections = [f"# {title}", ""]
    for dataset, group in sorted(_by(results, "dataset").items()):
        sections.append(f"## {dataset}")
        sections.append("")
        sections.append("### Methods at their best configuration")
        sections.append("")
        sections.append(method_comparison_table(group))
        sections.append("")
        depths = {r.config.hidden_layers for r in group}
        if len(depths) > 1:
            sections.append("### Accuracy vs depth")
            sections.append("")
            sections.append(depth_sweep_table(group))
            sections.append("")
    return "\n".join(sections)
