"""Multiprocess fault-tolerant experiment executor.

The paper's feasibility claims (§9.2, §10.4) rest on multi-core execution,
and the full evaluation grid — methods × datasets × depths × batch sizes —
is hours of compute even at miniature scale.  This module runs that grid
for real: it fans a sweep of :class:`~repro.harness.config.ExperimentConfig`
(or arbitrary picklable task specs) out across a ``ProcessPoolExecutor``,
with the fault tolerance a long unattended run needs:

* **Deterministic per-task seeds.**  Seeds are derived from a root seed via
  ``np.random.SeedSequence.spawn`` indexed by *task position*, never by
  worker identity or scheduling order, so a parallel run is bitwise
  identical to the serial run of the same sweep (wall-clock fields aside).
* **Per-task timeouts.**  Enforced inside the worker with ``SIGALRM`` where
  available (the worker survives and moves on to the next task), with a
  parent-side deadline as a backup; a timed-out task is recorded as failed
  without aborting the sweep.
* **Bounded retry with exponential backoff.**  A task that raises is
  retried up to ``retries`` times; every failed attempt is recorded in the
  sink, never swallowed.
* **Graceful degradation.**  ``max_workers=1`` — or a platform where a
  process pool cannot be created — runs the identical code path serially
  in-process.
* **Incremental JSONL sink.**  Terminal outcomes (and intermediate retry
  records) stream to an append-only JSONL file; a crashed run re-invoked
  with ``resume=True`` skips every task whose ``ok`` record is already on
  disk, re-running only failures and never-started work.
"""

from __future__ import annotations

import json
import signal
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..data.datasets import Dataset
from ..obs import InMemoryRecorder, merge_snapshots, write_exposition
from .config import ExperimentConfig
from .experiment import ExperimentResult, run_experiment
from .results import result_from_dict, result_to_dict

__all__ = [
    "TaskOutcome",
    "JsonlSink",
    "ExperimentExecutor",
    "ExecutorError",
    "CheckpointedExperimentTask",
    "derive_task_seeds",
    "task_key",
    "run_experiment_task",
    "run_experiment_traced",
    "TracedExperimentTask",
    "aggregate_traces",
]


class ExecutorError(RuntimeError):
    """Raised when a sweep finishes with unrecoverable task failures."""


def derive_task_seeds(base_seed: int, n: int) -> List[int]:
    """``n`` independent task seeds derived from one root seed.

    Uses ``SeedSequence.spawn`` so the seeds are statistically independent
    and a function of *task index only* — the same sweep gets the same
    seeds whether it runs on 1 worker or 64, in any completion order.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    children = np.random.SeedSequence(base_seed).spawn(n)
    return [int(c.generate_state(1, dtype=np.uint32)[0]) for c in children]


def task_key(task: Any) -> str:
    """Stable identity string for a task (resume matching).

    :class:`ExperimentConfig` uses its own :meth:`~ExperimentConfig.key`;
    anything else is keyed by its canonical JSON (falling back to ``repr``
    for non-JSON values).
    """
    if isinstance(task, ExperimentConfig):
        return task.key()
    return json.dumps(task, sort_keys=True, default=repr)


def run_experiment_task(config: ExperimentConfig, dataset: Optional[Dataset]):
    """Default task function: one full :func:`run_experiment` call."""
    return run_experiment(config, dataset=dataset)


class TracedExperimentTask:
    """Picklable task function that traces every run it executes.

    Each worker process gets its own :class:`~repro.obs.InMemoryRecorder`,
    so no cross-process synchronisation is needed; the snapshot rides back
    to the parent inside ``ExperimentResult.trace`` (and therefore through
    the JSONL sink), where :func:`aggregate_traces` can merge the sweep.
    ``probe_every`` additionally attaches the default quality probes at
    that batch cadence (see :func:`repro.harness.experiment.run_experiment`).
    """

    def __init__(self, probe_every: Optional[int] = None):
        if probe_every is not None and probe_every < 1:
            raise ValueError(f"probe_every must be >= 1, got {probe_every}")
        self.probe_every = probe_every

    def __call__(self, config: ExperimentConfig, dataset: Optional[Dataset]):
        return run_experiment(
            config,
            dataset=dataset,
            recorder=InMemoryRecorder(),
            probe_every=self.probe_every,
        )


def run_experiment_traced(config: ExperimentConfig, dataset: Optional[Dataset]):
    """Module-level traced task function (no probes) — kept picklable."""
    return TracedExperimentTask()(config, dataset)


class CheckpointedExperimentTask:
    """Picklable task function that checkpoints every run it executes.

    Each config trains with ``checkpoint_dir`` set, under its
    :meth:`~repro.harness.config.ExperimentConfig.checkpoint_tag` — so a
    task killed by the per-task timeout (or a worker crash) resumes from
    its last completed checkpoint on the next attempt instead of starting
    over from epoch 0.  Combined with ``retry_timeouts=True`` this turns
    the timeout budget into forward progress: a task only needs to fit
    ``checkpoint_every`` epochs per attempt to eventually finish.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        every: int = 1,
        traced: bool = False,
        probe_every: Optional[int] = None,
    ):
        if every <= 0:
            raise ValueError(f"every must be positive, got {every}")
        if probe_every is not None and probe_every < 1:
            raise ValueError(f"probe_every must be >= 1, got {probe_every}")
        self.directory = str(directory)
        self.every = int(every)
        self.traced = bool(traced)
        self.probe_every = probe_every

    def __call__(self, config: ExperimentConfig, dataset: Optional[Dataset]):
        recorder = InMemoryRecorder() if self.traced else None
        return run_experiment(
            config,
            dataset=dataset,
            recorder=recorder,
            checkpoint_every=self.every,
            checkpoint_dir=self.directory,
            probe_every=self.probe_every if self.traced else None,
        )


def aggregate_traces(outcomes: Sequence["TaskOutcome"]) -> Optional[dict]:
    """Merged trace snapshot across a sweep's usable outcomes.

    Counters sum, gauges keep their high-water mark, timings and spans sum
    count and total — see :func:`repro.obs.merge_snapshots`.  Returns None
    when no outcome carries a trace.
    """
    snapshots = [
        outcome.result.trace
        for outcome in outcomes
        if outcome.ok and isinstance(outcome.result, ExperimentResult)
    ]
    if not any(snapshots):
        return None
    return merge_snapshots(snapshots)


@dataclass
class TaskOutcome:
    """Terminal state of one task in a sweep.

    ``status`` is ``"ok"`` (ran and returned), ``"cached"`` (skipped via
    resume, ``result`` decoded from the sink), ``"error"`` (raised on every
    allowed attempt) or ``"timeout"`` (exceeded the per-task budget).
    """

    index: int
    key: str
    status: str
    result: Any = None
    error: Optional[str] = None
    attempts: int = 0
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        """True when a usable result is attached."""
        return self.status in ("ok", "cached")


# ----------------------------------------------------------------------
# result (de)serialisation for the sink
# ----------------------------------------------------------------------
def _encode_result(result: Any) -> Any:
    if result is None:
        return None
    if isinstance(result, ExperimentResult):
        return {"kind": "experiment", "payload": result_to_dict(result)}
    try:
        json.dumps(result)
    except (TypeError, ValueError):
        return {"kind": "repr", "payload": repr(result)}
    return {"kind": "json", "payload": result}


def _decode_result(encoded: Any) -> Any:
    if encoded is None:
        return None
    if encoded["kind"] == "experiment":
        return result_from_dict(encoded["payload"])
    return encoded["payload"]


class JsonlSink:
    """Append-only JSONL log of task outcomes — successes *and* failures.

    One record per line; a crash mid-write loses at most the final line
    (:meth:`load` skips a truncated trailing record), so a sweep can always
    resume from what reached disk.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def append(self, record: Dict[str, Any]) -> None:
        """Append one JSON-safe record."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(json.dumps(record) + "\n")

    def load(self) -> List[Dict[str, Any]]:
        """All intact records (empty if the file does not exist)."""
        if not self.path.exists():
            return []
        records = []
        with open(self.path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    # A partially written (crashed) trailing line.
                    continue
        return records

    def completed(self) -> Dict[str, Dict[str, Any]]:
        """Latest ``ok`` record per task key (what resume can skip)."""
        done = {}
        for record in self.load():
            if record.get("status") == "ok":
                done[record["key"]] = record
        return done


# ----------------------------------------------------------------------
# worker-side execution
# ----------------------------------------------------------------------
class _TaskTimeout(Exception):
    pass


def _raise_task_timeout(signum, frame):
    raise _TaskTimeout()


def _execute(
    task_fn: Callable[[Any, Any], Any],
    task: Any,
    dataset: Any,
    timeout: Optional[float],
):
    """Run one task, converting exceptions and timeouts to picklable data.

    Returns ``(status, payload, duration)`` where payload is the result for
    ``"ok"`` and a message/traceback string otherwise.  The timeout is
    enforced with ``SIGALRM`` when running in a main thread on a platform
    that has it; otherwise enforcement falls back to the parent's deadline.
    """
    start = time.perf_counter()
    use_alarm = timeout is not None and hasattr(signal, "SIGALRM")
    old_handler = None
    if use_alarm:
        try:
            old_handler = signal.signal(signal.SIGALRM, _raise_task_timeout)
            signal.setitimer(signal.ITIMER_REAL, timeout)
        except ValueError:  # not in the main thread
            use_alarm = False
    try:
        result = task_fn(task, dataset)
        return ("ok", result, time.perf_counter() - start)
    except _TaskTimeout:
        return (
            "timeout",
            f"task exceeded its {timeout:g}s budget",
            time.perf_counter() - start,
        )
    except Exception:
        return ("error", traceback.format_exc(limit=20), time.perf_counter() - start)
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------
class ExperimentExecutor:
    """Fan tasks across worker processes with retries, timeouts and resume.

    Parameters
    ----------
    max_workers:
        Worker processes; ``1`` runs serially in-process (same semantics).
    timeout:
        Per-task wall-clock budget in seconds (None = unlimited).  Timed-out
        tasks are recorded as ``"timeout"`` and are not retried unless
        ``retry_timeouts`` is set.
    retries:
        How many times a task that *raises* is re-run (with backoff) before
        being recorded as ``"error"``.
    backoff:
        Base delay in seconds before a retry; doubles per attempt.
    retry_timeouts:
        When True, a task whose in-worker (``SIGALRM``) timeout fired is
        retried like an error, consuming the same ``retries`` budget.
        Pair with :class:`CheckpointedExperimentTask` so each attempt
        resumes from the last checkpoint rather than repeating the same
        doomed run.  Parent-side deadline expiries (worker unresponsive)
        stay terminal either way — the worker may be stuck in native code
        and retrying against it would pile up abandoned processes.
    sink:
        Path or :class:`JsonlSink` receiving incremental outcome records.
    task_fn:
        ``task_fn(task, dataset) -> result``; must be picklable (a
        module-level function or an instance of a module-level class, e.g.
        :class:`CheckpointedExperimentTask`).  Defaults to
        :func:`run_experiment_task`.
    metrics_path:
        File-based Prometheus exposition: after every terminal outcome
        (and once more when the sweep drains) the merged trace snapshot
        across all usable outcomes so far is rendered to this path as
        text-format metrics (atomic replace, so a scraper — or the
        textfile collector of a node exporter — never sees a torn file).
        Sweeps have no port to scrape; the file *is* the endpoint.
    """

    #: extra seconds the parent waits past ``timeout`` before declaring a
    #: task dead itself (covers platforms without SIGALRM).
    deadline_grace = 2.0

    def __init__(
        self,
        max_workers: int = 1,
        timeout: Optional[float] = None,
        retries: int = 1,
        backoff: float = 0.1,
        retry_timeouts: bool = False,
        sink: Optional[Union[str, Path, JsonlSink]] = None,
        task_fn: Callable[[Any, Any], Any] = run_experiment_task,
        metrics_path: Optional[Union[str, Path]] = None,
    ):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be non-negative, got {retries}")
        if backoff < 0:
            raise ValueError(f"backoff must be non-negative, got {backoff}")
        self.max_workers = int(max_workers)
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.retry_timeouts = bool(retry_timeouts)
        if sink is not None and not isinstance(sink, JsonlSink):
            sink = JsonlSink(sink)
        self.sink = sink
        self.task_fn = task_fn
        self.metrics_path = None if metrics_path is None else Path(metrics_path)

    # ------------------------------------------------------------------
    def run(
        self,
        tasks: Sequence[Any],
        dataset: Optional[Dataset] = None,
        resume: bool = False,
        reseed: Optional[int] = None,
        callback: Optional[Callable[[TaskOutcome], None]] = None,
    ) -> List[TaskOutcome]:
        """Run every task; returns outcomes in task order.

        ``reseed`` (tasks must be :class:`ExperimentConfig`) replaces each
        config's seed with one derived from the root seed by task index —
        see :func:`derive_task_seeds`.  ``resume`` skips tasks whose ``ok``
        record already exists in the sink (and therefore requires one —
        without a sink there is nothing to resume from, which raises
        ``ValueError`` rather than silently re-running everything).
        ``callback`` fires once per fresh terminal outcome, in completion
        order.
        """
        if resume and self.sink is None:
            raise ValueError(
                "resume=True requires a sink: completed work is matched "
                "against the sink's records, so without one there is "
                "nothing to resume from"
            )
        tasks = list(tasks)
        if reseed is not None:
            seeds = derive_task_seeds(reseed, len(tasks))
            tasks = [cfg.with_overrides(seed=s) for cfg, s in zip(tasks, seeds)]
        keys = [task_key(t) for t in tasks]
        outcomes: List[Optional[TaskOutcome]] = [None] * len(tasks)

        fresh: List[int] = []
        if resume and self.sink is not None:
            done = self.sink.completed()
            for i, key in enumerate(keys):
                if key in done:
                    record = done[key]
                    outcomes[i] = TaskOutcome(
                        index=i,
                        key=key,
                        status="cached",
                        result=_decode_result(record.get("result")),
                        attempts=int(record.get("attempts", 1)),
                        duration=float(record.get("duration", 0.0)),
                    )
                else:
                    fresh.append(i)
        else:
            fresh = list(range(len(tasks)))

        def export_metrics():
            if self.metrics_path is None:
                return
            landed = [o for o in outcomes if o is not None]
            aggregate = aggregate_traces(landed)
            snapshot = dict(aggregate) if aggregate else {}
            # Sweep progress rides along so a scraper can watch a sweep
            # with untraced tasks (or one that has not finished a task yet).
            gauges = dict(snapshot.get("gauges", {}))
            gauges["sweep.tasks"] = float(len(tasks))
            gauges["sweep.done"] = float(len(landed))
            gauges["sweep.failed"] = float(sum(not o.ok for o in landed))
            snapshot["gauges"] = gauges
            write_exposition(self.metrics_path, snapshot)

        def record(i: int, status: str, payload: Any, attempts: int, duration: float):
            outcome = TaskOutcome(
                index=i,
                key=keys[i],
                status=status,
                result=payload if status == "ok" else None,
                error=None if status == "ok" else payload,
                attempts=attempts,
                duration=duration,
            )
            outcomes[i] = outcome
            if self.sink is not None:
                self.sink.append(
                    {
                        "key": outcome.key,
                        "index": i,
                        "status": status,
                        "attempts": attempts,
                        "duration": duration,
                        "error": outcome.error,
                        "result": _encode_result(outcome.result),
                    }
                )
            if callback is not None:
                callback(outcome)
            export_metrics()

        def record_retry(i: int, attempt: int, error: str):
            if self.sink is not None:
                self.sink.append(
                    {
                        "key": keys[i],
                        "index": i,
                        "status": "retry",
                        "attempts": attempt,
                        "error": error,
                    }
                )

        if fresh:
            if self.max_workers == 1:
                self._run_serial(tasks, fresh, dataset, record, record_retry)
            else:
                pool = self._make_pool()
                if pool is None:  # platform without process pools
                    self._run_serial(tasks, fresh, dataset, record, record_retry)
                else:
                    self._run_pool(pool, tasks, fresh, dataset, record, record_retry)
        export_metrics()
        return outcomes  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _make_pool(self) -> Optional[ProcessPoolExecutor]:
        try:
            return ProcessPoolExecutor(max_workers=self.max_workers)
        except (OSError, PermissionError, ImportError, NotImplementedError):
            return None

    def _backoff_delay(self, attempt: int) -> float:
        return self.backoff * (2 ** (attempt - 1))

    def _retryable(self, status: str) -> bool:
        """Whether a worker-reported failure status consumes a retry."""
        if status == "error":
            return True
        return status == "timeout" and self.retry_timeouts

    # ------------------------------------------------------------------
    def _run_serial(self, tasks, indices, dataset, record, record_retry):
        """In-process execution with identical retry/timeout semantics."""
        for i in indices:
            attempt = 0
            while True:
                attempt += 1
                status, payload, duration = _execute(
                    self.task_fn, tasks[i], dataset, self.timeout
                )
                if self._retryable(status) and attempt <= self.retries:
                    record_retry(i, attempt, payload)
                    time.sleep(self._backoff_delay(attempt))
                    continue
                record(i, status, payload, attempt, duration)
                break

    # ------------------------------------------------------------------
    def _run_pool(self, pool, tasks, indices, dataset, record, record_retry):
        """Pool execution: submit, collect, retry, enforce deadlines.

        Owns the pool's lifetime (it may be rebuilt after a hard worker
        crash); shuts the final pool down on exit without waiting on
        abandoned (timed-out) workers.
        """
        live = [pool]  # one-slot box so closures and the finally see rebuilds
        pending = deque(indices)
        attempts = {i: 0 for i in indices}
        retry_at: Dict[int, float] = {}
        in_flight: Dict[Any, tuple] = {}  # future -> (index, submit time)

        def submit(i: int):
            attempts[i] += 1
            fut = live[0].submit(
                _execute, self.task_fn, tasks[i], dataset, self.timeout
            )
            in_flight[fut] = (i, time.monotonic())

        def rebuild_pool():
            live[0].shutdown(wait=False, cancel_futures=True)
            rebuilt = self._make_pool()
            if rebuilt is None:
                raise ExecutorError("process pool died and could not be rebuilt")
            live[0] = rebuilt

        # Join the pool only on a clean drain: if a future was abandoned
        # (parent-side deadline, worker possibly hung) or the loop aborted
        # mid-flight, waiting could block on a stuck task.  Skipping the
        # join races with concurrent.futures' atexit hook (a harmless but
        # noisy "Bad file descriptor" traceback), so prefer it when safe.
        wait_on_exit = False
        try:
            wait_on_exit = self._pool_loop(
                pending, attempts, retry_at, in_flight,
                submit, rebuild_pool, record, record_retry,
            )
        finally:
            live[0].shutdown(wait=wait_on_exit, cancel_futures=True)

    def _pool_loop(
        self, pending, attempts, retry_at, in_flight,
        submit, rebuild_pool, record, record_retry,
    ):
        abandoned = 0
        while pending or in_flight or retry_at:
            now = time.monotonic()
            for i, ready in list(retry_at.items()):
                if now >= ready:
                    pending.append(i)
                    del retry_at[i]
            while pending and len(in_flight) < 2 * self.max_workers:
                submit(pending.popleft())
            if not in_flight:
                if retry_at:
                    time.sleep(
                        max(min(retry_at.values()) - time.monotonic(), 0.01)
                    )
                continue

            wait_timeout = None
            if self.timeout is not None:
                next_deadline = min(
                    start + self.timeout + self.deadline_grace
                    for _, start in in_flight.values()
                )
                wait_timeout = max(next_deadline - time.monotonic(), 0.0)
            if retry_at:
                next_retry = max(min(retry_at.values()) - time.monotonic(), 0.0)
                wait_timeout = (
                    next_retry if wait_timeout is None
                    else min(wait_timeout, next_retry)
                )
            done, _ = wait(
                set(in_flight), timeout=wait_timeout, return_when=FIRST_COMPLETED
            )

            if not done and self.timeout is not None:
                # Parent-side deadline: the worker never reported back
                # (no SIGALRM, or it is stuck in native code).  Record the
                # timeout and abandon the future; its late result, if any,
                # is discarded when the pool shuts down.
                now = time.monotonic()
                for fut, (i, start) in list(in_flight.items()):
                    if now >= start + self.timeout + self.deadline_grace:
                        fut.cancel()
                        del in_flight[fut]
                        abandoned += 1
                        record(
                            i,
                            "timeout",
                            f"no response within {self.timeout:g}s "
                            "(worker unresponsive)",
                            attempts[i],
                            now - start,
                        )
                continue

            for fut in done:
                i, start = in_flight.pop(fut)
                try:
                    status, payload, duration = fut.result()
                except BrokenProcessPool:
                    # A worker died hard (segfault / os._exit), which
                    # poisons the whole pool: rebuild it and retry every
                    # in-flight task.  All of them consume an attempt —
                    # the actual culprit is unattributable.
                    crashed = [i] + [idx for idx, _ in in_flight.values()]
                    in_flight.clear()
                    rebuild_pool()
                    for idx in crashed:
                        message = "worker process died (BrokenProcessPool)"
                        if attempts[idx] <= self.retries:
                            record_retry(idx, attempts[idx], message)
                            retry_at[idx] = (
                                time.monotonic()
                                + self._backoff_delay(attempts[idx])
                            )
                        else:
                            record(idx, "error", message, attempts[idx], 0.0)
                    break  # in_flight changed; restart the loop
                except Exception:  # pragma: no cover - defensive
                    status, duration = "error", time.monotonic() - start
                    payload = traceback.format_exc(limit=20)
                if self._retryable(status) and attempts[i] <= self.retries:
                    record_retry(i, attempts[i], payload)
                    retry_at[i] = time.monotonic() + self._backoff_delay(attempts[i])
                else:
                    record(i, status, payload, attempts[i], duration)
        return abandoned == 0
