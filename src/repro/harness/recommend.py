"""The §10.4 decision tree, executable.

The paper closes its discussion with a decision tree for choosing a
training method on CPU machines:

* minibatch SGD → **MC-approx** (§9.3, Table 4);
* stochastic SGD, shallow network (≤ 4 hidden layers), parallel hardware
  available → **ALSH-approx** (it scales to ~2^6 processors for up to four
  layers [50]);
* stochastic SGD otherwise → **standard** training (no sampling method
  wins; "designing scalable sampling-based algorithms for SGD on CPU
  remains an open research direction").

:func:`recommend_method` encodes exactly that tree and returns both the
choice and the paper-grounded reason, so the harness (and the CLI) can
explain itself.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Recommendation", "recommend_method"]

SHALLOW_LIMIT = 4  # "Shallow (<=4)" in the paper's tree


@dataclass(frozen=True)
class Recommendation:
    """A method choice plus the paper's justification."""

    method: str
    reason: str


def recommend_method(
    batch_size: int,
    hidden_layers: int,
    parallel_hardware: bool = False,
) -> Recommendation:
    """Apply the §10.4 decision tree.

    Parameters
    ----------
    batch_size:
        1 selects the stochastic branch; anything larger the minibatch
        branch.
    hidden_layers:
        Network depth (the tree splits at 4).
    parallel_hardware:
        Whether multiple cores are available for ALSH-approx's table
        machinery.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if hidden_layers < 0:
        raise ValueError(f"hidden_layers must be >= 0, got {hidden_layers}")

    if batch_size > 1:
        return Recommendation(
            "mc",
            "minibatch SGD: MC-approx surpasses other methods in accuracy, "
            "speed and memory efficiency (§9.3, Tables 2 and 4)",
        )
    if hidden_layers <= SHALLOW_LIMIT and parallel_hardware:
        return Recommendation(
            "alsh",
            "stochastic SGD on a shallow network with parallel hardware: "
            "ALSH-approx scales with multi-processing up to four layers "
            "(§10.4, [50]); beyond that Theorem 7.2's error growth bites",
        )
    if hidden_layers <= SHALLOW_LIMIT:
        return Recommendation(
            "standard",
            "stochastic SGD without parallel hardware: sequential "
            "ALSH-approx is the slowest method (Table 3) and MC-approx's "
            "probability machinery is overhead at batch size 1 (§9.3)",
        )
    return Recommendation(
        "standard",
        "stochastic SGD on a deep network: ALSH-approx collapses past "
        "~4 hidden layers (Theorem 7.2, Figure 7) and no sampling-based "
        "method wins — an open research direction (§10.2)",
    )
