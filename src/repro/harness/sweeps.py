"""Declarative experiment sweeps with resume support.

The paper's evaluation is a grid: methods × datasets × depths × batch
sizes.  :class:`Sweep` expands such a grid into configs, runs them through
the fault-tolerant :class:`~repro.harness.executor.ExperimentExecutor`
(serially by default, across worker processes with ``workers > 1``),
streams results into a :class:`~repro.harness.results.ResultStore`, and —
because the grid is hours of compute at full scale — skips configurations
whose results are already stored, so an interrupted sweep resumes where it
stopped.
"""

from __future__ import annotations

import itertools
from dataclasses import asdict
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

from ..data.datasets import Dataset
from .config import ExperimentConfig
from .executor import ExecutorError, ExperimentExecutor
from .experiment import ExperimentResult
from .results import ResultStore

__all__ = ["Sweep"]


class Sweep:
    """A grid of experiment configurations.

    Parameters
    ----------
    base:
        The configuration every grid point starts from.
    grid:
        Mapping of :class:`ExperimentConfig` field names to the values to
        sweep; the cartesian product defines the grid.  ``method_kwargs``
        may be swept like any other field (values are dicts).
    paper_defaults:
        When True, each grid point is rebuilt via
        :meth:`ExperimentConfig.paper_default` for its method, so §8.4
        method-specific settings (Adam for ALSH, lr for MC^S, p = 0.05)
        are applied before the grid's overrides.
    """

    def __init__(
        self,
        base: ExperimentConfig,
        grid: Dict[str, Sequence],
        paper_defaults: bool = False,
    ):
        if not grid:
            raise ValueError("grid must contain at least one swept field")
        valid_fields = set(asdict(base))
        unknown = set(grid) - valid_fields
        if unknown:
            raise ValueError(f"unknown config fields in grid: {sorted(unknown)}")
        for field, values in grid.items():
            if not values:
                raise ValueError(f"grid field {field!r} has no values")
        self.base = base
        self.grid = {k: list(v) for k, v in grid.items()}
        self.paper_defaults = bool(paper_defaults)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        n = 1
        for values in self.grid.values():
            n *= len(values)
        return n

    def configs(self) -> Iterator[ExperimentConfig]:
        """Expand the grid, in deterministic field order."""
        fields = sorted(self.grid)
        for combo in itertools.product(*(self.grid[f] for f in fields)):
            updates = dict(zip(fields, combo))
            if self.paper_defaults:
                method = updates.pop("method", self.base.method)
                batch = updates.pop("batch_size", self.base.batch_size)
                cfg = ExperimentConfig.paper_default(method, batch_size=batch)
                # Carry the base's non-default fields, then the grid's.
                base_updates = {
                    k: v
                    for k, v in asdict(self.base).items()
                    if k not in ("method", "batch_size", "lr", "optimizer",
                                 "method_kwargs")
                }
                cfg = cfg.with_overrides(**base_updates)
                yield cfg.with_overrides(**updates)
            else:
                yield self.base.with_overrides(**updates)

    # ------------------------------------------------------------------
    def run(
        self,
        store: Optional[Union[str, ResultStore]] = None,
        dataset: Optional[Dataset] = None,
        resume: bool = True,
        callback: Optional[Callable[[ExperimentResult], None]] = None,
        workers: int = 1,
        timeout: Optional[float] = None,
        retries: int = 0,
    ) -> List[ExperimentResult]:
        """Run every grid point; returns all results (stored + fresh).

        With ``store`` and ``resume=True``, configurations whose exact
        config already appears in the store are skipped and the stored
        result is returned in their place.  ``workers``, ``timeout`` and
        ``retries`` are forwarded to the
        :class:`~repro.harness.executor.ExperimentExecutor` that runs the
        fresh configurations; result order is the grid order regardless of
        worker scheduling.  Raises :class:`ExecutorError` if any
        configuration still fails after its retries.
        """
        if isinstance(store, str):
            store = ResultStore(store)
        done = {}
        if store is not None and resume:
            for result in store.load():
                done[self._key(result.config)] = result

        configs = list(self.configs())
        results: List[Optional[ExperimentResult]] = [None] * len(configs)
        fresh: List[int] = []
        for i, cfg in enumerate(configs):
            stored = done.get(self._key(cfg))
            if stored is not None:
                results[i] = stored
            else:
                fresh.append(i)
        if fresh:
            def on_outcome(outcome):
                if not outcome.ok:
                    return
                if store is not None:
                    store.append(outcome.result)
                if callback is not None:
                    callback(outcome.result)

            executor = ExperimentExecutor(
                max_workers=workers, timeout=timeout, retries=retries
            )
            outcomes = executor.run(
                [configs[i] for i in fresh], dataset=dataset, callback=on_outcome
            )
            failures = [o for o in outcomes if not o.ok]
            if failures:
                detail = "; ".join(
                    f"{configs[fresh[o.index]].label()}: [{o.status}] "
                    f"{(o.error or '').strip().splitlines()[-1]}"
                    for o in failures
                )
                raise ExecutorError(
                    f"{len(failures)}/{len(fresh)} sweep configurations "
                    f"failed: {detail}"
                )
            for i, outcome in zip(fresh, outcomes):
                results[i] = outcome.result
        return results  # type: ignore[return-value]

    @staticmethod
    def _key(cfg: ExperimentConfig) -> str:
        return cfg.key()
