"""Experiment runner: config in, measured result out.

This is the function behind every table and figure bench: build the
network for the config's depth/width, train with the configured method,
then evaluate accuracy, confusion matrix and the §10.3 prediction-collapse
diagnostics on the test split.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..core.base import History
from ..core.registry import make_trainer
from ..data.benchmarks import load_benchmark
from ..data.datasets import Dataset
from ..memsim.profile import estimate_training_memory
from ..nn.metrics import (
    confusion_matrix,
    distinct_predictions,
    prediction_entropy,
)
from ..nn.network import MLP
from ..obs import Recorder
from .config import ExperimentConfig

__all__ = ["ExperimentResult", "build_network", "run_experiment"]


@dataclass
class ExperimentResult:
    """Everything measured from one training run."""

    config: ExperimentConfig
    history: History
    test_accuracy: float
    confusion: np.ndarray
    pred_entropy: float
    n_distinct_predictions: int
    train_time: float
    memory_breakdown: Dict[str, int]
    #: recorder snapshot (counters/gauges/timings/spans) when the run was
    #: traced; None for untraced runs.
    trace: Optional[dict] = None

    @property
    def time_per_epoch(self) -> float:
        """Mean wall-clock seconds per training epoch."""
        return self.train_time / max(len(self.history.epochs), 1)

    def summary(self) -> str:
        """One-line human-readable result."""
        return (
            f"{self.config.label()} on {self.config.dataset} "
            f"({self.config.hidden_layers}x{self.config.hidden_width}): "
            f"acc={self.test_accuracy:.4f}, "
            f"time/epoch={self.time_per_epoch:.3f}s, "
            f"pred_entropy={self.pred_entropy:.3f}"
        )


def build_network(config: ExperimentConfig, dataset: Dataset) -> MLP:
    """The MLP for a config: input → hidden_layers × width → classes."""
    sizes = (
        [dataset.input_dim]
        + [config.hidden_width] * config.hidden_layers
        + [dataset.n_classes]
    )
    return MLP(sizes, seed=config.seed)


def run_experiment(
    config: ExperimentConfig,
    dataset: Optional[Dataset] = None,
    recorder: Optional[Recorder] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    probe_every: Optional[int] = None,
) -> ExperimentResult:
    """Train per the config and evaluate on the test split.

    ``dataset`` may be passed in to share one generated dataset across many
    configs (the benches do this); otherwise it is generated from the
    config's ``dataset``/``data_scale``/``seed``.

    ``recorder`` threads an observability sink (:mod:`repro.obs`) through
    the trainer; its snapshot is attached to the result as ``trace``.
    Without one, training runs with the no-op recorder and ``trace`` is
    None.

    ``probe_every`` attaches the default quality probes
    (:mod:`repro.obs.probes`) at that batch cadence.  Probes are
    read-only — they never change what is trained — and only do work
    when the recorder is enabled.  Their RNG stream is derived from the
    config seed, so probe series are reproducible and survive
    checkpoint/resume.

    ``checkpoint_dir`` enables crash-safe training (see
    :meth:`repro.core.base.Trainer.fit`): the trainer state is written
    every ``checkpoint_every`` epochs under the config's
    :meth:`~repro.harness.config.ExperimentConfig.checkpoint_tag`, and an
    interrupted run invoked again with the same config resumes from the
    last checkpoint, bitwise-identically.  ``train_time`` then covers only
    the epochs actually run in this invocation.
    """
    if dataset is None:
        dataset = load_benchmark(config.dataset, scale=config.data_scale, seed=config.seed)
    net = build_network(config, dataset)
    trainer_kwargs = dict(config.method_kwargs)
    if config.backend is not None:
        trainer_kwargs["compute_backend"] = config.backend
    trainer = make_trainer(
        config.method,
        net,
        lr=config.lr,
        optimizer=config.optimizer,
        seed=config.seed,
        recorder=recorder,
        **trainer_kwargs,
    )
    if probe_every is not None:
        from ..obs.probes import ProbeManager, default_probes

        probe_seed = np.random.SeedSequence(
            [config.seed if config.seed is not None else 0, 0x0B5]
        )
        trainer.attach_probes(
            ProbeManager(
                default_probes(), probe_every=probe_every, seed=probe_seed
            )
        )
    start = time.perf_counter()
    history = trainer.fit(
        dataset.x_train,
        dataset.y_train,
        epochs=config.epochs,
        batch_size=config.batch_size,
        x_val=dataset.x_val if dataset.n_val else None,
        y_val=dataset.y_val if dataset.n_val else None,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        checkpoint_tag=(
            config.checkpoint_tag() if checkpoint_dir is not None else None
        ),
    )
    train_time = time.perf_counter() - start

    preds = trainer.predict(dataset.x_test)
    acc = float((preds == dataset.y_test).mean())
    cm = confusion_matrix(dataset.y_test, preds, dataset.n_classes)
    memory = estimate_training_memory(
        config.method,
        [dataset.input_dim]
        + [config.hidden_width] * config.hidden_layers
        + [dataset.n_classes],
        batch=config.batch_size,
        optimizer=config.optimizer,
    )
    return ExperimentResult(
        config=config,
        history=history,
        test_accuracy=acc,
        confusion=cm,
        pred_entropy=prediction_entropy(preds, dataset.n_classes),
        n_distinct_predictions=distinct_predictions(preds),
        train_time=train_time,
        memory_breakdown=memory,
        trace=recorder.snapshot() if recorder is not None and recorder.enabled else None,
    )
