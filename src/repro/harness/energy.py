"""Energy-consumption model for sampling-based training (paper §11).

The paper's closing future-work direction: "study the impact of
sampling-based techniques on energy efficiency."  This module provides a
first-order model:

    E_step = FLOPs · e_flop  +  DRAM bytes · e_dram  +  cache bytes · e_cache

with the arithmetic counts from :mod:`repro.harness.flops` and memory
traffic from the :mod:`repro.memsim` trace models.  The default energy
coefficients are representative desktop-CPU figures (double-precision
FMA ≈ 10 pJ/FLOP at the core, DRAM ≈ 20 pJ/byte, on-chip SRAM ≈ 1
pJ/byte); they are parameters, not claims — the *ratios between methods*
are the output of interest, mirroring how the rest of this reproduction
treats absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..memsim.cache import default_hierarchy
from ..memsim.profile import MethodTraceModel
from .flops import method_step_flops

__all__ = ["EnergyModel", "EnergyEstimate", "estimate_training_energy"]


@dataclass
class EnergyEstimate:
    """Energy of one training step, split by source (Joules)."""

    compute_j: float
    dram_j: float
    cache_j: float

    @property
    def total_j(self) -> float:
        """Total estimated energy of the step."""
        return self.compute_j + self.dram_j + self.cache_j


class EnergyModel:
    """First-order CPU energy model.

    Parameters
    ----------
    pj_per_flop:
        Core energy per floating-point operation (picojoules).
    pj_per_dram_byte:
        Energy per byte transferred from main memory.
    pj_per_cache_byte:
        Energy per byte served by on-chip caches.
    hierarchy_scale:
        Cache scaling passed to :func:`repro.memsim.cache.default_hierarchy`
        (pairs with the trace model's byte scaling).
    """

    def __init__(
        self,
        pj_per_flop: float = 10.0,
        pj_per_dram_byte: float = 20.0,
        pj_per_cache_byte: float = 1.0,
        hierarchy_scale: float = 1.0 / 8.0,
    ):
        if min(pj_per_flop, pj_per_dram_byte, pj_per_cache_byte) < 0:
            raise ValueError("energy coefficients must be non-negative")
        self.pj_per_flop = float(pj_per_flop)
        self.pj_per_dram_byte = float(pj_per_dram_byte)
        self.pj_per_cache_byte = float(pj_per_cache_byte)
        self.hierarchy_scale = float(hierarchy_scale)

    def estimate_step(
        self,
        method: str,
        layer_sizes: Sequence[int],
        batch: int = 1,
        steps: int = 3,
        seed: int = 0,
        **method_kwargs,
    ) -> EnergyEstimate:
        """Energy of one training step of ``method`` on the architecture.

        Memory traffic is measured by replaying ``steps`` trace steps
        through the scaled hierarchy and averaging; the byte scaling of the
        trace model (itemsize 1 = 1/8 of float64 bytes) is undone so the
        estimate is in real bytes.
        """
        flops = method_step_flops(method, layer_sizes, batch, **method_kwargs)
        trace_method = method if method != "topk" else "dropout_sliced"
        model = MethodTraceModel(layer_sizes, batch=batch, seed=seed)
        hierarchy = default_hierarchy(self.hierarchy_scale)
        for _ in range(steps):
            hierarchy.run_trace(model.step_trace(trace_method))
        line = hierarchy.line_size
        byte_unscale = 8.0  # trace model itemsize 1 vs float64
        dram_bytes = hierarchy.dram_accesses * line * byte_unscale / steps
        cache_hits = sum(lvl.hits for lvl in hierarchy.levels)
        cache_bytes = cache_hits * line * byte_unscale / steps
        pj = 1e-12
        return EnergyEstimate(
            compute_j=flops.total * self.pj_per_flop * pj,
            dram_j=dram_bytes * self.pj_per_dram_byte * pj,
            cache_j=cache_bytes * self.pj_per_cache_byte * pj,
        )


def estimate_training_energy(
    layer_sizes: Sequence[int],
    batch: int = 1,
    methods: Sequence[str] = ("standard", "dropout", "adaptive_dropout", "mc", "alsh"),
    model: Optional[EnergyModel] = None,
    **method_kwargs,
) -> Dict[str, EnergyEstimate]:
    """Per-method per-step energy estimates for one architecture."""
    model = model if model is not None else EnergyModel()
    return {
        m: model.estimate_step(m, layer_sizes, batch=batch, **method_kwargs)
        for m in methods
    }
