"""Text rendering of the paper's tables and figures.

Every bench prints its reproduction through these helpers: aligned tables
(Tables 2–4), ASCII-art confusion matrices (Figure 3) and labelled numeric
series (the line plots of Figures 7–12).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["format_table", "render_confusion", "format_series", "format_markdown_table"]

_SHADES = " .:-=+*#%@"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    float_fmt: str = "{:.4f}",
) -> str:
    """Aligned plain-text table; floats are formatted, None shows as '-'."""
    str_rows: List[List[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if value is None:
                cells.append("-")
            elif isinstance(value, float):
                cells.append(float_fmt.format(value))
            else:
                cells.append(str(value))
        str_rows.append(cells)
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for cells in str_rows:
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    float_fmt: str = "{:.4f}",
) -> str:
    """GitHub-flavoured markdown table (used by EXPERIMENTS.md generation)."""
    def fmt(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
    return "\n".join(lines)


def render_confusion(cm: np.ndarray, title: Optional[str] = None) -> str:
    """ASCII heat map of a confusion matrix (rows: true, cols: predicted).

    Cell shading is row-normalised, mirroring how the paper's Figure 3
    panels read: a clean diagonal means a healthy classifier, vertical
    bars mean the §10.3 prediction collapse.
    """
    cm = np.asarray(cm)
    if cm.ndim != 2 or cm.shape[0] != cm.shape[1]:
        raise ValueError(f"confusion matrix must be square, got {cm.shape}")
    n = cm.shape[0]
    row_sums = cm.sum(axis=1, keepdims=True).astype(float)
    row_sums[row_sums == 0] = 1.0
    norm = cm / row_sums
    lines = []
    if title:
        lines.append(title)
    header = "     " + " ".join(f"{j:>2d}" for j in range(n))
    lines.append(header + "   (predicted)")
    for i in range(n):
        shades = []
        for j in range(n):
            level = int(round(norm[i, j] * (len(_SHADES) - 1)))
            shades.append(" " + _SHADES[level] * 2)
        lines.append(f"{i:>3d} " + "".join(shades))
    lines.append(f"diagonal mass: {np.trace(cm) / max(cm.sum(), 1):.3f}")
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: Dict[str, Sequence[float]],
    title: Optional[str] = None,
    float_fmt: str = "{:.4f}",
) -> str:
    """Figure data as a table: one row per x value, one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row = [x]
        for name in series:
            values = series[name]
            row.append(float(values[i]) if i < len(values) else None)
        rows.append(row)
    return format_table(headers, rows, title=title, float_fmt=float_fmt)
