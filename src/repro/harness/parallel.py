"""Parallel-speedup model for ALSH-approx (§9.2 / §10.4).

The paper repeatedly notes that ALSH-approx's practicality rests on
multi-core execution: "the hash table construction, computing hash
signature, querying hash tables, and updating weight vectors by sparse
weight gradients are parallelized", scaling "up to 2^6 processors" in the
original evaluation — while accuracy is unaffected by parallelism.  This
module models that with a per-phase Amdahl decomposition so the §10.4
decision tree ("ALSH-approx is the right choice up to 4 layers *given*
parallel hardware") can be regenerated quantitatively:

    T(P) = Σ_phase  serial_fraction·t + parallel_fraction·t / min(P, limit)

Phases and their parallelisable fractions follow the paper's description;
they are parameters, not measurements, and the benches only rely on the
orderings they produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

__all__ = [
    "PhaseProfile",
    "ALSH_PHASES",
    "projected_time",
    "speedup_curve",
    "fit_from_measurements",
    "measured_vs_projected",
]


@dataclass(frozen=True)
class PhaseProfile:
    """One phase of a training step under parallel execution.

    ``share`` is the phase's fraction of single-core step time;
    ``parallel_fraction`` the part of the phase that scales with cores;
    ``scaling_limit`` caps useful parallelism (e.g. L tables can use at
    most L cores for table probing).
    """

    name: str
    share: float
    parallel_fraction: float
    scaling_limit: int = 1 << 30

    def time_at(self, processors: int) -> float:
        """Phase time at P processors (single-core phase time = share)."""
        if processors < 1:
            raise ValueError(f"processors must be >= 1, got {processors}")
        p_eff = min(processors, self.scaling_limit)
        serial = (1.0 - self.parallel_fraction) * self.share
        parallel = self.parallel_fraction * self.share / p_eff
        return serial + parallel


# The paper's §9.2 phase list for ALSH-approx, with shares estimated from
# this repository's own sequential phase timings and scaling limits from
# the algorithm's structure (hash probes parallelise across L tables and
# samples; sparse updates across the active columns).
ALSH_PHASES: Sequence[PhaseProfile] = (
    PhaseProfile("hash_signatures", share=0.20, parallel_fraction=0.95),
    PhaseProfile("table_queries", share=0.15, parallel_fraction=0.90),
    PhaseProfile("sparse_products", share=0.35, parallel_fraction=0.90),
    PhaseProfile("sparse_updates", share=0.20, parallel_fraction=0.85),
    PhaseProfile("table_maintenance", share=0.10, parallel_fraction=0.80),
)


def projected_time(
    single_core_time: float,
    processors: int,
    phases: Sequence[PhaseProfile] = ALSH_PHASES,
) -> float:
    """Projected step/epoch time at P processors.

    ``single_core_time`` is a measured sequential time (e.g. from the
    Table 3 bench); the phase shares must sum to 1.
    """
    if single_core_time <= 0:
        raise ValueError(f"single_core_time must be positive, got {single_core_time}")
    total_share = sum(p.share for p in phases)
    if abs(total_share - 1.0) > 1e-9:
        raise ValueError(f"phase shares must sum to 1, got {total_share}")
    return single_core_time * sum(p.time_at(processors) for p in phases)


def speedup_curve(
    processors: Sequence[int],
    phases: Sequence[PhaseProfile] = ALSH_PHASES,
) -> Dict[int, float]:
    """Speedup over single-core for each processor count."""
    base = projected_time(1.0, 1, phases)
    return {p: base / projected_time(1.0, p, phases) for p in processors}


def fit_from_measurements(
    measurements: Dict[int, float], name: str = "measured"
) -> PhaseProfile:
    """Fit a single-phase Amdahl profile to measured wall-clock times.

    ``measurements`` maps processor count to measured time (e.g. the same
    sweep run through :class:`~repro.harness.executor.ExperimentExecutor`
    at several ``max_workers``) and must include the single-core point.
    The model is ``T(P) = T(1)·((1 − f) + f/P)``; the least-squares
    parallel fraction ``f`` has the closed form

        f = Σ_P x_P (1 − T(P)/T(1)) / Σ_P x_P²,   x_P = 1 − 1/P,

    clamped to [0, 1].  The returned profile plugs straight into
    :func:`projected_time` / :func:`speedup_curve`, so the paper's §9.2
    projection and a real measurement can be compared in one report.
    """
    if 1 not in measurements:
        raise ValueError("measurements must include the 1-processor time")
    t1 = measurements[1]
    if t1 <= 0:
        raise ValueError(f"single-core time must be positive, got {t1}")
    num = 0.0
    den = 0.0
    for p, t in measurements.items():
        if p < 1:
            raise ValueError(f"processor counts must be >= 1, got {p}")
        if t <= 0:
            raise ValueError(f"measured times must be positive, got {t} at P={p}")
        x = 1.0 - 1.0 / p
        num += x * (1.0 - t / t1)
        den += x * x
    fraction = num / den if den > 0 else 0.0
    fraction = min(max(fraction, 0.0), 1.0)
    return PhaseProfile(name, share=1.0, parallel_fraction=fraction)


def measured_vs_projected(
    measurements: Dict[int, float],
    phases: Sequence[PhaseProfile] = ALSH_PHASES,
) -> Dict[int, Dict[str, float]]:
    """Measured speedups next to the §9.2 model's projection, per P.

    Each entry holds the measured speedup over the single-core time, the
    phase model's projection, and the fitted single-phase Amdahl curve —
    the three columns of the "does real parallelism match the paper's
    story" report.
    """
    fitted = fit_from_measurements(measurements)
    t1 = measurements[1]
    report = {}
    for p in sorted(measurements):
        report[p] = {
            "measured": t1 / measurements[p],
            "projected": 1.0 / projected_time(1.0, p, phases),
            "fitted": 1.0 / projected_time(1.0, p, (fitted,)),
        }
    return report
