"""Experiment configuration with the paper's defaults (§8.4).

An :class:`ExperimentConfig` pins everything that varies across the
paper's tables and figures: dataset, method, depth, width, batching regime
and learning rate.  :meth:`ExperimentConfig.paper_default` applies §8.4's
method-specific settings — Adam for ALSH-approx, lr 1e-4 for stochastic
MC-approx, keep probability 0.05 for the dropout family.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Optional

__all__ = ["ExperimentConfig"]


@dataclass
class ExperimentConfig:
    """One fully specified training run.

    ``method_kwargs`` are forwarded to the trainer constructor (beyond
    ``lr``/``optimizer``/``seed``, which have their own fields).

    ``backend`` selects the compute backend for the run (``None`` uses
    the process default, see :mod:`repro.backend`); it is part of the
    config identity and of every serialised result record, so
    mixed-backend sweeps stay distinguishable on resume.
    """

    method: str = "standard"
    dataset: str = "mnist"
    data_scale: float = 0.02
    hidden_layers: int = 3
    hidden_width: int = 100
    epochs: int = 3
    batch_size: int = 20
    lr: float = 1e-3
    optimizer: str = "sgd"
    seed: int = 0
    backend: Optional[str] = None
    method_kwargs: Dict = field(default_factory=dict)

    def __post_init__(self):
        if self.hidden_layers < 0:
            raise ValueError(f"hidden_layers must be >= 0, got {self.hidden_layers}")
        if self.hidden_width <= 0:
            raise ValueError(f"hidden_width must be positive, got {self.hidden_width}")
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if not 0.0 < self.data_scale <= 1.0:
            raise ValueError(f"data_scale must be in (0, 1], got {self.data_scale}")

    @property
    def is_stochastic(self) -> bool:
        """True for the paper's "S" (batch size 1) regime."""
        return self.batch_size == 1

    def label(self) -> str:
        """Paper-style label, e.g. ``mc^M`` or ``alsh^S``."""
        suffix = "S" if self.is_stochastic else "M"
        return f"{self.method}^{suffix}"

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

    def key(self) -> str:
        """A stable identity string covering every field.

        Sweeps and the executor's result sink use this to match a stored
        result back to its configuration, so resume works across runs.
        """
        payload = asdict(self)
        payload["method_kwargs"] = sorted(payload["method_kwargs"].items())
        return repr(sorted(payload.items()))

    def checkpoint_tag(self) -> str:
        """Filesystem-safe checkpoint file tag, unique per config.

        Derived from :meth:`key` so two different configs sharing a
        checkpoint directory can never clobber each other's checkpoints.
        """
        digest = hashlib.sha1(self.key().encode()).hexdigest()[:16]
        return f"{self.method}-{digest}"

    @classmethod
    def paper_default(
        cls,
        method: str,
        batch_size: int = 20,
        **overrides,
    ) -> "ExperimentConfig":
        """§8.4 defaults for a method in the given batching regime.

        * lr 1e-3 everywhere except stochastic MC-approx (1e-4, the §9.3
          overfitting fix);
        * Adam for ALSH-approx, SGD otherwise;
        * keep probability p = 0.05 for Dropout / Adaptive-Dropout;
        * MC-approx sampling budget k = 10.
        """
        cfg = cls(method=method, batch_size=batch_size)
        if method == "alsh":
            cfg = cfg.with_overrides(optimizer="adam")
        elif method == "mc":
            if batch_size == 1:
                cfg = cfg.with_overrides(lr=1e-4)
            cfg = cfg.with_overrides(method_kwargs={"k": 10})
        elif method == "dropout":
            cfg = cfg.with_overrides(method_kwargs={"keep_prob": 0.05})
        elif method == "adaptive_dropout":
            cfg = cfg.with_overrides(method_kwargs={"target_keep": 0.05})
        elif method != "standard":
            raise ValueError(f"unknown method {method!r}")
        if overrides:
            method_kwargs = overrides.pop("method_kwargs", None)
            if method_kwargs is not None:
                merged = dict(cfg.method_kwargs)
                merged.update(method_kwargs)
                cfg = cfg.with_overrides(method_kwargs=merged)
            cfg = cfg.with_overrides(**overrides)
        return cfg
