"""Analytical FLOP accounting for every training method.

The paper's complexity discussion (§4.1–4.2) is asymptotic — Θ(n²) per
layer for the exact products, reduced by the sampling ratios.  This module
makes it exact: closed-form floating-point-operation counts per training
step for each method, split into feedforward / backpropagation / overhead
(hashing, probability estimation, selection), so the benches can compare
*measured* speedups against the *arithmetic* ones and quantify how much of
each method's cost is bookkeeping rather than math.

Conventions: a multiply-accumulate counts as 2 FLOPs; element-wise passes
(activations, masks) count 1 FLOP per element; comparisons count 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

__all__ = ["StepFlops", "method_step_flops", "speedup_vs_standard"]


@dataclass
class StepFlops:
    """FLOPs of one training step, split by phase."""

    forward: float
    backward: float
    overhead: float

    @property
    def total(self) -> float:
        """All FLOPs of the step."""
        return self.forward + self.backward + self.overhead

    def __add__(self, other: "StepFlops") -> "StepFlops":
        return StepFlops(
            self.forward + other.forward,
            self.backward + other.backward,
            self.overhead + other.overhead,
        )


def _pairs(layer_sizes: Sequence[int]):
    return list(zip(layer_sizes[:-1], layer_sizes[1:]))


def _dense_forward(batch: int, n_in: int, n_out: int) -> float:
    # matmul + bias + activation
    return 2.0 * batch * n_in * n_out + 2.0 * batch * n_out


def _dense_backward(batch: int, n_in: int, n_out: int, propagate: bool) -> float:
    # gW = a^T delta, gb, optional delta propagation, parameter update.
    flops = 2.0 * batch * n_in * n_out + batch * n_out
    if propagate:
        flops += 2.0 * batch * n_in * n_out + batch * n_in  # da + f' mask
    flops += 2.0 * (n_in * n_out + n_out)  # SGD-style update
    return flops


def _standard(layer_sizes, batch: int, **_) -> StepFlops:
    fwd = bwd = 0.0
    pairs = _pairs(layer_sizes)
    for i, (n_in, n_out) in enumerate(pairs):
        fwd += _dense_forward(batch, n_in, n_out)
        bwd += _dense_backward(batch, n_in, n_out, propagate=i > 0)
    return StepFlops(fwd, bwd, 0.0)


def _dropout(layer_sizes, batch: int, keep_prob: float = 0.05, **_) -> StepFlops:
    fwd = bwd = overhead = 0.0
    pairs = _pairs(layer_sizes)
    n_hidden = len(pairs) - 1
    for i, (n_in, n_out) in enumerate(pairs):
        active = max(1.0, keep_prob * n_out) if i < n_hidden else n_out
        fwd += _dense_forward(batch, n_in, int(active))
        bwd += _dense_backward(batch, n_in, int(active), propagate=i > 0)
        if i < n_hidden:
            overhead += n_out  # mask sampling per node
    return StepFlops(fwd, bwd, overhead * batch)


def _adaptive_dropout(layer_sizes, batch: int, **_) -> StepFlops:
    base = _standard(layer_sizes, batch)
    # Standout computes π = sigmoid(αz + β), samples, and applies the mask:
    # ~4 element ops per hidden node, plus the masked multiply.
    overhead = 0.0
    for _, n_out in _pairs(layer_sizes)[:-1]:
        overhead += 5.0 * batch * n_out
    return StepFlops(base.forward, base.backward, overhead)


def _alsh(
    layer_sizes,
    batch: int,
    active_frac: float = 0.2,
    n_bits: int = 6,
    n_tables: int = 5,
    m: int = 3,
    rebuild_period: float = 100.0,
    **_,
) -> StepFlops:
    fwd = bwd = overhead = 0.0
    pairs = _pairs(layer_sizes)
    n_hidden = len(pairs) - 1
    for i, (n_in, n_out) in enumerate(pairs):
        active = max(1.0, active_frac * n_out) if i < n_hidden else n_out
        fwd += _dense_forward(batch, n_in, int(active))
        bwd += _dense_backward(batch, n_in, int(active), propagate=i > 0)
        if i < n_hidden:
            # Query: transform (normalise + pad) then K·L projections over
            # the transformed dimension, per sample.
            q_dim = n_in + m
            overhead += batch * (3.0 * n_in + 2.0 * q_dim * n_bits * n_tables)
            # Amortised rebuild: re-hash the touched columns every period.
            touched = active
            overhead += (
                batch
                * touched
                * (2.0 * q_dim * n_bits * n_tables)
                / max(rebuild_period, 1.0)
            )
    return StepFlops(fwd, bwd, overhead)


def _mc(
    layer_sizes,
    batch: int,
    k: int = 10,
    node_frac: float = 0.1,
    min_node_samples: int = 32,
    **_,
) -> StepFlops:
    fwd = bwd = overhead = 0.0
    pairs = _pairs(layer_sizes)
    for i, (n_in, n_out) in enumerate(pairs):
        fwd += _dense_forward(batch, n_in, n_out)  # exact forward
        # gW from a sampled batch of min(k, batch) columns.
        kb = min(k, batch)
        bwd += 2.0 * kb * n_in * n_out + batch * n_out
        if i > 0:
            # da from a sampled band of the node dimension.
            budget = min(n_out, max(min_node_samples, round(node_frac * n_out)))
            bwd += 2.0 * batch * budget * n_in + batch * n_in
        bwd += 2.0 * (n_in * n_out + n_out)  # update
        # Probability passes: norms over both operands of both products.
        overhead += 2.0 * n_in * n_out  # ||W columns|| (da product)
        overhead += 2.0 * batch * (n_in + n_out)  # batch/delta norms
    return StepFlops(fwd, bwd, overhead)


def _topk(layer_sizes, batch: int, active_frac: float = 0.25, **_) -> StepFlops:
    drop = _dropout(layer_sizes, batch, keep_prob=active_frac)
    # Oracle selection pays the full product per hidden layer — the reason
    # TOPK-APPROX is apparatus, not a method.
    overhead = 0.0
    for n_in, n_out in _pairs(layer_sizes)[:-1]:
        overhead += 2.0 * batch * n_in * n_out
    return StepFlops(drop.forward, drop.backward, overhead)


_MODELS = {
    "standard": _standard,
    "dropout": _dropout,
    "adaptive_dropout": _adaptive_dropout,
    "alsh": _alsh,
    "mc": _mc,
    "topk": _topk,
}


def method_step_flops(
    method: str, layer_sizes: Sequence[int], batch: int = 1, **kwargs
) -> StepFlops:
    """FLOPs of one training step for ``method`` on the architecture.

    ``kwargs`` are the method's sampling parameters (``keep_prob``,
    ``active_frac``, ``k``, ``node_frac``, ...); unknown ones are ignored
    so one parameter dict can be shared across methods.
    """
    if len(layer_sizes) < 2:
        raise ValueError("need at least input and output sizes")
    if batch <= 0:
        raise ValueError(f"batch must be positive, got {batch}")
    try:
        model = _MODELS[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; available: {sorted(_MODELS)}"
        ) from None
    return model(list(layer_sizes), batch, **kwargs)


def speedup_vs_standard(
    method: str, layer_sizes: Sequence[int], batch: int = 1, **kwargs
) -> float:
    """Arithmetic speedup over STANDARD: flops(standard) / flops(method).

    Values below 1.0 mean the method does *more* arithmetic than exact
    training (e.g. MC-approx at batch size 1, where the probability passes
    are pure overhead — the §9.3 finding, in closed form).
    """
    std = method_step_flops("standard", layer_sizes, batch)
    other = method_step_flops(method, layer_sizes, batch, **kwargs)
    return std.total / other.total


def flops_table(
    layer_sizes: Sequence[int], batch: int = 1, **kwargs
) -> Dict[str, StepFlops]:
    """Per-method step FLOPs for one architecture (all methods)."""
    return {
        name: method_step_flops(name, layer_sizes, batch, **kwargs)
        for name in _MODELS
    }
