"""Experiment result persistence.

Serialises :class:`~repro.harness.experiment.ExperimentResult` to JSON and
back, and provides a tiny append-only :class:`ResultStore` so sweeps (the
Table 2 grid, depth sweeps, ...) can be resumed and compared across runs —
the paper's 50-epoch × 6-dataset grid is hours of compute even at
miniature scale, and losing it to a crash is not acceptable tooling.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..core.base import EpochStats, History
from .config import ExperimentConfig
from .experiment import ExperimentResult

__all__ = ["result_to_dict", "result_from_dict", "ResultStore"]


def result_to_dict(result: ExperimentResult) -> dict:
    """JSON-safe dictionary for one experiment result."""
    return {
        "config": asdict(result.config),
        "history": {
            "method": result.history.method,
            "epochs": [asdict(e) for e in result.history.epochs],
        },
        "test_accuracy": result.test_accuracy,
        "confusion": result.confusion.tolist(),
        "pred_entropy": result.pred_entropy,
        "n_distinct_predictions": result.n_distinct_predictions,
        "train_time": result.train_time,
        "memory_breakdown": {k: int(v) for k, v in result.memory_breakdown.items()},
        "trace": result.trace,
    }


def result_from_dict(payload: dict) -> ExperimentResult:
    """Inverse of :func:`result_to_dict`."""
    config = ExperimentConfig(**payload["config"])
    history = History(
        method=payload["history"]["method"],
        epochs=[EpochStats(**e) for e in payload["history"]["epochs"]],
    )
    return ExperimentResult(
        config=config,
        history=history,
        test_accuracy=float(payload["test_accuracy"]),
        confusion=np.asarray(payload["confusion"], dtype=np.int64),
        pred_entropy=float(payload["pred_entropy"]),
        n_distinct_predictions=int(payload["n_distinct_predictions"]),
        train_time=float(payload["train_time"]),
        memory_breakdown=dict(payload["memory_breakdown"]),
        trace=payload.get("trace"),
    )


class ResultStore:
    """Append-only JSON-lines store of experiment results.

    One result per line, so partially written files lose at most the last
    record and sweeps can append incrementally.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def append(self, result: ExperimentResult) -> None:
        """Append one result (creates the file/directories as needed)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(json.dumps(result_to_dict(result)) + "\n")

    def load(self) -> List[ExperimentResult]:
        """All stored results (empty list if the file does not exist)."""
        if not self.path.exists():
            return []
        results = []
        with open(self.path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if line:
                    results.append(result_from_dict(json.loads(line)))
        return results

    def find(
        self,
        method: Optional[str] = None,
        dataset: Optional[str] = None,
        hidden_layers: Optional[int] = None,
    ) -> List[ExperimentResult]:
        """Stored results matching the given config fields."""
        out = []
        for result in self.load():
            cfg = result.config
            if method is not None and cfg.method != method:
                continue
            if dataset is not None and cfg.dataset != dataset:
                continue
            if hidden_layers is not None and cfg.hidden_layers != hidden_layers:
                continue
            out.append(result)
        return out

    def best(self, **filters) -> Optional[ExperimentResult]:
        """Highest-accuracy stored result matching the filters."""
        candidates = self.find(**filters)
        if not candidates:
            return None
        return max(candidates, key=lambda r: r.test_accuracy)
