"""Experiment harness: configs, the runner, timing, text reporting,
analytical FLOP/energy models and result persistence."""

from .config import ExperimentConfig
from .energy import EnergyEstimate, EnergyModel, estimate_training_energy
from .executor import (
    CheckpointedExperimentTask,
    ExecutorError,
    ExperimentExecutor,
    JsonlSink,
    TaskOutcome,
    derive_task_seeds,
)
from .experiment import ExperimentResult, build_network, run_experiment
from .flops import StepFlops, flops_table, method_step_flops, speedup_vs_standard
from .parallel import (
    ALSH_PHASES,
    PhaseProfile,
    fit_from_measurements,
    measured_vs_projected,
    projected_time,
    speedup_curve,
)
from .recommend import Recommendation, recommend_method
from .report import depth_sweep_table, method_comparison_table, render_report
from .reporting import (
    format_markdown_table,
    format_series,
    format_table,
    render_confusion,
)
from .roofline import RooflineMachine, RooflinePoint, method_roofline, roofline_table
from .results import ResultStore, result_from_dict, result_to_dict
from .sweeps import Sweep
from .timing import Timer, time_callable

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "build_network",
    "run_experiment",
    "format_table",
    "format_markdown_table",
    "format_series",
    "render_confusion",
    "render_report",
    "method_comparison_table",
    "depth_sweep_table",
    "Timer",
    "time_callable",
    "StepFlops",
    "method_step_flops",
    "speedup_vs_standard",
    "flops_table",
    "EnergyModel",
    "EnergyEstimate",
    "estimate_training_energy",
    "PhaseProfile",
    "ALSH_PHASES",
    "projected_time",
    "speedup_curve",
    "fit_from_measurements",
    "measured_vs_projected",
    "ExperimentExecutor",
    "ExecutorError",
    "CheckpointedExperimentTask",
    "JsonlSink",
    "TaskOutcome",
    "derive_task_seeds",
    "Recommendation",
    "recommend_method",
    "ResultStore",
    "result_to_dict",
    "result_from_dict",
    "Sweep",
    "RooflineMachine",
    "RooflinePoint",
    "method_roofline",
    "roofline_table",
]
