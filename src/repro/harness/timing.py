"""Wall-clock timing helpers for the runtime tables and figures."""

from __future__ import annotations

import time
from typing import Callable, Tuple

import numpy as np

__all__ = ["Timer", "time_callable"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __enter__(self) -> "Timer":
        self.elapsed = 0.0
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.elapsed = time.perf_counter() - self._start
        return False


def time_callable(
    fn: Callable[[], object], repeats: int = 3
) -> Tuple[float, float]:
    """(median, min) elapsed seconds over ``repeats`` calls of ``fn``."""
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times)), float(min(times))
