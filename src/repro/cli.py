"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``run``
    Train one configuration and print the result (optionally append it to
    a JSON-lines result store and/or save the trained model).
``compare``
    Train several methods on one dataset and print a Table 2-style
    comparison.
``sweep``
    Fan a methods × depths grid out across worker processes through the
    fault-tolerant executor, streaming outcomes to a resumable JSONL file
    (``--workers``, ``--timeout``, ``--resume``, and crash-safe trainer
    checkpointing via ``--checkpoint-dir`` / ``--retry-timeouts``).
``theory``
    Print the §7 error-propagation table for a given c.
``flops``
    Print the analytical per-step FLOP table for an architecture.
``datasets``
    List the available benchmarks and their paper split sizes.
``lsh-bench``
    Benchmark the dict vs flat LSH backends on the ALSH hot path and
    write the ``BENCH_lsh.json`` perf-trajectory file (``--smoke``,
    ``--check``, ``--store`` for the executor's resumable JSONL sink).
``backend-bench``
    Benchmark the reference vs fast/threaded compute backends on the
    paper's dense and sampled GEMM shapes and write the
    ``BENCH_backend.json`` perf-trajectory file (``--quick``,
    ``--check``).
``serve``
    Fire a request stream through the micro-batched inference server
    (``--topk`` answers through the ALSH head, ``--smoke`` runs the CI
    serve smoke: nominal load sheds nothing, overload sheds and counts).
``serve-bench``
    Benchmark micro-batched vs batch-1 serving with the exact and ALSH
    heads at the paper shape and write the ``BENCH_serve.json``
    perf-trajectory file (``--quick``, ``--check``, ``--store``).
``stream``
    Train continually on an infinite drifting stream with drift-triggered
    ALSH rebuilds, gauge-driven compaction and continuous checkpointing
    (``--smoke`` runs the CI stream smoke: a killed-and-resumed session
    must be bitwise identical to an uninterrupted one).
``stream-bench``
    Benchmark the drift-triggered vs fixed count-based rebuild policies
    on a drifting stream and write the ``BENCH_stream.json``
    perf-trajectory file (``--quick``, ``--check``, ``--store``).
``trace-report``
    Train one configuration with the observability recorder attached and
    print the span tree, the counter catalogue rollup and the measured
    vs analytical FLOP comparison (``--store`` appends the trace record
    to a JSONL file shareable with the executor sink; ``--probe-every``
    attaches the quality probes; ``--from-store`` renders a previously
    stored trace instead of training).
``report``
    Render a trace/sweep JSONL into a self-contained single-file HTML
    run report: span tree, counter rollup, time-series sparklines, the
    measured per-layer forward error overlaid on the Theorem 7.2
    analytical bound, and probe overhead accounting.
``monitor``
    Tail a live run's JSONL sink and print one rolling summary line per
    record (``--follow`` keeps polling; default prints what is there
    and exits).
``slo-check``
    Evaluate a declarative SLO spec (JSON) against a trace store
    (``--from-store``, snapshots merged) or a live ``/metrics.json``
    endpoint (``--url``) and exit nonzero when any error budget is
    burned — the CI gate behind the serve smoke.

Live telemetry rides along: ``serve`` and ``stream`` accept
``--metrics-port`` (a background ``/metrics`` + ``/healthz`` +
``/readyz`` exporter), ``serve --store`` records per-request trace
events, ``trace-report --request <id> --from-store`` reconstructs one
request's timeline, and ``sweep --metrics-out`` writes a file-based
Prometheus exposition the executor refreshes per outcome.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .backend import available_backends
from .data.benchmarks import BENCHMARKS, benchmark_names
from .harness.config import ExperimentConfig
from .harness.experiment import run_experiment
from .harness.flops import flops_table
from .harness.reporting import format_table, render_confusion
from .theory.error_propagation import depth_at_error_ratio, error_ratio_table

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sampling-based MLP training (EDBT 2025 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="train one configuration")
    run.add_argument("--method", default="standard")
    run.add_argument("--dataset", default="mnist", choices=benchmark_names())
    run.add_argument("--data-scale", type=float, default=0.02)
    run.add_argument("--hidden-layers", type=int, default=3)
    run.add_argument("--hidden-width", type=int, default=100)
    run.add_argument("--epochs", type=int, default=3)
    run.add_argument("--batch-size", type=int, default=20)
    run.add_argument("--lr", type=float, default=1e-3)
    run.add_argument("--optimizer", default="sgd")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--backend", default=None, choices=available_backends(),
                     help="compute backend for the trainer's GEMM kernels "
                          "(default: $REPRO_BACKEND or reference)")
    run.add_argument("--paper-defaults", action="store_true",
                     help="apply the §8.4 method defaults before overrides")
    run.add_argument("--store", help="append the result to this JSONL file")
    run.add_argument("--checkpoint-dir",
                     help="write crash-safe trainer checkpoints here and "
                          "resume from them when re-invoked")
    run.add_argument("--checkpoint-every", type=int, default=None,
                     help="epochs between checkpoints (default 1; "
                          "requires --checkpoint-dir)")
    run.add_argument("--save-model", help="save the trained weights (.npz)")
    run.add_argument("--confusion", action="store_true",
                     help="print the confusion matrix")

    compare = sub.add_parser("compare", help="compare methods on a dataset")
    compare.add_argument("--dataset", default="mnist", choices=benchmark_names())
    compare.add_argument("--data-scale", type=float, default=0.02)
    compare.add_argument("--hidden-layers", type=int, default=3)
    compare.add_argument("--hidden-width", type=int, default=100)
    compare.add_argument("--epochs", type=int, default=3)
    compare.add_argument(
        "--methods",
        nargs="+",
        default=["standard", "dropout", "adaptive_dropout", "alsh", "mc"],
    )
    compare.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser(
        "sweep", help="run a methods x depths grid through the executor"
    )
    sweep.add_argument(
        "--methods",
        nargs="+",
        default=["standard", "dropout", "adaptive_dropout", "alsh", "mc"],
    )
    sweep.add_argument("--depths", type=int, nargs="+", default=[1, 3, 5])
    sweep.add_argument("--dataset", default="mnist", choices=benchmark_names())
    sweep.add_argument("--data-scale", type=float, default=0.02)
    sweep.add_argument("--hidden-width", type=int, default=100)
    sweep.add_argument("--epochs", type=int, default=3)
    sweep.add_argument("--batch-size", type=int, default=20)
    sweep.add_argument("--lr", type=float, default=1e-3)
    sweep.add_argument("--optimizer", default="sgd")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--backend", default=None, choices=available_backends(),
                       help="compute backend for every task (recorded in "
                            "each JSONL task record)")
    sweep.add_argument("--paper-defaults", action="store_true",
                       help="apply the §8.4 method defaults per grid point")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = serial)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-task wall-clock budget in seconds")
    sweep.add_argument("--retries", type=int, default=1,
                       help="retries per failing task")
    sweep.add_argument("--checkpoint-dir",
                       help="checkpoint every task's trainer here; retried "
                            "or resumed tasks continue from the last "
                            "checkpoint instead of epoch 0")
    sweep.add_argument("--checkpoint-every", type=int, default=1,
                       help="epochs between checkpoints (with "
                            "--checkpoint-dir; default 1)")
    sweep.add_argument("--retry-timeouts", action="store_true",
                       help="retry timed-out tasks too (pairs with "
                            "--checkpoint-dir so attempts make progress)")
    sweep.add_argument("--reseed", type=int, default=None,
                       help="derive per-task seeds from this root seed")
    sweep.add_argument("--store", required=True,
                       help="JSONL outcome sink (enables --resume)")
    sweep.add_argument("--resume", action="store_true",
                       help="skip tasks already completed in --store")
    sweep.add_argument("--trace", action="store_true",
                       help="trace every task and print the merged "
                            "counter rollup (aggregate appended to --store)")
    sweep.add_argument("--probe-every", type=int, default=None,
                       help="attach read-only quality probes every N "
                            "batches (requires --trace)")
    sweep.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write a Prometheus text exposition of the "
                            "merged sweep trace here, refreshed after "
                            "every task outcome (file-based scraping)")

    theory = sub.add_parser("theory", help="print the §7 error table")
    theory.add_argument("--c", type=float, default=5.0,
                        help="active-to-inactive weighted-sum ratio")
    theory.add_argument("--max-k", type=int, default=6)

    flops = sub.add_parser("flops", help="analytical per-step FLOP table")
    flops.add_argument("--arch", type=int, nargs="+",
                       default=[784, 1000, 1000, 1000, 10])
    flops.add_argument("--batch", type=int, default=20)

    sub.add_parser("datasets", help="list the paper benchmarks")

    trace = sub.add_parser(
        "trace-report", help="train one config with tracing and report"
    )
    trace.add_argument("--method", default="alsh")
    trace.add_argument("--dataset", default="mnist", choices=benchmark_names())
    trace.add_argument("--data-scale", type=float, default=0.02)
    trace.add_argument("--hidden-layers", type=int, default=3)
    trace.add_argument("--hidden-width", type=int, default=100)
    trace.add_argument("--epochs", type=int, default=2)
    trace.add_argument("--batch-size", type=int, default=20)
    trace.add_argument("--lr", type=float, default=1e-3)
    trace.add_argument("--optimizer", default="sgd")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--backend", default=None, choices=available_backends(),
                       help="compute backend to trace (per-kernel timings "
                           "and FLOPs land in the report)")
    trace.add_argument("--paper-defaults", action="store_true",
                       help="apply the §8.4 method defaults before overrides")
    trace.add_argument("--store",
                       help="append the trace record to this JSONL file")
    trace.add_argument("--probe-every", type=int, default=None,
                       help="attach read-only quality probes every N batches")
    trace.add_argument("--from-store", metavar="PATH",
                       help="render the traces already stored in this "
                            "JSONL file instead of training")
    trace.add_argument("--request", metavar="ID", default=None,
                       help="with --from-store: reconstruct this request "
                            "id's timeline from the store's request-trace "
                            "events (written by serve --store)")

    report = sub.add_parser(
        "report", help="render a trace JSONL as a single-file HTML report"
    )
    report.add_argument("trace", help="trace/sweep JSONL file to render")
    report.add_argument("--out", default="report.html",
                        help="output HTML path (default report.html)")
    report.add_argument("--title", default=None,
                        help="report title (defaults to the trace filename)")
    report.add_argument("--theory-c", type=float, default=5.0,
                        help="c for the Theorem 7.2 bound overlay "
                             "(((c+1)/c)^k - 1); default 5.0")
    report.add_argument("--no-theory", action="store_true",
                        help="omit the analytical bound overlay")

    monitor = sub.add_parser(
        "monitor", help="tail a run's JSONL sink with rolling summaries"
    )
    monitor.add_argument("sink", help="JSONL sink file to watch")
    monitor.add_argument("--follow", "-f", action="store_true",
                         help="keep polling for new records (default: "
                              "print what is there and exit)")
    monitor.add_argument("--poll", type=float, default=0.5,
                         help="seconds between polls with --follow")

    slo = sub.add_parser(
        "slo-check",
        help="evaluate an SLO spec against a trace store or live endpoint",
    )
    slo.add_argument("spec", help="JSON SLO spec file (see docs/observability.md)")
    source = slo.add_mutually_exclusive_group(required=True)
    source.add_argument("--from-store", metavar="PATH",
                        help="evaluate against the merged snapshots of "
                             "this trace JSONL store")
    source.add_argument("--url", metavar="URL",
                        help="evaluate against a live exporter's base URL "
                             "(fetches <url>/metrics.json)")

    from .lsh import bench as lsh_bench

    lsh = sub.add_parser(
        "lsh-bench", help="benchmark dict vs flat LSH backends"
    )
    lsh_bench.add_arguments(lsh)

    from .backend import bench as backend_bench

    bb = sub.add_parser(
        "backend-bench", help="benchmark reference vs fast/threaded backends"
    )
    backend_bench.add_arguments(bb)

    serve = sub.add_parser(
        "serve", help="fire requests through the micro-batched inference server"
    )
    serve.add_argument("--model", default=None, metavar="PATH",
                       help="kind-tagged .npz checkpoint to serve "
                            "(default: a seeded demo MLP)")
    serve.add_argument("--version", default=None,
                       help="pin the checkpoint's content digest")
    serve.add_argument("--requests", type=int, default=256,
                       help="number of requests to fire (default 256)")
    serve.add_argument("--topk", type=int, default=None, metavar="K",
                       help="serve top-k answers through the ALSH head "
                            "instead of full log-probability rows")
    serve.add_argument("--exact", action="store_true",
                       help="with --topk: use the exact full-GEMM head")
    serve.add_argument("--max-batch", type=int, default=32)
    serve.add_argument("--max-wait", type=float, default=0.002,
                       help="micro-batch collection window in seconds")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--smoke", action="store_true",
                       help="run the CI serve smoke (nominal load sheds "
                            "nothing, overload sheds and counts) and exit")
    serve.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                       help="serve /metrics, /healthz and /readyz on this "
                            "port while requests run (0 picks a free port)")
    serve.add_argument("--store", default=None, metavar="PATH",
                       help="append the serve trace snapshot and the "
                            "per-request trace events to this JSONL file")
    serve.add_argument("--slo", default=None, metavar="SPEC",
                       help="with --metrics-port: evaluate this SLO spec "
                            "per scrape and expose live slo.burn.* gauges")

    from .serve import bench as serve_bench

    sb = sub.add_parser(
        "serve-bench",
        help="benchmark micro-batched vs batch-1 serving, exact vs ALSH head",
    )
    serve_bench.add_arguments(sb)

    stream = sub.add_parser(
        "stream", help="train continually on an infinite drifting stream"
    )
    stream.add_argument("--batches", type=int, default=500,
                        help="absolute stream position to train to "
                             "(default 500; resumes count from a "
                             "checkpoint when --checkpoint-dir is set)")
    stream.add_argument("--rebuild", choices=("drift", "count", "none"),
                        default="drift",
                        help="table maintenance policy (default drift)")
    stream.add_argument("--drift-threshold", type=float, default=0.05,
                        help="relative column-drift threshold that "
                             "triggers a re-hash (default 0.05)")
    stream.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="checkpoint continuously into DIR and resume "
                             "from it if a checkpoint exists")
    stream.add_argument("--checkpoint-every", type=int, default=100,
                        help="batches between checkpoints (default 100)")
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--smoke", action="store_true",
                        help="run the CI stream smoke (kill-resume "
                             "bitwise equality) and exit")
    stream.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="serve /metrics, /healthz and /readyz on "
                             "this port while the stream trains "
                             "(0 picks a free port)")
    stream.add_argument("--store", default=None, metavar="PATH",
                        help="append the stream trace snapshot to this "
                             "JSONL file when the run finishes")

    from .stream import bench as stream_bench

    stb = sub.add_parser(
        "stream-bench",
        help="benchmark drift-triggered vs count-based rebuilds on a "
             "drifting stream",
    )
    stream_bench.add_arguments(stb)
    return parser


def _cmd_run(args) -> int:
    if args.paper_defaults:
        cfg = ExperimentConfig.paper_default(
            args.method,
            batch_size=args.batch_size,
            dataset=args.dataset,
            data_scale=args.data_scale,
            hidden_layers=args.hidden_layers,
            hidden_width=args.hidden_width,
            epochs=args.epochs,
            seed=args.seed,
            backend=args.backend,
        )
    else:
        cfg = ExperimentConfig(
            method=args.method,
            dataset=args.dataset,
            data_scale=args.data_scale,
            hidden_layers=args.hidden_layers,
            hidden_width=args.hidden_width,
            epochs=args.epochs,
            batch_size=args.batch_size,
            lr=args.lr,
            optimizer=args.optimizer,
            seed=args.seed,
            backend=args.backend,
        )
    result = run_experiment(
        cfg,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
    )
    print(result.summary())
    if args.confusion:
        print(render_confusion(result.confusion))
    if args.store:
        from .harness.results import ResultStore

        ResultStore(args.store).append(result)
        print(f"appended to {args.store}")
    if args.save_model:
        # run_experiment does not expose the trainer, so rebuild and refit
        # deterministically (same seeds) to capture the trained weights.
        from .core.registry import make_trainer
        from .data.benchmarks import load_benchmark
        from .harness.experiment import build_network
        from .nn.serialize import save_mlp

        data = load_benchmark(cfg.dataset, scale=cfg.data_scale, seed=cfg.seed)
        net = build_network(cfg, data)
        extra = dict(cfg.method_kwargs)
        if cfg.backend is not None:
            extra["compute_backend"] = cfg.backend
        trainer = make_trainer(
            cfg.method, net, lr=cfg.lr, optimizer=cfg.optimizer,
            seed=cfg.seed, **extra,
        )
        trainer.fit(data.x_train, data.y_train, epochs=cfg.epochs,
                    batch_size=cfg.batch_size)
        path = save_mlp(net, args.save_model)
        print(f"model saved to {path}")
    return 0


def _cmd_compare(args) -> int:
    from .data.benchmarks import load_benchmark

    data = load_benchmark(args.dataset, scale=args.data_scale, seed=args.seed)
    rows = []
    for method in args.methods:
        cfg = ExperimentConfig.paper_default(
            method,
            batch_size=1 if method in ("alsh",) else 20,
            hidden_layers=args.hidden_layers,
            hidden_width=args.hidden_width,
            epochs=args.epochs,
            seed=args.seed,
        )
        result = run_experiment(cfg, dataset=data)
        rows.append(
            [cfg.label(), result.test_accuracy, result.time_per_epoch,
             result.pred_entropy]
        )
    print(
        format_table(
            ["method", "accuracy", "time/epoch (s)", "pred entropy"],
            rows,
            title=f"{args.dataset}, {args.hidden_layers} hidden layers",
        )
    )
    return 0


def _load_traces_or_fail(path):
    """Load a trace JSONL for a CLI command, failing with one clear line.

    Returns ``(traces, corrupt)`` or ``(None, 0)`` after printing the
    error to stderr (satellite: no tracebacks for empty/missing/corrupt
    files; corrupt lines in otherwise-good files are skipped with a
    warning count).
    """
    from .obs import load_trace_file

    try:
        traces, corrupt = load_trace_file(path)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None, 0
    if corrupt:
        print(
            f"warning: skipped {corrupt} corrupt line(s) in {path}",
            file=sys.stderr,
        )
    return traces, corrupt


def _cmd_trace_report(args) -> int:
    from .data.benchmarks import load_benchmark
    from .harness.flops import method_step_flops
    from .obs import (
        InMemoryRecorder,
        derived_metrics,
        merge_snapshots,
        render_trace,
        trace_record,
        write_trace,
    )
    from .obs.counters import FLOPS_ACTUAL, LSH_CANDIDATES, TRAIN_BATCHES

    if args.request is not None:
        from .obs import (
            read_trace_events,
            reconstruct_request,
            render_request_timeline,
            scan_jsonl,
        )

        if not args.from_store:
            print("error: --request requires --from-store (request-trace "
                  "events live in a serve --store file)", file=sys.stderr)
            return 2
        try:
            records, corrupt = scan_jsonl(args.from_store)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if corrupt:
            print(f"warning: skipped {corrupt} corrupt line(s) in "
                  f"{args.from_store}", file=sys.stderr)
        events = read_trace_events(records)
        try:
            timeline = reconstruct_request(events, args.request)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        print(render_request_timeline(timeline))
        return 0

    if args.from_store:
        traces, _ = _load_traces_or_fail(args.from_store)
        if traces is None:
            return 2
        merged = merge_snapshots([t["snapshot"] for t in traces])
        print(
            render_trace(
                merged,
                title=f"trace: {len(traces)} record(s) from {args.from_store}",
            )
        )
        return 0

    if args.paper_defaults:
        cfg = ExperimentConfig.paper_default(
            args.method,
            batch_size=args.batch_size,
            dataset=args.dataset,
            data_scale=args.data_scale,
            hidden_layers=args.hidden_layers,
            hidden_width=args.hidden_width,
            epochs=args.epochs,
            seed=args.seed,
            backend=args.backend,
        )
    else:
        cfg = ExperimentConfig(
            method=args.method,
            dataset=args.dataset,
            data_scale=args.data_scale,
            hidden_layers=args.hidden_layers,
            hidden_width=args.hidden_width,
            epochs=args.epochs,
            batch_size=args.batch_size,
            lr=args.lr,
            optimizer=args.optimizer,
            seed=args.seed,
            backend=args.backend,
        )
    data = load_benchmark(cfg.dataset, scale=cfg.data_scale, seed=cfg.seed)
    recorder = InMemoryRecorder()
    result = run_experiment(
        cfg, dataset=data, recorder=recorder, probe_every=args.probe_every
    )
    snapshot = result.trace
    print(result.summary())
    print(render_trace(snapshot, title=f"trace: {cfg.label()} on {cfg.dataset}"))

    # Measured GEMM work vs the analytical per-step model.  The model
    # includes element-wise passes and sampling overhead that the GEMM
    # counters deliberately exclude, so the gap quantifies bookkeeping.
    counters = snapshot["counters"]
    steps = counters.get(TRAIN_BATCHES, 0)
    sizes = (
        [data.input_dim]
        + [cfg.hidden_width] * cfg.hidden_layers
        + [data.n_classes]
    )
    model = method_step_flops(
        cfg.method, sizes, batch=cfg.batch_size, **cfg.method_kwargs
    )
    model_total = model.total * steps
    measured = counters.get(FLOPS_ACTUAL, 0)
    print("model vs measured:")
    print(f"  analytical model   {model_total:>16,.0f} FLOPs "
          f"({steps} steps x {model.total:,.0f})")
    print(f"  measured (GEMM)    {measured:>16,.0f} FLOPs")
    if measured:
        print(f"  model/measured     {model_total / measured:>16.3f}  "
              "(element-wise + sampling overhead vs pure GEMM)")

    if args.store:
        derived = derived_metrics(snapshot)
        record = trace_record(
            snapshot,
            label=cfg.label(),
            key=cfg.key(),
            summary={
                "test_accuracy": result.test_accuracy,
                "flops.skipped": derived.get("flops.skipped", 0),
                "lsh.candidates": counters.get(LSH_CANDIDATES, 0),
                "model_step_flops": model.total,
                "measured_actual_flops": measured,
            },
        )
        write_trace(args.store, record)
        print(f"trace appended to {args.store}")
    return 0


def _cmd_report(args) -> int:
    from pathlib import Path

    from .obs import merge_snapshots, render_html_report
    from .obs.html import forward_error_by_layer
    from .theory.error_propagation import error_ratio

    traces, corrupt = _load_traces_or_fail(args.trace)
    if traces is None:
        return 2
    merged = merge_snapshots([t["snapshot"] for t in traces])

    # Theorem 7.2 overlay: the analytical bound is computed here (obs
    # never imports theory) for exactly the layers the probes measured.
    theory_bound = None
    theory_label = None
    if not args.no_theory:
        layers = [k for k, _ in forward_error_by_layer(merged)]
        if layers:
            theory_bound = [(k, error_ratio(args.theory_c, k)) for k in layers]
            theory_label = f"Theorem 7.2 bound at c = {args.theory_c:g}"

    title = args.title or f"repro run report: {Path(args.trace).name}"
    html = render_html_report(
        traces,
        title=title,
        merged=merged,
        theory_bound=theory_bound,
        theory_label=theory_label,
        corrupt=corrupt,
    )
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(html, encoding="utf-8")
    print(f"report written to {out} ({len(traces)} trace record(s))")
    return 0


def _cmd_monitor(args) -> int:
    from pathlib import Path

    from .obs import monitor_sink

    if not args.follow and not Path(args.sink).exists():
        print(f"error: sink file not found: {args.sink}", file=sys.stderr)
        return 2
    try:
        count = monitor_sink(args.sink, follow=args.follow, poll=args.poll)
    except KeyboardInterrupt:
        return 0
    if not args.follow:
        print(f"({count} record(s) in {args.sink})")
    return 0


def _cmd_sweep(args) -> int:
    from .harness.executor import ExperimentExecutor
    from .harness.sweeps import Sweep

    base = ExperimentConfig(
        dataset=args.dataset,
        data_scale=args.data_scale,
        hidden_width=args.hidden_width,
        epochs=args.epochs,
        batch_size=args.batch_size,
        lr=args.lr,
        optimizer=args.optimizer,
        seed=args.seed,
        backend=args.backend,
    )
    sweep = Sweep(
        base,
        {"method": args.methods, "hidden_layers": args.depths},
        paper_defaults=args.paper_defaults,
    )
    configs = list(sweep.configs())
    print(
        f"sweep: {len(configs)} configurations "
        f"({len(args.methods)} methods x {len(args.depths)} depths), "
        f"{args.workers} worker(s), sink {args.store}"
    )

    def on_outcome(outcome):
        cfg = configs[outcome.index]
        if outcome.ok:
            print(f"  [{outcome.status}] {outcome.result.summary()}")
        else:
            reason = (outcome.error or "").strip().splitlines()[-1]
            print(
                f"  [{outcome.status}] {cfg.label()} depth={cfg.hidden_layers} "
                f"after {outcome.attempts} attempt(s): {reason}"
            )

    from .harness.executor import (
        CheckpointedExperimentTask,
        TracedExperimentTask,
        run_experiment_task,
    )

    if args.probe_every is not None and not args.trace:
        print("error: --probe-every requires --trace (probes only do "
              "work with a recorder attached)", file=sys.stderr)
        return 2
    if args.checkpoint_dir:
        task_fn = CheckpointedExperimentTask(
            args.checkpoint_dir, every=args.checkpoint_every,
            traced=args.trace, probe_every=args.probe_every,
        )
    elif args.trace:
        task_fn = TracedExperimentTask(probe_every=args.probe_every)
    else:
        task_fn = run_experiment_task
    executor = ExperimentExecutor(
        max_workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
        retry_timeouts=args.retry_timeouts,
        sink=args.store,
        task_fn=task_fn,
        metrics_path=args.metrics_out,
    )
    outcomes = executor.run(
        configs, resume=args.resume, reseed=args.reseed, callback=on_outcome
    )
    if args.trace:
        from .harness.executor import aggregate_traces
        from .obs import AGGREGATE_KIND, render_counters, trace_record, write_trace

        aggregate = aggregate_traces(outcomes)
        if aggregate is not None:
            print("merged trace counters across the sweep:")
            print(render_counters(aggregate))
            write_trace(
                args.store,
                trace_record(
                    aggregate, label="sweep-aggregate", kind=AGGREGATE_KIND
                ),
            )
    rows = []
    for outcome, cfg in zip(outcomes, configs):
        acc = outcome.result.test_accuracy if outcome.ok else float("nan")
        rows.append(
            [cfg.label(), cfg.hidden_layers, outcome.status, outcome.attempts, acc]
        )
    print(
        format_table(
            ["method", "depth", "status", "attempts", "accuracy"],
            rows,
            title=f"sweep on {args.dataset} (results in {args.store})",
        )
    )
    failed = sum(not o.ok for o in outcomes)
    if args.metrics_out:
        print(f"metrics exposition written to {args.metrics_out}")
    if failed:
        print(f"{failed}/{len(outcomes)} tasks failed; "
              f"re-run with --resume to retry them")
    return 1 if failed else 0


def _cmd_theory(args) -> int:
    table = error_ratio_table(c=args.c, max_k=args.max_k)
    print(
        format_table(
            ["k"] + [str(k) for k in range(1, args.max_k + 1)],
            [["error/estimate"] + [f"{v:.2f}" for v in table]],
            title=f"Theorem 7.2 error-to-estimate ratio, c = {args.c}",
        )
    )
    print(
        f"error dominates the estimate from depth "
        f"{depth_at_error_ratio(args.c, 1.0)}"
    )
    return 0


def _cmd_flops(args) -> int:
    table = flops_table(args.arch, batch=args.batch, keep_prob=0.05,
                        active_frac=0.2, k=10)
    std = table["standard"].total
    rows = [
        [name, f.forward / 1e6, f.backward / 1e6, f.overhead / 1e6,
         f.total / 1e6, std / f.total]
        for name, f in table.items()
    ]
    print(
        format_table(
            ["method", "fwd (MFLOP)", "bwd (MFLOP)", "overhead (MFLOP)",
             "total (MFLOP)", "speedup vs standard"],
            rows,
            title=f"arch {args.arch}, batch {args.batch}",
            float_fmt="{:.2f}",
        )
    )
    return 0


def _cmd_datasets(args) -> int:
    rows = [
        [name, "x".join(map(str, spec.shape)), spec.n_classes,
         spec.n_train, spec.n_test, spec.n_val]
        for name, spec in BENCHMARKS.items()
    ]
    print(
        format_table(
            ["name", "shape", "classes", "train", "test", "val"],
            rows,
            title="Paper benchmarks (§8.2) — synthetic equivalents",
        )
    )
    return 0


def _cmd_lsh_bench(args) -> int:
    from .lsh import bench as lsh_bench

    return lsh_bench.run_cli(args)


def _cmd_backend_bench(args) -> int:
    from .backend import bench as backend_bench

    return backend_bench.run_cli(args)


def _cmd_serve(args) -> int:
    import time

    import numpy as np

    from .obs import (
        NULL_TRACER,
        InMemoryRecorder,
        MetricsServer,
        RequestTracer,
        trace_record,
        write_trace,
    )
    from .serve.server import InferenceServer, _fire, run_smoke, seeded_servable

    if args.smoke:
        return run_smoke(requests=args.requests if args.requests != 256 else 1000,
                         seed=args.seed,
                         metrics_port=args.metrics_port,
                         store=args.store)
    if args.model is not None:
        from .serve.registry import load_servable

        model = load_servable(args.model, version=args.version)
    else:
        model = seeded_servable(seed=args.seed)
    recorder = InMemoryRecorder()
    tracer = RequestTracer(sink=args.store) if args.store else NULL_TRACER
    mode = "topk" if args.topk is not None else "logproba"
    rng = np.random.default_rng(args.seed)
    xs = rng.normal(size=(args.requests, model.input_dim))
    metrics = None
    try:
        with InferenceServer(
            model,
            mode=mode,
            k=args.topk or 10,
            exact=args.exact,
            max_batch=args.max_batch,
            max_wait=args.max_wait,
            max_queue=max(4 * args.requests, 64),
            recorder=recorder,
            tracer=tracer,
        ) as server:
            snapshot_fn = recorder.snapshot
            if args.slo:
                from .obs import attach_burn_gauges, load_slo_spec

                entries = load_slo_spec(args.slo)
                snapshot_fn = lambda: attach_burn_gauges(  # noqa: E731
                    recorder.snapshot(), entries
                )
            if args.metrics_port is not None:
                metrics = MetricsServer(
                    snapshot_fn,
                    port=args.metrics_port,
                    ready_fn=lambda: (
                        (True, "ok")
                        if server.batcher.queue_depth() < server.batcher.max_queue
                        else (False, "queue at shed threshold")
                    ),
                )
                print(f"metrics: serving {metrics.url}/metrics")
            t0 = time.perf_counter()
            outcome = _fire(server, xs)
            elapsed = time.perf_counter() - t0
    finally:
        if metrics is not None:
            metrics.close()
    stats = server.stats()
    snapshot = recorder.snapshot()
    if args.store:
        tracer.flush()
        write_trace(
            args.store,
            trace_record(snapshot, label=f"serve-{mode}", elapsed=elapsed),
        )
        print(f"trace appended to {args.store}")
    print(f"model {model.name}@{model.version} ({model.kind}), mode {mode}")
    print(
        f"{outcome['ok']}/{args.requests} served, {outcome['shed']} shed, "
        f"{outcome['failed']} failed, "
        f"{snapshot['counters'].get('serve.batches', 0)} batches"
    )
    if stats["latency_p50"] is not None:
        print(f"latency p50 {stats['latency_p50'] * 1e3:.2f}ms, "
              f"p99 {stats['latency_p99'] * 1e3:.2f}ms")
    return 0 if outcome["failed"] == 0 else 1


def _cmd_serve_bench(args) -> int:
    from .serve import bench as serve_bench

    return serve_bench.run_cli(args)


def _cmd_stream(args) -> int:
    from .stream import make_stream_trainer, run_smoke

    if args.smoke:
        return run_smoke(seed=args.seed)
    recorder = None
    metrics = None
    if args.metrics_port is not None or args.store:
        from .obs import InMemoryRecorder

        recorder = InMemoryRecorder()
    st = make_stream_trainer(
        rebuild=args.rebuild,
        drift_threshold=args.drift_threshold,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        seed=args.seed,
        recorder=recorder,
    )
    if args.metrics_port is not None:
        from .obs import MetricsServer

        metrics = MetricsServer(recorder.snapshot, port=args.metrics_port)
        print(f"metrics: serving {metrics.url}/metrics")
    try:
        summary = st.run(args.batches, verbose=True)
    finally:
        if metrics is not None:
            metrics.close()
    if args.store:
        from .obs import trace_record, write_trace

        write_trace(
            args.store,
            trace_record(
                recorder.snapshot(),
                label=f"stream-{args.rebuild}",
                elapsed=summary["elapsed_s"],
            ),
        )
        print(f"trace appended to {args.store}")
    acc = summary["eval_history"][-1][1] if summary["eval_history"] else None
    print(
        f"stream: {summary['batches']} batches "
        f"({summary['trained_batches']} this session, "
        f"{summary['samples_per_s']:.0f} samples/s), "
        f"policy {summary['rebuild_mode']}, "
        f"{summary['rebuilds']} rebuilds, "
        f"{summary['compactions']} compactions, "
        f"{summary['checkpoints']} checkpoints"
        + (f", acc {acc:.3f}" if acc is not None else "")
    )
    return 0


def _cmd_slo_check(args) -> int:
    from .obs import (
        evaluate_slos,
        load_slo_spec,
        merge_snapshots,
        render_slo_results,
    )

    try:
        entries = load_slo_spec(args.spec)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.from_store:
        traces, _ = _load_traces_or_fail(args.from_store)
        if traces is None:
            return 2
        snapshot = merge_snapshots([t["snapshot"] for t in traces])
        source = args.from_store
    else:
        import json
        from urllib.error import URLError
        from urllib.request import urlopen

        url = args.url.rstrip("/") + "/metrics.json"
        try:
            with urlopen(url, timeout=10.0) as resp:
                snapshot = json.loads(resp.read().decode("utf-8"))
        except (URLError, OSError, ValueError) as exc:
            print(f"error: could not fetch {url}: {exc}", file=sys.stderr)
            return 2
        source = url
    results = evaluate_slos(snapshot, entries)
    print(f"SLO check: {args.spec} against {source}")
    print(render_slo_results(results))
    return 1 if any(not r.ok for r in results) else 0


def _cmd_stream_bench(args) -> int:
    from .stream import bench as stream_bench

    return stream_bench.run_cli(args)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "sweep": _cmd_sweep,
        "theory": _cmd_theory,
        "flops": _cmd_flops,
        "datasets": _cmd_datasets,
        "lsh-bench": _cmd_lsh_bench,
        "backend-bench": _cmd_backend_bench,
        "serve": _cmd_serve,
        "serve-bench": _cmd_serve_bench,
        "stream": _cmd_stream,
        "stream-bench": _cmd_stream_bench,
        "trace-report": _cmd_trace_report,
        "report": _cmd_report,
        "monitor": _cmd_monitor,
        "slo-check": _cmd_slo_check,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
