"""repro — sampling-based techniques for training multilayer perceptrons.

A from-scratch reproduction of "Evaluating the Feasibility of
Sampling-Based Techniques for Training Multilayer Perceptrons"
(Ebrahimi, Advani, Asudeh — EDBT 2025): a pure-NumPy MLP training stack,
an LSH/ALSH maximum-inner-product engine, Monte-Carlo matrix-product
estimators, the five training methods the paper evaluates, the §7 error-
propagation theory, a cache/memory simulator for the §9.4 analysis, and a
benchmark harness regenerating every table and figure.

Quick start::

    from repro import load_benchmark, MLP, make_trainer

    data = load_benchmark("mnist", scale=0.01)
    net = MLP([data.input_dim, 100, 100, 100, data.n_classes], seed=0)
    trainer = make_trainer("mc", net, lr=1e-3, k=10)
    trainer.fit(data.x_train, data.y_train, epochs=3, batch_size=20)
    print("accuracy:", trainer.evaluate(data.x_test, data.y_test))
"""

from .core import (
    AdaptiveDropoutTrainer,
    ALSHApproxTrainer,
    DropoutTrainer,
    History,
    MCApproxTrainer,
    StandardTrainer,
    Trainer,
    make_trainer,
    trainer_names,
)
from .data import Dataset, load_benchmark
from .harness import ExperimentConfig, ExperimentResult, run_experiment
from .nn import MLP

__version__ = "1.0.0"

__all__ = [
    "MLP",
    "Dataset",
    "load_benchmark",
    "Trainer",
    "History",
    "StandardTrainer",
    "DropoutTrainer",
    "AdaptiveDropoutTrainer",
    "ALSHApproxTrainer",
    "MCApproxTrainer",
    "make_trainer",
    "trainer_names",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "__version__",
]
