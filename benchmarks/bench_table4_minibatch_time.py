"""Table 4: per-epoch training time, minibatch setting (batch size 20).

Paper shape: MC-approx^M significantly outperforms the other approaches at
batch size 20 (the win grows with width — see bench_fig8 at width 512);
mask-based Adaptive-Dropout carries overhead relative to STANDARD.
"""

from conftest import PAPER_SETTINGS, train_and_eval

from repro.harness.reporting import format_table

COLUMNS = ["standard^M", "dropout^S", "adaptive_dropout^S", "mc^M"]
SUBSET = 400
# MC-approx's sampled products only beat BLAS overhead at real widths;
# the paper's width of 1000 is where the ordering is robust.
TIMING_WIDTH = 1000


def run_table4(mnist):
    rows = {}
    for column in COLUMNS:
        method, _, lr, kwargs = PAPER_SETTINGS[column]
        _, history, acc = train_and_eval(
            method,
            mnist,
            depth=3,
            width=TIMING_WIDTH,
            batch=20,
            lr=lr,
            epochs=1,
            max_train=SUBSET,
            **kwargs,
        )
        rows[column.replace("^S", "^M")] = {
            "epoch_time": float(history.epoch_times().mean()),
            "forward": float(history.forward_times().mean()),
            "backward": float(history.backward_times().mean()),
            "accuracy": acc,
        }
    return rows


def test_table4_minibatch_time(benchmark, capsys, mnist):
    rows = benchmark.pedantic(run_table4, args=(mnist,), iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["method", "time/epoch (s)", "feedforward (s)",
                 "backprop (s)", "accuracy"],
                [
                    [c, r["epoch_time"], r["forward"], r["backward"], r["accuracy"]]
                    for c, r in rows.items()
                ],
                title=f"Table 4 reproduction: minibatch (20) setting, "
                f"{SUBSET} samples/epoch, 3 x {TIMING_WIDTH} hidden",
            )
        )
    # Paper shape: MC-approx^M beats standard^M per epoch at real widths.
    assert rows["mc^M"]["epoch_time"] < rows["standard^M"]["epoch_time"]
    # Its saving is in the backward phase (the approximated products).
    assert rows["mc^M"]["backward"] < rows["standard^M"]["backward"]
