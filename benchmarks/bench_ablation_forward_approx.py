"""§10.1 ablation: approximating the feedforward pass vs backprop only.

The published MC-approx applies approximation only during backpropagation;
the paper (and Adelman et al.) report that approximating the feedforward
pass fails in practice.  This ablation turns feedforward approximation on
and shows the accuracy cost growing with depth — the same compounding
mechanism Theorem 7.2 formalises for ALSH-approx.
"""

from conftest import train_and_eval

from repro.harness.reporting import format_series

DEPTHS = [1, 3, 5]
EPOCHS = 3


def run_ablation(mnist):
    acc = {"backprop-only (published)": [], "forward+backprop (ablation)": []}
    for depth in DEPTHS:
        _, _, a_published = train_and_eval(
            "mc", mnist, depth=depth, batch=20, lr=1e-2, epochs=EPOCHS, k=10,
            node_frac=0.1, min_node_samples=8,
        )
        try:
            _, _, a_forward = train_and_eval(
                "mc", mnist, depth=depth, batch=20, lr=1e-2, epochs=EPOCHS,
                k=10, node_frac=0.1, min_node_samples=8,
                approximate_forward=True,
            )
        except ValueError:
            # The forward-approximated variant can diverge outright — the
            # §10.1 "failed in experiments" outcome. Score it as a failed
            # training run.
            a_forward = 0.0
        acc["backprop-only (published)"].append(a_published)
        acc["forward+backprop (ablation)"].append(a_forward)
    return acc


def test_ablation_forward_approximation(benchmark, capsys, mnist):
    acc = benchmark.pedantic(run_ablation, args=(mnist,), iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            format_series(
                "hidden layers",
                DEPTHS,
                acc,
                title="§10.1 ablation: MC-approx accuracy with and without "
                "feedforward approximation",
            )
        )
    published = acc["backprop-only (published)"]
    forward = acc["forward+backprop (ablation)"]
    # Averaged over depths, forward approximation must cost accuracy.
    assert sum(published) / len(published) > sum(forward) / len(forward)
    # And the gap at the deepest setting exceeds the gap at the shallowest
    # (compounding) or the forward variant is already degenerate.
    gap_shallow = published[0] - forward[0]
    gap_deep = published[-1] - forward[-1]
    assert gap_deep > gap_shallow - 0.05
