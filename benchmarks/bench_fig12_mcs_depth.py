"""Figure 12: MC-approx^S (stochastic) scalability failure with depth.

Paper shape: in the stochastic setting the Eq. 7 probability estimates
come from a single sample, so MC-approx^S degrades as layers are added —
unlike MC-approx^M, which scales.  Time overhead also grows with depth.
"""

from conftest import train_and_eval

from repro.harness.reporting import format_series

DEPTHS = [1, 3, 5, 7]
MAX_TRAIN = 250
EPOCHS = 2


def run_fig12(mnist):
    acc = {"mc^S (lr=1e-4)": [], "mc^M (lr=1e-2)": []}
    times = {"mc^S": [], "standard^S": []}
    for depth in DEPTHS:
        _, h_s, acc_s = train_and_eval(
            "mc", mnist, depth=depth, batch=1, lr=1e-4, epochs=EPOCHS,
            max_train=MAX_TRAIN, k=10,
        )
        _, _, acc_m = train_and_eval(
            "mc", mnist, depth=depth, batch=20, lr=1e-2, epochs=EPOCHS, k=10,
        )
        _, h_std, _ = train_and_eval(
            "standard", mnist, depth=depth, batch=1, lr=1e-4, epochs=EPOCHS,
            max_train=MAX_TRAIN,
        )
        acc["mc^S (lr=1e-4)"].append(acc_s)
        acc["mc^M (lr=1e-2)"].append(acc_m)
        times["mc^S"].append(float(h_s.epoch_times().mean()))
        times["standard^S"].append(float(h_std.epoch_times().mean()))
    return acc, times


def test_fig12_mc_stochastic_depth(benchmark, capsys, mnist):
    acc, times = benchmark.pedantic(
        run_fig12, args=(mnist,), iterations=1, rounds=1
    )
    with capsys.disabled():
        print()
        print(
            format_series(
                "hidden layers",
                DEPTHS,
                acc,
                title="Figure 12 reproduction: MC-approx accuracy vs depth "
                "by regime",
            )
        )
        print()
        print(
            format_series(
                "hidden layers",
                DEPTHS,
                times,
                title="Stochastic time/epoch (s) vs depth",
            )
        )
    # MC^M must end at least as strong as MC^S at the deepest setting.
    assert acc["mc^M (lr=1e-2)"][-1] >= acc["mc^S (lr=1e-4)"][-1] - 0.05
    # MC^S carries a growing time overhead vs standard^S.
    assert all(m > s for m, s in zip(times["mc^S"], times["standard^S"]))
