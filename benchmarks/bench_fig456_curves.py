"""Figures 4–6: accuracy-over-epochs training curves.

* Figure 4 — ALSH-approx vs STANDARD^S: the gap opens with training.
* Figure 5 — MC-approx^M vs STANDARD^M: MC tracks (or beats) standard.
* Figure 6 — MC-approx^S with the §9.3 learning-rate fix: lr 1e-4 trains
  stably where lr 1e-3 degrades.
"""

import numpy as np

from conftest import train_and_eval

from repro.harness.reporting import format_series

EPOCHS = 4
MAX_TRAIN = 300


def run_curves(mnist):
    curves = {}

    _, h, _ = train_and_eval(
        "alsh", mnist, depth=3, batch=1, lr=1e-3, epochs=EPOCHS,
        optimizer="adam", max_train=MAX_TRAIN, track_val=True,
    )
    curves["fig4 alsh"] = h.val_accuracies()
    _, h, _ = train_and_eval(
        "standard", mnist, depth=3, batch=1, lr=1e-3, epochs=EPOCHS,
        max_train=MAX_TRAIN, track_val=True,
    )
    curves["fig4 standard^S"] = h.val_accuracies()

    _, h, _ = train_and_eval(
        "mc", mnist, depth=3, batch=20, lr=1e-2, epochs=EPOCHS, k=10,
        track_val=True,
    )
    curves["fig5 mc^M"] = h.val_accuracies()
    _, h, _ = train_and_eval(
        "standard", mnist, depth=3, batch=20, lr=1e-2, epochs=EPOCHS,
        track_val=True,
    )
    curves["fig5 standard^M"] = h.val_accuracies()

    for lr, label in ((1e-3, "fig6 mc^S lr=1e-3"), (1e-4, "fig6 mc^S lr=1e-4")):
        _, h, _ = train_and_eval(
            "mc", mnist, depth=3, batch=1, lr=lr, epochs=EPOCHS, k=10,
            max_train=MAX_TRAIN, track_val=True,
        )
        curves[label] = h.val_accuracies()
    return curves


def test_fig456_training_curves(benchmark, capsys, mnist):
    curves = benchmark.pedantic(run_curves, args=(mnist,), iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            format_series(
                "epoch",
                list(range(1, EPOCHS + 1)),
                curves,
                title="Figures 4-6 reproduction: validation accuracy by epoch",
            )
        )
    # Shapes: every curve ends above chance; MC^M's final accuracy is in
    # the same league as standard^M (within 10 points).
    for label, series in curves.items():
        assert np.nanmax(series) > 0.15, label
    assert abs(curves["fig5 mc^M"][-1] - curves["fig5 standard^M"][-1]) < 0.25
