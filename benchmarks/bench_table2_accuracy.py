"""Table 2: test accuracy on all six benchmarks, 3 hidden layers.

Paper shape: MC-approx (M and S) lead on most datasets; Dropout^S at
p = 0.05 is crippled (near chance on the harder sets); Adaptive-Dropout^S
recovers; ALSH-approx lands between Dropout and the leaders; STANDARD wins
the CIFAR-10-like (hardest) benchmark.
"""

from conftest import PAPER_SETTINGS, run_bench_grid

from repro.harness.reporting import format_table

METHOD_COLUMNS = [
    "alsh",
    "mc^M",
    "mc^S",
    "dropout^S",
    "adaptive_dropout^S",
    "standard^S",
]

# Keep the stochastic runs tractable on the bigger synthetic sets; give
# minibatch runs enough epochs that update counts are comparable.
MAX_TRAIN_STOCHASTIC = 500
STOCHASTIC_EPOCHS = 4
MINIBATCH_EPOCHS = 10


def run_table2(all_benchmarks):
    # One executor fan-out per dataset: the 6 method-settings of a row
    # train concurrently, bitwise-equal to the old serial loop.
    table = {}
    for name, data in all_benchmarks.items():
        specs = []
        for column in METHOD_COLUMNS:
            method, batch, lr, kwargs = PAPER_SETTINGS[column]
            stochastic = batch == 1
            specs.append(
                dict(
                    label=column,
                    method=method,
                    depth=3,
                    batch=batch,
                    lr=lr,
                    epochs=STOCHASTIC_EPOCHS if stochastic else MINIBATCH_EPOCHS,
                    max_train=MAX_TRAIN_STOCHASTIC if stochastic else None,
                    **kwargs,
                )
            )
        table[name] = {
            r["label"]: r["accuracy"] for r in run_bench_grid(specs, data)
        }
    return table


def test_table2_accuracy(benchmark, capsys, all_benchmarks):
    table = benchmark.pedantic(
        run_table2, args=(all_benchmarks,), iterations=1, rounds=1
    )
    with capsys.disabled():
        rows = [
            [name] + [table[name][c] for c in METHOD_COLUMNS]
            for name in table
        ]
        print()
        print(
            format_table(
                ["dataset"] + METHOD_COLUMNS,
                rows,
                title="Table 2 reproduction: test accuracy, 3 hidden layers",
            )
        )
    # Shape assertions (orderings, not absolute numbers).
    for name, row in table.items():
        n_classes = all_benchmarks[name].n_classes
        chance = 1.0 / n_classes
        # The leaders must clear chance on every benchmark.
        assert max(row.values()) > 1.5 * chance, name
    # Dropout at p=0.05 must not be the best method anywhere (Table 2).
    for name, row in table.items():
        assert row["dropout^S"] <= max(v for k, v in row.items() if k != "dropout^S") + 1e-9
    # Averaged over benchmarks, adaptive-dropout beats plain dropout and
    # MC-approx^M beats dropout (the paper's consistent orderings).
    def mean(col):
        return sum(table[n][col] for n in table) / len(table)

    assert mean("adaptive_dropout^S") > mean("dropout^S")
    assert mean("mc^M") > mean("dropout^S")
