#!/usr/bin/env python
"""Perf-regression microbenchmark: observability overhead.

Like ``bench_lsh_backend.py`` this is a plain script so CI can run it
without pytest:

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke --check

It trains a paper-shape MLP for a fixed number of batches under four
instrumentation levels — NullRecorder, NullRecorder with the default
quality probes attached, InMemoryRecorder, and InMemoryRecorder with
probes at the default cadence — takes the min over repeats, and writes
``BENCH_obs.json`` at the repo root.  It then drives the micro-batched
inference server through a fixed request load twice — null recorder +
null tracer vs live recorder + request tracer — to price the serving
telemetry (latency/queue-wait histograms, request-id minting, trace
events).  Under ``--check`` it fails when:

* attaching probes under the NullRecorder costs anything measurable
  (probes must short-circuit on ``enabled`` — the no-op guarantee), or
* probes at the default cadence cost more than 5 % of traced training
  wall-clock, or
* serve-side histograms + tracing cost more than 5 % of serving
  wall-clock.
"""

import argparse
import json
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.registry import make_trainer  # noqa: E402
from repro.nn.network import MLP  # noqa: E402
from repro.obs import NULL_RECORDER, InMemoryRecorder, RequestTracer  # noqa: E402
from repro.obs.probes import (  # noqa: E402
    DEFAULT_PROBE_EVERY,
    ProbeManager,
    default_probes,
)
from repro.obs.tracectx import NULL_TRACER  # noqa: E402
from repro.serve.server import InferenceServer, seeded_servable  # noqa: E402

# Timing noise floor for the "≈ 0" gate: min-of-repeats still jitters a
# few percent on shared CI runners.
NULL_TOLERANCE = 0.03
PROBE_BUDGET_FRAC = 0.05
SERVE_TELEMETRY_FRAC = 0.05


def _make_data(sizes, n_samples, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n_samples, sizes[0]))
    y = rng.integers(0, sizes[-1], size=n_samples)
    return x, y


def _run_once(sizes, x, y, batch_size, epochs, recorder, probe_every, seed):
    net = MLP(sizes, seed=seed)
    trainer = make_trainer(
        "standard", net, lr=1e-3, seed=seed, recorder=recorder
    )
    if probe_every is not None:
        trainer.attach_probes(
            ProbeManager(
                default_probes(), probe_every=probe_every, seed=seed
            )
        )
    start = time.perf_counter()
    trainer.fit(x, y, epochs=epochs, batch_size=batch_size)
    return time.perf_counter() - start


def _time_variant(repeats, make_recorder, probe_every, **kw):
    return min(
        _run_once(recorder=make_recorder(), probe_every=probe_every, **kw)
        for _ in range(repeats)
    )


def _serve_once(model, xs, recorder, tracer):
    """One deterministic serve pass: requests through run_once dispatch.

    Uses the single-threaded ``start_worker=False`` mode so the timing
    measures the submit/dispatch/handler path itself, not worker-thread
    scheduling noise.  The handler is a real model forward at a serving
    shape heavy enough that per-request telemetry (histogram records,
    id minting, trace events) is priced against real work.  The model
    and inputs are built once by the caller — cold-start allocations
    must not land inside the timed region.
    """
    requests = xs.shape[0]
    server = InferenceServer(
        model, max_batch=32, max_wait=0.0, max_queue=requests + 1,
        recorder=recorder, tracer=tracer, start_worker=False,
    )
    pending = []
    start = time.perf_counter()
    for i in range(requests):
        pending.append(server.submit(xs[i]))
        if len(pending) >= 32:
            server.run_once(force=True)
            for req in pending:
                req.result(timeout=5.0)
            pending.clear()
    server.run_once(force=True)
    for req in pending:
        req.result(timeout=5.0)
    elapsed = time.perf_counter() - start
    server.close()
    return elapsed


def _time_serve_variant(repeats, model, xs, make_recorder, make_tracer):
    return min(
        _serve_once(model, xs, make_recorder(), make_tracer())
        for _ in range(repeats)
    )


def run(smoke=False, repeats=3, out=None, check=False):
    if smoke:
        sizes = [64, 256, 256, 10]
        n_samples, batch_size, epochs = 2400, 10, 2  # 480 batches
    else:
        sizes = [784, 1000, 1000, 1000, 10]  # the paper's MNIST shape
        n_samples, batch_size, epochs = 3000, 20, 2  # 300 batches
    x, y = _make_data(sizes, n_samples, seed=0)
    kw = dict(
        sizes=sizes, x=x, y=y, batch_size=batch_size, epochs=epochs, seed=0
    )

    variants = {
        "null": (lambda: None, None),
        "null_probed": (lambda: None, DEFAULT_PROBE_EVERY),
        "inmem": (InMemoryRecorder, None),
        "inmem_probed": (InMemoryRecorder, DEFAULT_PROBE_EVERY),
    }
    times = {}
    for name, (make_recorder, probe_every) in variants.items():
        times[name] = _time_variant(repeats, make_recorder, probe_every, **kw)
        print(f"  {name:<14} {times[name]:.3f}s")

    # Serving telemetry: the paper-shape trunk keeps per-request compute
    # realistic so the ≤5 % gate prices histograms + tracing fairly.
    # Timing noise at these durations is dominated by GEMM jitter, so the
    # gate needs a warm shared model and min-of-many on both sides.
    if smoke:
        # ~2.80M MACs/request — matches the full paper shape (~2.79M), so
        # the smoke ratio prices telemetry against the same per-request
        # compute the real gate sees.
        serve_requests = 1500
        serve_model_kw = dict(input_dim=256, hidden=1536, depth=2, classes=32)
    else:
        serve_requests = 3000
        serve_model_kw = dict(input_dim=784, hidden=1000, depth=3, classes=10)
    serve_repeats = max(repeats, 5)
    serve_model = seeded_servable(seed=0, **serve_model_kw)
    serve_xs = np.random.default_rng(0).standard_normal(
        (serve_requests, serve_model.input_dim)
    )
    serve_variants = {
        "serve_null": (lambda: NULL_RECORDER, lambda: NULL_TRACER),
        "serve_telemetry": (InMemoryRecorder, RequestTracer),
    }
    _serve_once(  # warm the forward path before anything is timed
        serve_model, serve_xs[:64], NULL_RECORDER, NULL_TRACER
    )
    for name, (make_recorder, make_tracer) in serve_variants.items():
        times[name] = _time_serve_variant(
            serve_repeats, serve_model, serve_xs, make_recorder, make_tracer
        )
        print(f"  {name:<14} {times[name]:.3f}s")

    overhead = {
        "null_probed_vs_null": times["null_probed"] / times["null"] - 1.0,
        "inmem_vs_null": times["inmem"] / times["null"] - 1.0,
        "inmem_probed_vs_inmem": times["inmem_probed"] / times["inmem"] - 1.0,
        "serve_telemetry_vs_null": (
            times["serve_telemetry"] / times["serve_null"] - 1.0
        ),
    }
    for name, frac in overhead.items():
        print(f"  {name:<24} {frac:+.2%}")

    report = {
        "schema": "bench_obs/1",
        "smoke": bool(smoke),
        "sizes": sizes,
        "batches_per_epoch": n_samples // batch_size,
        "epochs": epochs,
        "batch_size": batch_size,
        "probe_every": DEFAULT_PROBE_EVERY,
        "repeats": repeats,
        "seconds": times,
        "overhead": overhead,
        "serve": {
            "requests": serve_requests,
            "model": serve_model_kw,
            "repeats": serve_repeats,
        },
        "gates": {
            "null_probed_vs_null_max": NULL_TOLERANCE,
            "inmem_probed_vs_inmem_max": PROBE_BUDGET_FRAC,
            "serve_telemetry_vs_null_max": SERVE_TELEMETRY_FRAC,
        },
    }
    if out:
        Path(out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out}")

    if check:
        failures = []
        if overhead["null_probed_vs_null"] > NULL_TOLERANCE:
            failures.append(
                "probes attached under NullRecorder cost "
                f"{overhead['null_probed_vs_null']:+.2%} "
                f"(tolerance {NULL_TOLERANCE:.0%}) — the enabled "
                "short-circuit is broken"
            )
        if overhead["inmem_probed_vs_inmem"] > PROBE_BUDGET_FRAC:
            failures.append(
                "default-cadence probes cost "
                f"{overhead['inmem_probed_vs_inmem']:+.2%} of traced "
                f"training (budget {PROBE_BUDGET_FRAC:.0%})"
            )
        if overhead["serve_telemetry_vs_null"] > SERVE_TELEMETRY_FRAC:
            failures.append(
                "serve histograms + request tracing cost "
                f"{overhead['serve_telemetry_vs_null']:+.2%} of serving "
                f"wall-clock (budget {SERVE_TELEMETRY_FRAC:.0%})"
            )
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("checks passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small shape for CI (seconds, not minutes)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per variant (min is kept)")
    parser.add_argument("--out", default=str(_ROOT / "BENCH_obs.json"),
                        help="JSON report path")
    parser.add_argument("--check", action="store_true",
                        help="fail on overhead regression")
    args = parser.parse_args(argv)
    return run(smoke=args.smoke, repeats=args.repeats, out=args.out,
               check=args.check)


if __name__ == "__main__":
    sys.exit(main())
