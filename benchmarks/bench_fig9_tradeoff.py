"""Figure 9: speed–accuracy trade-off at 3 hidden layers.

Paper shape: MC-approx^M sits on the Pareto frontier — better accuracy at
lower time than the dropout family and ALSH-approx.
"""

from conftest import PAPER_SETTINGS, train_and_eval

from repro.harness.reporting import format_table

COLUMNS = ["standard^M", "mc^M", "dropout^S", "adaptive_dropout^S", "alsh"]
MAX_TRAIN_STOCHASTIC = 250


def run_fig9(mnist):
    points = {}
    for column in COLUMNS:
        method, batch, lr, kwargs = PAPER_SETTINGS[column]
        _, history, acc = train_and_eval(
            method,
            mnist,
            depth=3,
            batch=batch,
            lr=lr,
            max_train=MAX_TRAIN_STOCHASTIC if batch == 1 else None,
            **kwargs,
        )
        points[column] = (float(history.epoch_times().mean()), acc)
    return points


def test_fig9_speed_accuracy_tradeoff(benchmark, capsys, mnist):
    points = benchmark.pedantic(run_fig9, args=(mnist,), iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["method", "time/epoch (s)", "accuracy"],
                [[c, t, a] for c, (t, a) in points.items()],
                title="Figure 9 reproduction: speed-accuracy scatter "
                "(3 hidden layers)",
            )
        )
    # MC-approx^M must Pareto-dominate ALSH-approx and plain dropout:
    # at least as accurate AND faster.
    t_mc, a_mc = points["mc^M"]
    for dominated in ("alsh", "dropout^S"):
        t_d, a_d = points[dominated]
        assert a_mc >= a_d - 0.02
        assert t_mc < t_d
