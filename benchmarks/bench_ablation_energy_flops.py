"""Ablation: analytical FLOPs + the §11 energy model.

Two extensions beyond the paper's measurements:

1. closed-form per-step FLOP counts at the paper's architecture
   (784–1000×3–10), showing the §9.3 batch-size effect *arithmetically*:
   MC-approx does more FLOPs than STANDARD at batch 1 and fewer at 20;
2. the paper's §11 future-work direction — energy estimates combining the
   FLOP counts with simulated memory traffic.
"""

from repro.harness.energy import EnergyModel, estimate_training_energy
from repro.harness.flops import flops_table, speedup_vs_standard
from repro.harness.reporting import format_table

PAPER_ARCH = [784, 1000, 1000, 1000, 10]
ENERGY_ARCH = [256, 300, 300, 300, 10]  # scaled for the trace simulation
SAMPLING = dict(keep_prob=0.05, active_frac=0.2, k=10)


def run_analysis():
    flops = {
        batch: flops_table(PAPER_ARCH, batch=batch, **SAMPLING)
        for batch in (1, 20)
    }
    energy = estimate_training_energy(
        ENERGY_ARCH, batch=1, model=EnergyModel(), **SAMPLING
    )
    return flops, energy


def test_ablation_energy_flops(benchmark, capsys):
    flops, energy = benchmark.pedantic(run_analysis, iterations=1, rounds=1)
    with capsys.disabled():
        for batch, table in flops.items():
            std = table["standard"].total
            rows = [
                [m, f.forward / 1e6, f.backward / 1e6, f.overhead / 1e6,
                 std / f.total]
                for m, f in table.items()
            ]
            print()
            print(
                format_table(
                    ["method", "fwd (MFLOP)", "bwd (MFLOP)",
                     "overhead (MFLOP)", "speedup vs standard"],
                    rows,
                    title=f"Analytical FLOPs, paper arch, batch {batch}",
                    float_fmt="{:.2f}",
                )
            )
        rows = [
            [m, e.compute_j * 1e3, e.dram_j * 1e3, e.cache_j * 1e3,
             e.total_j * 1e3]
            for m, e in energy.items()
        ]
        print()
        print(
            format_table(
                ["method", "compute (mJ)", "DRAM (mJ)", "cache (mJ)",
                 "total (mJ)"],
                rows,
                title="§11 energy model, per training step (batch 1)",
                float_fmt="{:.4f}",
            )
        )
    # §9.3 arithmetically: MC loses at batch 1, wins at batch 20.
    assert speedup_vs_standard("mc", PAPER_ARCH, batch=1, **SAMPLING) < 1.0
    assert speedup_vs_standard("mc", PAPER_ARCH, batch=20, **SAMPLING) > 1.3
    # §10.1: backprop FLOPs exceed feedforward FLOPs for exact training.
    std = flops[20]["standard"]
    assert std.backward > std.forward
    # Energy: dropout's compute collapses but memory traffic remains,
    # so its total saving is much smaller than its 18x FLOP saving.
    e = energy
    compute_ratio = e["standard"].compute_j / e["dropout"].compute_j
    total_ratio = e["standard"].total_j / e["dropout"].total_j
    assert compute_ratio > 3 * total_ratio


def run_roofline():
    from repro.harness.roofline import RooflineMachine, roofline_table

    return roofline_table(ENERGY_ARCH, batch=20, **SAMPLING), RooflineMachine()


def test_ablation_roofline(benchmark, capsys):
    table, machine = benchmark.pedantic(run_roofline, iterations=1, rounds=1)
    with capsys.disabled():
        std = table["standard"]
        rows = [
            [m, p.flops / 1e6, p.traffic_bytes / 1e6, p.arithmetic_intensity,
             "compute" if p.compute_bound else "memory",
             std.predicted_time_s / p.predicted_time_s]
            for m, p in table.items()
        ]
        print()
        print(
            format_table(
                ["method", "FLOPs (M)", "DRAM traffic (MB)",
                 "FLOPs/byte", "bound", "roofline speedup"],
                rows,
                title=f"Roofline (balance point "
                f"{machine.balance_point:.1f} FLOPs/byte): why arithmetic "
                "savings don't become wall time",
                float_fmt="{:.2f}",
            )
        )
    # Column-sliced dropout becomes memory-bound; its roofline speedup is
    # far below its FLOP speedup (the §1 memory-wall argument).
    drop = table["dropout"]
    assert not drop.compute_bound
    flop_speedup = table["standard"].flops / drop.flops
    time_speedup = (
        table["standard"].predicted_time_s / drop.predicted_time_s
    )
    assert flop_speedup > 2 * time_speedup
    # Exact training stays compute-bound at this width.
    assert table["standard"].compute_bound
