"""§7 theory table: error-to-estimate ratios for c = 5, k = 1..6.

Paper values: 0.2, 0.44, 0.72, 1.07, 1.48, 1.98 — reproduced here exactly
from the Theorem 7.2 closed form, cross-checked against the Lemma 7.1
recursion simulator.
"""

import numpy as np

from repro.harness.reporting import format_table
from repro.theory.error_propagation import (
    LinearErrorModel,
    depth_at_error_ratio,
    error_ratio_table,
)

PAPER_ROW = [0.2, 0.44, 0.72, 1.07, 1.48, 1.98]


def compute_table():
    closed = error_ratio_table(c=5.0, max_k=6)
    # Cross-check with the recursion on a constructed network where the
    # active sum is exactly 5x the inactive sum: keep 5 of 6 equal lumps.
    n = 12
    weights = [np.ones((n, n)) for _ in range(6)]
    model = LinearErrorModel(
        weights, selector=lambda layer, node, contrib: np.arange(10)
    )
    exact, estimates, _ = model.run(np.ones(n))
    recursion = np.array(
        [(exact[k][0] - estimates[k][0]) / estimates[k][0] for k in range(6)]
    )
    return closed, recursion


def test_theory_error_table(benchmark, capsys):
    closed, recursion = benchmark.pedantic(compute_table, iterations=1, rounds=1)
    with capsys.disabled():
        rows = [
            ["paper (§7)"] + PAPER_ROW,
            ["closed form"] + [round(v, 2) for v in closed],
            ["Lemma 7.1 recursion"] + [round(v, 2) for v in recursion],
        ]
        print()
        print(
            format_table(
                ["source"] + [f"k={k}" for k in range(1, 7)],
                rows,
                title="§7 error-to-estimate ratio, c = 5",
                float_fmt="{:.2f}",
            )
        )
        print(
            f"error dominates estimate from depth "
            f"{depth_at_error_ratio(5.0, 1.0)} (paper: 'larger than 3')"
        )
    # The closed form must match the paper's table to rounding.
    np.testing.assert_allclose(closed, PAPER_ROW, atol=0.011)
    # keep-10-of-12 equal lumps gives c = 5 exactly: recursion == closed form.
    np.testing.assert_allclose(recursion, closed, rtol=1e-9)
