"""§9.4 memory analysis: working sets and cache behaviour.

Two parts:

1. Working-set accounting per method (paper: ALSH-approx sets up ~24 MB of
   tables; MC-approx grows ~45 MB; Dropout/Adaptive-Dropout stay ~16 MB) —
   reproduced as a breakdown with the same orderings at the paper's
   architecture (3 × 1000 hidden units).
2. Trace-driven cache simulation (paper: ≈24 % more misses with Dropout
   and ≈27 % with Adaptive-Dropout than MC-approx) — reproduced as miss
   orderings on a hierarchy shaped like the i9-9920X.
"""

from repro.harness.reporting import format_table
from repro.memsim.profile import estimate_training_memory, profile_methods

PAPER_ARCH = [784, 1000, 1000, 1000, 10]
PROFILE_ARCH = [256, 300, 300, 300, 10]  # scaled for simulation speed
METHODS = ["standard", "dropout", "adaptive_dropout", "mc", "alsh"]


def run_memory_analysis():
    breakdowns = {
        m: estimate_training_memory(
            m, PAPER_ARCH, batch=20 if m == "mc" else 1,
            optimizer="adam" if m == "alsh" else "sgd",
        )
        for m in METHODS
    }
    cache = profile_methods(
        PROFILE_ARCH, batch=1, steps=2, hierarchy_scale=1 / 32, seed=0
    )
    return breakdowns, cache


def test_memory_analysis(benchmark, capsys):
    breakdowns, cache = benchmark.pedantic(
        run_memory_analysis, iterations=1, rounds=1
    )
    with capsys.disabled():
        mb = 1024 * 1024
        keys = ["weights", "activations", "gradients", "optimizer_state",
                "hash_tables", "masks", "keep_probs", "sampling_buffers",
                "total"]
        rows = [
            [m] + [breakdowns[m].get(k, 0) / mb for k in keys]
            for m in METHODS
        ]
        print()
        print(
            format_table(
                ["method"] + [k + " (MB)" for k in keys],
                rows,
                title="§9.4 working-set breakdown at the paper architecture "
                "(784-1000x3-10)",
                float_fmt="{:.2f}",
            )
        )
        mc_misses = cache["mc"]["L1"]["misses"]
        print()
        print(
            format_table(
                ["method", "L1 misses", "vs MC-approx", "L2 misses",
                 "DRAM accesses"],
                [
                    [
                        m,
                        cache[m]["L1"]["misses"],
                        cache[m]["L1"]["misses"] / mc_misses,
                        cache[m]["L2"]["misses"],
                        cache[m]["dram_accesses"],
                    ]
                    for m in METHODS
                ],
                title="Cache simulation (paper: Dropout +24%, "
                "Adaptive-Dropout +27% misses vs MC-approx)",
                float_fmt="{:.2f}",
            )
        )
    # Working-set orderings from §9.4.
    assert breakdowns["alsh"]["hash_tables"] > 0
    assert breakdowns["alsh"]["total"] > breakdowns["dropout"]["total"]
    assert breakdowns["mc"]["total"] > breakdowns["dropout"]["total"]
    # Cache-miss orderings from §9.4.
    assert cache["dropout"]["L1"]["misses"] > 1.1 * cache["mc"]["L1"]["misses"]
    assert (
        cache["adaptive_dropout"]["L1"]["misses"]
        >= cache["dropout"]["L1"]["misses"]
    )
