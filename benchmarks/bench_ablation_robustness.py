"""Ablation: does approximation noise compose with data noise?

The taxonomy's premise (§4.2) is that SGD tolerates small amounts of
noise, which is what licenses approximating the products at all.  This
ablation asks whether MC-approx's estimator noise *adds to* label noise
destructively: train STANDARD^M and MC-approx^M under increasing label
corruption and compare their degradation curves.  If the premise holds,
the two curves fall together and the gap stays bounded — the approximation
noise rides inside SGD's existing tolerance rather than stacking on top.
"""

import numpy as np

from conftest import train_and_eval

from repro.data.corruptions import with_label_noise
from repro.harness.reporting import format_series

NOISE_LEVELS = [0.0, 0.2, 0.4]
EPOCHS = 8


def run_sweep(mnist):
    acc = {"standard^M": [], "mc^M": []}
    for noise in NOISE_LEVELS:
        data = with_label_noise(mnist, noise, seed=7) if noise else mnist
        for method, kwargs in (("standard", {}), ("mc", {"k": 10})):
            _, _, a = train_and_eval(
                method, data, depth=2, batch=20, lr=1e-2, epochs=EPOCHS,
                **kwargs,
            )
            acc[f"{method}^M"].append(a)
    return acc


def test_ablation_label_noise_robustness(benchmark, capsys, mnist):
    acc = benchmark.pedantic(run_sweep, args=(mnist,), iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            format_series(
                "label-noise fraction",
                NOISE_LEVELS,
                acc,
                title="Robustness ablation: accuracy under training-label "
                "corruption (2 hidden layers, minibatch)",
            )
        )
        print(
            "the curves falling together (bounded gap) supports the §4.2\n"
            "premise: MC-approx's estimator noise does not stack with data\n"
            "noise — it rides inside SGD's existing tolerance."
        )
    std = np.array(acc["standard^M"])
    mc = np.array(acc["mc^M"])
    # Label noise hurts both methods.
    assert std[-1] < std[0]
    assert mc[-1] < mc[0]
    # The mc-vs-standard gap stays bounded at every noise level.
    assert np.abs(std - mc).max() < 0.15
