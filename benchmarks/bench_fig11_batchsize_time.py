"""Figure 11: MC-approx training time vs batch size.

Paper shape: per-epoch time blows up as the batch shrinks — the per-step
probability machinery is amortised over fewer samples, and at batch 1
MC-approx is slower than STANDARD (the §9.3 "swift drop in time
efficiency").
"""

import numpy as np

from conftest import train_and_eval

from repro.harness.reporting import format_series

BATCHES = [1, 2, 5, 10, 20]
SUBSET = 300
WIDTH = 256


def run_fig11(mnist):
    times = {"mc": [], "standard": []}
    for batch in BATCHES:
        for method, kwargs in [("mc", {"k": 10}), ("standard", {})]:
            # Best of two runs per cell, so transient system load cannot
            # invert the orderings the assertions check.
            best = min(
                float(
                    train_and_eval(
                        method, mnist, depth=3, width=WIDTH, batch=batch,
                        lr=1e-3, epochs=1, max_train=SUBSET, **kwargs,
                    )[1].epoch_times().mean()
                )
                for _ in range(2)
            )
            times[method].append(best)
    return times


def test_fig11_batchsize_time(benchmark, capsys, mnist):
    times = benchmark.pedantic(run_fig11, args=(mnist,), iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            format_series(
                "batch size",
                BATCHES,
                times,
                title=(
                    "Figure 11 reproduction: time/epoch (s) vs batch size\n"
                    f"({SUBSET} samples, 3 x {WIDTH} hidden)"
                ),
            )
        )
    mc = np.array(times["mc"])
    std = np.array(times["standard"])
    # Time per epoch explodes as the batch shrinks...
    assert mc[0] > 2 * mc[-1]
    # ...and at batch size 1 MC-approx is slower than standard.
    assert mc[0] > std[0]
    # The overhead ratio shrinks with batch size.
    ratios = mc / std
    assert ratios[0] > ratios[-1]
