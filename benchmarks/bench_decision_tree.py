"""§10.4: the optimal-choice decision tree, regenerated quantitatively.

Combines three ingredients the paper uses to justify its closing decision
tree:

1. measured sequential per-epoch times (this repo's Table 3 bench),
2. the multi-core projection for ALSH-approx (§9.2's parallel phases,
   Amdahl-decomposed — the paper cites scaling to 2^6 processors),
3. measured accuracy across depth (Figure 7's collapse).

The output is one table per depth regime showing why each branch of the
tree picks what it picks, plus the executable tree's answers.
"""

from conftest import train_and_eval

from repro.harness.parallel import projected_time, speedup_curve
from repro.harness.recommend import recommend_method
from repro.harness.reporting import format_table

DEPTHS = [2, 6]
MAX_TRAIN = 250
PROCESSORS = 64  # the paper's 2^6


def run_analysis(mnist):
    rows = []
    for depth in DEPTHS:
        _, h_std, acc_std = train_and_eval(
            "standard", mnist, depth=depth, batch=1, lr=1e-3, epochs=1,
            max_train=MAX_TRAIN,
        )
        _, h_alsh, acc_alsh = train_and_eval(
            "alsh", mnist, depth=depth, batch=1, lr=1e-3, epochs=1,
            max_train=MAX_TRAIN, optimizer="adam",
        )
        t_std = float(h_std.epoch_times().mean())
        t_alsh_seq = float(h_alsh.epoch_times().mean())
        t_alsh_par = projected_time(t_alsh_seq, PROCESSORS)
        rows.append(
            {
                "depth": depth,
                "acc_std": acc_std,
                "acc_alsh": acc_alsh,
                "t_std": t_std,
                "t_alsh_seq": t_alsh_seq,
                "t_alsh_par": t_alsh_par,
            }
        )
    return rows


def test_decision_tree(benchmark, capsys, mnist):
    rows = benchmark.pedantic(run_analysis, args=(mnist,), iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["depth", "std^S acc", "alsh acc", "std^S t (s)",
                 "alsh seq t (s)", f"alsh @{PROCESSORS} cores (s)"],
                [
                    [r["depth"], r["acc_std"], r["acc_alsh"], r["t_std"],
                     r["t_alsh_seq"], r["t_alsh_par"]]
                    for r in rows
                ],
                title="§10.4 evidence: time and accuracy by depth "
                "(stochastic regime)",
            )
        )
        curve = speedup_curve([1, 4, 16, 64])
        print(
            "projected ALSH speedup: "
            + ", ".join(f"{p} cores = {s:.1f}x" for p, s in curve.items())
        )
        for batch, depth, par in [(20, 3, False), (1, 2, True), (1, 6, True)]:
            rec = recommend_method(batch, depth, par)
            print(
                f"recommend(batch={batch}, depth={depth}, parallel={par}) "
                f"-> {rec.method}"
            )
    shallow, deep = rows
    # Sequential ALSH is slower than standard at both depths (Table 3)...
    assert shallow["t_alsh_seq"] > shallow["t_std"]
    # ...but the 64-core projection brings shallow ALSH below its
    # sequential time by a large factor — the §10.4 parallel branch.
    assert shallow["t_alsh_par"] < shallow["t_alsh_seq"] / 4
    # At depth 6 the accuracy collapse disqualifies ALSH regardless of
    # parallel speed.
    assert deep["acc_alsh"] < deep["acc_std"]
    # The executable tree answers match the paper's branches.
    assert recommend_method(20, 3).method == "mc"
    assert recommend_method(1, 2, parallel_hardware=True).method == "alsh"
    assert recommend_method(1, 6, parallel_hardware=True).method == "standard"
