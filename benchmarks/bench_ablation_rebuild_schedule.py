"""Ablation: ALSH-approx hash-table rebuild schedule (§9.2 design choice).

The reference implementation rebuilds every 100 samples early, backing off
to every 1000 — "to avoid time-consuming table reconstructions".  This
ablation sweeps the rebuild period and reports accuracy vs training time:
frequent rebuilds cost time; never rebuilding leaves the tables querying
stale weight columns.
"""

from conftest import train_and_eval

from repro.harness.reporting import format_table
from repro.lsh.rebuild import RebuildScheduler

MAX_TRAIN = 300
EPOCHS = 2
SCHEDULES = [
    ("every 10", RebuildScheduler(10, 10, 0)),
    ("every 100", RebuildScheduler(100, 100, 0)),
    ("paper (100 -> 1000)", RebuildScheduler(100, 1000, 10_000)),
    ("never", RebuildScheduler(10**9, 10**9, 0)),
]


def run_sweep(mnist):
    rows = []
    for label, scheduler in SCHEDULES:
        scheduler.reset()
        trainer, history, acc = train_and_eval(
            "alsh", mnist, depth=2, batch=1, lr=1e-3, epochs=EPOCHS,
            max_train=MAX_TRAIN, optimizer="adam", rebuild=scheduler,
        )
        rows.append(
            [label, acc, history.total_time, scheduler.rebuild_count,
             trainer.rehashed_columns]
        )
    return rows


def test_ablation_rebuild_schedule(benchmark, capsys, mnist):
    rows = benchmark.pedantic(run_sweep, args=(mnist,), iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["rebuild schedule", "accuracy", "train time (s)",
                 "rebuilds", "columns re-hashed"],
                rows,
                title="ALSH-approx rebuild-schedule ablation (§9.2)",
            )
        )
    by_label = {r[0]: r for r in rows}
    # More frequent rebuilds mean more rebuild events and more table-
    # maintenance work (re-hashed columns) — deterministic counters, since
    # wall time at these run lengths is too noisy to order reliably.
    assert by_label["every 10"][3] > by_label["every 100"][3]
    assert by_label["every 10"][4] > by_label["every 100"][4]
    assert by_label["never"][3] == 0
    assert by_label["never"][4] == 0


def run_drift_comparison(mnist):
    """Extension beyond the paper: drift-aware re-hashing (repro.lsh.drift)
    vs the re-hash-all-touched reference behaviour."""
    rows = []
    for label, threshold in [("rehash all touched (paper)", None),
                             ("drift > 0.05", 0.05),
                             ("drift > 0.25", 0.25)]:
        trainer, history, acc = train_and_eval(
            "alsh", mnist, depth=2, batch=1, lr=1e-3, epochs=EPOCHS,
            max_train=MAX_TRAIN, optimizer="adam",
            rebuild=RebuildScheduler(50, 50, 0),
            drift_threshold=threshold,
        )
        rows.append([label, acc, trainer.rehashed_columns])
    return rows


def test_ablation_drift_rebuild(benchmark, capsys, mnist):
    rows = benchmark.pedantic(
        run_drift_comparison, args=(mnist,), iterations=1, rounds=1
    )
    with capsys.disabled():
        print()
        print(
            format_table(
                ["policy", "accuracy", "columns re-hashed"],
                rows,
                title="Drift-aware table maintenance (extension; threshold 0 "
                "= paper behaviour)",
            )
        )
    by_label = {r[0]: r for r in rows}
    # Drift filtering strictly reduces maintenance work...
    assert (
        by_label["drift > 0.25"][2]
        < by_label["rehash all touched (paper)"][2]
    )
    # ...monotonically in the threshold.
    assert by_label["drift > 0.25"][2] <= by_label["drift > 0.05"][2]
