"""Ablation: active-node selector quality vs the depth collapse.

Three selectors for "sampling from the current layer", swept over depth:

* ALSH with SimHash tables (the paper's configuration),
* ALSH with densified winner-take-all tables (the SLIDE-style family),
* the exact-MIPS oracle (TOPK-APPROX).

The §7 theory predicts all three collapse with depth — Theorem 7.2 assumes
*perfect* detection and still gets exponential error growth.  If even the
oracle collapses (it does), LSH recall is exonerated and the paper's
conclusion stands: feedforward approximation itself is the obstacle.
"""

from conftest import run_bench_grid

from repro.harness.reporting import format_series

DEPTHS = [1, 3, 5]
MAX_TRAIN = 300
EPOCHS = 2
BUDGET = 0.25

VARIANTS = [
    ("alsh (srp)", "alsh", {"optimizer": "adam", "hash_family": "srp",
                            "min_active_frac": BUDGET, "max_active_frac": BUDGET}),
    ("alsh (dwta)", "alsh", {"optimizer": "adam", "hash_family": "dwta",
                             "min_active_frac": BUDGET, "max_active_frac": BUDGET}),
    ("oracle top-k", "topk", {"optimizer": "adam", "active_frac": BUDGET}),
]


def run_sweep(mnist):
    # Depth × selector grid through the executor; one task per cell.
    specs = [
        dict(
            label=label,
            method=method,
            depth=depth,
            batch=1,
            lr=1e-3,
            epochs=EPOCHS,
            max_train=MAX_TRAIN,
            **kwargs,
        )
        for depth in DEPTHS
        for label, method, kwargs in VARIANTS
    ]
    series = {label: [] for label, _, _ in VARIANTS}
    for result in run_bench_grid(specs, mnist):
        series[result["label"]].append(result["accuracy"])
    return series


def test_ablation_selector_quality(benchmark, capsys, mnist):
    series = benchmark.pedantic(run_sweep, args=(mnist,), iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            format_series(
                "hidden layers",
                DEPTHS,
                series,
                title="Selector-quality ablation: accuracy vs depth at a "
                f"{BUDGET:.0%} active budget",
            )
        )
        print(
            "every selector collapses with depth — perfect MIPS included —\n"
            "so the collapse is inherent to feedforward approximation (§7),\n"
            "not an artefact of LSH recall."
        )
    # Every variant collapses: shallow beats deep.
    for label, accs in series.items():
        assert accs[0] > accs[-1], label
    # The oracle is at least competitive with both LSH variants shallow.
    assert series["oracle top-k"][0] >= max(
        series["alsh (srp)"][0], series["alsh (dwta)"][0]
    ) - 0.1
