"""Figure 10: MC-approx accuracy vs batch size.

Paper shape: with the learning rate fixed, accuracy drops sharply for
small batches (98 % → 64 %), which the paper attributes to *overfitting*
in the stochastic regime (§9.3) — fixed by lowering the lr (Figure 6).

DOCUMENTED DIVERGENCE: on this synthetic substrate the overfitting driver
does not transfer — small batches make more updates per epoch and win at
miniature scale, and the Eq. 7 estimator stays serviceable at batch 1
(the batch-dimension product is exact there).  What *does* reproduce is
Figure 11's time blow-up (see bench_fig11) and the §9.3 overhead findings.
This bench therefore prints the measured sweep for the record and asserts
the robust invariant: MC-approx tracks exact training at every batch size
(bounded gap), i.e. the estimator itself never breaks with batch size —
the batch-size penalty is a *time* penalty on CPU.
"""

import numpy as np

from conftest import train_and_eval

from repro.harness.reporting import format_series

BATCHES = [1, 2, 5, 10, 20]
EPOCHS = 3


def run_fig10(mnist):
    accs = {"mc (lr=1e-2)": [], "standard (lr=1e-2)": []}
    for batch in BATCHES:
        for label, method, kwargs in [
            ("mc (lr=1e-2)", "mc", {"k": 10}),
            ("standard (lr=1e-2)", "standard", {}),
        ]:
            _, _, acc = train_and_eval(
                method, mnist, depth=3, batch=batch, lr=1e-2,
                epochs=EPOCHS, max_train=400, **kwargs,
            )
            accs[label].append(acc)
    return accs


def test_fig10_batchsize_accuracy(benchmark, capsys, mnist):
    accs = benchmark.pedantic(run_fig10, args=(mnist,), iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            format_series(
                "batch size",
                BATCHES,
                accs,
                title="Figure 10 reproduction: accuracy vs batch size "
                "(fixed lr, fixed epochs)",
            )
        )
        print(
            "note: the paper's small-batch accuracy drop is an overfitting\n"
            "effect on real MNIST over 50 epochs; it does not manifest on\n"
            "the synthetic substrate (see EXPERIMENTS.md). The robust\n"
            "reproduction is the bounded mc-vs-standard gap below and the\n"
            "Figure 11 time blow-up."
        )
    mc = np.array(accs["mc (lr=1e-2)"])
    std = np.array(accs["standard (lr=1e-2)"])
    # MC-approx must track the exact baseline at every batch size.
    assert np.abs(mc - std).max() < 0.15
