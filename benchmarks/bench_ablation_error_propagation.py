"""§7 empirical check: measured layerwise error growth on live networks.

Measures the relative activation-estimation error per hidden layer under
three selectors — a live ALSH index, an oracle top-k (perfect MIPS), and
uniform random — and prints them next to the Theorem 7.2 closed form.
Shape: all selectors compound with depth; ALSH tracks the oracle far
better than random, but compounding is inherent to the approach.
"""

import numpy as np

from repro.core.alsh_approx import ALSHApproxTrainer
from repro.harness.reporting import format_series
from repro.nn.network import MLP
from repro.theory.analysis import (
    make_alsh_selector,
    make_random_selector,
    make_topk_selector,
    measure_layerwise_error,
)
from repro.theory.error_propagation import error_ratio

DEPTH = 6
WIDTH = 96
INPUT = 64
BUDGET = 0.25


def run_measurement():
    rng = np.random.default_rng(0)
    net = MLP([INPUT] + [WIDTH] * DEPTH + [10], seed=1)
    x = rng.normal(size=(25, INPUT))
    trainer = ALSHApproxTrainer(
        net, seed=2, min_active_frac=BUDGET, max_active_frac=BUDGET
    )
    series = {
        "oracle top-k": measure_layerwise_error(
            net, make_topk_selector(net, BUDGET), x
        ),
        "ALSH (K=6, L=5)": measure_layerwise_error(
            net, make_alsh_selector(trainer), x
        ),
        "uniform random": measure_layerwise_error(
            net, make_random_selector(net, BUDGET, seed=3), x
        ),
        "Thm 7.2 (c=5), scaled": np.array(
            [error_ratio(5.0, k) for k in range(1, DEPTH + 1)]
        ),
    }
    return series


def test_ablation_error_propagation(benchmark, capsys):
    series = benchmark.pedantic(run_measurement, iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            format_series(
                "hidden layer",
                list(range(1, DEPTH + 1)),
                series,
                title="§7 empirical check: relative activation error per "
                f"layer (budget {BUDGET:.0%} of nodes)",
            )
        )
    oracle = series["oracle top-k"]
    alsh = series["ALSH (K=6, L=5)"]
    random = series["uniform random"]
    # Compounding: the deep end is worse than the shallow end everywhere.
    for name, s in (("oracle", oracle), ("alsh", alsh), ("random", random)):
        assert s[-1] > s[0], name
    # Selector quality ordering: oracle <= alsh-ish < random at layer 1.
    assert oracle[0] <= alsh[0] + 0.05
    assert alsh[0] < random[0]


def run_mc_variance():
    """Unbiased-estimator analogue: MC forward error vs the (1+ρ)^k law."""
    from repro.theory.mc_propagation import (
        measure_mc_forward_error,
        relative_variance_growth,
    )

    rng = np.random.default_rng(0)
    net = MLP([INPUT] + [WIDTH] * DEPTH + [10], seed=3)
    x = rng.normal(size=(15, INPUT))
    measured = measure_mc_forward_error(
        net, x, budget_frac=0.2, n_trials=10, seed=4
    )
    # Fit the per-layer rate from the first layer's error and compare the
    # closed-form *shape* against the measured chain.
    rho = measured[0] ** 2
    predicted = np.array(
        [np.sqrt(relative_variance_growth(rho, k)) for k in range(1, DEPTH + 1)]
    )
    return measured, predicted


def test_ablation_mc_forward_variance(benchmark, capsys):
    measured, predicted = benchmark.pedantic(
        run_mc_variance, iterations=1, rounds=1
    )
    with capsys.disabled():
        print()
        print(
            format_series(
                "hidden layer",
                list(range(1, DEPTH + 1)),
                {
                    "measured MC forward error": measured,
                    "(1+rho)^k law (rho fit at layer 1)": predicted,
                },
                title="Unbiased-estimator variance propagation "
                "(the §10.1 failure, quantified)",
            )
        )
    # Compounding: error strictly larger at the deep end.
    assert measured[-1] > measured[0]
    # The closed form tracks the measured growth within a factor of ~2.5
    # (ReLU clipping damps the linear-chain law).
    ratio = measured[-1] / predicted[-1]
    assert 0.3 < ratio < 3.0
