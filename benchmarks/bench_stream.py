#!/usr/bin/env python
"""Perf-regression benchmark: continual training on a drifting stream.

Unlike the table/figure benches in this directory (pytest-benchmark
suites), this is a plain script so CI can run it without pytest:

    PYTHONPATH=src python benchmarks/bench_stream.py --quick --check

It streams the same drifting prototype workload through three ALSH
table-maintenance policies — the paper's fixed count-based rebuild
schedule, drift-triggered rebuilds, and no rebuilds (the decay
baseline) — writes ``BENCH_stream.json`` at the repo root with
steady-state samples/sec and recall-under-drift for each, and — under
``--check`` — fails when the drift policy loses to the count schedule
on recall or throughput, needs more rebuild events, when recall falls
below ``--min-recall``, or when the flat backend's garbage fraction is
not held bounded by the gauge-driven compactor.  See
``repro.stream.bench`` for the implementation and ``python -m repro
stream-bench`` for the CLI twin.
"""

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.stream.bench import add_arguments, run_cli  # noqa: E402


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_arguments(parser)
    parser.set_defaults(out=str(_ROOT / "BENCH_stream.json"))
    return run_cli(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
