"""Ablation: training methods under concept drift (the §2 regime).

The paper motivates CPU training with on-device personalisation — models
that keep learning from user data as it changes.  This ablation trains
STANDARD, MC-approx and ALSH-approx *continually* on a drifting stream
(class prototypes rotate each batch) and measures accuracy on the current
distribution over time.

Shape to expect: all methods track moderate drift (SGD's plasticity), but
ALSH-approx carries an extra liability — its hash tables index stale
weight columns, and its rebuild cadence becomes a *tracking* parameter,
not just a cost knob.  The bench compares the paper's rebuild schedule
against never rebuilding, under drift, where the gap is widest.
"""

import numpy as np

from repro import MLP, make_trainer
from repro.data.streams import DriftingStream
from repro.harness.reporting import format_series
from repro.lsh.rebuild import RebuildScheduler

DIM = 32
CLASSES = 4
BATCHES = 240
EVAL_EVERY = 60
DRIFT = 0.02


def _run(method, **kwargs):
    stream = DriftingStream(
        dim=DIM, n_classes=CLASSES, batch_size=20, drift_per_batch=DRIFT,
        seed=0,
    )
    net = MLP([DIM, 48, CLASSES], seed=1)
    trainer = make_trainer(method, net, seed=2, **kwargs)
    checkpoints = []
    for b in range(1, BATCHES + 1):
        x, y = stream.next_batch()
        trainer.train_batch(x, y)
        if b % EVAL_EVERY == 0:
            xe, ye = stream.eval_batch(250)
            checkpoints.append(float((trainer.predict(xe) == ye).mean()))
    return checkpoints


def run_drift_study():
    series = {
        "standard (lr 5e-2)": _run("standard", lr=5e-2),
        "mc (lr 5e-2)": _run("mc", lr=5e-2, k=10),
        "alsh, paper rebuild": _run(
            "alsh", lr=1e-2, optimizer="adam",
            rebuild=RebuildScheduler(100, 100, 0),
        ),
        "alsh, never rebuild": _run(
            "alsh", lr=1e-2, optimizer="adam",
            rebuild=RebuildScheduler(10**9, 10**9, 0),
        ),
    }
    return series


def test_ablation_drift_stream(benchmark, capsys):
    series = benchmark.pedantic(run_drift_study, iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            format_series(
                "batches seen",
                list(range(EVAL_EVERY, BATCHES + 1, EVAL_EVERY)),
                series,
                title="Continual training under concept drift "
                f"(rotation {DRIFT} rad/batch; accuracy on the CURRENT "
                "distribution)",
            )
        )
        print(
            "observed: every method tracks this drift rate (SGD's\n"
            "plasticity), but both ALSH variants trail the exact/MC\n"
            "trackers as drift accumulates — the hash machinery is a\n"
            "liability, with or without rebuilds.  Rebuild cadence itself\n"
            "is a wash at this scale: stale tables behave like a\n"
            "dropout-ish random selector, which still trains.\n"
            "(§2 personalisation regime; extension beyond the paper.)"
        )
    # Exact and MC continual training track the drift (stay well above
    # chance at the final checkpoint).
    chance = 1.0 / CLASSES
    for label in ("standard (lr 5e-2)", "mc (lr 5e-2)"):
        assert series[label][-1] > 1.5 * chance, label
    # By the end, the best non-hash tracker beats the best ALSH variant —
    # the hashing machinery is a liability under drift.
    best_tracker = max(series["standard (lr 5e-2)"][-1], series["mc (lr 5e-2)"][-1])
    best_alsh = max(
        series["alsh, paper rebuild"][-1], series["alsh, never rebuild"][-1]
    )
    assert best_tracker > best_alsh
