#!/usr/bin/env python
"""Perf-regression microbenchmark: reference vs fast/threaded backends.

Unlike the table/figure benches in this directory (pytest-benchmark
suites), this is a plain script so CI can run it without pytest:

    PYTHONPATH=src python benchmarks/bench_backend.py --quick --check

It times the dense and sampled GEMM kernels at the paper's shapes on
every built-in compute backend, verifies the fast backend stays within
its documented float32 tolerance of reference, writes
``BENCH_backend.json`` at the repo root, and — under ``--check`` —
fails if ``fast`` does not beat ``reference`` at the gated paper-scale
dense and sampled shapes.  See ``repro.backend.bench`` for the
implementation and ``python -m repro backend-bench`` for the CLI twin.
"""

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.backend.bench import add_arguments, run_cli  # noqa: E402


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_arguments(parser)
    parser.set_defaults(out=str(_ROOT / "BENCH_backend.json"))
    return run_cli(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
