"""Figure 3: confusion matrices per method and depth.

Renders the ASCII equivalents of the paper's Figure 3 panels: rows of the
figure are methods, columns are depths.  The shape to look for is the
ALSH-approx row — a clean diagonal at depth 1 degrading into the §10.3
vertical-bar "label collapse" at depth 7, while MC-approx^M stays diagonal
at every depth.
"""

import numpy as np

from conftest import PAPER_SETTINGS, train_and_eval

from repro.harness.reporting import render_confusion
from repro.nn.metrics import confusion_matrix, prediction_entropy

DEPTHS = [1, 3, 7]
ROWS = ["standard^M", "alsh", "mc^M"]
MAX_TRAIN_STOCHASTIC = 300


def run_fig3(mnist):
    results = {}
    for row in ROWS:
        method, batch, lr, kwargs = PAPER_SETTINGS[row]
        for depth in DEPTHS:
            trainer, _, acc = train_and_eval(
                method,
                mnist,
                depth=depth,
                batch=batch,
                lr=lr,
                max_train=MAX_TRAIN_STOCHASTIC if batch == 1 else None,
                **kwargs,
            )
            preds = trainer.predict(mnist.x_test)
            cm = confusion_matrix(mnist.y_test, preds, mnist.n_classes)
            results[(row, depth)] = {
                "confusion": cm,
                "accuracy": acc,
                "entropy": prediction_entropy(preds, mnist.n_classes),
            }
    return results


def test_fig3_confusion_matrices(benchmark, capsys, mnist):
    results = benchmark.pedantic(run_fig3, args=(mnist,), iterations=1, rounds=1)
    with capsys.disabled():
        for (row, depth), r in results.items():
            print()
            print(
                render_confusion(
                    r["confusion"],
                    title=f"Figure 3 panel — {row}, {depth} hidden layer(s): "
                    f"acc={r['accuracy']:.3f}, pred-entropy={r['entropy']:.2f}",
                )
            )
    # Shape: ALSH's diagonal mass decays with depth; MC's doesn't collapse.
    def diag_mass(row, depth):
        cm = results[(row, depth)]["confusion"]
        return np.trace(cm) / cm.sum()

    assert diag_mass("alsh", 1) > diag_mass("alsh", 7)
    assert diag_mass("mc^M", 7) > diag_mass("alsh", 7)
    # §10.3: deep ALSH prediction entropy below its shallow entropy.
    assert results[("alsh", 7)]["entropy"] < results[("alsh", 1)]["entropy"] + 1e-9
