"""Figure 8: training time vs number of hidden layers.

Paper shape: ALSH-approx's per-epoch time grows fastest with depth
(sequential table maintenance per layer); MC-approx^M beats STANDARD^M at
realistic widths; all methods grow roughly linearly in depth.
"""

import numpy as np

from conftest import train_and_eval

from repro.harness.reporting import format_series

DEPTHS = [1, 3, 5]
SUBSET = 200
TIMING_WIDTH = 1000  # paper width: where MC's sampled products pay off
ALSH_WIDTH = 96  # ALSH is per-sample Python; keep its width tractable


def run_fig8(mnist):
    times = {"standard^M": [], "mc^M": [], "standard^S": [], "alsh": []}
    for depth in DEPTHS:
        for label, method, batch, width, lr, kwargs in [
            ("standard^M", "standard", 20, TIMING_WIDTH, 1e-2, {}),
            ("mc^M", "mc", 20, TIMING_WIDTH, 1e-2, {"k": 10}),
            ("standard^S", "standard", 1, ALSH_WIDTH, 1e-3, {}),
            ("alsh", "alsh", 1, ALSH_WIDTH, 1e-3, {"optimizer": "adam"}),
        ]:
            _, history, _ = train_and_eval(
                method,
                mnist,
                depth=depth,
                width=width,
                batch=batch,
                lr=lr,
                epochs=1,
                max_train=SUBSET,
                **kwargs,
            )
            times[label].append(float(history.epoch_times().mean()))
    return times


def test_fig8_depth_runtime(benchmark, capsys, mnist):
    times = benchmark.pedantic(run_fig8, args=(mnist,), iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            format_series(
                "hidden layers",
                DEPTHS,
                times,
                title=(
                    "Figure 8 reproduction: time/epoch (s) vs depth\n"
                    f"(minibatch rows at width {TIMING_WIDTH}; stochastic "
                    f"rows at width {ALSH_WIDTH}, {SUBSET} samples)"
                ),
            )
        )
    # Paper shapes:
    # 1. ALSH-approx is slower than standard^S at every depth and its cost
    #    grows with depth.
    assert all(a > s for a, s in zip(times["alsh"], times["standard^S"]))
    assert times["alsh"][-1] > times["alsh"][0]
    # 2. MC-approx^M beats standard^M at the paper's width.
    ratios = np.array(times["mc^M"]) / np.array(times["standard^M"])
    assert ratios.mean() < 1.0
