"""Shared fixtures and helpers for the table/figure benchmarks.

Every bench regenerates one table or figure of the paper at laptop scale:
the split sizes are scaled down (see DESIGN.md §1) but the architectures,
hyperparameters and batching regimes follow §8.4, so the *shapes* of the
results — who wins, where ALSH-approx collapses, where MC-approx's batch
sensitivity bites — reproduce the paper's.

Run with:  pytest benchmarks/ --benchmark-only
"""

import os

import numpy as np
import pytest

from repro import MLP, load_benchmark, make_trainer
from repro.harness.executor import ExecutorError, ExperimentExecutor

# Laptop-scale knobs shared by all benches.
DATA_SCALE = 0.01
WIDTH = 64
EPOCHS = 2

# Worker processes for executor-backed benches.  Training is bit-
# deterministic per spec seed, so the results are identical at any worker
# count; the default uses a few cores to cut bench wall-clock.
BENCH_WORKERS = int(
    os.environ.get("REPRO_BENCH_WORKERS", min(4, os.cpu_count() or 1))
)


@pytest.fixture(scope="session")
def mnist():
    return load_benchmark("mnist", scale=DATA_SCALE, seed=0)


@pytest.fixture(scope="session")
def all_benchmarks():
    from repro.data.benchmarks import benchmark_names

    return {
        name: load_benchmark(name, scale=DATA_SCALE, seed=0)
        for name in benchmark_names()
    }


def train_and_eval(
    method,
    data,
    depth=3,
    width=WIDTH,
    epochs=EPOCHS,
    batch=20,
    lr=1e-2,
    seed=0,
    max_train=None,
    track_val=False,
    **kwargs,
):
    """Train one configuration; returns (trainer, history, test_accuracy)."""
    x = data.x_train if max_train is None else data.x_train[:max_train]
    y = data.y_train if max_train is None else data.y_train[:max_train]
    net = MLP([data.input_dim] + [width] * depth + [data.n_classes], seed=seed)
    trainer = make_trainer(method, net, lr=lr, seed=seed + 1, **kwargs)
    history = trainer.fit(
        x,
        y,
        epochs=epochs,
        batch_size=batch,
        x_val=data.x_val if track_val and data.n_val else None,
        y_val=data.y_val if track_val and data.n_val else None,
    )
    acc = trainer.evaluate(data.x_test, data.y_test)
    return trainer, history, acc


def bench_task(spec, dataset):
    """Executor task: one :func:`train_and_eval` call described by a dict.

    Returns plain JSON-safe metrics so outcomes can stream to a JSONL sink;
    ``label`` is carried through untouched for the caller's bookkeeping.
    """
    kwargs = dict(spec)
    label = kwargs.pop("label", None)
    method = kwargs.pop("method")
    _, history, acc = train_and_eval(method, dataset, **kwargs)
    return {
        "label": label,
        "accuracy": float(acc),
        "final_loss": float(history.losses()[-1]),
        "train_time": float(history.total_time),
    }


def run_bench_grid(specs, dataset, workers=BENCH_WORKERS):
    """Fan ``train_and_eval`` specs across worker processes.

    Specs are dicts of :func:`train_and_eval` keyword arguments plus
    ``method`` (and an optional ``label``).  Results come back in spec
    order regardless of scheduling, and equal the serial run bit-for-bit
    (per-spec seeds, nothing derived from workers).
    """
    executor = ExperimentExecutor(
        max_workers=workers, retries=0, task_fn=bench_task
    )
    outcomes = executor.run(list(specs), dataset=dataset)
    failures = [o for o in outcomes if not o.ok]
    if failures:
        raise ExecutorError(
            "; ".join((o.error or "").strip().splitlines()[-1] for o in failures)
        )
    return [o.result for o in outcomes]


# §8.4 settings per method: (batch regime, lr, trainer kwargs).
PAPER_SETTINGS = {
    "standard^S": ("standard", 1, 1e-3, {}),
    "standard^M": ("standard", 20, 1e-2, {}),
    "dropout^S": ("dropout", 1, 1e-2, {"keep_prob": 0.05}),
    "adaptive_dropout^S": (
        "adaptive_dropout", 1, 1e-2, {"target_keep": 0.05, "alpha": 2.0}
    ),
    "alsh": ("alsh", 1, 1e-3, {"optimizer": "adam"}),
    "mc^M": ("mc", 20, 1e-2, {"k": 10}),
    "mc^S": ("mc", 1, 1e-4, {"k": 10}),
}
