"""Figure 7: test accuracy vs number of hidden layers (1–7).

Paper shape: ALSH-approx is competitive at 1 layer and collapses from
~5 layers; MC-approx^M and STANDARD hold up with depth (the paper trains
everything for 50 epochs; at miniature scale we give deeper networks
proportionally more epochs so every configuration is trained to a
comparable point).
"""

from conftest import run_bench_grid

from repro.harness.reporting import format_series

DEPTHS = [1, 2, 3, 4, 5, 6, 7]
ALSH_MAX_TRAIN = 400
ALSH_EPOCHS = 3


def _minibatch_epochs(depth: int) -> int:
    return 4 + 3 * depth


def run_fig7(mnist):
    # The whole 3-method × 7-depth grid fans out through the executor.
    specs = []
    for depth in DEPTHS:
        for method, kwargs in (("standard", {}), ("mc", {"k": 10})):
            specs.append(
                dict(
                    label=f"{method}^M",
                    method=method,
                    depth=depth,
                    batch=20,
                    lr=1e-2,
                    epochs=_minibatch_epochs(depth),
                    **kwargs,
                )
            )
        specs.append(
            dict(
                label="alsh",
                method="alsh",
                depth=depth,
                batch=1,
                lr=1e-3,
                epochs=ALSH_EPOCHS,
                max_train=ALSH_MAX_TRAIN,
                optimizer="adam",
            )
        )
    series = {"standard^M": [], "mc^M": [], "alsh": []}
    for result in run_bench_grid(specs, mnist):
        series[result["label"]].append(result["accuracy"])
    return series


def test_fig7_depth_accuracy(benchmark, capsys, mnist):
    series = benchmark.pedantic(run_fig7, args=(mnist,), iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            format_series(
                "hidden layers",
                DEPTHS,
                series,
                title="Figure 7 reproduction: accuracy vs depth",
            )
        )
    alsh = series["alsh"]
    mc = series["mc^M"]
    # ALSH collapse: best shallow accuracy far above its deep floor.
    assert max(alsh[:2]) > min(alsh[4:]) + 0.15
    # MC-approx^M degrades gracefully: deep end stays within 60% of peak.
    assert mc[-1] > 0.6 * max(mc)
    # At depth >= 5, MC beats ALSH decisively.
    assert mc[4] > alsh[4] + 0.1
    # Relative collapse: ALSH loses a larger fraction of its peak than MC.
    assert alsh[-1] / max(alsh) < mc[-1] / max(mc)
