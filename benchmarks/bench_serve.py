#!/usr/bin/env python
"""Perf-regression benchmark: micro-batched vs batch-1 LSH serving.

Unlike the table/figure benches in this directory (pytest-benchmark
suites), this is a plain script so CI can run it without pytest:

    PYTHONPATH=src python benchmarks/bench_serve.py --quick --check

It fires one request stream through a live inference server under four
configurations (exact vs ALSH top-k head, each batch-1 and
micro-batched) at the paper serving shape, writes ``BENCH_serve.json``
at the repo root, and — under ``--check`` — fails if micro-batching
does not beat batch-1 qps by ``--min-speedup`` for either head or the
ALSH head's recall@k drops below ``--min-recall``.  See
``repro.serve.bench`` for the implementation and ``python -m repro
serve-bench`` for the CLI twin.
"""

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.serve.bench import add_arguments, run_cli  # noqa: E402


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_arguments(parser)
    parser.set_defaults(out=str(_ROOT / "BENCH_serve.json"))
    return run_cli(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
