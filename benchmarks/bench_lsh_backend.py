#!/usr/bin/env python
"""Perf-regression microbenchmark: dict vs flat LSH backends.

Unlike the table/figure benches in this directory (pytest-benchmark
suites), this is a plain script so CI can run it without pytest:

    PYTHONPATH=src python benchmarks/bench_lsh_backend.py --smoke --check

It times build/update/query_batch for both ``LSHIndex`` backends over a
(K, L, width, batch) grid, verifies the backends return identical
candidate sets, writes ``BENCH_lsh.json`` at the repo root, and — under
``--check`` — fails if the flat backend is slower than dict at the
paper's default shape (K = 6, L = 5).  See ``repro.lsh.bench`` for the
implementation and ``python -m repro lsh-bench`` for the CLI twin.
"""

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.lsh.bench import add_arguments, run_cli  # noqa: E402


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_arguments(parser)
    parser.set_defaults(out=str(_ROOT / "BENCH_lsh.json"))
    return run_cli(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
