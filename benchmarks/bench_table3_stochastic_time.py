"""Table 3: per-epoch training time, stochastic setting (batch size 1).

Paper shape: ALSH-approx is the slowest method sequentially (its speed in
[50] comes from multi-core parallelism); MC-approx^S is slower than
STANDARD^S (the probability machinery is overhead at batch size 1);
backpropagation dominates the feedforward step (§10.1).
"""

from conftest import PAPER_SETTINGS, train_and_eval

from repro.harness.reporting import format_table

COLUMNS = ["standard^S", "dropout^S", "adaptive_dropout^S", "alsh", "mc^S"]
SUBSET = 250  # fixed sample count so per-epoch times are comparable


def run_table3(mnist):
    rows = {}
    for column in COLUMNS:
        method, batch, lr, kwargs = PAPER_SETTINGS[column]
        _, history, acc = train_and_eval(
            method,
            mnist,
            depth=3,
            batch=1,
            lr=lr,
            epochs=1,
            max_train=SUBSET,
            **kwargs,
        )
        rows[column] = {
            "epoch_time": float(history.epoch_times().mean()),
            "forward": float(history.forward_times().mean()),
            "backward": float(history.backward_times().mean()),
            "accuracy": acc,
        }
    return rows


def test_table3_stochastic_time(benchmark, capsys, mnist):
    rows = benchmark.pedantic(run_table3, args=(mnist,), iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["method", "time/epoch (s)", "feedforward (s)",
                 "backprop (s)", "accuracy"],
                [
                    [c, r["epoch_time"], r["forward"], r["backward"], r["accuracy"]]
                    for c, r in rows.items()
                ],
                title=f"Table 3 reproduction: stochastic setting, "
                f"{SUBSET} samples/epoch, 3 hidden layers",
            )
        )
    # Paper shapes:
    assert rows["alsh"]["epoch_time"] > rows["standard^S"]["epoch_time"]
    assert rows["mc^S"]["epoch_time"] > rows["standard^S"]["epoch_time"]
    # Backprop (incl. updates) costs more than the forward pass (§10.1).
    assert rows["standard^S"]["backward"] > rows["standard^S"]["forward"]
