"""§6.1 ablation: norm-proportional vs uniform sampling for matmul.

Drineas et al. argue uniform sampling "would add a high error"; this bench
quantifies the claim on a skewed product, for both the with-replacement CR
family and the Bernoulli family, across a budget sweep — and checks the
measured errors against the closed-form expected errors.
"""

import numpy as np

from repro.approx import (
    approx_matmul,
    bernoulli_expected_error,
    bernoulli_probabilities,
    drineas_expected_error,
    frobenius_error,
)
from repro.harness.reporting import format_series

N_INNER = 300
BUDGETS = [10, 30, 100]
TRIALS = 40
METHODS = ["drineas", "uniform", "bernoulli", "uniform_bernoulli", "topk"]


def run_sweep():
    rng = np.random.default_rng(0)
    a = rng.normal(size=(30, N_INNER)) * np.logspace(0, 1.5, N_INNER)
    b = rng.normal(size=(N_INNER, 20))
    exact = a @ b
    series = {}
    for method in METHODS:
        errors = []
        for budget in BUDGETS:
            trial = [
                frobenius_error(
                    exact,
                    approx_matmul(a, b, budget, method, np.random.default_rng(t)),
                )
                for t in range(TRIALS)
            ]
            errors.append(float(np.mean(trial)))
        series[method] = errors
    theory = {
        "drineas": [
            np.sqrt(drineas_expected_error(a, b, c)) / np.linalg.norm(exact, "fro")
            for c in BUDGETS
        ],
        "bernoulli": [
            np.sqrt(
                bernoulli_expected_error(a, b, bernoulli_probabilities(a, b, k))
            )
            / np.linalg.norm(exact, "fro")
            for k in BUDGETS
        ],
    }
    return series, theory


def test_ablation_matrix_estimators(benchmark, capsys):
    series, theory = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            format_series(
                "budget (of 300)",
                BUDGETS,
                series,
                title="§6.1 ablation: mean relative error by estimator",
            )
        )
        print()
        print(
            format_series(
                "budget (of 300)",
                BUDGETS,
                {f"theory {k}": v for k, v in theory.items()},
                title="Closed-form sqrt(E err^2)/||AB|| for the optimal "
                "distributions",
            )
        )
    # Norm-proportional beats uniform at every budget, in both families.
    for smart, naive in (("drineas", "uniform"), ("bernoulli", "uniform_bernoulli")):
        for i in range(len(BUDGETS)):
            assert series[smart][i] < series[naive][i], (smart, BUDGETS[i])
    # Measurement within 2x of the closed form (MC noise allowance).
    for fam in ("drineas", "bernoulli"):
        for measured, predicted in zip(series[fam], theory[fam]):
            assert 0.5 < measured / predicted < 2.0
