"""Opt-in paper-scale smoke tests.

Skipped by default (they allocate hundreds of MB and train width-1000
networks); enable with::

    REPRO_RUN_SLOW=1 pytest tests/test_paper_scale.py -q

They verify the claims that only hold at realistic scale: the paper-sized
dataset splits generate correctly, and MC-approx^M beats STANDARD^M per
epoch at the paper's width (Table 4's headline).
"""

import os

import numpy as np
import pytest

from repro import MLP, load_benchmark, make_trainer

# Registered in pyproject.toml; tier-1 (`pytest -q`) still runs this file
# but the env guard skips it, so marker selection and the guard agree.
pytestmark = [pytest.mark.slow, pytest.mark.paper_scale]

slow = pytest.mark.skipif(
    not os.environ.get("REPRO_RUN_SLOW"),
    reason="paper-scale test; set REPRO_RUN_SLOW=1 to run",
)


@slow
def test_full_size_mnist_generates():
    data = load_benchmark("mnist", scale=1.0, seed=0)
    assert data.n_train == 55_000
    assert data.n_test == 10_000
    assert data.n_val == 5_000
    assert data.input_dim == 784
    # All classes present and roughly balanced.
    counts = np.bincount(data.y_train, minlength=10)
    assert counts.min() > 4_000


@slow
def test_mc_beats_standard_at_paper_width():
    data = load_benchmark("mnist", scale=0.01, seed=0)
    subset = 400

    def epoch_time(method, **kw):
        net = MLP([data.input_dim, 1000, 1000, 1000, data.n_classes], seed=0)
        trainer = make_trainer(method, net, lr=1e-3, seed=1, **kw)
        history = trainer.fit(
            data.x_train[:subset], data.y_train[:subset],
            epochs=1, batch_size=20,
        )
        return history.total_time

    t_mc = min(epoch_time("mc", k=10) for _ in range(2))
    t_std = min(epoch_time("standard") for _ in range(2))
    assert t_mc < t_std


@slow
def test_alsh_paper_hyperparameters_train():
    """K=6, L=5, m=3, Adam — the full §8.4 setting at width 1000."""
    data = load_benchmark("mnist", scale=0.005, seed=0)
    net = MLP([data.input_dim, 1000, data.n_classes], seed=0)
    trainer = make_trainer(
        "alsh", net, lr=1e-3, optimizer="adam", seed=1,
        n_bits=6, n_tables=5, m=3,
    )
    trainer.fit(data.x_train[:100], data.y_train[:100], epochs=1, batch_size=1)
    fracs = trainer.average_active_fraction()
    assert (fracs > 0).all()
    assert (fracs <= trainer.max_active_frac + 1e-9).all()
