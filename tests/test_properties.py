"""Cross-module property-based tests (hypothesis) and failure injection.

These complement the per-module suites with invariants that span layers of
the stack: sparse/dense optimizer equivalence, batch-splitting coherence
of the forward pass, trainer determinism, estimator scale equivariance,
and defined behaviour on hostile inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approx.bernoulli import bernoulli_multiply
from repro.approx.drineas import cr_multiply
from repro.core.registry import make_trainer, trainer_names
from repro.harness.flops import method_step_flops
from repro.nn.network import MLP
from repro.nn.optim import get_optimizer


class TestOptimizerSparseDenseEquivalence:
    """A sparse-column update must equal the dense update restricted to
    those columns, for every optimiser — the property the ALSH trainer's
    correctness rests on."""

    @settings(max_examples=25, deadline=None)
    @given(
        name=st.sampled_from(["sgd", "momentum", "adagrad", "adam"]),
        seed=st.integers(0, 10**6),
        n_steps=st.integers(1, 4),
    )
    def test_equivalence(self, name, seed, n_steps):
        rng = np.random.default_rng(seed)
        n_in, n_out = 5, 8
        cols = np.sort(rng.choice(n_out, size=3, replace=False))
        w_dense = rng.normal(size=(n_in, n_out))
        w_sparse = w_dense.copy()
        opt_dense = get_optimizer(name, lr=0.05)
        opt_sparse = get_optimizer(name, lr=0.05)
        for _ in range(n_steps):
            grad = rng.normal(size=(n_in, n_out))
            masked = np.zeros_like(grad)
            masked[:, cols] = grad[:, cols]
            opt_dense.update("w", w_dense, masked)
            opt_sparse.update("w", w_sparse, grad[:, cols], index=cols)
            if name == "sgd":
                np.testing.assert_allclose(w_dense, w_sparse, atol=1e-12)
        # For stateful optimisers, dense zero-gradient steps still advance
        # state, so exact equality only holds for the touched columns when
        # the untouched dense gradients are zero — verify columns match.
        np.testing.assert_allclose(
            w_dense[:, cols], w_sparse[:, cols], atol=1e-8
        )
        untouched = np.setdiff1d(np.arange(n_out), cols)
        if name in ("sgd",):
            np.testing.assert_allclose(
                w_dense[:, untouched], w_sparse[:, untouched], atol=1e-12
            )


class TestForwardBatchCoherence:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        split=st.integers(1, 7),
    )
    def test_forward_is_rowwise(self, seed, split):
        """forward(concat(a, b)) == concat(forward(a), forward(b))."""
        rng = np.random.default_rng(seed)
        net = MLP([6, 9, 4], seed=1)
        x = rng.normal(size=(8, 6))
        full = net.predict_logproba(x)
        parts = np.vstack(
            [net.predict_logproba(x[:split]), net.predict_logproba(x[split:])]
        )
        np.testing.assert_allclose(full, parts, atol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_forward_deterministic(self, seed):
        rng = np.random.default_rng(seed)
        net = MLP([5, 7, 3], seed=2)
        x = rng.normal(size=(4, 5))
        np.testing.assert_array_equal(
            net.predict_logproba(x), net.predict_logproba(x)
        )


class TestTrainerDeterminism:
    @pytest.mark.parametrize("method", trainer_names())
    def test_same_seeds_same_weights(self, method, tiny_dataset):
        """Every trainer is fully reproducible from its seeds."""

        def run():
            net = MLP([tiny_dataset.input_dim, 16, tiny_dataset.n_classes], seed=0)
            trainer = make_trainer(method, net, lr=1e-3, seed=7)
            trainer.fit(
                tiny_dataset.x_train[:60], tiny_dataset.y_train[:60],
                epochs=1, batch_size=1 if method in ("alsh", "topk") else 10,
            )
            return [layer.W.copy() for layer in net.layers]

        for w_a, w_b in zip(run(), run()):
            np.testing.assert_array_equal(w_a, w_b)


class TestEstimatorEquivariance:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        scale=st.floats(0.1, 10.0),
    )
    def test_bernoulli_scale_equivariance(self, seed, scale):
        """Estimating (cA)B with the same rng equals c·(estimate of AB):
        the Eq. 7 probabilities are scale-invariant, so the same index set
        is kept."""
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(4, 12))
        b = rng.normal(size=(12, 3))
        est1 = bernoulli_multiply(a, b, 5, np.random.default_rng(seed + 1))
        est2 = bernoulli_multiply(scale * a, b, 5, np.random.default_rng(seed + 1))
        np.testing.assert_allclose(est2, scale * est1, rtol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_cr_transpose_duality(self, seed):
        """(AB)^T = B^T A^T must hold for the estimator too when the same
        indices are drawn (the probabilities are symmetric in that swap)."""
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(4, 10))
        b = rng.normal(size=(10, 5))
        est = cr_multiply(a, b, 6, np.random.default_rng(seed + 2))
        est_t = cr_multiply(b.T, a.T, 6, np.random.default_rng(seed + 2))
        np.testing.assert_allclose(est_t, est.T, rtol=1e-9)


class TestFlopsMonotonicity:
    @settings(max_examples=25, deadline=None)
    @given(
        method=st.sampled_from(["standard", "dropout", "alsh", "mc"]),
        width=st.integers(8, 64),
        batch=st.integers(1, 16),
    )
    def test_flops_grow_with_width(self, method, width, batch):
        small = method_step_flops(method, [32, width, 4], batch=batch)
        large = method_step_flops(method, [32, 2 * width, 4], batch=batch)
        assert large.total > small.total

    @settings(max_examples=25, deadline=None)
    @given(
        method=st.sampled_from(["standard", "dropout", "alsh", "mc"]),
        depth=st.integers(1, 4),
    )
    def test_flops_grow_with_depth(self, method, depth):
        shallow = method_step_flops(method, [32] + [24] * depth + [4])
        deep = method_step_flops(method, [32] + [24] * (depth + 1) + [4])
        assert deep.total > shallow.total


class TestFailureInjection:
    def test_trainers_raise_or_survive_nan_inputs(self, tiny_dataset):
        """NaN features must never hang; a clean ValueError or a NaN loss
        are both acceptable, an infinite loop is not (regression test for
        the waterfilling hang)."""
        x = tiny_dataset.x_train[:20].copy()
        x[0, :] = np.nan
        y = tiny_dataset.y_train[:20]
        for method in ("standard", "mc", "dropout"):
            net = MLP([tiny_dataset.input_dim, 8, tiny_dataset.n_classes], seed=0)
            trainer = make_trainer(method, net, lr=1e-3, seed=1)
            try:
                loss = trainer.train_batch(x, y)
            except ValueError:
                continue  # fail-fast is fine
            assert np.isnan(loss) or np.isfinite(loss)

    def test_wrong_feature_width_fails_loudly(self, tiny_dataset):
        net = MLP([tiny_dataset.input_dim + 1, 8, tiny_dataset.n_classes], seed=0)
        trainer = make_trainer("standard", net, lr=1e-3, seed=1)
        with pytest.raises(ValueError):
            trainer.train_batch(tiny_dataset.x_train[:4], tiny_dataset.y_train[:4])

    def test_out_of_range_labels_fail(self, tiny_dataset):
        net = MLP([tiny_dataset.input_dim, 8, tiny_dataset.n_classes], seed=0)
        trainer = make_trainer("standard", net, lr=1e-3, seed=1)
        bad = np.full(4, tiny_dataset.n_classes + 3)
        with pytest.raises(IndexError):
            trainer.train_batch(tiny_dataset.x_train[:4], bad)

    def test_empty_batch_fails(self, tiny_dataset):
        net = MLP([tiny_dataset.input_dim, 8, tiny_dataset.n_classes], seed=0)
        trainer = make_trainer("standard", net, lr=1e-3, seed=1)
        with pytest.raises((ValueError, IndexError, ZeroDivisionError)):
            trainer.train_batch(
                np.empty((0, tiny_dataset.input_dim)), np.empty(0, dtype=int)
            )
