"""Unit tests for the online continual trainer.

Fast configurations throughout: tiny networks, short streams.  The
kill-resume bitwise guarantees live in ``test_stream_resume.py``; this
file covers construction validation, the maintenance policies (drift
rebuilds, gauge-driven compaction, the count baseline) and the
observability contract.
"""

import numpy as np
import pytest

from repro.core.standard import StandardTrainer
from repro.nn.network import MLP
from repro.obs import InMemoryRecorder, is_catalogued_series
from repro.obs.counters import COUNTER_CATALOG, GAUGE_CATALOG
from repro.stream.trainer import (
    REBUILD_MODES,
    StreamTrainer,
    _NEVER,
    make_stream_trainer,
    never_rebuild,
)

FAST = dict(
    dim=12, n_classes=3, width=16, depth=2, batch_size=10,
    drift_per_batch=0.02, eval_every=None, seed=0,
)


class TestValidation:
    def test_unknown_rebuild_mode(self):
        with pytest.raises(ValueError, match="rebuild"):
            make_stream_trainer(rebuild="sometimes", **FAST)

    @pytest.mark.parametrize(
        "kw",
        [
            {"drift_check_every": 0},
            {"compact_check_every": 0},
            {"compact_garbage_frac": 0.0},
            {"eval_every": 0},
            {"checkpoint_every": 0},
        ],
    )
    def test_invalid_cadences(self, kw):
        kwargs = dict(FAST)
        kwargs.update(kw)
        with pytest.raises(ValueError):
            make_stream_trainer(**kwargs)

    def test_drift_mode_needs_hash_indexes(self):
        """Drift-triggered rebuilds are meaningless without LSH tables."""
        from repro.data.streams import DriftingStream

        net = MLP([12, 16, 3], seed=0)
        trainer = StandardTrainer(net, seed=0)
        stream = DriftingStream(12, 3, seed=1)
        with pytest.raises(ValueError, match="hash indexes"):
            StreamTrainer(trainer, stream, rebuild="drift")

    def test_rebuild_modes_constant(self):
        assert set(REBUILD_MODES) == {"drift", "count", "none"}


class TestDriftPolicy:
    def test_drift_mode_disarms_count_scheduler(self):
        st = make_stream_trainer(rebuild="drift", **FAST)
        assert st.trainer.rebuild.early_every == _NEVER
        assert st.trainer.rebuild.late_every == _NEVER

    def test_count_mode_keeps_paper_scheduler(self):
        st = make_stream_trainer(
            rebuild="count", count_early_every=100, count_late_every=1000,
            count_warmup=500, **FAST,
        )
        assert st.trainer.rebuild.early_every == 100
        assert st.trainer.rebuild.late_every == 1000

    def test_drift_rebuilds_fire_and_rehash_columns(self):
        st = make_stream_trainer(
            rebuild="drift", drift_threshold=0.001, drift_check_every=5,
            lr=0.01, **FAST,
        )
        st.run(30, resume=False)
        assert st.rebuilds > 0
        assert st.trainer.rehashed_columns > 0

    def test_high_threshold_never_rebuilds(self):
        st = make_stream_trainer(
            rebuild="drift", drift_threshold=1e9, drift_check_every=5, **FAST,
        )
        st.run(30, resume=False)
        assert st.rebuilds == 0
        assert st.trainer.rehashed_columns == 0

    def test_none_mode_never_rebuilds(self):
        st = make_stream_trainer(rebuild="none", lr=0.01, **FAST)
        summary = st.run(30, resume=False)
        assert summary["rebuilds"] == 0
        assert st.trainer.rehashed_columns == 0

    def test_count_mode_reports_scheduler_rebuilds(self):
        st = make_stream_trainer(
            rebuild="count", count_early_every=50, count_late_every=50,
            count_warmup=0, **FAST,
        )
        summary = st.run(30, resume=False)  # 300 samples / 50 = 6 refreshes
        assert summary["rebuilds"] == 6


class TestCompactionPolicy:
    def test_gauge_compaction_fires_and_bounds_garbage(self):
        st = make_stream_trainer(
            rebuild="drift", drift_threshold=0.001, drift_check_every=1,
            compact_garbage_frac=0.05, compact_check_every=1, lr=0.01, **FAST,
        )
        st.run(40, resume=False)
        assert st.compactions > 0
        assert st.garbage_fraction() <= 0.5

    def test_disabled_compaction_leaves_backend_threshold(self):
        st = make_stream_trainer(
            rebuild="drift", drift_threshold=0.001, drift_check_every=1,
            compact_garbage_frac=None, compact_check_every=1, lr=0.01, **FAST,
        )
        st.run(40, resume=False)
        assert st.compactions == 0
        # The backend's own per-table threshold still keeps it bounded.
        assert st.garbage_fraction() <= 0.6


class TestRunLoop:
    def test_n_batches_is_absolute_position(self):
        st = make_stream_trainer(**FAST)
        st.run(10, resume=False)
        summary = st.run(10, resume=False)
        assert st.batches_done == 10
        assert summary["trained_batches"] == 0

    def test_eval_history_follows_cadence(self):
        kwargs = dict(FAST)
        kwargs["eval_every"] = None
        st = make_stream_trainer(**{**kwargs, "eval_every": 10,
                                    "eval_samples": 30})
        st.run(25, resume=False)
        assert [int(b) for b, _ in st.eval_history] == [10, 20]

    def test_summary_fields(self):
        st = make_stream_trainer(**FAST)
        summary = st.run(5, resume=False)
        for key in (
            "batches", "samples", "trained_batches", "samples_per_s",
            "last_loss", "rebuild_mode", "rebuilds", "compactions",
            "checkpoints", "garbage_frac", "eval_history",
        ):
            assert key in summary
        assert summary["batches"] == 5
        assert summary["samples"] == 50


class TestObservability:
    def test_counters_and_series_are_catalogued(self):
        recorder = InMemoryRecorder()
        st = make_stream_trainer(
            rebuild="drift", drift_threshold=0.001, drift_check_every=2,
            compact_garbage_frac=0.05, compact_check_every=2,
            recorder=recorder, lr=0.01,
            **{**FAST, "eval_every": 10},
        )
        st.run(20, resume=False)
        snapshot = recorder.snapshot()
        assert snapshot["counters"]["stream.batches"] == 20
        assert snapshot["counters"]["stream.samples"] == 200
        assert snapshot["counters"]["stream.drift_checks"] == 10
        assert snapshot["counters"]["stream.evals"] == 2
        for name in snapshot["counters"]:
            assert name in COUNTER_CATALOG, name
        for name in snapshot.get("gauges", {}):
            assert name in GAUGE_CATALOG, name
        for name in snapshot.get("series", {}):
            assert is_catalogued_series(name), name

    def test_null_recorder_runs_silently(self):
        st = make_stream_trainer(**FAST)
        st.run(10, resume=False)
        assert not st.obs.enabled


class TestStreamingReport:
    def test_html_report_gains_streaming_section(self):
        from repro.obs.html import render_html_report

        recorder = InMemoryRecorder()
        st = make_stream_trainer(recorder=recorder,
                                 **{**FAST, "eval_every": 10})
        st.run(10, resume=False)
        html = render_html_report([{"snapshot": recorder.snapshot()}])
        assert "<h2>Streaming</h2>" in html
        assert "stream batches" in html

    def test_training_only_report_has_no_streaming_section(self):
        from repro.obs.html import render_html_report

        html = render_html_report([{"snapshot": {"counters": {"lsh.builds": 1}}}])
        assert "<h2>Streaming</h2>" not in html
