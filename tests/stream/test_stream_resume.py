"""Kill-and-resume equality for the streaming trainer.

The continual-training counterpart of ``tests/core/test_resume_equality``:
a streaming session killed at any batch and resumed from its continuous
checkpoint must be *bitwise identical* to the uninterrupted session —
weights, optimizer slots, trainer and stream RNG streams, LSH table
contents, drift-detector references (and therefore every subsequent
``drifted()`` decision), eval history and recorded series.  Only two
things may differ: wall-clock throughput, and the flat backend's
*physical* tombstone layout — a restore re-packs the tables clean, and
compaction layout is explicitly outside the backend's contract (it
never affects candidate sets), so the ``stream.garbage_frac`` gauge
series and the compaction tally are maintenance telemetry, not
trajectory.

"Killed" is simulated the honest way: a first StreamTrainer runs to the
kill point writing checkpoints, then a *freshly constructed* one — as a
restarted process would build it — runs to the full horizon with
``resume=True`` picking the checkpoint up mid-stream.
"""

import numpy as np
import pytest

from repro.obs import InMemoryRecorder
from repro.obs.probes import LSHRecallProbe, ProbeManager
from repro.stream.trainer import make_stream_trainer, run_smoke

TOTAL = 60
KILL_AT = 33  # deliberately off every cadence multiple

BASE = dict(
    dim=12, n_classes=3, width=16, depth=2, batch_size=10,
    drift_per_batch=0.03, drift_threshold=0.02, drift_check_every=5,
    compact_garbage_frac=0.3, compact_check_every=5,
    eval_every=20, eval_samples=40, lr=0.01, seed=0,
)


def build(tmp_path=None, recorder=None, probes=False, **overrides):
    """A freshly constructed streaming session, as a restart would."""
    kwargs = dict(BASE)
    kwargs.update(overrides)
    if tmp_path is not None:
        kwargs.update(checkpoint_dir=tmp_path, checkpoint_every=10)
    if recorder is not None:
        kwargs["recorder"] = recorder
    if probes:
        kwargs["probe_manager"] = ProbeManager(
            [LSHRecallProbe(k=5, max_queries=2)],
            probe_every=10, budget=None, seed=99,
        )
    return make_stream_trainer(**kwargs)


def run_kill_resume(tmp_path, **overrides):
    full = build(**overrides)
    full.run(TOTAL, resume=False)
    killed = build(tmp_path=tmp_path, **overrides)
    killed.run(KILL_AT, resume=False)
    resumed = build(tmp_path=tmp_path, **overrides)
    resumed.run(TOTAL, resume=True)
    return full, resumed


def assert_streams_identical(full, resumed):
    for i, (a, b) in enumerate(
        zip(full.trainer.net.layers, resumed.trainer.net.layers)
    ):
        np.testing.assert_array_equal(a.W, b.W, err_msg=f"layer {i} W")
        np.testing.assert_array_equal(a.b, b.b, err_msg=f"layer {i} b")
    assert (
        full.trainer.rng.bit_generator.state
        == resumed.trainer.rng.bit_generator.state
    ), "trainer RNG diverged"
    assert (
        full.stream.rng.bit_generator.state
        == resumed.stream.rng.bit_generator.state
    ), "stream RNG diverged"
    np.testing.assert_array_equal(
        full.stream.prototypes(), resumed.stream.prototypes()
    )
    assert full.eval_history == resumed.eval_history
    assert full.batches_done == resumed.batches_done
    assert full.samples_done == resumed.samples_done
    for i, (ia, ib) in enumerate(
        zip(full.trainer.indexes, resumed.trainer.indexes)
    ):
        meta_a, arrays_a = ia.state_dict()
        meta_b, arrays_b = ib.state_dict()
        assert meta_a == meta_b, f"index {i} meta"
        assert arrays_a.keys() == arrays_b.keys()
        for name in arrays_a:
            np.testing.assert_array_equal(
                arrays_a[name], arrays_b[name],
                err_msg=f"index {i} table array {name}",
            )


class TestKillResumeEquality:
    def test_drift_mode_bitwise_identical(self, tmp_path):
        full, resumed = run_kill_resume(tmp_path)
        assert_streams_identical(full, resumed)
        assert full.rebuilds == resumed.rebuilds
        assert (
            full.trainer.rehashed_columns == resumed.trainer.rehashed_columns
        )

    def test_drift_references_and_decisions_identical(self, tmp_path):
        """The detector's reference snapshot survives the restore, so the
        resumed run makes bitwise-identical ``drifted()`` decisions —
        checked directly on the references and on a probe query over
        every column."""
        full, resumed = run_kill_resume(tmp_path)
        for i, (ta, tb) in enumerate(zip(full._trackers, resumed._trackers)):
            np.testing.assert_array_equal(
                ta.reference, tb.reference,
                err_msg=f"layer {i} drift reference",
            )
            W = full.trainer.net.layers[i].W
            cols = np.arange(W.shape[1])
            np.testing.assert_array_equal(
                ta.drifted(W, cols), tb.drifted(resumed.trainer.net.layers[i].W, cols),
                err_msg=f"layer {i} drifted() decisions",
            )

    def test_count_mode_with_inner_drift_tracker(self, tmp_path):
        """The paper-policy path: the inner trainer's own scheduler and
        drift-gated refresh state must survive resume too."""
        full, resumed = run_kill_resume(
            tmp_path,
            rebuild="count",
            count_early_every=50, count_late_every=200, count_warmup=300,
        )
        assert_streams_identical(full, resumed)
        assert (
            full.trainer.rebuild.rebuild_count
            == resumed.trainer.rebuild.rebuild_count
        )
        assert (
            full.trainer.rebuild.samples_seen
            == resumed.trainer.rebuild.samples_seen
        )

    def test_resume_at_every_checkpoint_grain(self, tmp_path):
        """The guarantee holds wherever the kill lands relative to the
        checkpoint period, including between checkpoints (the trailing
        partial-period checkpoint covers those)."""
        full = build()
        full.run(TOTAL, resume=False)
        for kill_at in (7, 10, 29, 51):
            d = tmp_path / f"kill{kill_at}"
            killed = build(tmp_path=d)
            killed.run(kill_at, resume=False)
            resumed = build(tmp_path=d)
            resumed.run(TOTAL, resume=True)
            assert_streams_identical(full, resumed)

    def test_series_and_probes_survive_resume(self, tmp_path):
        """Recorded stream series and probe state are part of the resumed
        trajectory: the merged series of the resumed run equal the
        uninterrupted run's."""
        rec_full = InMemoryRecorder()
        full = build(recorder=rec_full, probes=True)
        full.run(TOTAL, resume=False)

        rec_killed = InMemoryRecorder()
        killed = build(tmp_path=tmp_path, recorder=rec_killed, probes=True)
        killed.run(KILL_AT, resume=False)
        rec_resumed = InMemoryRecorder()
        resumed = build(tmp_path=tmp_path, recorder=rec_resumed, probes=True)
        resumed.run(TOTAL, resume=True)

        assert_streams_identical(full, resumed)
        a = rec_full.snapshot().get("series", {})
        b = rec_resumed.snapshot().get("series", {})
        assert a.keys() == b.keys()
        for name in a:
            if name == "stream.garbage_frac":
                # Physical tombstone layout resets at restore (the tables
                # re-pack clean), so the gauge readings legitimately
                # differ after the kill point; only the cadence must hold.
                assert [i for i, _ in a[name]] == [i for i, _ in b[name]]
                continue
            assert a[name] == b[name], f"series {name} diverged"

    def test_histograms_carry_across_resume(self, tmp_path):
        """The per-batch timing histogram rides the checkpoint: a resumed
        session's count covers the whole stream, pre-kill batches
        included, not just the batches it ran itself."""
        from repro.obs.counters import HIST_STREAM_BATCH_SECONDS

        rec_killed = InMemoryRecorder()
        killed = build(tmp_path=tmp_path, recorder=rec_killed)
        killed.run(KILL_AT, resume=False)
        killed_snap = rec_killed.snapshot()["histograms"]
        assert killed_snap[HIST_STREAM_BATCH_SECONDS]["count"] == KILL_AT

        rec_resumed = InMemoryRecorder()
        resumed = build(tmp_path=tmp_path, recorder=rec_resumed)
        resumed.run(TOTAL, resume=True)
        resumed_snap = rec_resumed.snapshot()["histograms"]
        # Resume restarts from the last checkpoint (a multiple of the
        # checkpoint cadence at or before the kill), so the carried
        # histogram covers checkpointed batches plus the replayed tail.
        assert resumed_snap[HIST_STREAM_BATCH_SECONDS]["count"] == TOTAL
        # wall-clock samples are machine noise, but the carried portion
        # must be real timings, not zeros
        assert resumed_snap[HIST_STREAM_BATCH_SECONDS]["sum"] > 0.0

    def test_resume_false_restarts_from_scratch(self, tmp_path):
        first = build(tmp_path=tmp_path)
        first.run(20, resume=False)
        again = build(tmp_path=tmp_path)
        again.run(20, resume=False)
        assert_streams_identical(first, again)

    def test_method_mismatch_rejected(self, tmp_path):
        first = build(tmp_path=tmp_path, checkpoint_tag="shared")
        first.run(12, resume=False)
        from repro.core.standard import StandardTrainer
        from repro.data.streams import DriftingStream
        from repro.nn.network import MLP
        from repro.stream.trainer import StreamTrainer

        other = StreamTrainer(
            StandardTrainer(MLP([12, 16, 3], seed=0), seed=0),
            DriftingStream(12, 3, seed=1),
            rebuild="none",
            checkpoint_dir=tmp_path,
            checkpoint_tag="shared",
        )
        with pytest.raises(ValueError, match="stream:alsh"):
            other.run(20, resume=True)

    def test_architecture_mismatch_rejected(self, tmp_path):
        first = build(tmp_path=tmp_path, checkpoint_tag="shared")
        first.run(12, resume=False)
        other = build(tmp_path=tmp_path, checkpoint_tag="shared", width=24)
        with pytest.raises(ValueError, match="shape mismatch"):
            other.run(20, resume=True)


class TestSmoke:
    def test_run_smoke_passes(self):
        assert run_smoke(seed=0, verbose=False) == 0
