"""Tests for the concept-drift stream."""

import numpy as np
import pytest

from repro.data.streams import DriftingStream


class TestValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"dim": 1},
            {"n_classes": 1},
            {"batch_size": 0},
            {"drift_per_batch": -0.1},
            {"noise": -1.0},
        ],
    )
    def test_invalid_args(self, kw):
        defaults = dict(dim=8, n_classes=3)
        defaults.update(kw)
        with pytest.raises(ValueError):
            DriftingStream(**defaults)


class TestEmission:
    def test_batch_shapes(self):
        stream = DriftingStream(dim=10, n_classes=4, batch_size=16, seed=0)
        x, y = stream.next_batch()
        assert x.shape == (16, 10)
        assert y.shape == (16,)
        assert ((y >= 0) & (y < 4)).all()

    def test_deterministic(self):
        a = DriftingStream(dim=6, n_classes=3, seed=5)
        b = DriftingStream(dim=6, n_classes=3, seed=5)
        xa, ya = a.next_batch()
        xb, yb = b.next_batch()
        np.testing.assert_array_equal(xa, xb)
        np.testing.assert_array_equal(ya, yb)

    def test_iterator_protocol(self):
        stream = DriftingStream(dim=6, n_classes=3, seed=0)
        it = iter(stream)
        next(it)
        next(it)
        assert stream.batches_emitted == 2

    def test_learnable_at_any_time(self):
        """Nearest-prototype classification beats chance on eval batches,
        before and after heavy drift."""
        stream = DriftingStream(dim=12, n_classes=4, drift_per_batch=0.05, seed=1)

        def ncm_accuracy():
            protos = stream.prototypes() * 3.0
            x, y = stream.eval_batch(300)
            d = ((x[:, None, :] - protos[None]) ** 2).sum(axis=2)
            return (d.argmin(axis=1) == y).mean()

        assert ncm_accuracy() > 0.6
        for _ in range(200):
            stream.next_batch()
        assert ncm_accuracy() > 0.6


class TestCheckpointState:
    def test_state_dict_round_trip_resumes_identically(self):
        """A restored stream emits the exact batches the original would.

        ``eval_batch`` draws its seed from the main generator, so the
        round trip must reproduce eval batches too — eval cadence is
        part of the deterministic trajectory.
        """
        stream = DriftingStream(dim=10, n_classes=4, drift_per_batch=0.03, seed=9)
        for _ in range(17):
            stream.next_batch()
        meta, arrays = stream.state_dict()

        other = DriftingStream(dim=10, n_classes=4, drift_per_batch=0.03, seed=123)
        for _ in range(3):  # desync before restoring
            other.next_batch()
        other.load_state_dict(meta, arrays)
        assert other.batches_emitted == 17

        for _ in range(5):
            xa, ya = stream.next_batch()
            xb, yb = other.next_batch()
            np.testing.assert_array_equal(xa, xb)
            np.testing.assert_array_equal(ya, yb)
        ea, eya = stream.eval_batch(40)
        eb, eyb = other.eval_batch(40)
        np.testing.assert_array_equal(ea, eb)
        np.testing.assert_array_equal(eya, eyb)

    def test_state_dict_arrays_are_copies(self):
        stream = DriftingStream(dim=8, n_classes=3, seed=0)
        _, arrays = stream.state_dict()
        arrays["protos"][:] = 0.0
        assert np.linalg.norm(stream.prototypes()) > 0.0

    def test_load_rejects_mismatched_shapes(self):
        stream = DriftingStream(dim=8, n_classes=3, seed=0)
        meta, arrays = stream.state_dict()
        other = DriftingStream(dim=8, n_classes=4, seed=0)
        with pytest.raises(ValueError):
            other.load_state_dict(meta, arrays)


class TestDrift:
    def test_no_drift_keeps_prototypes(self):
        stream = DriftingStream(dim=8, n_classes=3, drift_per_batch=0.0, seed=0)
        before = stream.prototypes()
        for _ in range(20):
            stream.next_batch()
        np.testing.assert_array_equal(stream.prototypes(), before)

    def test_drift_moves_prototypes(self):
        stream = DriftingStream(dim=8, n_classes=3, drift_per_batch=0.05, seed=0)
        before = stream.prototypes()
        for _ in range(50):
            stream.next_batch()
        after = stream.prototypes()
        # 50 steps of 0.05 rad: prototypes have rotated substantially.
        cos = (before * after).sum(axis=1)
        assert (cos < 0.95).all()

    def test_prototypes_stay_unit(self):
        stream = DriftingStream(dim=8, n_classes=3, drift_per_batch=0.1, seed=2)
        for _ in range(100):
            stream.next_batch()
        np.testing.assert_allclose(
            np.linalg.norm(stream.prototypes(), axis=1), 1.0, atol=1e-9
        )

    def test_drift_rate_controls_speed(self):
        def displacement(rate):
            stream = DriftingStream(dim=8, n_classes=3, drift_per_batch=rate, seed=3)
            before = stream.prototypes()
            for _ in range(30):
                stream.next_batch()
            cos = (before * stream.prototypes()).sum(axis=1).mean()
            return 1.0 - cos

        assert displacement(0.05) > displacement(0.005)

    def test_frozen_model_decays_under_drift(self):
        """The headline property: a model trained at t=0 loses accuracy as
        the distribution rotates away from it."""
        from repro.core.standard import StandardTrainer
        from repro.nn.network import MLP

        stream = DriftingStream(
            dim=16, n_classes=4, batch_size=20, drift_per_batch=0.04, seed=4
        )
        net = MLP([16, 32, 4], seed=0)
        trainer = StandardTrainer(net, lr=5e-2, seed=1)
        for _ in range(80):
            x, y = stream.next_batch()
            trainer.train_batch(x, y)
        x0, y0 = stream.eval_batch(300)
        acc_now = (trainer.predict(x0) == y0).mean()
        for _ in range(250):  # distribution rotates, model frozen
            stream.next_batch()
        x1, y1 = stream.eval_batch(300)
        acc_later = (trainer.predict(x1) == y1).mean()
        assert acc_now > acc_later + 0.1
