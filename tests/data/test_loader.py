"""Tests for the minibatch loader."""

import numpy as np
import pytest

from repro.data.loader import BatchLoader


@pytest.fixture
def xy(rng):
    return rng.normal(size=(25, 4)), rng.integers(0, 3, 25)


class TestValidation:
    def test_shape_checks(self, rng):
        with pytest.raises(ValueError):
            BatchLoader(rng.normal(size=(5, 2, 2)), np.zeros(5))
        with pytest.raises(ValueError):
            BatchLoader(rng.normal(size=(5, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            BatchLoader(np.empty((0, 3)), np.empty(0))
        with pytest.raises(ValueError):
            BatchLoader(rng.normal(size=(5, 2)), np.zeros(5), batch_size=0)


class TestIteration:
    def test_covers_every_sample_once(self, xy):
        x, y = xy
        loader = BatchLoader(x, y, batch_size=4, seed=0)
        seen = np.concatenate([yb for _, yb in loader])
        assert seen.shape == (25,)
        # Multiset equality of labels.
        np.testing.assert_array_equal(np.sort(seen), np.sort(y))

    def test_batch_sizes(self, xy):
        x, y = xy
        loader = BatchLoader(x, y, batch_size=4, seed=0)
        sizes = [len(yb) for _, yb in loader]
        assert sizes == [4] * 6 + [1]

    def test_drop_last(self, xy):
        x, y = xy
        loader = BatchLoader(x, y, batch_size=4, drop_last=True, seed=0)
        sizes = [len(yb) for _, yb in loader]
        assert sizes == [4] * 6
        assert len(loader) == 6

    def test_len_matches_iteration(self, xy):
        x, y = xy
        for bs in (1, 4, 25, 30):
            loader = BatchLoader(x, y, batch_size=bs, seed=0)
            assert len(loader) == sum(1 for _ in loader)

    def test_stochastic_setting(self, xy):
        """batch_size=1 (the paper's S regime) yields one sample at a time."""
        x, y = xy
        loader = BatchLoader(x, y, batch_size=1, seed=0)
        batches = list(loader)
        assert len(batches) == 25
        assert batches[0][0].shape == (1, 4)

    def test_features_match_labels(self, xy):
        """Shuffling must keep (x, y) pairs aligned."""
        x, y = xy
        # Make features encode their label for verification.
        x = np.tile(y[:, None].astype(float), (1, 4))
        loader = BatchLoader(x, y, batch_size=5, seed=1)
        for xb, yb in loader:
            np.testing.assert_array_equal(xb[:, 0].astype(int), yb)


class TestShuffling:
    def test_epochs_differ(self, xy):
        x, y = xy
        x = np.arange(25, dtype=float).reshape(25, 1)
        loader = BatchLoader(x, np.zeros(25, dtype=int), batch_size=25, seed=2)
        first = next(iter(loader))[0].ravel().copy()
        second = next(iter(loader))[0].ravel().copy()
        assert not np.array_equal(first, second)

    def test_seed_reproducible(self, xy):
        x, y = xy
        a = BatchLoader(x, y, batch_size=5, seed=9)
        b = BatchLoader(x, y, batch_size=5, seed=9)
        for (xa, _), (xb, _) in zip(a, b):
            np.testing.assert_array_equal(xa, xb)

    def test_no_shuffle_preserves_order(self, xy):
        x, y = xy
        loader = BatchLoader(x, y, batch_size=25, shuffle=False)
        xb, yb = next(iter(loader))
        np.testing.assert_array_equal(xb, x)
        np.testing.assert_array_equal(yb, y)
