"""Tests for the Dataset container."""

import numpy as np
import pytest

from repro.data.datasets import Dataset


def _mini(n_train=20, n_test=10, n_val=5, dim=6, n_classes=3):
    rng = np.random.default_rng(0)
    return Dataset(
        name="mini",
        x_train=rng.normal(size=(n_train, dim)),
        y_train=rng.integers(0, n_classes, n_train),
        x_test=rng.normal(size=(n_test, dim)),
        y_test=rng.integers(0, n_classes, n_test),
        x_val=rng.normal(size=(n_val, dim)),
        y_val=rng.integers(0, n_classes, n_val),
        n_classes=n_classes,
        image_shape=(1, 2, 3),
    )


class TestValidation:
    def test_valid_construction(self):
        d = _mini()
        assert d.input_dim == 6
        assert d.n_train == 20
        assert d.n_test == 10
        assert d.n_val == 5

    def test_label_feature_count_mismatch(self):
        d = _mini()
        with pytest.raises(ValueError, match="train"):
            Dataset(
                "bad", d.x_train, d.y_train[:-1], d.x_test, d.y_test,
                d.x_val, d.y_val, 3,
            )

    def test_split_width_mismatch(self):
        d = _mini()
        with pytest.raises(ValueError, match="input_dim"):
            Dataset(
                "bad", d.x_train, d.y_train, d.x_test[:, :4], d.y_test,
                d.x_val, d.y_val, 3,
            )

    def test_labels_out_of_range(self):
        d = _mini()
        bad_labels = d.y_train.copy()
        bad_labels[0] = 99
        with pytest.raises(ValueError, match="out of range"):
            Dataset(
                "bad", d.x_train, bad_labels, d.x_test, d.y_test,
                d.x_val, d.y_val, 3,
            )

    def test_single_class_rejected(self):
        d = _mini()
        with pytest.raises(ValueError, match="classes"):
            Dataset(
                "bad", d.x_train, np.zeros(20, dtype=int), d.x_test,
                np.zeros(10, dtype=int), d.x_val, np.zeros(5, dtype=int), 1,
            )


class TestSubsample:
    def test_size_and_determinism(self):
        d = _mini()
        s1 = d.subsample(8, seed=1)
        s2 = d.subsample(8, seed=1)
        assert s1.n_train == 8
        np.testing.assert_array_equal(s1.x_train, s2.x_train)

    def test_eval_splits_untouched(self):
        d = _mini()
        s = d.subsample(5, seed=0)
        np.testing.assert_array_equal(s.x_test, d.x_test)
        np.testing.assert_array_equal(s.x_val, d.x_val)

    def test_no_duplicate_rows(self):
        d = _mini()
        s = d.subsample(20, seed=0)
        # All 20 rows sampled without replacement == a permutation.
        assert np.unique(s.x_train, axis=0).shape[0] == 20

    @pytest.mark.parametrize("n", [0, 21])
    def test_invalid_sizes(self, n):
        with pytest.raises(ValueError):
            _mini().subsample(n)


class TestImages:
    def test_reshape_round_trip(self):
        d = _mini()
        imgs = d.images("train")
        assert imgs.shape == (20, 1, 2, 3)
        np.testing.assert_array_equal(imgs.reshape(20, -1), d.x_train)

    def test_no_image_shape_raises(self):
        d = _mini()
        flat = Dataset(
            "flat", d.x_train, d.y_train, d.x_test, d.y_test,
            d.x_val, d.y_val, 3,
        )
        with pytest.raises(ValueError, match="image shape"):
            flat.images()


def test_describe_mentions_sizes():
    text = _mini().describe()
    assert "20/10/5" in text
    assert "dim=6" in text
