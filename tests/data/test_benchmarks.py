"""Tests that the six benchmarks match the paper's §8.2 specification."""

import numpy as np
import pytest

from repro.data.benchmarks import (
    BENCHMARKS,
    benchmark_names,
    get_benchmark_spec,
    load_benchmark,
)

# (name, shape, classes, train, test, val) exactly as in the paper.
PAPER_SPECS = [
    ("mnist", (1, 28, 28), 10, 55_000, 10_000, 5_000),
    ("kuzushiji", (1, 28, 28), 10, 55_000, 10_000, 5_000),
    ("fashion", (1, 28, 28), 10, 55_000, 10_000, 5_000),
    ("emnist_letters", (1, 28, 28), 26, 104_800, 20_000, 20_000),
    ("norb", (1, 96, 96), 5, 22_300, 24_300, 2_000),
    ("cifar10", (3, 32, 32), 10, 45_000, 10_000, 5_000),
]


def test_all_six_present():
    assert benchmark_names() == [s[0] for s in PAPER_SPECS]


@pytest.mark.parametrize("name,shape,classes,train,test,val", PAPER_SPECS)
def test_paper_split_sizes(name, shape, classes, train, test, val):
    spec = get_benchmark_spec(name)
    assert spec.shape == shape
    assert spec.n_classes == classes
    assert spec.n_train == train
    assert spec.n_test == test
    assert spec.n_val == val


def test_unknown_benchmark():
    with pytest.raises(ValueError, match="unknown benchmark"):
        get_benchmark_spec("imagenet")


class TestLoading:
    def test_scaled_load(self):
        d = load_benchmark("mnist", scale=0.002, seed=0)
        assert d.n_train == 110
        assert d.input_dim == 784
        assert d.n_classes == 10

    def test_full_scale_spec_preserved(self):
        # Don't generate the full dataset; just check scale=1.0 wiring via
        # a benchmarks-level invariant: spec is returned unscaled.
        spec = get_benchmark_spec("norb")
        assert spec.n_train == 22_300

    def test_deterministic(self):
        a = load_benchmark("fashion", scale=0.002, seed=5)
        b = load_benchmark("fashion", scale=0.002, seed=5)
        np.testing.assert_array_equal(a.x_train, b.x_train)

    def test_cifar_is_color(self):
        d = load_benchmark("cifar10", scale=0.002, seed=0)
        assert d.input_dim == 3 * 32 * 32
        assert d.images("train").shape[1] == 3

    def test_emnist_has_26_classes(self):
        d = load_benchmark("emnist_letters", scale=0.003, seed=0)
        assert d.n_classes == 26

    def test_relative_difficulty_ordering(self):
        """MNIST-like must be easier than CIFAR-like (nearest-class-mean)."""

        def ncm(name):
            d = load_benchmark(name, scale=0.01, seed=3)
            means = np.stack(
                [
                    d.x_train[d.y_train == c].mean(axis=0)
                    for c in range(d.n_classes)
                ]
            )
            dists = ((d.x_test[:, None, :] - means[None]) ** 2).sum(axis=2)
            return (dists.argmin(axis=1) == d.y_test).mean()

        assert ncm("mnist") > ncm("cifar10")
