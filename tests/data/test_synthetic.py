"""Tests for the synthetic benchmark generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import SyntheticSpec, make_prototypes


def _spec(**kwargs):
    defaults = dict(
        name="t",
        shape=(1, 8, 8),
        n_classes=4,
        n_train=120,
        n_test=60,
        n_val=20,
        noise=1.0,
        class_spread=1.5,
        max_shift=0,
    )
    defaults.update(kwargs)
    return SyntheticSpec(**defaults)


class TestPrototypes:
    def test_shape(self, rng):
        protos = make_prototypes(5, (2, 6, 6), rng)
        assert protos.shape == (5, 2, 6, 6)

    def test_spread_scales_magnitude(self, rng):
        small = make_prototypes(3, (1, 8, 8), np.random.default_rng(0), class_spread=0.5)
        large = make_prototypes(3, (1, 8, 8), np.random.default_rng(0), class_spread=2.0)
        np.testing.assert_allclose(large, 4.0 * small)

    def test_unit_rms_at_spread_one(self, rng):
        protos = make_prototypes(3, (1, 10, 10), rng, class_spread=1.0)
        rms = np.sqrt((protos**2).mean(axis=(1, 2, 3)))
        np.testing.assert_allclose(rms, 1.0, rtol=1e-9)

    def test_single_class_rejected(self, rng):
        with pytest.raises(ValueError):
            make_prototypes(1, (1, 4, 4), rng)


class TestGeneration:
    def test_split_sizes(self):
        d = _spec().generate(seed=0)
        assert (d.n_train, d.n_test, d.n_val) == (120, 60, 20)

    def test_deterministic(self):
        a = _spec().generate(seed=3)
        b = _spec().generate(seed=3)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_test, b.y_test)

    def test_different_seeds_differ(self):
        a = _spec().generate(seed=3)
        b = _spec().generate(seed=4)
        assert not np.array_equal(a.x_train, b.x_train)

    def test_training_split_standardised(self):
        d = _spec().generate(seed=0)
        np.testing.assert_allclose(d.x_train.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(d.x_train.std(axis=0), 1.0, atol=1e-9)

    def test_all_classes_present(self):
        d = _spec(n_train=400).generate(seed=1)
        assert set(np.unique(d.y_train)) == set(range(4))

    def test_zero_val_split_allowed(self):
        d = _spec(n_val=0).generate(seed=0)
        assert d.n_val == 0

    def test_signal_exists(self):
        """A nearest-class-mean classifier must beat chance comfortably."""
        d = _spec(n_train=400, noise=1.0).generate(seed=2)
        means = np.stack(
            [d.x_train[d.y_train == c].mean(axis=0) for c in range(4)]
        )
        dists = ((d.x_test[:, None, :] - means[None]) ** 2).sum(axis=2)
        acc = (dists.argmin(axis=1) == d.y_test).mean()
        assert acc > 0.5

    def test_noise_controls_difficulty(self):
        """More noise ⇒ lower nearest-mean accuracy (ceteris paribus)."""

        def ncm_accuracy(noise):
            d = _spec(n_train=400, noise=noise).generate(seed=2)
            means = np.stack(
                [d.x_train[d.y_train == c].mean(axis=0) for c in range(4)]
            )
            dists = ((d.x_test[:, None, :] - means[None]) ** 2).sum(axis=2)
            return (dists.argmin(axis=1) == d.y_test).mean()

        assert ncm_accuracy(8.0) < ncm_accuracy(1.0)


class TestScaled:
    def test_scales_split_sizes(self):
        spec = _spec(n_train=1000, n_test=500, n_val=100)
        small = spec.scaled(0.1)
        assert (small.n_train, small.n_test, small.n_val) == (100, 50, 10)

    def test_keeps_class_minimum(self):
        spec = _spec(n_train=1000, n_test=500, n_val=100)
        tiny = spec.scaled(0.001)
        assert tiny.n_train >= spec.n_classes
        assert tiny.n_test >= spec.n_classes

    def test_zero_val_stays_zero(self):
        spec = _spec(n_val=0)
        assert spec.scaled(0.5).n_val == 0

    @pytest.mark.parametrize("frac", [0.0, 1.5, -0.1])
    def test_invalid_fraction(self, frac):
        with pytest.raises(ValueError):
            _spec().scaled(frac)

    @settings(max_examples=20)
    @given(st.floats(0.01, 1.0))
    def test_scaling_never_exceeds_original(self, frac):
        spec = _spec(n_train=1000, n_test=500, n_val=100)
        small = spec.scaled(frac)
        assert small.n_train <= 1000
        assert small.n_test <= 500


class TestValidationErrors:
    def test_negative_split(self):
        with pytest.raises(ValueError):
            _spec(n_train=0)
