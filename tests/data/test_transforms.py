"""Tests for feature/label transforms."""

import numpy as np
import pytest

from repro.data.transforms import flatten_images, minmax_scale, one_hot, standardize


class TestStandardize:
    def test_train_statistics(self, rng):
        x = rng.normal(3.0, 2.0, size=(50, 4))
        (out,) = standardize(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-9)

    def test_others_use_train_stats(self, rng):
        x_train = rng.normal(5.0, 3.0, size=(100, 2))
        x_test = rng.normal(5.0, 3.0, size=(40, 2))
        tr, te = standardize(x_train, x_test)
        # Reconstruct: te must be (x_test - mean_train) / std_train.
        expected = (x_test - x_train.mean(axis=0)) / x_train.std(axis=0)
        np.testing.assert_allclose(te, expected)

    def test_constant_feature_no_nan(self):
        x = np.ones((10, 3))
        (out,) = standardize(x)
        assert np.isfinite(out).all()


class TestMinMax:
    def test_unit_interval(self, rng):
        x = rng.normal(size=(30, 5)) * 10
        (out,) = minmax_scale(x)
        assert out.min() >= 0.0
        assert out.max() <= 1.0

    def test_constant_feature_no_nan(self):
        (out,) = minmax_scale(np.full((5, 2), 7.0))
        assert np.isfinite(out).all()

    def test_test_split_may_exceed_bounds(self, rng):
        """Test data outside the training range maps outside [0, 1] —
        that's correct behaviour (no leakage of test statistics)."""
        x_train = np.linspace(0, 1, 10).reshape(-1, 1)
        x_test = np.array([[2.0]])
        _, te = minmax_scale(x_train, x_test)
        assert te[0, 0] == pytest.approx(2.0)


class TestOneHot:
    def test_values(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_rows_sum_to_one(self, rng):
        labels = rng.integers(0, 7, 20)
        assert (one_hot(labels, 7).sum(axis=1) == 1).all()

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([0, 3]), 3)

    def test_empty(self):
        assert one_hot(np.array([], dtype=int), 4).shape == (0, 4)


class TestFlatten:
    def test_nchw(self, rng):
        imgs = rng.normal(size=(5, 3, 4, 4))
        flat = flatten_images(imgs)
        assert flat.shape == (5, 48)

    def test_nhw(self, rng):
        imgs = rng.normal(size=(5, 4, 4))
        assert flatten_images(imgs).shape == (5, 16)

    def test_scalar_rejected(self):
        with pytest.raises(ValueError):
            flatten_images(np.array(3.0))
