"""Tests for dataset corruptions."""

import numpy as np
import pytest

from repro.data.corruptions import (
    with_class_imbalance,
    with_dead_features,
    with_feature_noise,
    with_label_noise,
)


class TestLabelNoise:
    def test_fraction_flipped(self, tiny_dataset):
        noisy = with_label_noise(tiny_dataset, 0.3, seed=0)
        flipped = (noisy.y_train != tiny_dataset.y_train).mean()
        assert flipped == pytest.approx(0.3, abs=0.02)

    def test_flips_always_change_label(self, tiny_dataset):
        noisy = with_label_noise(tiny_dataset, 1.0, seed=0)
        assert (noisy.y_train != tiny_dataset.y_train).all()

    def test_eval_labels_untouched(self, tiny_dataset):
        noisy = with_label_noise(tiny_dataset, 0.5, seed=0)
        np.testing.assert_array_equal(noisy.y_test, tiny_dataset.y_test)
        np.testing.assert_array_equal(noisy.y_val, tiny_dataset.y_val)

    def test_original_not_mutated(self, tiny_dataset):
        before = tiny_dataset.y_train.copy()
        with_label_noise(tiny_dataset, 0.5, seed=0)
        np.testing.assert_array_equal(tiny_dataset.y_train, before)

    def test_zero_fraction_identity(self, tiny_dataset):
        noisy = with_label_noise(tiny_dataset, 0.0)
        np.testing.assert_array_equal(noisy.y_train, tiny_dataset.y_train)

    def test_deterministic(self, tiny_dataset):
        a = with_label_noise(tiny_dataset, 0.4, seed=5)
        b = with_label_noise(tiny_dataset, 0.4, seed=5)
        np.testing.assert_array_equal(a.y_train, b.y_train)

    def test_invalid_fraction(self, tiny_dataset):
        with pytest.raises(ValueError):
            with_label_noise(tiny_dataset, 1.5)


class TestFeatureNoise:
    def test_noise_magnitude(self, tiny_dataset):
        noisy = with_feature_noise(tiny_dataset, 2.0, seed=0)
        diff = noisy.x_train - tiny_dataset.x_train
        assert diff.std() == pytest.approx(2.0, rel=0.05)

    def test_test_split_clean(self, tiny_dataset):
        noisy = with_feature_noise(tiny_dataset, 1.0, seed=0)
        np.testing.assert_array_equal(noisy.x_test, tiny_dataset.x_test)

    def test_invalid_sigma(self, tiny_dataset):
        with pytest.raises(ValueError):
            with_feature_noise(tiny_dataset, -1.0)


class TestDeadFeatures:
    def test_same_columns_dead_everywhere(self, tiny_dataset):
        dead = with_dead_features(tiny_dataset, 0.25, seed=0)
        train_dead = np.nonzero(~dead.x_train.any(axis=0))[0]
        test_dead = np.nonzero(~dead.x_test.any(axis=0))[0]
        assert set(train_dead) >= set(test_dead) or set(test_dead) >= set(train_dead)
        expected = int(round(0.25 * tiny_dataset.input_dim))
        assert len(train_dead) >= expected  # dead columns + natural zeros

    def test_fraction_zeroed(self, tiny_dataset):
        dead = with_dead_features(tiny_dataset, 0.5, seed=1)
        changed = (dead.x_train != tiny_dataset.x_train).any(axis=0)
        assert changed.sum() == int(round(0.5 * tiny_dataset.input_dim))

    def test_zero_fraction_identity(self, tiny_dataset):
        dead = with_dead_features(tiny_dataset, 0.0)
        np.testing.assert_array_equal(dead.x_train, tiny_dataset.x_train)


class TestClassImbalance:
    def test_minority_shrunk(self, tiny_dataset):
        skewed = with_class_imbalance(tiny_dataset, 0.2, minority_classes=1, seed=0)
        before = (tiny_dataset.y_train == 0).sum()
        after = (skewed.y_train == 0).sum()
        assert after == max(1, int(round(0.2 * before)))
        # Other classes untouched.
        assert (skewed.y_train == 1).sum() == (tiny_dataset.y_train == 1).sum()

    def test_eval_untouched(self, tiny_dataset):
        skewed = with_class_imbalance(tiny_dataset, 0.3, seed=0)
        assert skewed.n_test == tiny_dataset.n_test

    def test_invalid_args(self, tiny_dataset):
        with pytest.raises(ValueError):
            with_class_imbalance(tiny_dataset, 0.0)
        with pytest.raises(ValueError):
            with_class_imbalance(tiny_dataset, 0.5, minority_classes=99)


class TestTrainingUnderCorruption:
    def test_label_noise_hurts_standard_training(self, tiny_dataset):
        from repro.core.standard import StandardTrainer
        from repro.nn.network import MLP

        def run(data):
            net = MLP([data.input_dim, 32, data.n_classes], seed=0)
            tr = StandardTrainer(net, lr=1e-2, seed=1)
            tr.fit(data.x_train, data.y_train, epochs=8, batch_size=10)
            return tr.evaluate(data.x_test, data.y_test)

        clean = run(tiny_dataset)
        noisy = run(with_label_noise(tiny_dataset, 0.6, seed=2))
        assert noisy < clean
