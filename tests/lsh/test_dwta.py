"""Tests for densified winner-take-all hashing."""

import numpy as np
import pytest

from repro.lsh.dwta import DensifiedWTA
from repro.lsh.tables import HASH_FAMILIES, LSHIndex, make_hash_function


class TestConstruction:
    def test_bucket_count(self, rng):
        fn = DensifiedWTA(16, 6, rng=rng)
        assert fn.n_buckets == 64

    @pytest.mark.parametrize("bits", [0, 63])
    def test_invalid_bits(self, bits, rng):
        with pytest.raises(ValueError):
            DensifiedWTA(8, bits, rng=rng)

    @pytest.mark.parametrize("bin_size", [1, 3, 6])
    def test_invalid_bin_size(self, bin_size, rng):
        with pytest.raises(ValueError):
            DensifiedWTA(8, 4, bin_size=bin_size, rng=rng)

    def test_invalid_dim(self, rng):
        with pytest.raises(ValueError):
            DensifiedWTA(0, 4, rng=rng)

    def test_small_dim_still_works(self, rng):
        """Bins larger than dim are filled by repeating the permutation."""
        fn = DensifiedWTA(3, 6, bin_size=8, rng=rng)
        codes = fn.hash(rng.normal(size=(10, 3)))
        assert ((codes >= 0) & (codes < 64)).all()

    def test_nbytes_positive(self, rng):
        assert DensifiedWTA(16, 6, rng=rng).nbytes > 0


class TestHashing:
    def test_codes_in_range(self, rng):
        fn = DensifiedWTA(32, 8, rng=rng)
        codes = fn.hash(rng.normal(size=(100, 32)))
        assert ((codes >= 0) & (codes < 256)).all()

    def test_deterministic(self, rng):
        fn = DensifiedWTA(16, 6, rng=np.random.default_rng(0))
        x = rng.normal(size=(20, 16))
        np.testing.assert_array_equal(fn.hash(x), fn.hash(x))

    def test_scale_invariance(self, rng):
        """WTA sees only the argmax: positive scaling can't change codes."""
        fn = DensifiedWTA(16, 6, rng=rng)
        x = rng.normal(size=(30, 16))
        np.testing.assert_array_equal(fn.hash(x), fn.hash(3.0 * x))

    def test_monotone_transform_invariance(self, rng):
        """Any strictly increasing map preserves per-bin argmaxes."""
        fn = DensifiedWTA(16, 6, rng=rng)
        x = rng.normal(size=(20, 16))
        np.testing.assert_array_equal(fn.hash(x), fn.hash(x**3))

    def test_identical_vectors_collide(self, rng):
        fn = DensifiedWTA(16, 8, rng=rng)
        v = rng.normal(size=16)
        assert fn.hash_one(v) == fn.hash_one(v.copy())

    def test_wrong_dim_rejected(self, rng):
        fn = DensifiedWTA(16, 6, rng=rng)
        with pytest.raises(ValueError):
            fn.hash(rng.normal(size=(2, 9)))

    def test_similar_vectors_collide_more(self, rng):
        """Collision rate for near-duplicates must exceed that of random
        pairs (the LSH property)."""
        base = rng.normal(size=(100, 24))
        near = base + rng.normal(scale=0.01, size=base.shape)
        far = rng.normal(size=(100, 24))
        hits_near = hits_far = 0
        for t in range(20):
            fn = DensifiedWTA(24, 6, rng=np.random.default_rng(t))
            a = fn.hash(base)
            hits_near += int((a == fn.hash(near)).sum())
            hits_far += int((a == fn.hash(far)).sum())
        assert hits_near > 2 * hits_far


class TestDensification:
    def test_sparse_vectors_hash_validly(self, rng):
        """Vectors with a single non-zero coordinate still hash (plain WTA
        would leave most bins empty)."""
        fn = DensifiedWTA(32, 8, rng=rng)
        sparse = np.zeros((32, 32))
        np.fill_diagonal(sparse, 1.0)
        codes = fn.hash(sparse)
        assert ((codes >= 0) & (codes < 256)).all()

    def test_all_zero_vector_degenerates_gracefully(self, rng):
        fn = DensifiedWTA(16, 6, rng=rng)
        assert 0 <= fn.hash_one(np.zeros(16)) < 64

    def test_sparse_similarity_preserved(self, rng):
        """Two sparse vectors sharing their support should collide more
        than disjoint-support ones."""
        dim = 48
        hits_same = hits_disjoint = 0
        for t in range(30):
            fn = DensifiedWTA(dim, 6, rng=np.random.default_rng(t))
            v = np.zeros(dim)
            v[:6] = np.abs(np.random.default_rng(t + 1).normal(size=6))
            same = v.copy()
            same[:6] *= 1.01
            disjoint = np.zeros(dim)
            disjoint[6:12] = v[:6]
            code = fn.hash_one(v)
            hits_same += code == fn.hash_one(same)
            hits_disjoint += code == fn.hash_one(disjoint)
        assert hits_same > hits_disjoint


class TestFamilyIntegration:
    def test_factory(self, rng):
        assert set(HASH_FAMILIES) == {"srp", "dwta"}
        fn = make_hash_function("dwta", 8, 4, rng)
        assert isinstance(fn, DensifiedWTA)
        with pytest.raises(ValueError, match="unknown hash family"):
            make_hash_function("minhash", 8, 4, rng)

    def test_lsh_index_with_dwta(self, rng):
        vectors = rng.normal(size=(40, 16))
        index = LSHIndex(16, n_bits=6, n_tables=4, family="dwta", seed=0)
        index.build(vectors)
        for i in range(40):
            assert i in index.query(vectors[i])

    def test_alsh_trainer_with_dwta(self, rng):
        from repro.core.alsh_approx import ALSHApproxTrainer
        from repro.nn.network import MLP

        net = MLP([12, 20, 3], seed=0)
        trainer = ALSHApproxTrainer(net, hash_family="dwta", seed=1)
        loss = trainer.train_batch(rng.normal(size=(3, 12)), np.array([0, 1, 2]))
        assert np.isfinite(loss)


class TestFusedDWTA:
    def test_matches_per_function_hash_dense(self, rng):
        from repro.lsh.dwta import FusedDWTA

        fns = [DensifiedWTA(20, 6, rng=rng) for _ in range(4)]
        fused = FusedDWTA(fns)
        vectors = rng.normal(size=(25, 20))
        codes = fused.hash_all(vectors)
        for t, fn in enumerate(fns):
            np.testing.assert_array_equal(codes[:, t], fn.hash(vectors))

    def test_matches_per_function_hash_sparse(self, rng):
        """Sparse rows hit empty bins: fused must reproduce the reference
        densification exactly."""
        from repro.lsh.dwta import FusedDWTA

        fns = [DensifiedWTA(20, 6, rng=rng) for _ in range(3)]
        fused = FusedDWTA(fns)
        vectors = rng.normal(size=(30, 20))
        vectors[rng.random(vectors.shape) < 0.8] = 0.0
        vectors[0] = 0.0  # the all-zero degenerate case
        codes = fused.hash_all(vectors)
        for t, fn in enumerate(fns):
            np.testing.assert_array_equal(codes[:, t], fn.hash(vectors))

    def test_mismatched_functions_rejected(self, rng):
        from repro.lsh.dwta import FusedDWTA

        fns = [DensifiedWTA(20, 6, rng=rng), DensifiedWTA(20, 4, rng=rng)]
        with pytest.raises(ValueError):
            FusedDWTA(fns)
