"""Unit tests for repro.lsh.tables — hash tables and the multi-table index."""

import numpy as np
import pytest

from repro.lsh.tables import HashTable, LSHIndex


@pytest.fixture
def vectors(rng):
    return rng.normal(size=(50, 12))


class TestHashTable:
    def test_insert_and_query_self(self, rng, vectors):
        table = HashTable(12, 6, rng)
        table.insert(np.arange(50), vectors)
        for i in [0, 17, 49]:
            assert i in table.query(vectors[i])

    def test_len(self, rng, vectors):
        table = HashTable(12, 6, rng)
        table.insert(np.arange(50), vectors)
        assert len(table) == 50

    def test_reinsert_moves_item(self, rng, vectors):
        table = HashTable(12, 8, rng)
        table.insert(np.array([0]), vectors[:1])
        # Move item 0 to the antipodal point: must leave the old bucket.
        table.insert(np.array([0]), -vectors[:1])
        assert 0 not in table.query(vectors[0])
        assert 0 in table.query(-vectors[0])

    def test_clear(self, rng, vectors):
        table = HashTable(12, 6, rng)
        table.insert(np.arange(50), vectors)
        table.clear()
        assert len(table) == 0
        assert table.query(vectors[0]) == set()

    def test_query_batch_matches_single(self, rng, vectors):
        table = HashTable(12, 6, rng)
        table.insert(np.arange(50), vectors)
        batch = table.query_batch(vectors[:5])
        for i in range(5):
            assert batch[i] == table.query(vectors[i])

    def test_empty_bucket_removed_on_move(self, rng):
        table = HashTable(4, 10, rng)
        v = rng.normal(size=(1, 4))
        table.insert(np.array([0]), v)
        table.insert(np.array([0]), -v)
        # The original bucket should be gone entirely (no empty sets kept).
        assert all(bucket for bucket in table.buckets.values())


class TestLSHIndex:
    def test_self_query_recall(self, rng, vectors):
        index = LSHIndex(12, n_bits=6, n_tables=5, seed=0)
        index.build(vectors)
        for i in range(50):
            assert i in index.query(vectors[i])

    def test_union_grows_with_tables(self, vectors):
        """More tables can only enlarge the candidate union (same seeds)."""
        q = vectors[0] + 0.1
        small = LSHIndex(12, n_bits=6, n_tables=2, seed=1)
        large = LSHIndex(12, n_bits=6, n_tables=8, seed=1)
        small.build(vectors)
        large.build(vectors)
        # Tables share the seed stream so the first 2 of `large` == `small`.
        assert set(small.query(q)) <= set(large.query(q))

    def test_update_subset(self, rng, vectors):
        index = LSHIndex(12, n_bits=8, n_tables=3, seed=2)
        index.build(vectors)
        moved = -vectors[:3]
        index.update(np.arange(3), moved)
        for i in range(3):
            assert i in index.query(moved[i])

    def test_query_batch_matches_single(self, rng, vectors):
        index = LSHIndex(12, n_bits=5, n_tables=4, seed=3)
        index.build(vectors)
        queries = rng.normal(size=(6, 12))
        batch = index.query_batch(queries)
        for i in range(6):
            np.testing.assert_array_equal(batch[i], index.query(queries[i]))

    def test_results_sorted_unique(self, rng, vectors):
        index = LSHIndex(12, seed=4)
        index.build(vectors)
        res = index.query(rng.normal(size=12))
        assert np.array_equal(res, np.unique(res))

    def test_rebuild_replaces_contents(self, rng, vectors):
        index = LSHIndex(12, seed=5)
        index.build(vectors)
        index.build(vectors[:10])
        assert len(index) == 10
        candidates = index.query(vectors[0])
        assert (candidates < 10).all()

    def test_memory_bytes_positive_and_grows(self, rng, vectors):
        small = LSHIndex(12, n_tables=2, seed=6)
        small.build(vectors)
        large = LSHIndex(12, n_tables=8, seed=6)
        large.build(vectors)
        assert 0 < small.memory_bytes() < large.memory_bytes()

    def test_invalid_tables(self):
        with pytest.raises(ValueError):
            LSHIndex(4, n_tables=0)

    def test_near_duplicates_usually_collide(self, rng):
        """Tiny perturbations should land in the same candidate set."""
        base = rng.normal(size=(30, 16))
        index = LSHIndex(16, n_bits=4, n_tables=6, seed=7)
        index.build(base)
        hits = 0
        for i in range(30):
            q = base[i] + rng.normal(scale=1e-4, size=16)
            hits += i in index.query(q)
        assert hits >= 28
