"""Equivalence and unit tests for the flat (vectorized CSR) LSH backend.

The dict backend is the reference oracle: for identical seeds the flat
backend must return byte-identical candidate sets through any sequence of
build / update / query operations.  These tests drive both backends with
the same randomized op sequences and assert exact agreement.
"""

import numpy as np
import pytest

from repro.lsh.flat import FlatHashTables, make_fused_bank
from repro.lsh.srp import SignedRandomProjection
from repro.lsh.tables import LSHIndex


def make_pair(family, seed, dim=24, n_bits=5, n_tables=4):
    kwargs = dict(n_bits=n_bits, n_tables=n_tables, family=family, seed=seed)
    return (
        LSHIndex(dim, backend="dict", **kwargs),
        LSHIndex(dim, backend="flat", **kwargs),
    )


def draw_vectors(rng, n, dim, family):
    vecs = rng.normal(size=(n, dim))
    if family == "dwta":
        # Sparse rows exercise the densification fallback.
        vecs[rng.random(vecs.shape) < 0.6] = 0.0
    return vecs


def assert_same_answers(d, f, rng, dim, n_queries=6):
    queries = rng.normal(size=(n_queries, dim))
    for a, b in zip(d.query_batch(queries), f.query_batch(queries)):
        np.testing.assert_array_equal(a, b)
    np.testing.assert_array_equal(d.query(queries[0]), f.query(queries[0]))


class TestEquivalence:
    @pytest.mark.parametrize("family", ["srp", "dwta"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_op_sequences(self, family, seed):
        """build → (update → query)* gives identical candidates throughout."""
        dim = 24
        d, f = make_pair(family, seed, dim=dim)
        rng = np.random.default_rng(np.random.SeedSequence([seed, 99]))
        data = draw_vectors(rng, 150, dim, family)
        d.build(data)
        f.build(data)
        assert_same_answers(d, f, rng, dim)
        for _ in range(10):
            # Ids beyond the built range force the flat backend to grow.
            ids = rng.integers(0, 200, size=rng.integers(1, 40))
            vecs = draw_vectors(rng, ids.size, dim, family)
            d.update(ids, vecs)
            f.update(ids, vecs)
            assert_same_answers(d, f, rng, dim)
        assert len(d) == len(f)

    def test_duplicate_ids_last_wins(self, rng):
        """Repeated ids in one update call keep the last vector, like the
        dict backend's sequential inserts."""
        d, f = make_pair("srp", seed=4)
        data = rng.normal(size=(50, 24))
        d.build(data)
        f.build(data)
        ids = np.array([3, 7, 3, 9, 3])
        vecs = rng.normal(size=(5, 24))
        d.update(ids, vecs)
        f.update(ids, vecs)
        assert_same_answers(d, f, rng, 24)

    def test_compaction_preserves_answers(self, rng):
        """Force many compactions and check candidates never drift."""
        d, f = make_pair("srp", seed=5, dim=16)
        f.flat.compact_garbage_frac = 0.05
        data = rng.normal(size=(64, 16))
        d.build(data)
        f.build(data)
        for _ in range(15):
            ids = rng.integers(0, 64, size=20)
            vecs = rng.normal(size=(20, 16))
            d.update(ids, vecs)
            f.update(ids, vecs)
            assert_same_answers(d, f, rng, 16)
        assert f.flat.compactions > f.flat.n_tables  # beyond the build ones

    def test_rebuild_after_updates(self, rng):
        """build() discards update history on both backends identically."""
        d, f = make_pair("srp", seed=6)
        data = rng.normal(size=(80, 24))
        d.build(data)
        f.build(data)
        ids = np.arange(30)
        vecs = rng.normal(size=(30, 24))
        d.update(ids, vecs)
        f.update(ids, vecs)
        d.build(data)
        f.build(data)
        assert_same_answers(d, f, rng, 24)

    def test_bucket_loads_match(self, rng):
        """Same seed → same tables → identical load multisets per table."""
        d, f = make_pair("srp", seed=7)
        data = rng.normal(size=(120, 24))
        d.build(data)
        f.build(data)
        for ld, lf in zip(d.bucket_loads(), f.bucket_loads()):
            np.testing.assert_array_equal(np.sort(ld), np.sort(lf))


class TestFlatHashTables:
    @pytest.fixture
    def flat(self):
        rng = np.random.default_rng(0)
        fns = [SignedRandomProjection(8, 4, rng) for _ in range(3)]
        return FlatHashTables(fns)

    def test_empty_index_queries(self, flat, rng):
        assert flat.query(rng.normal(size=8)).size == 0
        results = flat.query_batch(rng.normal(size=(4, 8)))
        assert len(results) == 4
        assert all(r.size == 0 for r in results)

    def test_len_and_clear(self, flat, rng):
        flat.build(rng.normal(size=(30, 8)))
        assert len(flat) == 30
        flat.clear()
        assert len(flat) == 0
        assert flat.query(rng.normal(size=8)).size == 0

    def test_update_before_build_inserts(self, flat, rng):
        flat.update(np.array([5, 2]), rng.normal(size=(2, 8)))
        assert len(flat) == 2
        assert flat.n_slots == 6

    def test_empty_update_is_noop(self, flat, rng):
        flat.build(rng.normal(size=(10, 8)))
        flat.update(np.empty(0, dtype=int), np.empty((0, 8)))
        assert len(flat) == 10

    def test_memory_grows_with_items(self, flat, rng):
        flat.build(rng.normal(size=(10, 8)))
        small = flat.memory_bytes()
        flat.build(rng.normal(size=(200, 8)))
        assert flat.memory_bytes() > small

    def test_mismatched_ids_vectors_raise(self, flat, rng):
        with pytest.raises(ValueError):
            flat.update(np.array([0, 1]), rng.normal(size=(3, 8)))

    def test_negative_ids_raise(self, flat, rng):
        with pytest.raises(ValueError):
            flat.update(np.array([-1]), rng.normal(size=(1, 8)))

    def test_invalid_garbage_frac(self):
        rng = np.random.default_rng(0)
        fns = [SignedRandomProjection(8, 4, rng)]
        with pytest.raises(ValueError):
            FlatHashTables(fns, compact_garbage_frac=0.0)

    def test_no_hash_functions_raises(self):
        with pytest.raises(ValueError):
            FlatHashTables([])

    def test_tiny_table_garbage_stays_bounded_under_churn(self, rng):
        """The compaction threshold is a pure fraction of live items.

        The old trigger had a fixed absolute floor (garbage > 32), so a
        tiny table could accumulate tombstones worth many times its live
        size before ever compacting.  With 8 live items and
        ``compact_garbage_frac=0.5`` the fraction must stay bounded by
        roughly frac/(1+frac) at every point of a long churn sequence.
        """
        fns = [SignedRandomProjection(8, 4, np.random.default_rng(7))
               for _ in range(3)]
        flat = FlatHashTables(fns, compact_garbage_frac=0.5)
        flat.build(rng.normal(size=(8, 8)))
        bound = 0.5 / 1.5 + 0.15  # frac/(1+frac) plus batch-grain slack
        for _ in range(300):
            ids = rng.integers(0, 8, size=rng.integers(1, 4))
            flat.update(np.unique(ids), rng.normal(size=(np.unique(ids).size, 8)))
            assert flat.garbage_fraction() <= bound
        assert flat.compactions > 0
        assert len(flat) == 8

    def test_public_compact_repacks_all_dirty_tables(self, rng):
        fns = [SignedRandomProjection(8, 4, np.random.default_rng(11))
               for _ in range(3)]
        # Huge threshold: nothing compacts on its own.
        flat = FlatHashTables(fns, compact_garbage_frac=50.0)
        flat.build(rng.normal(size=(20, 8)))
        queries = rng.normal(size=(5, 8))
        for _ in range(10):
            ids = np.unique(rng.integers(0, 20, size=6))
            flat.update(ids, rng.normal(size=(ids.size, 8)))
        assert flat.garbage_fraction() > 0.0
        before = [flat.query(q).copy() for q in queries]
        assert flat.compact() > 0
        assert flat.garbage_fraction() == 0.0
        assert flat.compact() == 0  # clean tables are left alone
        for q, expect in zip(queries, before):
            np.testing.assert_array_equal(flat.query(q), expect)


class TestMakeFusedBank:
    def test_mixed_families_rejected(self):
        from repro.lsh.dwta import DensifiedWTA

        rng = np.random.default_rng(0)
        fns = [SignedRandomProjection(8, 4, rng), DensifiedWTA(8, 4, rng=rng)]
        with pytest.raises(ValueError):
            make_fused_bank(fns)

    def test_mismatched_shapes_rejected(self):
        rng = np.random.default_rng(0)
        fns = [
            SignedRandomProjection(8, 4, rng),
            SignedRandomProjection(8, 5, rng),
        ]
        with pytest.raises(ValueError):
            make_fused_bank(fns)
