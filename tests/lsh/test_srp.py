"""Unit and statistical tests for repro.lsh.srp."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsh.srp import (
    FusedSRP,
    SignedRandomProjection,
    collision_probability,
    pack_bits,
)


class TestConstruction:
    def test_bucket_count(self):
        srp = SignedRandomProjection(8, 6, np.random.default_rng(0))
        assert srp.n_buckets == 64

    @pytest.mark.parametrize("bits", [0, 63, -1])
    def test_invalid_bits(self, bits):
        with pytest.raises(ValueError):
            SignedRandomProjection(4, bits)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            SignedRandomProjection(0, 4)


class TestHashing:
    def test_codes_in_range(self, rng):
        srp = SignedRandomProjection(10, 5, rng)
        codes = srp.hash(rng.normal(size=(100, 10)))
        assert ((codes >= 0) & (codes < 32)).all()

    def test_deterministic(self, rng):
        srp = SignedRandomProjection(10, 5, np.random.default_rng(3))
        x = rng.normal(size=(20, 10))
        np.testing.assert_array_equal(srp.hash(x), srp.hash(x))

    def test_scale_invariance(self, rng):
        """SimHash only sees direction: positive scaling can't change codes."""
        srp = SignedRandomProjection(10, 6, rng)
        x = rng.normal(size=(30, 10))
        np.testing.assert_array_equal(srp.hash(x), srp.hash(7.5 * x))

    def test_identical_vectors_always_collide(self, rng):
        srp = SignedRandomProjection(10, 8, rng)
        v = rng.normal(size=10)
        assert srp.hash_one(v) == srp.hash_one(v.copy())

    def test_opposite_vectors_never_collide(self, rng):
        """Antipodal points differ in every bit (θ = π)."""
        srp = SignedRandomProjection(10, 4, rng)
        v = rng.normal(size=10)
        sig_a = srp.signatures(v.reshape(1, -1))
        sig_b = srp.signatures(-v.reshape(1, -1))
        assert (sig_a != sig_b).all()

    def test_wrong_dim_raises(self, rng):
        srp = SignedRandomProjection(10, 4, rng)
        with pytest.raises(ValueError):
            srp.hash(rng.normal(size=(5, 7)))

    def test_hash_one_matches_hash(self, rng):
        srp = SignedRandomProjection(12, 7, rng)
        vectors = rng.normal(size=(25, 12))
        codes = srp.hash(vectors)
        for i in range(25):
            assert srp.hash_one(vectors[i]) == codes[i]

    def test_hash_one_wrong_dim_raises(self, rng):
        srp = SignedRandomProjection(10, 4, rng)
        with pytest.raises(ValueError):
            srp.hash_one(rng.normal(size=7))


class TestPackBits:
    def test_matches_powers_of_two_dot(self, rng):
        """pack_bits is bits @ [1, 2, 4, ...] without the int64 copy."""
        bits = rng.random((40, 9)) < 0.5
        powers = 1 << np.arange(9, dtype=np.int64)
        np.testing.assert_array_equal(
            pack_bits(bits), bits.astype(np.int64) @ powers
        )

    def test_three_dimensional_input(self, rng):
        bits = rng.random((7, 3, 5)) < 0.5
        codes = pack_bits(bits)
        assert codes.shape == (7, 3)
        powers = 1 << np.arange(5, dtype=np.int64)
        np.testing.assert_array_equal(
            codes, bits.astype(np.int64) @ powers
        )


class TestFusedSRP:
    def test_matches_per_function_hash(self, rng):
        fns = [SignedRandomProjection(16, 6, rng) for _ in range(4)]
        fused = FusedSRP(fns)
        vectors = rng.normal(size=(30, 16))
        codes = fused.hash_all(vectors)
        assert codes.shape == (30, 4)
        for t, fn in enumerate(fns):
            np.testing.assert_array_equal(codes[:, t], fn.hash(vectors))

    def test_mismatched_functions_rejected(self, rng):
        fns = [
            SignedRandomProjection(16, 6, rng),
            SignedRandomProjection(16, 4, rng),
        ]
        with pytest.raises(ValueError):
            FusedSRP(fns)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FusedSRP([])

    def test_wrong_dim_raises(self, rng):
        fused = FusedSRP([SignedRandomProjection(16, 6, rng)])
        with pytest.raises(ValueError):
            fused.hash_all(rng.normal(size=(5, 9)))


class TestCollisionProbability:
    def test_identical(self):
        v = np.array([1.0, 2.0])
        assert collision_probability(v, v) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert collision_probability([1, 0], [0, 1]) == pytest.approx(0.5)

    def test_antipodal(self):
        assert collision_probability([1.0, 0.0], [-1.0, 0.0]) == pytest.approx(0.0)

    def test_k_bits_power(self):
        p1 = collision_probability([1, 0], [1, 1], n_bits=1)
        p4 = collision_probability([1, 0], [1, 1], n_bits=4)
        assert p4 == pytest.approx(p1**4)

    def test_zero_vector_is_half(self):
        assert collision_probability([0, 0], [1, 0]) == pytest.approx(0.5)

    def test_empirical_matches_analytic(self):
        """Monte-Carlo check of Pr[collision] = (1 − θ/π)^K."""
        rng = np.random.default_rng(0)
        u = np.array([1.0, 0.0, 0.0])
        v = np.array([1.0, 1.0, 0.0]) / np.sqrt(2)
        n_trials = 3000
        hits = 0
        for i in range(n_trials):
            srp = SignedRandomProjection(3, 2, np.random.default_rng(i))
            hits += srp.hash_one(u) == srp.hash_one(v)
        empirical = hits / n_trials
        analytic = collision_probability(u, v, n_bits=2)
        assert empirical == pytest.approx(analytic, abs=0.03)

    @settings(max_examples=30)
    @given(st.integers(0, 10**6))
    def test_probability_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        u, v = rng.normal(size=(2, 5))
        p = collision_probability(u, v, n_bits=3)
        assert 0.0 <= p <= 1.0

    @settings(max_examples=30)
    @given(st.integers(0, 10**6))
    def test_more_similar_more_likely(self, seed):
        """Moving v towards u cannot reduce the collision probability."""
        rng = np.random.default_rng(seed)
        u = rng.normal(size=4)
        v = rng.normal(size=4)
        closer = 0.5 * (u / np.linalg.norm(u) + v / np.linalg.norm(v))
        if np.linalg.norm(closer) < 1e-9:
            return  # antipodal corner case
        assert collision_probability(u, closer) >= collision_probability(u, v) - 1e-12
