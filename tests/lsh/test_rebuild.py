"""Tests for the ALSH hash-table rebuild scheduler (§9.2 policy)."""

import pytest

from repro.lsh.rebuild import RebuildScheduler


class TestValidation:
    def test_invalid_periods(self):
        with pytest.raises(ValueError):
            RebuildScheduler(early_every=0)
        with pytest.raises(ValueError):
            RebuildScheduler(late_every=-5)

    def test_invalid_warmup(self):
        with pytest.raises(ValueError):
            RebuildScheduler(warmup_samples=-1)

    def test_invalid_record(self):
        with pytest.raises(ValueError):
            RebuildScheduler().record(0)


class TestPaperPolicy:
    def test_early_period_every_100(self):
        sched = RebuildScheduler()  # paper defaults
        fires = [i for i in range(1, 1001) if sched.record(1)]
        assert fires == list(range(100, 1001, 100))

    def test_switches_to_late_period_after_warmup(self):
        sched = RebuildScheduler(early_every=10, late_every=50, warmup_samples=100)
        fires = []
        for i in range(1, 301):
            if sched.record(1):
                fires.append(i)
        early = [f for f in fires if f <= 100]
        late = [f for f in fires if f > 100]
        assert early == list(range(10, 101, 10))
        assert late == [150, 200, 250, 300]

    def test_current_period_reflects_phase(self):
        sched = RebuildScheduler(early_every=10, late_every=50, warmup_samples=20)
        assert sched.current_period() == 10
        sched.record(20)
        assert sched.current_period() == 50


class TestBatchRecording:
    def test_batch_counts_as_many_samples(self):
        sched = RebuildScheduler(early_every=100, warmup_samples=0, late_every=100)
        assert not sched.record(99)
        assert sched.record(1)

    def test_large_batch_triggers_once(self):
        """One record call fires at most one rebuild (caller rebuilds once)."""
        sched = RebuildScheduler(early_every=10, warmup_samples=0, late_every=10)
        assert sched.record(35)
        assert sched.rebuild_count == 1


class TestReset:
    def test_reset_forgets_everything(self):
        sched = RebuildScheduler(early_every=10, warmup_samples=100, late_every=50)
        sched.record(95)
        sched.reset()
        assert sched.samples_seen == 0
        assert sched.rebuild_count == 0
        assert sched.current_period() == 10

    def test_samples_seen_accumulates(self):
        sched = RebuildScheduler()
        sched.record(3)
        sched.record(4)
        assert sched.samples_seen == 7
