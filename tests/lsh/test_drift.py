"""Tests for drift-aware hash-table maintenance."""

import numpy as np
import pytest

from repro.lsh.drift import ColumnDriftTracker


class TestValidation:
    def test_requires_2d(self, rng):
        with pytest.raises(ValueError):
            ColumnDriftTracker(rng.normal(size=5))

    def test_negative_threshold(self, rng):
        with pytest.raises(ValueError):
            ColumnDriftTracker(rng.normal(size=(3, 3)), rel_threshold=-0.1)


class TestDrift:
    def test_unchanged_columns_zero_drift(self, rng):
        w = rng.normal(size=(6, 8))
        tracker = ColumnDriftTracker(w)
        np.testing.assert_allclose(tracker.drift(w, np.arange(8)), 0.0)

    def test_drift_value(self, rng):
        w = rng.normal(size=(4, 3))
        tracker = ColumnDriftTracker(w)
        moved = w.copy()
        moved[:, 1] *= 2.0  # delta = ||w_1||, ref = ||w_1|| -> drift 1.0
        drift = tracker.drift(moved, np.array([0, 1, 2]))
        assert drift[0] == 0.0
        assert drift[1] == pytest.approx(1.0)
        assert drift[2] == 0.0

    def test_zero_reference_infinite_drift_when_moved(self):
        w = np.zeros((3, 2))
        tracker = ColumnDriftTracker(w)
        moved = w.copy()
        moved[:, 0] = 1.0
        drift = tracker.drift(moved, np.array([0, 1]))
        assert drift[0] == np.inf
        assert drift[1] == 0.0

    def test_snapshot_is_independent(self, rng):
        w = rng.normal(size=(4, 4))
        tracker = ColumnDriftTracker(w)
        w[:, 0] += 10.0  # mutate in place — tracker must not follow
        assert tracker.drift(w, np.array([0]))[0] > 0


class TestDrifted:
    def test_threshold_filters(self, rng):
        w = rng.normal(size=(5, 6))
        tracker = ColumnDriftTracker(w, rel_threshold=0.5)
        moved = w.copy()
        moved[:, 2] *= 3.0  # drift 2.0 > 0.5
        moved[:, 4] *= 1.01  # drift 0.01 < 0.5
        out = tracker.drifted(moved, np.array([2, 4]))
        np.testing.assert_array_equal(out, [2])

    def test_zero_threshold_selects_all(self, rng):
        w = rng.normal(size=(5, 6))
        tracker = ColumnDriftTracker(w, rel_threshold=0.0)
        cols = np.array([1, 3])
        np.testing.assert_array_equal(tracker.drifted(w, cols), cols)

    def test_empty_cols(self, rng):
        tracker = ColumnDriftTracker(rng.normal(size=(3, 3)))
        assert tracker.drifted(rng.normal(size=(3, 3)), np.array([], dtype=int)).size == 0

    def test_mark_rehashed_resets(self, rng):
        w = rng.normal(size=(4, 4))
        tracker = ColumnDriftTracker(w, rel_threshold=0.1)
        moved = w.copy()
        moved[:, 0] *= 2.0
        assert tracker.drifted(moved, np.array([0])).size == 1
        tracker.mark_rehashed(moved, np.array([0]))
        assert tracker.drifted(moved, np.array([0])).size == 0


class TestTrainerIntegration:
    def test_drift_threshold_reduces_maintenance(self, rng):
        """With a drift threshold, fewer columns are re-hashed for the same
        training trace — the extension's point."""
        from repro.core.alsh_approx import ALSHApproxTrainer
        from repro.lsh.rebuild import RebuildScheduler
        from repro.nn.network import MLP

        x = rng.normal(size=(60, 16))
        y = rng.integers(0, 4, 60)

        def rehashed(threshold):
            net = MLP([16, 40, 4], seed=0)
            trainer = ALSHApproxTrainer(
                net, lr=1e-4, seed=1,
                rebuild=RebuildScheduler(10, 10, 0),
                drift_threshold=threshold,
            )
            trainer.train_batch(x, y)
            return trainer.rehashed_columns

        # A generous threshold with a tiny lr filters almost everything.
        assert rehashed(10.0) < rehashed(None)

    def test_none_threshold_is_paper_behaviour(self, rng):
        from repro.core.alsh_approx import ALSHApproxTrainer
        from repro.nn.network import MLP

        net = MLP([16, 30, 4], seed=0)
        trainer = ALSHApproxTrainer(net, seed=1)
        assert trainer._drift is None
