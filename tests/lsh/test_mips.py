"""Tests for the MIPS engine (exact reference + ALSH index)."""

import numpy as np
import pytest

from repro.lsh.mips import MIPSIndex, exact_mips


class TestExactMIPS:
    def test_returns_true_argmax_first(self, rng):
        data = rng.normal(size=(40, 8))
        q = rng.normal(size=8)
        top = exact_mips(data, q, k=5)
        scores = data @ q
        assert top[0] == np.argmax(scores)
        # Results are sorted by decreasing inner product.
        assert list(scores[top]) == sorted(scores[top], reverse=True)

    def test_k_equals_n(self, rng):
        data = rng.normal(size=(10, 4))
        top = exact_mips(data, rng.normal(size=4), k=10)
        assert sorted(top) == list(range(10))

    @pytest.mark.parametrize("k", [0, 11])
    def test_invalid_k(self, k, rng):
        with pytest.raises(ValueError):
            exact_mips(rng.normal(size=(10, 4)), rng.normal(size=4), k=k)


class TestMIPSIndex:
    @pytest.fixture
    def data(self, rng):
        return rng.normal(size=(100, 16))

    def test_build_and_len(self, data):
        index = MIPSIndex(16, seed=0)
        index.build(data)
        assert len(index) == 100

    def test_dim_mismatch(self, data):
        index = MIPSIndex(8, seed=0)
        with pytest.raises(ValueError):
            index.build(data)

    def test_candidates_enriched_in_top_inner_products(self, data, rng):
        """Candidates returned by ALSH should skew towards the true MIPS
        winners far beyond the random-subset baseline."""
        index = MIPSIndex(16, n_bits=6, n_tables=6, seed=1)
        index.build(data)
        enrichments = []
        for trial in range(30):
            q = rng.normal(size=16)
            cands = index.query(q)
            if cands.size == 0:
                continue
            top20 = set(exact_mips(data, q, k=20).tolist())
            hit_rate = len(top20 & set(cands.tolist())) / cands.size
            enrichments.append(hit_rate)
        # Random subsets would score 0.2 on average.
        assert np.mean(enrichments) > 0.3

    def test_query_batch_matches_single(self, data, rng):
        index = MIPSIndex(16, seed=2)
        index.build(data)
        queries = rng.normal(size=(5, 16))
        batch = index.query_batch(queries)
        for i in range(5):
            np.testing.assert_array_equal(batch[i], index.query(queries[i]))

    def test_update_moves_items(self, data, rng):
        index = MIPSIndex(16, n_bits=6, n_tables=5, seed=3)
        index.build(data)
        # Make item 0 the best match for a known query direction and
        # re-index it; it should now be returned for that query.
        q = rng.normal(size=16)
        q /= np.linalg.norm(q)
        new_vec = 5.0 * q
        index.update(np.array([0]), new_vec.reshape(1, -1))
        assert 0 in index.query(q)

    def test_memory_bytes(self, data):
        index = MIPSIndex(16, seed=4)
        index.build(data)
        assert index.memory_bytes() > 0

    def test_empty_update_is_noop(self, data, rng):
        index = MIPSIndex(16, seed=4)
        index.build(data)
        index.update(np.empty(0, dtype=int), np.empty((0, 16)))
        assert len(index) == 100

    @pytest.mark.parametrize("backend", ["dict", "flat"])
    def test_flat_backend_matches_dict(self, data, rng, backend):
        """Same seed → identical candidates regardless of bucket storage."""
        ref = MIPSIndex(16, seed=5, backend="dict")
        alt = MIPSIndex(16, seed=5, backend=backend)
        ref.build(data)
        alt.build(data)
        queries = rng.normal(size=(8, 16))
        for a, b in zip(ref.query_batch(queries), alt.query_batch(queries)):
            np.testing.assert_array_equal(a, b)


class TestUpdateScaling:
    """update() must reuse the global P-transform scale fitted at build().

    Refitting on the update subset (the old behaviour, kept behind
    ``refit_subset_scale=True``) rescales the *whole* asymmetric transform
    from whatever subset happens to be updated, so re-inserting unchanged
    vectors could move them to different buckets.
    """

    @pytest.fixture
    def data(self, rng):
        # Widely spread norms so a subset refit produces a visibly
        # different scale than the global fit.
        base = rng.normal(size=(80, 12))
        return base * np.linspace(0.1, 10.0, 80)[:, None]

    def test_scale_cached_at_build(self, data):
        index = MIPSIndex(12, seed=0)
        assert index.data_scale is None
        index.build(data)
        assert index.data_scale is not None

    def test_noop_update_preserves_candidates(self, data, rng):
        """Re-inserting unchanged vectors must not move any item."""
        index = MIPSIndex(12, n_bits=6, n_tables=5, seed=1)
        index.build(data)
        queries = rng.normal(size=(10, 12))
        before = index.query_batch(queries)
        ids = np.arange(5)  # small-norm rows: subset scale would differ
        index.update(ids, data[ids])
        after = index.query_batch(queries)
        for a, b in zip(before, after):
            np.testing.assert_array_equal(a, b)

    def test_update_matches_fresh_build(self, data, rng):
        """A partial re-hash lands items where a full rebuild would."""
        updated = data.copy()
        ids = np.arange(10)
        updated[ids] = rng.normal(size=(10, 12)) * 0.2
        incremental = MIPSIndex(12, seed=2)
        incremental.build(data)
        incremental.update(ids, updated[ids])
        rebuilt = MIPSIndex(12, seed=2)
        rebuilt.build(data)  # fit the scale on the same original data
        rebuilt.update(np.arange(80), updated)
        queries = rng.normal(size=(10, 12))
        for a, b in zip(
            incremental.query_batch(queries), rebuilt.query_batch(queries)
        ):
            np.testing.assert_array_equal(a, b)

    def test_small_update_keeps_cached_scale(self, data, rng):
        """Updates inside the build-time norm envelope reuse the cache."""
        index = MIPSIndex(12, seed=5)
        index.build(data)
        before = index.data_scale
        ids = np.arange(4)
        index.update(ids, data[ids] * 0.5)
        assert index.scale_refits == 0
        assert index.data_scale == before

    def test_overflow_update_refits_scale(self, data, rng):
        """A column growing past the build-time max norm must refit.

        Reusing the cached factor would scale the new vector's norm past
        the transform's U bound, so its ``‖w‖^{2^i}`` padding terms blow
        up and dominate the hash codes — the item becomes effectively
        unfindable by the queries it should win.  update() must detect
        the overflow, refit on the update subset and adopt the tighter
        factor.
        """
        index = MIPSIndex(12, n_bits=6, n_tables=8, seed=6)
        index.build(data)
        before = index.data_scale
        norms = np.sqrt((data * data).sum(axis=1))
        giant_id = 7
        giant = data[int(np.argmax(norms))] * 10.0
        index.update(np.array([giant_id]), giant[None, :])
        assert index.scale_refits == 1
        assert index.data_scale < before  # tighter factor adopted
        updated = data.copy()
        updated[giant_id] = giant
        # The giant column wins the inner product for queries aligned
        # with it; with valid hash coordinates it must stay retrievable.
        queries = giant[None, :] + rng.normal(size=(20, 12)) * np.linalg.norm(giant) * 0.1
        hits = recalled = 0
        for q in queries:
            top = exact_mips(updated, q, k=1)
            if top[0] != giant_id:
                continue
            hits += 1
            if giant_id in index.query(q):
                recalled += 1
        assert hits > 10  # the giant really dominates brute-force MIPS
        assert recalled / hits >= 0.8

    def test_refit_subset_scale_restores_old_behaviour(self, data, rng):
        """The ablation flag refits on the subset and (for skewed subsets)
        moves unchanged items — exactly the bug the cache fixes."""
        index = MIPSIndex(12, n_bits=8, n_tables=5, seed=3,
                          refit_subset_scale=True)
        index.build(data)
        queries = rng.normal(size=(30, 12))
        before = index.query_batch(queries)
        ids = np.arange(5)
        index.update(ids, data[ids])
        after = index.query_batch(queries)
        moved = any(
            not np.array_equal(a, b) for a, b in zip(before, after)
        )
        assert moved
