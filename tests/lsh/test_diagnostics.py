"""Tests for LSH index diagnostics."""

import numpy as np
import pytest

from repro.lsh.diagnostics import (
    BucketStats,
    bucket_stats,
    candidate_size_profile,
    recall_at_k,
)
from repro.lsh.mips import MIPSIndex
from repro.lsh.tables import LSHIndex


@pytest.fixture
def built_index(rng):
    index = LSHIndex(16, n_bits=5, n_tables=4, seed=0)
    index.build(rng.normal(size=(80, 16)))
    return index


class TestBucketStats:
    def test_counts_consistent(self, built_index):
        stats = bucket_stats(built_index)
        assert stats.n_tables == 4
        assert stats.n_items == 80
        assert stats.total_buckets == 4 * 32
        assert 0 < stats.occupied_buckets <= stats.total_buckets
        assert 0.0 < stats.occupancy <= 1.0
        assert stats.max_bucket <= 80
        assert stats.mean_bucket > 0

    def test_gini_bounds(self, built_index):
        stats = bucket_stats(built_index)
        assert 0.0 <= stats.gini < 1.0

    def test_degenerate_collection_concentrates(self, rng):
        """Identical vectors land in one bucket per table: occupancy
        collapses and the max bucket holds everything."""
        index = LSHIndex(8, n_bits=5, n_tables=3, seed=1)
        index.build(np.tile(rng.normal(size=8), (40, 1)))
        stats = bucket_stats(index)
        assert stats.occupied_buckets == 3  # one per table
        assert stats.max_bucket == 40

    def test_empty_index(self):
        index = LSHIndex(8, n_bits=4, n_tables=2, seed=0)
        stats = bucket_stats(index)
        assert stats.n_items == 0
        assert stats.occupancy == 0.0
        assert stats.gini == 0.0


class TestRecall:
    def test_more_tables_higher_recall(self, rng):
        data = rng.normal(size=(100, 16))
        queries = rng.normal(size=(15, 16))

        def recall(n_tables):
            index = MIPSIndex(16, n_bits=5, n_tables=n_tables, seed=2)
            index.build(data)
            return recall_at_k(index, data, queries, k=10)

        assert recall(10) > recall(1)

    def test_recall_bounds(self, rng):
        data = rng.normal(size=(50, 12))
        index = MIPSIndex(12, seed=3)
        index.build(data)
        r = recall_at_k(index, data, rng.normal(size=(10, 12)), k=5)
        assert 0.0 <= r <= 1.0

    def test_invalid_k(self, rng):
        data = rng.normal(size=(10, 4))
        index = MIPSIndex(4, seed=0)
        index.build(data)
        with pytest.raises(ValueError):
            recall_at_k(index, data, rng.normal(size=(2, 4)), k=11)


class TestCandidateProfile:
    def test_sizes_per_query(self, rng):
        data = rng.normal(size=(60, 10))
        index = MIPSIndex(10, n_bits=4, n_tables=5, seed=4)
        index.build(data)
        sizes = candidate_size_profile(index, rng.normal(size=(8, 10)))
        assert sizes.shape == (8,)
        assert ((sizes >= 0) & (sizes <= 60)).all()

    def test_more_tables_bigger_candidates(self, rng):
        data = rng.normal(size=(60, 10))
        queries = rng.normal(size=(10, 10))

        def mean_size(n_tables):
            index = MIPSIndex(10, n_bits=4, n_tables=n_tables, seed=5)
            index.build(data)
            return candidate_size_profile(index, queries).mean()

        assert mean_size(8) > mean_size(1)
